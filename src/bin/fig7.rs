//! Legacy shim: `fig7` now delegates to the bundled `fig7` preset spec
//! (see `crates/spec/specs/fig7.toml`); same flags, same output.
fn main() {
    sof_spec::shim::legacy_main("fig7");
}

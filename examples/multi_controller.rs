//! Distributed SOFDA (§VI): controllers own network domains, exchange
//! border distance matrices over channels, and the leader embeds the forest
//! on the assembled abstract topology.
//!
//! Run with `cargo run --release --example multi_controller`.

use sof::core::SofdaConfig;
use sof::sdn::distributed_sofda;
use sof::topo::{build_instance, cogent, ScenarioParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = cogent();
    let mut p = ScenarioParams::paper_defaults().with_seed(11);
    p.sources = 6;
    p.destinations = 8;
    let inst = build_instance(&topo, &p);

    let central = sof::core::solve_sofda(&inst, &SofdaConfig::default())?;
    println!("centralized : cost {}", central.cost);

    for k in [2, 4, 8] {
        let out = distributed_sofda(&inst, k, &SofdaConfig::default())?;
        out.outcome.forest.validate(&inst)?;
        println!(
            "{k:>2} domains  : cost {}  ({} east-west messages)",
            out.outcome.cost, out.message_count
        );
    }
    Ok(())
}

//! # sof-bench — low-level experiment engine under the scenario layer
//!
//! The building blocks every harness shares: single solver runs with
//! validation ([`run`]), seed-averaged measurements ([`average`]),
//! declarative parameter sweeps ([`sweep_tables`] over [`SweepAxis`] /
//! [`ParamField`]) and the strict [`Args`] flag parser the legacy shim
//! binaries use.
//!
//! The paper's figures and tables themselves are **scenario specs** now:
//! the `sof_spec` crate compiles `ScenarioSpec` files onto this engine and
//! the `sof` CLI (`sof run fig8`, `sof list`, `sof validate`) replaces the
//! former one-binary-per-figure harness; `fig7`…`table2` remain as thin
//! shims over the bundled preset specs.
//!
//! Algorithms come from the [`sof_solvers`] registry (the [`Solver`]
//! trait), so adding a solver to the registry adds it to every harness.
//!
//! Per-seed averaging fans out over `sof_par` workers; `--threads N`
//! (`0` = all cores) and the `SOF_THREADS` environment variable pick the
//! worker count. Results are deterministic and **identical for every
//! thread count**: each seed's run lands in a fixed slot and means are
//! folded in seed order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sof_core::{SofInstance, SofdaConfig, Solver};
use std::time::Instant;

/// A sweepable field of [`sof_topo::ScenarioParams`] — the data form of
/// what used to be per-binary setter closures, so declarative scenario
/// specs can name axes in files.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ParamField {
    /// `sources` (candidate source count).
    Sources,
    /// `destinations` (group size).
    Destinations,
    /// `vm_count` (VMs attached to data centers).
    VmCount,
    /// `chain_len` (demanded service-chain length).
    ChainLen,
    /// `setup_scale` (VM setup-cost multiple; swept values are the integer
    /// multiples of Fig. 11).
    SetupScale,
}

impl ParamField {
    /// Applies a swept value to the params.
    pub fn apply(&self, p: &mut sof_topo::ScenarioParams, v: usize) {
        match self {
            ParamField::Sources => p.sources = v,
            ParamField::Destinations => p.destinations = v,
            ParamField::VmCount => p.vm_count = v,
            ParamField::ChainLen => p.chain_len = v,
            ParamField::SetupScale => p.setup_scale = v as f64,
        }
    }

    /// The spec-file name of this field.
    pub fn as_str(&self) -> &'static str {
        match self {
            ParamField::Sources => "sources",
            ParamField::Destinations => "destinations",
            ParamField::VmCount => "vm_count",
            ParamField::ChainLen => "chain_len",
            ParamField::SetupScale => "setup_scale",
        }
    }

    /// The axis label the figures use (`"#sources"`, `"chain length"`, …).
    pub fn default_label(&self) -> &'static str {
        match self {
            ParamField::Sources => "#sources",
            ParamField::Destinations => "#destinations",
            ParamField::VmCount => "#VMs",
            ParamField::ChainLen => "chain length",
            ParamField::SetupScale => "setup multiple",
        }
    }

    /// Parses a spec-file name (case-insensitive; `-` and `_` are
    /// interchangeable).
    ///
    /// # Errors
    ///
    /// A message naming the unknown field and the valid names.
    pub fn from_name(name: &str) -> Result<ParamField, String> {
        match name.to_ascii_lowercase().replace('-', "_").as_str() {
            "sources" => Ok(ParamField::Sources),
            "destinations" => Ok(ParamField::Destinations),
            "vm_count" | "vms" => Ok(ParamField::VmCount),
            "chain_len" | "chain_length" => Ok(ParamField::ChainLen),
            "setup_scale" => Ok(ParamField::SetupScale),
            other => Err(format!(
                "unknown sweep field '{other}' (expected one of sources, destinations, \
                 vm_count, chain_len, setup_scale)"
            )),
        }
    }
}

/// One declarative sweep axis: which parameter varies, over which values,
/// under which display label.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SweepAxis {
    /// Display label (figure column header; defaults per field).
    pub label: String,
    /// The varied parameter.
    pub field: ParamField,
    /// Swept values, in sweep order.
    pub values: Vec<usize>,
}

impl SweepAxis {
    /// An axis over `field` with its default label.
    pub fn new(field: ParamField, values: Vec<usize>) -> SweepAxis {
        SweepAxis {
            label: field.default_label().to_string(),
            field,
            values,
        }
    }

    /// Truncates the axis to its first `limit` values (`0` = keep all).
    pub fn truncate(&mut self, limit: usize) {
        if limit > 0 {
            self.values.truncate(limit);
        }
    }
}

/// The standard one-time-deployment sweep grid shared by Figs. 8-10:
/// #sources / #destinations / #VMs / chain length over the paper's ranges.
/// `limit` truncates every axis to its first `limit` values (`0` = all) —
/// the knob CI smoke runs use.
pub fn standard_axes(limit: usize) -> Vec<SweepAxis> {
    let mut axes = vec![
        SweepAxis::new(ParamField::Sources, vec![2, 8, 14, 20, 26]),
        SweepAxis::new(ParamField::Destinations, vec![2, 4, 6, 8, 10]),
        SweepAxis::new(ParamField::VmCount, vec![5, 15, 25, 35, 45]),
        SweepAxis::new(ParamField::ChainLen, vec![3, 4, 5, 6, 7]),
    ];
    for a in &mut axes {
        a.truncate(limit);
    }
    axes
}

/// One axis of a comparison sweep, as data: the axis label, the swept
/// values, and `rows[vi][ai]` = mean cost of `algos[ai]` at `values[vi]`
/// (`None` when the solver skipped or failed every seed).
#[derive(Clone, Debug, PartialEq)]
pub struct SweepTable {
    /// Axis label (e.g. `"#destinations"`).
    pub axis: String,
    /// Swept values, in sweep order.
    pub values: Vec<usize>,
    /// `rows[vi][ai]`: mean cost per value per solver.
    pub rows: Vec<Vec<Option<f64>>>,
}

/// Computes comparison sweeps over arbitrary declarative axes on one
/// topology: every solver in `algos`, averaged over `seeds` instance draws
/// from `base` around the `base_params` scenario, per-seed runs fanned out
/// over `threads` workers (`0` = the configured default,
/// [`sof_par::current_threads`]). Results are bit-identical for every
/// thread count.
#[allow(clippy::too_many_arguments)]
pub fn sweep_tables(
    topo: &sof_topo::Topology,
    base_params: &sof_topo::ScenarioParams,
    config: &SofdaConfig,
    algos: &[Box<dyn Solver>],
    axes: &[SweepAxis],
    seeds: u64,
    base: u64,
    threads: usize,
) -> Vec<SweepTable> {
    axes.iter()
        .map(|axis| {
            let values = &axis.values;
            // Flatten the whole (value × algo × seed) grid into one fan-out
            // so wide machines aren't capped at the seed count. Instances
            // depend only on (value, seed), so they are built once and
            // shared across solvers. Slots stay index-addressed and means
            // fold in seed order, so the result is bit-identical to nested
            // serial loops.
            let cells: Vec<(usize, u64)> = values
                .iter()
                .enumerate()
                .flat_map(|(vi, _)| (0..seeds).map(move |i| (vi, base + i)))
                .collect();
            let instances = sof_par::par_map_indexed(&cells, threads, |_, &(vi, seed)| {
                let mut p = base_params.with_seed(seed);
                axis.field.apply(&mut p, values[vi]);
                sof_topo::build_instance(topo, &p)
            })
            .unwrap_or_else(|e| panic!("comparison sweep: {e}"));
            let tasks: Vec<(usize, usize)> = (0..cells.len())
                .flat_map(|ci| (0..algos.len()).map(move |ai| (ci, ai)))
                .collect();
            let runs = sof_par::par_map_indexed(&tasks, threads, |_, &(ci, ai)| {
                run(
                    algos[ai].as_ref(),
                    &instances[ci],
                    &config.with_seed(cells[ci].1),
                )
                .map(|r| r.cost)
            })
            .unwrap_or_else(|e| panic!("comparison sweep: {e}"));
            // Fold per (value, algo) cell; tasks iterate seeds in order for
            // every fixed (value, algo), keeping the means bit-stable.
            let mut sums = vec![vec![(0.0f64, 0u64); algos.len()]; values.len()];
            for (&(ci, ai), cost) in tasks.iter().zip(&runs) {
                if let Some(c) = cost {
                    let vi = cells[ci].0;
                    sums[vi][ai].0 += c;
                    sums[vi][ai].1 += 1;
                }
            }
            let rows = sums
                .into_iter()
                .map(|row| {
                    row.into_iter()
                        .map(|(sum, n)| (n > 0).then(|| sum / n as f64))
                        .collect()
                })
                .collect();
            SweepTable {
                axis: axis.label.clone(),
                values: values.clone(),
                rows,
            }
        })
        .collect()
}

/// The standard comparison sweeps of Figs. 8–10 ([`standard_axes`] around
/// the paper-default scenario), truncated to `limit` values per axis
/// (`0` = all). See [`sweep_tables`] for the contract.
pub fn comparison_sweep_tables(
    topo: &sof_topo::Topology,
    algos: &[Box<dyn Solver>],
    seeds: u64,
    base: u64,
    limit: usize,
    threads: usize,
) -> Vec<SweepTable> {
    sweep_tables(
        topo,
        &sof_topo::ScenarioParams::paper_defaults(),
        &SofdaConfig::default(),
        algos,
        &standard_axes(limit),
        seeds,
        base,
        threads,
    )
}

/// One algorithm run's outcome.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Total forest cost.
    pub cost: f64,
    /// Enabled VMs.
    pub used_vms: usize,
    /// Wall-clock milliseconds.
    pub millis: f64,
    /// The full outcome (for QoE / rule compilation downstream).
    pub outcome: Option<sof_core::SolveOutcome>,
}

/// Runs one solver on an instance, validating the result.
///
/// Returns `None` when the instance exceeds the solver's capability hints
/// (e.g. the exact solver on an oversized group) or the solver reports
/// infeasibility.
pub fn run(solver: &dyn Solver, instance: &SofInstance, config: &SofdaConfig) -> Option<RunResult> {
    if !solver.supports(instance) {
        return None;
    }
    let t0 = Instant::now();
    let outcome = solver.solve(instance, config).ok()?;
    let millis = t0.elapsed().as_secs_f64() * 1e3;
    outcome.forest.validate(instance).expect("validated output");
    Some(RunResult {
        cost: outcome.cost.total().value(),
        used_vms: outcome.forest.stats().used_vms,
        millis,
        outcome: Some(outcome),
    })
}

/// Averages a solver over `seeds` instance draws produced by `make`,
/// fanning the independent per-seed runs out over
/// [`sof_par::current_threads`] workers.
///
/// Returns `(mean cost, mean used VMs, mean milliseconds)`. Costs and VM
/// counts are bit-identical for every thread count (runs land in per-seed
/// slots and the means fold in seed order); only the measured wall-clock
/// means vary.
pub fn average<F>(
    solver: &dyn Solver,
    seeds: u64,
    base_seed: u64,
    config: &SofdaConfig,
    make: F,
) -> Option<(f64, f64, f64)>
where
    F: Fn(u64) -> SofInstance + Sync,
{
    average_with(solver, seeds, base_seed, config, make, 0)
}

/// [`average`] with an explicit worker count (`0` = the configured
/// default, [`sof_par::current_threads`]).
pub fn average_with<F>(
    solver: &dyn Solver,
    seeds: u64,
    base_seed: u64,
    config: &SofdaConfig,
    make: F,
    threads: usize,
) -> Option<(f64, f64, f64)>
where
    F: Fn(u64) -> SofInstance + Sync,
{
    let seed_list: Vec<u64> = (0..seeds).map(|i| base_seed + i).collect();
    let runs = sof_par::par_map_indexed(&seed_list, threads, |_, &seed| {
        let inst = make(seed);
        run(solver, &inst, &config.with_seed(seed)).map(|r| (r.cost, r.used_vms as f64, r.millis))
    })
    .unwrap_or_else(|e| panic!("averaging sweep: {e}"));
    let mut cost = 0.0;
    let mut vms = 0.0;
    let mut ms = 0.0;
    let mut n = 0.0;
    for (c, v, m) in runs.into_iter().flatten() {
        cost += c;
        vms += v;
        ms += m;
        n += 1.0;
    }
    (n > 0.0).then(|| (cost / n, vms / n, ms / n))
}

/// Strict `--flag value` parser for the experiment binaries: every flag
/// must be declared up front, unknown or value-less flags are errors, and
/// `--help` prints a per-binary usage text. `--threads` is built in —
/// every binary accepts it and [`Args::parse`] installs it as the
/// process-wide [`sof_par`] worker count.
#[derive(Debug)]
pub struct Args {
    values: std::collections::HashMap<String, String>,
}

/// What [`Args::try_parse`] decided.
#[derive(Debug)]
pub enum Parsed {
    /// Arguments parsed; run the binary.
    Run(Args),
    /// `--help` was requested; print the usage text and exit 0.
    Help(String),
}

impl Args {
    /// Parses the process arguments against the declared `flags`
    /// (`(name, help)` pairs; every flag takes one value). Prints usage and
    /// exits 0 on `--help`; prints the error and exits 2 on unknown flags,
    /// missing values, or stray positional arguments.
    pub fn parse(about: &str, flags: &[(&str, &str)]) -> Args {
        let raw: Vec<String> = std::env::args().skip(1).collect();
        match Args::try_parse(&raw, about, flags) {
            Ok(Parsed::Run(args)) => {
                match args.threads() {
                    Ok(Some(threads)) => sof_par::set_threads(threads),
                    Ok(None) => {}
                    Err(e) => {
                        eprintln!("error: {e}");
                        eprintln!("{}", Args::usage(about, flags));
                        std::process::exit(2);
                    }
                }
                args
            }
            Ok(Parsed::Help(usage)) => {
                println!("{usage}");
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("{}", Args::usage(about, flags));
                std::process::exit(2);
            }
        }
    }

    /// The exit-free core of [`Args::parse`].
    ///
    /// # Errors
    ///
    /// Returns a message for unknown flags, flags missing their value, and
    /// positional arguments.
    pub fn try_parse(
        raw: &[String],
        about: &str,
        flags: &[(&str, &str)],
    ) -> Result<Parsed, String> {
        let mut values = std::collections::HashMap::new();
        let mut it = raw.iter();
        while let Some(arg) = it.next() {
            if arg == "--help" || arg == "-h" {
                return Ok(Parsed::Help(Args::usage(about, flags)));
            }
            let name = arg
                .strip_prefix("--")
                .ok_or_else(|| format!("unexpected positional argument '{arg}'"))?;
            if name != "threads" && !flags.iter().any(|(f, _)| *f == name) {
                return Err(format!("unknown flag '--{name}'"));
            }
            let value = it
                .next()
                .ok_or_else(|| format!("flag '--{name}' is missing its value"))?;
            values.insert(name.to_string(), value.clone());
        }
        Ok(Parsed::Run(Args { values }))
    }

    /// The `--help` text for a binary (declared flags plus the built-in
    /// `--threads` and `--help`).
    pub fn usage(about: &str, flags: &[(&str, &str)]) -> String {
        let mut s = format!("{about}\n\nOptions:\n");
        let width = flags
            .iter()
            .map(|(f, _)| f.len())
            .chain(["threads".len()])
            .max()
            .unwrap_or(0);
        for (flag, help) in flags {
            s.push_str(&format!("  --{flag:<width$} <value>  {help}\n"));
        }
        s.push_str(&format!(
            "  --{:<width$} <value>  worker threads for parallel sweeps (0 = all cores; \
             overrides SOF_THREADS)\n",
            "threads"
        ));
        s.push_str(&format!("  --{:<width$}          print this help", "help"));
        s
    }

    /// Reads the built-in `--threads` flag: `Ok(None)` when absent,
    /// `Ok(Some(n))` when it parses (`0` = auto-detect all cores).
    ///
    /// # Errors
    ///
    /// A message naming the non-numeric value.
    pub fn threads(&self) -> Result<Option<usize>, String> {
        match self.values.get("threads") {
            None => Ok(None),
            Some(v) => v.parse::<usize>().map(Some).map_err(|_| {
                format!(
                    "invalid value '{v}' for flag '--threads': expected a thread count \
                     (0 = all cores)"
                )
            }),
        }
    }

    /// Reads `--seeds` (averaging width), clamped to at least 1 because
    /// averaging over zero seeds is a `None` from [`average`].
    pub fn seeds(&self, default: u64) -> u64 {
        self.get("seeds", default).max(1)
    }

    /// Reads `--name <value>` with a default. Exits 2 when the supplied
    /// value does not parse as `T`.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.opt(name).unwrap_or(default)
    }

    /// Reads `--name <value>`: `None` when the flag is absent. Exits 2
    /// when the supplied value does not parse as `T`.
    pub fn opt<T: std::str::FromStr>(&self, name: &str) -> Option<T> {
        self.values.get(name).map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("error: invalid value '{v}' for flag '--{name}'");
                std::process::exit(2);
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sof_topo::{build_instance, softlayer, ScenarioParams};

    #[test]
    fn run_all_registered_comparison_solvers_once() {
        let topo = softlayer();
        let mut p = ScenarioParams::paper_defaults().with_seed(5);
        p.destinations = 4;
        p.sources = 6;
        p.vm_count = 12;
        let inst = build_instance(&topo, &p);
        for solver in sof_solvers::comparison_set(true) {
            let r = run(solver.as_ref(), &inst, &SofdaConfig::default()).expect("feasible");
            assert!(r.cost > 0.0, "{}", solver.name());
        }
    }

    #[test]
    fn capability_hints_skip_oversized_instances() {
        let topo = softlayer();
        let mut p = ScenarioParams::paper_defaults().with_seed(6);
        p.destinations = 12; // beyond the exact solver's |D| ≤ 10 envelope
        let inst = build_instance(&topo, &p);
        let exact = sof_solvers::by_name("CPLEX*").unwrap();
        assert!(run(exact.as_ref(), &inst, &SofdaConfig::default()).is_none());
    }

    #[test]
    fn averaging_is_deterministic() {
        let topo = softlayer();
        let make = |seed: u64| {
            let mut p = ScenarioParams::paper_defaults().with_seed(seed);
            p.destinations = 3;
            p.sources = 4;
            p.vm_count = 10;
            build_instance(&topo, &p)
        };
        let sofda = sof_core::Sofda;
        let a = average(&sofda, 3, 100, &SofdaConfig::default(), make).unwrap();
        let b = average(&sofda, 3, 100, &SofdaConfig::default(), make).unwrap();
        assert_eq!(a.0, b.0);
    }

    fn strings(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn args_reject_unknown_flags_and_positionals() {
        let flags = [("seed", "base seed"), ("seeds", "averaging width")];
        let err = Args::try_parse(&strings(&["--sede", "7"]), "t", &flags).unwrap_err();
        assert!(err.contains("unknown flag '--sede'"), "{err}");
        let err = Args::try_parse(&strings(&["7"]), "t", &flags).unwrap_err();
        assert!(err.contains("positional"), "{err}");
        let err = Args::try_parse(&strings(&["--seed"]), "t", &flags).unwrap_err();
        assert!(err.contains("missing its value"), "{err}");
    }

    #[test]
    fn threads_flag_is_builtin_and_validated() {
        let flags = [("seed", "base seed")];
        // Accepted without being declared, parsed as a count.
        let Parsed::Run(args) =
            Args::try_parse(&strings(&["--threads", "4"]), "t", &flags).unwrap()
        else {
            panic!("expected Run");
        };
        assert_eq!(args.threads(), Ok(Some(4)));
        // Absent → None (leave SOF_THREADS / auto-detect in charge).
        let Parsed::Run(args) = Args::try_parse(&strings(&[]), "t", &flags).unwrap() else {
            panic!("expected Run");
        };
        assert_eq!(args.threads(), Ok(None));
        // 0 is valid and means auto-detect (all cores).
        let Parsed::Run(args) =
            Args::try_parse(&strings(&["--threads", "0"]), "t", &flags).unwrap()
        else {
            panic!("expected Run");
        };
        assert_eq!(args.threads(), Ok(Some(0)));
        assert!(sof_par::resolve_threads(0) >= 1, "0 resolves to all cores");
        // Non-numeric values are rejected with a pointed message.
        let Parsed::Run(args) =
            Args::try_parse(&strings(&["--threads", "many"]), "t", &flags).unwrap()
        else {
            panic!("expected Run");
        };
        let err = args.threads().unwrap_err();
        assert!(err.contains("invalid value 'many'"), "{err}");
        // A value-less --threads is still a parse error.
        let err = Args::try_parse(&strings(&["--threads"]), "t", &flags).unwrap_err();
        assert!(err.contains("missing its value"), "{err}");
        // And the built-in shows up in every usage text.
        assert!(Args::usage("t", &flags).contains("--threads"));
    }

    #[test]
    fn args_parse_declared_flags_and_help() {
        let flags = [("seed", "base seed"), ("seeds", "averaging width")];
        let Parsed::Run(args) =
            Args::try_parse(&strings(&["--seed", "9", "--seeds", "3"]), "t", &flags).unwrap()
        else {
            panic!("expected Run");
        };
        assert_eq!(args.get("seed", 0u64), 9);
        assert_eq!(args.seeds(5), 3);
        // Defaults apply when a flag is absent; zero seeds clamp to 1.
        let Parsed::Run(args) = Args::try_parse(&strings(&["--seeds", "0"]), "t", &flags).unwrap()
        else {
            panic!("expected Run");
        };
        assert_eq!(args.get("seed", 1000u64), 1000);
        assert_eq!(args.seeds(5), 1);
        let Parsed::Help(usage) =
            Args::try_parse(&strings(&["--help"]), "fig0 — x", &flags).unwrap()
        else {
            panic!("expected Help");
        };
        assert!(usage.contains("fig0 — x") && usage.contains("--seeds"));
    }
}

//! Shared machinery for the baseline algorithms.

use sof_core::{ChainMetric, DestWalk, ServiceForest, SofInstance, SofdaConfig, SolveError};
use sof_graph::{Cost, NodeId, Rng64};
use sof_steiner::SteinerTree;

/// A grown forest: total priced cost, the kept candidate trees, and the
/// destination buckets assigned to each tree.
pub(crate) type GrownForest = (Cost, Vec<CandidateTree>, Vec<Vec<NodeId>>);

/// A service tree candidate: a chain from a source plus a distribution tree
/// hanging off the chain's attachment node.
#[derive(Clone, Debug)]
pub(crate) struct CandidateTree {
    /// Source feeding the tree.
    pub source: NodeId,
    /// Chain walk (source → last VM), possibly with an extra pass-through
    /// stretch to the attachment node.
    pub chain_nodes: Vec<NodeId>,
    /// VNF positions within `chain_nodes`.
    pub chain_positions: Vec<usize>,
    /// Cost of links + VMs on the chain (incl. attachment stretch).
    pub chain_cost: Cost,
    /// Node where processed data enters the distribution structure.
    pub attach: NodeId,
}

impl CandidateTree {
    /// A chain-less tree (|C| = 0) rooted at `source`.
    pub fn bare(source: NodeId) -> CandidateTree {
        CandidateTree {
            source,
            chain_nodes: vec![source],
            chain_positions: vec![],
            chain_cost: Cost::ZERO,
            attach: source,
        }
    }
}

/// Builds the cheapest service chain from `source` over `vms`, attached to
/// the cheapest node of `tree_nodes` (ST/eST style: the tree is fixed first,
/// the chain is bolted on afterwards).
pub(crate) fn cheapest_chain_to_tree(
    instance: &SofInstance,
    source: NodeId,
    vms: &[NodeId],
    tree_nodes: &[NodeId],
    config: &SofdaConfig,
    rng: &mut Rng64,
) -> Option<CandidateTree> {
    let network = &instance.network;
    let chain_len = instance.chain_len();
    if chain_len == 0 {
        return Some(CandidateTree::bare(source));
    }
    if vms.len() < chain_len {
        return None;
    }
    let cm = ChainMetric::build(network, source, vms, config.source_cost())?;
    let chains = cm.chains_to_all_vms(chain_len, config.stroll, rng);
    let mut best: Option<CandidateTree> = None;
    for (target, stroll, chain_cost) in chains {
        let u = cm.node(target);
        let sp = network.paths().from_source(network.graph(), u);
        let Some(&attach) = tree_nodes
            .iter()
            .min_by_key(|&&x| (sp.dist(x), x))
            .filter(|&&x| sp.dist(x).is_finite())
        else {
            continue;
        };
        let total = chain_cost + sp.dist(attach);
        if best.as_ref().is_none_or(|b| total < b.chain_cost) {
            let (mut nodes, positions) = cm.expand(&stroll);
            if attach != u {
                let path = sp.path_to(attach).expect("finite distance");
                nodes.extend_from_slice(&path[1..]);
            }
            best = Some(CandidateTree {
                source,
                chain_nodes: nodes,
                chain_positions: positions,
                chain_cost: total,
                attach,
            });
        }
    }
    best
}

/// Assigns every destination to its closest tree attach point and prices the
/// resulting forest: `Σ chain costs (used trees) + Σ Steiner(attach ∪ D_t)`.
///
/// Returns `(total cost, per-tree destination lists)`. Trees serving no
/// destination are dropped (their chain cost is not charged).
pub(crate) fn assign_and_price(
    instance: &SofInstance,
    trees: &[CandidateTree],
    config: &SofdaConfig,
) -> Result<(Cost, Vec<Vec<NodeId>>), SolveError> {
    let network = &instance.network;
    let dests = &instance.request.destinations;
    let sps: Vec<_> = trees
        .iter()
        .map(|t| network.paths().from_source(network.graph(), t.attach))
        .collect();
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); trees.len()];
    for &d in dests {
        let ti = (0..trees.len())
            .filter(|&i| sps[i].dist(d).is_finite())
            .min_by_key(|&i| (sps[i].dist(d), i))
            .ok_or_else(|| SolveError::Infeasible(format!("{d} unreachable from any tree")))?;
        buckets[ti].push(d);
    }
    let mut total = Cost::ZERO;
    for (t, bucket) in trees.iter().zip(buckets.iter()) {
        if bucket.is_empty() {
            continue;
        }
        let mut terminals = vec![t.attach];
        terminals.extend_from_slice(bucket);
        let tree = config
            .steiner
            .solve_with(network.graph(), &terminals, Some(network.paths()))?;
        total += t.chain_cost + tree.cost;
    }
    Ok((total, buckets))
}

/// Materializes a forest from trees and their destination buckets.
pub(crate) fn assemble(
    instance: &SofInstance,
    trees: &[CandidateTree],
    buckets: &[Vec<NodeId>],
    config: &SofdaConfig,
) -> Result<ServiceForest, SolveError> {
    let network = &instance.network;
    let mut walks = Vec::new();
    for (t, bucket) in trees.iter().zip(buckets.iter()) {
        if bucket.is_empty() {
            continue;
        }
        let mut terminals = vec![t.attach];
        terminals.extend_from_slice(bucket);
        let tree: SteinerTree =
            config
                .steiner
                .solve_with(network.graph(), &terminals, Some(network.paths()))?;
        for &d in bucket {
            let tail = tree
                .path_between(network.graph(), t.attach, d)
                .expect("tree spans its terminals");
            let mut nodes = t.chain_nodes.clone();
            nodes.extend_from_slice(&tail[1..]);
            walks.push(DestWalk {
                destination: d,
                source: t.source,
                nodes,
                vnf_positions: t.chain_positions.clone(),
            });
        }
    }
    Ok(ServiceForest::new(instance.chain_len(), walks))
}

/// The used-VM set of a collection of candidate trees.
pub(crate) fn used_vms(trees: &[CandidateTree]) -> Vec<NodeId> {
    let mut out: Vec<NodeId> = trees
        .iter()
        .flat_map(|t| t.chain_positions.iter().map(|&p| t.chain_nodes[p]))
        .collect();
    out.sort();
    out.dedup();
    out
}

/// Iterative multi-source extension shared by eST and eNEMP: starting from
/// one tree, repeatedly propose a tree from an unused source (chain on
/// unused VMs via `propose`) and keep it while the priced total decreases.
pub(crate) fn grow_forest<F>(
    instance: &SofInstance,
    mut trees: Vec<CandidateTree>,
    config: &SofdaConfig,
    mut propose: F,
) -> Result<GrownForest, SolveError>
where
    F: FnMut(&SofInstance, NodeId, &[NodeId], &mut Rng64) -> Option<CandidateTree>,
{
    let mut rng = Rng64::seed_from(config.seed ^ 0xE57);
    let (mut best_cost, mut best_buckets) = assign_and_price(instance, &trees, config)?;
    loop {
        let used_sources: Vec<NodeId> = trees.iter().map(|t| t.source).collect();
        let free_vms: Vec<NodeId> = {
            let used = used_vms(&trees);
            instance
                .network
                .vms()
                .into_iter()
                .filter(|v| !used.contains(v))
                .collect()
        };
        let mut improved = false;
        let mut best_addition: Option<(Cost, CandidateTree, Vec<Vec<NodeId>>)> = None;
        for &s in &instance.request.sources {
            if used_sources.contains(&s) {
                continue;
            }
            let Some(cand) = propose(instance, s, &free_vms, &mut rng) else {
                continue;
            };
            let mut tentative = trees.clone();
            tentative.push(cand.clone());
            let (cost, buckets) = assign_and_price(instance, &tentative, config)?;
            if cost < best_cost && best_addition.as_ref().is_none_or(|(c, _, _)| cost < *c) {
                best_addition = Some((cost, cand, buckets));
            }
        }
        if let Some((cost, cand, buckets)) = best_addition {
            trees.push(cand);
            best_cost = cost;
            best_buckets = buckets;
            improved = true;
        }
        if !improved {
            break;
        }
    }
    Ok((best_cost, trees, best_buckets))
}

//! # sof-spec — declarative scenarios for the SOF evaluation
//!
//! Experiments are **data** here, not binaries: a [`ScenarioSpec`]
//! (TOML or JSON) names a topology, scenario parameters, a cost/solver
//! configuration and a workload; [`run_spec`] compiles it onto the
//! existing `Solver` / `OnlineSession` / `SessionPool` / `sof_bench`
//! machinery and returns a structured [`RunReport`], which serializes as
//! deterministic JSON lines ([`write_jsonl`]) or as the legacy markdown
//! tables ([`render_markdown`]).
//!
//! The paper's eight figures/tables ship as bundled presets
//! ([`presets::PRESETS`], checked in under `crates/spec/specs/`), and the
//! `sof` CLI (`sof run fig8`, `sof list`, `sof validate`) drives
//! everything. New scenarios — e.g. an Inet topology under viewer churn
//! with VM failure injection — are a spec file, not code (see the
//! `inet-churn-failures` preset).
//!
//! # Examples
//!
//! ```
//! use sof_spec::{run_spec, RunOptions, ScenarioSpec};
//!
//! let spec = ScenarioSpec::from_toml(r#"
//! name = "tiny"
//! label = "Demo"
//! title = "one tiny sweep"
//!
//! [workload]
//! kind = "sweep"
//! solvers = ["SOFDA"]
//! seeds = 1
//! seed = 7
//!
//! [[workload.axes]]
//! field = "destinations"
//! values = [2]
//! "#)?;
//! let report = run_spec(&spec, &RunOptions::default())?;
//! let jsonl = sof_spec::write_jsonl(&report, false);
//! assert!(jsonl.lines().count() >= 2); // meta line + one row per point
//! let markdown = sof_spec::render_markdown(&report);
//! assert!(markdown.starts_with("# Demo — one tiny sweep (seeds = 1)"));
//! # Ok::<(), sof_spec::SpecError>(())
//! ```
//!
//! The unknown-key and range validation is strict and actionable:
//!
//! ```
//! use sof_spec::ScenarioSpec;
//!
//! let err = ScenarioSpec::from_toml(
//!     "name = \"x\"\n[workload]\nkind = \"sweep\"\nsolvers = [\"SOFDA\"]\nseedz = 1\n",
//! )
//! .unwrap_err();
//! assert!(err.to_string().contains("unknown key 'workload.seedz'"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod presets;
pub mod report;
pub mod shim;
mod spec;
pub mod value;

pub use engine::{run_churn_stream, run_spec, runner_config, RunOptions};
pub use report::{render_markdown, write_jsonl, Detail, ReportMeta, RunReport, Section};
pub use spec::{
    ChurnSpec, ConvergeSpec, FailureSpec, GridMetric, OnlineGroup, OnlineSpec, ScaleSpec,
    ScenarioSpec, SpecError, Workload,
};

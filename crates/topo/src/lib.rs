//! # sof-topo — evaluation topologies for the SOF reproduction
//!
//! The paper evaluates on two inter-datacenter networks and one synthetic
//! topology (§VIII-A), plus a 14-node SDN testbed (Fig. 13):
//!
//! | name | access nodes | links | data centers |
//! |------|--------------|-------|--------------|
//! | IBM SoftLayer | 27 | 49 | 17 |
//! | Cogent        | 190 | 260 | 40 |
//! | Inet synthetic| 5000 | 10000 | 2000 |
//! | testbed (Fig. 13) | 14 | 20 | — |
//!
//! The public maps referenced by the paper are not machine-readable, so the
//! adjacency here is **synthesized deterministically with the paper's exact
//! node/link/DC counts** (DESIGN.md §5.4): a backbone-flavoured construction
//! for SoftLayer/testbed, power-law growth for Cogent/Inet.
//!
//! [`ScenarioParams`] + [`build_instance`] reproduce the experiment setup:
//! VMs attached to random data centers, link costs drawn from utilization
//! `U(0,1)` through the Fortz–Thorup function, VM setup costs from host
//! utilization, uniformly random sources/destinations.
//!
//! # Examples
//!
//! ```
//! use sof_topo::{softlayer, ScenarioParams, build_instance};
//!
//! let topo = softlayer();
//! assert_eq!(topo.graph.node_count(), 27);
//! assert_eq!(topo.graph.edge_count(), 49);
//! assert_eq!(topo.dc_nodes.len(), 17);
//! let inst = build_instance(&topo, &ScenarioParams::paper_defaults().with_seed(1));
//! assert_eq!(inst.network.vms().len(), 25);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod regions;

pub use regions::{
    build_region_instance, build_regions, RegionDef, RegionScenario, RegionTopology, RegionsParams,
};

use serde::{Deserialize, Serialize};
use sof_core::{fortz_thorup, Network, NodeKind, Request, ServiceChain, SofInstance};
use sof_graph::{Cost, Graph, NodeId, Rng64};

/// A base topology: access-level graph plus its data-center nodes.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Human-readable name.
    pub name: &'static str,
    /// The access-level graph (unit link costs; scenarios re-cost).
    pub graph: Graph,
    /// Access nodes hosting a data center (VM attachment points).
    pub dc_nodes: Vec<NodeId>,
}

fn ring_with_chords(n: usize, chords: &[(usize, usize)]) -> Graph {
    let mut g = Graph::with_nodes(n);
    for i in 0..n {
        g.add_edge(NodeId::new(i), NodeId::new((i + 1) % n), Cost::new(1.0));
    }
    for &(a, b) in chords {
        g.add_edge(NodeId::new(a), NodeId::new(b), Cost::new(1.0));
    }
    g
}

/// IBM SoftLayer inter-DC network: 27 access nodes, 49 links, 17 DCs.
///
/// Deterministic ring-plus-chords construction matching the paper's counts.
pub fn softlayer() -> Topology {
    // 27 ring links + 22 chords = 49 links.
    let chords = [
        (0, 7),
        (0, 13),
        (1, 9),
        (2, 15),
        (3, 11),
        (3, 20),
        (4, 17),
        (5, 12),
        (5, 23),
        (6, 19),
        (8, 16),
        (8, 25),
        (9, 22),
        (10, 18),
        (11, 26),
        (12, 21),
        (14, 24),
        (15, 23),
        (16, 26),
        (17, 25),
        (2, 10),
        (7, 20),
    ];
    let graph = ring_with_chords(27, &chords);
    debug_assert_eq!(graph.edge_count(), 49);
    let dc_nodes = (0..27)
        .filter(|i| i % 3 != 2)
        .take(17)
        .map(NodeId::new)
        .collect();
    Topology {
        name: "softlayer",
        graph,
        dc_nodes,
    }
}

/// Cogent backbone: 190 access nodes, 260 links, 40 DCs.
///
/// Power-law synthesized with a fixed seed (the real map is a web page).
pub fn cogent() -> Topology {
    let mut rng = Rng64::seed_from(0xC0_6E07);
    let graph = sof_graph::generators::inet_like(190, 260, sof_graph::CostRange::UNIT, &mut rng);
    let mut dc_nodes: Vec<NodeId> = rng
        .sample_indices(190, 40)
        .into_iter()
        .map(NodeId::new)
        .collect();
    dc_nodes.sort();
    Topology {
        name: "cogent",
        graph,
        dc_nodes,
    }
}

/// The paper's Inet-generated synthetic network: 5000 access nodes, 10000
/// links, 2000 data centers.
pub fn inet_synthetic(seed: u64) -> Topology {
    let mut rng = Rng64::seed_from(seed ^ 0x17E7);
    let graph = sof_graph::generators::inet_like(5000, 10000, sof_graph::CostRange::UNIT, &mut rng);
    let mut dc_nodes: Vec<NodeId> = rng
        .sample_indices(5000, 2000)
        .into_iter()
        .map(NodeId::new)
        .collect();
    dc_nodes.sort();
    Topology {
        name: "inet",
        graph,
        dc_nodes,
    }
}

/// A scaled-down Inet-style topology (for Table I's |V| sweep).
pub fn inet_sized(nodes: usize, links: usize, dcs: usize, seed: u64) -> Topology {
    let mut rng = Rng64::seed_from(seed.wrapping_mul(0x9E3779B97F4A7C15));
    let graph =
        sof_graph::generators::inet_like(nodes, links, sof_graph::CostRange::UNIT, &mut rng);
    let mut dc_nodes: Vec<NodeId> = rng
        .sample_indices(nodes, dcs)
        .into_iter()
        .map(NodeId::new)
        .collect();
    dc_nodes.sort();
    Topology {
        name: "inet-sized",
        graph,
        dc_nodes,
    }
}

/// The experimental SDN of Fig. 13: 14 nodes, 20 links.
pub fn testbed() -> Topology {
    // 14 ring links + 6 chords = 20.
    let chords = [(0, 5), (1, 8), (2, 11), (4, 10), (6, 13), (3, 9)];
    let graph = ring_with_chords(14, &chords);
    debug_assert_eq!(graph.edge_count(), 20);
    Topology {
        name: "testbed",
        graph,
        dc_nodes: (0..14).map(NodeId::new).collect(),
    }
}

/// Registered topology names, resolvable by [`build_named`]. The `inet`
/// entry covers both the paper's full 5000-node network and arbitrary
/// scaled-down instances via [`TopologySpec::nodes`].
pub const TOPOLOGY_NAMES: [&str; 4] = ["softlayer", "cogent", "inet", "testbed"];

/// The display label a topology name carries in figure headings
/// (`"softlayer"` → `"SoftLayer"`). Unknown names echo back unchanged.
pub fn display_label(name: &str) -> &str {
    match name {
        "softlayer" => "SoftLayer",
        "cogent" => "Cogent",
        "inet" | "inet-sized" => "Inet",
        "testbed" => "testbed",
        other => other,
    }
}

/// A declarative reference to a registered topology: the name plus the
/// optional sizing knobs the `inet` family accepts. This is the lookup key
/// scenario specs use, so experiments can name networks as data.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TopologySpec {
    /// Registry name (see [`TOPOLOGY_NAMES`]).
    pub name: String,
    /// Access-node count (`inet` only; default 5000, the paper's size).
    pub nodes: Option<usize>,
    /// Link count (`inet` only; default `2 × nodes`).
    pub links: Option<usize>,
    /// Data-center count (`inet` only; default `2/5 × nodes`).
    pub dcs: Option<usize>,
    /// Growth seed (`cogent`/`inet`; default: the caller's scenario seed).
    pub seed: Option<u64>,
}

impl TopologySpec {
    /// A spec naming a topology with every knob defaulted.
    pub fn named(name: impl Into<String>) -> TopologySpec {
        TopologySpec {
            name: name.into(),
            nodes: None,
            links: None,
            dcs: None,
            seed: None,
        }
    }
}

/// Checks a [`TopologySpec`] without building anything — the cheap half of
/// [`build_named`], so spec files can be validated without synthesizing a
/// 5000-node network.
///
/// # Errors
///
/// A message naming the unknown topology and the valid names, or the
/// rejected sizing knob.
pub fn validate_named(spec: &TopologySpec) -> Result<(), String> {
    let sized = |what: &str| -> Result<(), String> {
        Err(format!(
            "topology '{}' does not accept '{what}' (only 'inet' is sizable)",
            spec.name
        ))
    };
    match spec.name.as_str() {
        "softlayer" | "cogent" | "testbed" => {
            if spec.nodes.is_some() {
                sized("nodes")?;
            }
            if spec.links.is_some() {
                sized("links")?;
            }
            if spec.dcs.is_some() {
                sized("dcs")?;
            }
            Ok(())
        }
        "inet" => {
            let nodes = spec.nodes.unwrap_or(5000);
            if nodes < 10 {
                return Err(format!(
                    "topology 'inet' needs at least 10 nodes, got {nodes}"
                ));
            }
            let links = spec.links.unwrap_or(nodes * 2);
            let dcs = spec.dcs.unwrap_or((nodes * 2) / 5);
            if dcs == 0 || dcs > nodes {
                return Err(format!(
                    "topology 'inet' needs 1 ≤ dcs ≤ nodes, got dcs = {dcs} for {nodes} nodes"
                ));
            }
            if links < nodes - 1 {
                return Err(format!(
                    "topology 'inet' needs at least nodes - 1 links to connect, \
                     got {links} for {nodes} nodes"
                ));
            }
            Ok(())
        }
        other => Err(format!(
            "unknown topology '{other}' (expected one of {})",
            TOPOLOGY_NAMES.join(", ")
        )),
    }
}

/// Builds a registered topology from its declarative spec. `default_seed`
/// feeds the synthesized families (`inet`) when the spec pins no seed;
/// `softlayer`/`testbed`/`cogent` are fully deterministic and ignore it.
///
/// `inet` with the paper's exact 5000-node size (and no custom
/// links/dcs) resolves to [`inet_synthetic`]; any other size resolves to
/// [`inet_sized`] with `links = 2 × nodes` and `dcs = 2/5 × nodes` unless
/// overridden — exactly the sizing rule Fig. 10 and Table I use.
///
/// # Errors
///
/// Everything [`validate_named`] rejects.
pub fn build_named(spec: &TopologySpec, default_seed: u64) -> Result<Topology, String> {
    validate_named(spec)?;
    let seed = spec.seed.unwrap_or(default_seed);
    Ok(match spec.name.as_str() {
        "softlayer" => softlayer(),
        "cogent" => cogent(),
        "testbed" => testbed(),
        _ => {
            let nodes = spec.nodes.unwrap_or(5000);
            if nodes == 5000 && spec.links.is_none() && spec.dcs.is_none() {
                inet_synthetic(seed)
            } else {
                let links = spec.links.unwrap_or(nodes * 2);
                let dcs = spec.dcs.unwrap_or((nodes * 2) / 5);
                inet_sized(nodes, links, dcs, seed)
            }
        }
    })
}

/// Parameters of one evaluation scenario (Figs. 8–11 defaults: §VIII-A).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioParams {
    /// Total VMs attached to data centers.
    pub vm_count: usize,
    /// Candidate sources |S|.
    pub sources: usize,
    /// Destinations |D|.
    pub destinations: usize,
    /// Chain length |C|.
    pub chain_len: usize,
    /// Multiplier on VM setup costs (Fig. 11's 1x…9x sweep).
    pub setup_scale: f64,
    /// RNG seed (controls placement, costs, endpoints).
    pub seed: u64,
}

impl ScenarioParams {
    /// The paper's defaults: 14 sources, 6 destinations, 25 VMs, |C| = 3.
    pub fn paper_defaults() -> ScenarioParams {
        ScenarioParams {
            vm_count: 25,
            sources: 14,
            destinations: 6,
            chain_len: 3,
            setup_scale: 1.0,
            seed: 0x50F,
        }
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> ScenarioParams {
        self.seed = seed;
        self
    }
}

/// Builds a full SOF instance on a topology per the paper's setup:
///
/// * every access link gets cost `fortz_thorup(u, 1)` for utilization
///   `u ~ U(0,1)` (the "link usage randomly chosen in (0,1)" rule),
/// * `vm_count` VMs are attached to uniformly chosen DCs by zero-cost stub
///   links, with setup cost `fortz_thorup(h, 1) · setup_scale` for host
///   utilization `h ~ U(0,1)` (the [48]-based VM cost),
/// * sources and destinations are distinct uniform access nodes.
///
/// # Panics
///
/// Panics if the topology has fewer access nodes than
/// `sources + destinations`.
pub fn build_instance(topo: &Topology, p: &ScenarioParams) -> SofInstance {
    let mut rng = Rng64::seed_from(p.seed);
    let base_n = topo.graph.node_count();
    let mut graph = topo.graph.clone();
    // Link costs from utilization.
    let edge_ids: Vec<_> = graph.edges().map(|(e, _)| e).collect();
    for e in edge_ids {
        let u = rng.next_f64().max(1e-6);
        graph.set_edge_cost(e, fortz_thorup(u, 1.0));
    }
    let mut net = Network::all_switches(graph);
    // Attach VMs to DCs.
    for _ in 0..p.vm_count {
        let dc = *rng.pick(&topo.dc_nodes);
        let h = rng.next_f64().max(1e-6);
        let vm = net.add_node(NodeKind::Vm, fortz_thorup(h, 1.0) * p.setup_scale);
        net.graph_mut().add_edge(vm, dc, Cost::ZERO);
    }
    // Endpoints: disjoint when the pool allows it (the paper's sweeps go up
    // to |S|=26 on the 27-node SoftLayer, where overlap with D is
    // unavoidable — sources and destinations are then drawn independently).
    let (sources, destinations): (Vec<NodeId>, Vec<NodeId>) =
        if base_n >= p.sources + p.destinations {
            let picks = rng.sample_indices(base_n, p.sources + p.destinations);
            (
                picks[..p.sources].iter().map(|&i| NodeId::new(i)).collect(),
                picks[p.sources..].iter().map(|&i| NodeId::new(i)).collect(),
            )
        } else {
            let d = rng.sample_indices(base_n, p.destinations.min(base_n));
            let s = rng.sample_indices(base_n, p.sources.min(base_n));
            (
                s.into_iter().map(NodeId::new).collect(),
                d.into_iter().map(NodeId::new).collect(),
            )
        };
    SofInstance::new(
        net,
        Request::new(sources, destinations, ServiceChain::with_len(p.chain_len)),
    )
    .expect("constructed instance is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_paper() {
        let s = softlayer();
        assert_eq!(
            (s.graph.node_count(), s.graph.edge_count(), s.dc_nodes.len()),
            (27, 49, 17)
        );
        assert!(s.graph.is_connected());
        let c = cogent();
        assert_eq!(
            (c.graph.node_count(), c.graph.edge_count(), c.dc_nodes.len()),
            (190, 260, 40)
        );
        assert!(c.graph.is_connected());
        let t = testbed();
        assert_eq!((t.graph.node_count(), t.graph.edge_count()), (14, 20));
        assert!(t.graph.is_connected());
    }

    #[test]
    #[ignore = "builds the full 5000-node topology; run with --ignored"]
    fn inet_counts() {
        let i = inet_synthetic(1);
        assert_eq!(i.graph.node_count(), 5000);
        assert_eq!(i.graph.edge_count(), 10000);
        assert_eq!(i.dc_nodes.len(), 2000);
        assert!(i.graph.is_connected());
    }

    #[test]
    fn registry_resolves_every_name() {
        for name in TOPOLOGY_NAMES {
            if name == "inet" {
                continue; // full-size build is expensive; covered below
            }
            let t = build_named(&TopologySpec::named(name), 1).unwrap();
            assert_eq!(t.name, name);
        }
        let spec = TopologySpec {
            nodes: Some(300),
            ..TopologySpec::named("inet")
        };
        let t = build_named(&spec, 9).unwrap();
        assert_eq!(t.graph.node_count(), 300);
        assert_eq!(t.graph.edge_count(), 600);
        assert_eq!(t.dc_nodes.len(), 120);
        // Sizing matches inet_sized's rule, so Table I's networks are reachable.
        let direct = inet_sized(300, 600, 120, 9);
        assert_eq!(t.graph.total_edge_cost(), direct.graph.total_edge_cost());
    }

    #[test]
    fn registry_rejects_bad_specs_with_actionable_errors() {
        let err = build_named(&TopologySpec::named("softlayeer"), 1).unwrap_err();
        assert!(err.contains("unknown topology 'softlayeer'") && err.contains("softlayer"));
        let mut spec = TopologySpec::named("cogent");
        spec.nodes = Some(50);
        let err = build_named(&spec, 1).unwrap_err();
        assert!(err.contains("does not accept 'nodes'"), "{err}");
        let mut spec = TopologySpec::named("inet");
        spec.nodes = Some(100);
        spec.dcs = Some(0);
        let err = build_named(&spec, 1).unwrap_err();
        assert!(err.contains("dcs"), "{err}");
        spec.dcs = None;
        spec.links = Some(5);
        let err = build_named(&spec, 1).unwrap_err();
        assert!(err.contains("links"), "{err}");
    }

    #[test]
    fn display_labels_match_figures() {
        assert_eq!(display_label("softlayer"), "SoftLayer");
        assert_eq!(display_label("cogent"), "Cogent");
        assert_eq!(display_label("inet"), "Inet");
        assert_eq!(display_label("custom"), "custom");
    }

    #[test]
    fn instances_are_deterministic_per_seed() {
        let topo = softlayer();
        let p = ScenarioParams::paper_defaults().with_seed(7);
        let a = build_instance(&topo, &p);
        let b = build_instance(&topo, &p);
        assert_eq!(a.request.sources, b.request.sources);
        assert_eq!(a.network.vms(), b.network.vms());
        assert_eq!(
            a.network.graph().total_edge_cost(),
            b.network.graph().total_edge_cost()
        );
    }

    #[test]
    fn instance_solvable_end_to_end() {
        let topo = softlayer();
        let mut p = ScenarioParams::paper_defaults().with_seed(3);
        p.destinations = 4;
        p.sources = 5;
        let inst = build_instance(&topo, &p);
        let out = sof_core::solve_sofda(&inst, &sof_core::SofdaConfig::default()).unwrap();
        out.forest.validate(&inst).unwrap();
    }

    #[test]
    fn setup_scale_raises_vm_costs() {
        let topo = softlayer();
        let p1 = ScenarioParams::paper_defaults().with_seed(9);
        let mut p9 = p1;
        p9.setup_scale = 9.0;
        let a = build_instance(&topo, &p1);
        let b = build_instance(&topo, &p9);
        let sum = |inst: &SofInstance| -> f64 {
            inst.network
                .vms()
                .iter()
                .map(|&v| inst.network.node_cost(v).value())
                .sum()
        };
        assert!((sum(&b) / sum(&a) - 9.0).abs() < 1e-6);
    }
}

//! Service overlay forest representation, cost accounting and validation.

use crate::{Network, SofInstance};
use serde::{Deserialize, Serialize};
use sof_graph::{Cost, NodeId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One destination's full service walk: source → (f1 VM) → … → (f|C| VM) → destination.
///
/// `vnf_positions[i]` is the index into `nodes` of the VM running the
/// `i`-th VNF (0-based). A walk may revisit nodes — the paper's node-cloning
/// semantics — but each VNF position is distinct.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DestWalk {
    /// The destination served by this walk.
    pub destination: NodeId,
    /// The source chosen for this destination.
    pub source: NodeId,
    /// The node sequence of the walk (source first, destination last).
    pub nodes: Vec<NodeId>,
    /// Positions in `nodes` of the VMs running `f1 … f|C|` in order.
    pub vnf_positions: Vec<usize>,
}

impl DestWalk {
    /// The VM node assigned to VNF `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ |C|`.
    pub fn vnf_node(&self, i: usize) -> NodeId {
        self.nodes[self.vnf_positions[i]]
    }

    /// Segment boundaries: position 0, each VNF position, then the last
    /// position. Segment `i` spans `bounds[i]..=bounds[i+1]`.
    fn bounds(&self) -> Vec<usize> {
        let mut b = Vec::with_capacity(self.vnf_positions.len() + 2);
        b.push(0);
        b.extend_from_slice(&self.vnf_positions);
        b.push(self.nodes.len() - 1);
        b
    }
}

/// Why a forest failed validation.
#[derive(Clone, Debug, PartialEq)]
pub enum ForestError {
    /// A destination of the request is not served.
    MissingDestination(NodeId),
    /// A destination is served by more than one walk.
    DuplicateDestination(NodeId),
    /// A walk does not start at a requested source.
    BadSource(NodeId),
    /// A walk does not end at its destination.
    BadEndpoint(NodeId),
    /// Two consecutive walk nodes are not adjacent in the network.
    NotAdjacent(NodeId, NodeId),
    /// Wrong number of VNF placements on a walk.
    WrongPlacementCount {
        /// The walk's destination.
        destination: NodeId,
        /// Placements found.
        found: usize,
        /// Placements expected (`|C|`).
        expected: usize,
    },
    /// VNF positions are not strictly increasing / in range.
    BadPlacementOrder(NodeId),
    /// A VNF is placed on a non-VM node.
    PlacementOnSwitch(NodeId),
    /// One VM is asked to run two different VNFs (constraint (6) of the IP).
    VnfConflict {
        /// The overloaded VM.
        vm: NodeId,
        /// First VNF index.
        a: usize,
        /// Second VNF index.
        b: usize,
    },
    /// Stored cost does not match the recomputed cost.
    CostMismatch {
        /// Stored value.
        stored: Cost,
        /// Recomputed value.
        recomputed: Cost,
    },
}

impl fmt::Display for ForestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForestError::MissingDestination(d) => write!(f, "destination {d} not served"),
            ForestError::DuplicateDestination(d) => write!(f, "destination {d} served twice"),
            ForestError::BadSource(s) => write!(f, "walk starts at non-source {s}"),
            ForestError::BadEndpoint(d) => write!(f, "walk does not end at destination {d}"),
            ForestError::NotAdjacent(a, b) => write!(f, "walk hop {a}→{b} is not a network link"),
            ForestError::WrongPlacementCount {
                destination,
                found,
                expected,
            } => write!(
                f,
                "walk to {destination} places {found} VNFs, expected {expected}"
            ),
            ForestError::BadPlacementOrder(d) => {
                write!(f, "walk to {d} has out-of-order VNF positions")
            }
            ForestError::PlacementOnSwitch(v) => write!(f, "VNF placed on switch {v}"),
            ForestError::VnfConflict { vm, a, b } => {
                write!(f, "VM {vm} asked to run both f{} and f{}", a + 1, b + 1)
            }
            ForestError::CostMismatch { stored, recomputed } => {
                write!(f, "cost mismatch: stored {stored}, recomputed {recomputed}")
            }
        }
    }
}

impl std::error::Error for ForestError {}

/// Setup + connection cost of a forest (the paper's objective).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForestCost {
    /// Total setup cost of enabled VMs.
    pub setup: Cost,
    /// Total connection cost over all chain segments.
    pub connection: Cost,
}

impl ForestCost {
    /// The objective value `setup + connection`.
    pub fn total(&self) -> Cost {
        self.setup + self.connection
    }
}

impl fmt::Display for ForestCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (setup {} + connection {})",
            self.total(),
            self.setup,
            self.connection
        )
    }
}

/// Aggregate statistics of a forest.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForestStats {
    /// Number of distinct sources used (= number of service trees).
    pub trees: usize,
    /// Number of enabled VMs.
    pub used_vms: usize,
    /// Number of destinations served.
    pub destinations: usize,
    /// Total node visits across walks (walk length proxy).
    pub walk_nodes: usize,
}

/// A service overlay forest: one walk per destination plus the chain length.
///
/// Cost accounting follows the paper's IP exactly: for each chain *segment*
/// `i ∈ 0..=|C|` (segment 0 runs source→f1, segment `|C|` runs
/// f|C|→destinations) the **union** of directed links used by any walk in
/// that segment is charged once (`τ_{f,u,v}`); enabled VMs are charged their
/// setup cost once (`σ_{f,u}`). Revisiting a link in another segment pays
/// again — the "cloned node" semantics of §III.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ServiceForest {
    /// Chain length `|C|`.
    pub chain_len: usize,
    /// One walk per destination.
    pub walks: Vec<DestWalk>,
}

impl ServiceForest {
    /// Creates a forest from per-destination walks.
    pub fn new(chain_len: usize, walks: Vec<DestWalk>) -> ServiceForest {
        ServiceForest { chain_len, walks }
    }

    /// The global VM → VNF-index assignment (union over walks).
    ///
    /// # Errors
    ///
    /// Returns [`ForestError::VnfConflict`] if two walks disagree.
    pub fn enabled_vms(&self) -> Result<BTreeMap<NodeId, usize>, ForestError> {
        let mut enabled = BTreeMap::new();
        for w in &self.walks {
            for (i, &pos) in w.vnf_positions.iter().enumerate() {
                let vm = w.nodes[pos];
                match enabled.get(&vm) {
                    None => {
                        enabled.insert(vm, i);
                    }
                    Some(&j) if j == i => {}
                    Some(&j) => {
                        return Err(ForestError::VnfConflict { vm, a: j, b: i });
                    }
                }
            }
        }
        Ok(enabled)
    }

    /// Directed link set per segment (`τ` in the IP).
    pub fn segment_edges(&self) -> Vec<BTreeSet<(NodeId, NodeId)>> {
        let mut segs = vec![BTreeSet::new(); self.chain_len + 1];
        for w in &self.walks {
            let bounds = w.bounds();
            for s in 0..=self.chain_len {
                let (lo, hi) = (bounds[s], bounds[s + 1]);
                for t in lo..hi {
                    segs[s].insert((w.nodes[t], w.nodes[t + 1]));
                }
            }
        }
        segs
    }

    /// Computes the forest cost on `network`.
    pub fn cost(&self, network: &Network) -> ForestCost {
        let enabled = self
            .enabled_vms()
            .expect("cost() requires a conflict-free forest");
        let setup: Cost = enabled.keys().map(|&v| network.node_cost(v)).sum();
        let mut connection = Cost::ZERO;
        for seg in self.segment_edges() {
            for (a, b) in seg {
                let e = network
                    .graph()
                    .edge_between(a, b)
                    .expect("forest uses only network links");
                connection += network.graph().edge_cost(e);
            }
        }
        ForestCost { setup, connection }
    }

    /// Destinations whose walks traverse the undirected link `u`–`v`
    /// (either direction), in walk order. The survivability layer's
    /// disruption test for a link failure.
    pub fn destinations_via_edge(&self, u: NodeId, v: NodeId) -> Vec<NodeId> {
        let key = (u.min(v), u.max(v));
        self.walks
            .iter()
            .filter(|w| {
                w.nodes
                    .windows(2)
                    .any(|p| (p[0].min(p[1]), p[0].max(p[1])) == key)
            })
            .map(|w| w.destination)
            .collect()
    }

    /// Destinations whose walks visit `n` anywhere (endpoint, transit hop,
    /// or VNF placement), in walk order. The disruption test for a node or
    /// domain failure.
    pub fn destinations_via_node(&self, n: NodeId) -> Vec<NodeId> {
        self.walks
            .iter()
            .filter(|w| w.nodes.contains(&n))
            .map(|w| w.destination)
            .collect()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> ForestStats {
        let sources: BTreeSet<NodeId> = self.walks.iter().map(|w| w.source).collect();
        let used_vms = self.enabled_vms().map(|m| m.len()).unwrap_or(0);
        ForestStats {
            trees: sources.len(),
            used_vms,
            destinations: self.walks.len(),
            walk_nodes: self.walks.iter().map(|w| w.nodes.len()).sum(),
        }
    }

    /// Full feasibility check against an instance (§III's definition):
    /// every destination served once by a walk that starts at a candidate
    /// source, traverses network links, visits `|C|` VMs in chain order, and
    /// no VM runs two VNFs.
    ///
    /// # Errors
    ///
    /// The first violated invariant, as a [`ForestError`].
    pub fn validate(&self, instance: &SofInstance) -> Result<(), ForestError> {
        let net = &instance.network;
        let req = &instance.request;
        if self.chain_len != req.chain.len() {
            return Err(ForestError::WrongPlacementCount {
                destination: NodeId::new(0),
                found: self.chain_len,
                expected: req.chain.len(),
            });
        }
        // Destination coverage.
        let mut served = BTreeSet::new();
        for w in &self.walks {
            if !served.insert(w.destination) {
                return Err(ForestError::DuplicateDestination(w.destination));
            }
        }
        for &d in &req.destinations {
            if !served.contains(&d) {
                return Err(ForestError::MissingDestination(d));
            }
        }
        let sources: BTreeSet<NodeId> = req.sources.iter().copied().collect();
        for w in &self.walks {
            if w.nodes.is_empty() || w.nodes[0] != w.source || !sources.contains(&w.source) {
                return Err(ForestError::BadSource(w.source));
            }
            if *w.nodes.last().expect("non-empty") != w.destination {
                return Err(ForestError::BadEndpoint(w.destination));
            }
            for hop in w.nodes.windows(2) {
                if net.graph().edge_between(hop[0], hop[1]).is_none() {
                    return Err(ForestError::NotAdjacent(hop[0], hop[1]));
                }
            }
            if w.vnf_positions.len() != self.chain_len {
                return Err(ForestError::WrongPlacementCount {
                    destination: w.destination,
                    found: w.vnf_positions.len(),
                    expected: self.chain_len,
                });
            }
            let mut prev: Option<usize> = None;
            for &pos in &w.vnf_positions {
                // Position 0 is legal when the source node itself is a VM
                // (the IP permits processing right at the source).
                if pos >= w.nodes.len() || prev.is_some_and(|p| pos <= p) {
                    return Err(ForestError::BadPlacementOrder(w.destination));
                }
                if !net.is_vm(w.nodes[pos]) {
                    return Err(ForestError::PlacementOnSwitch(w.nodes[pos]));
                }
                prev = Some(pos);
            }
        }
        // Global single-VNF-per-VM (also errors on conflicts).
        self.enabled_vms()?;
        Ok(())
    }

    /// Attempts to shorten every walk by replacing each segment between
    /// consecutive anchors (source, VNF VMs, destination) with the current
    /// shortest path. Keeps the change only if the total forest cost does
    /// not increase (per-walk shortening can break cross-walk sharing).
    ///
    /// Returns `true` if the forest was changed.
    pub fn shorten(&mut self, network: &Network) -> bool {
        let before = self.cost(network).total();
        let mut candidate = self.clone();
        for w in &mut candidate.walks {
            let bounds = w.bounds();
            let mut new_nodes: Vec<NodeId> = vec![w.nodes[0]];
            let mut new_positions = Vec::with_capacity(w.vnf_positions.len());
            for s in 0..bounds.len() - 1 {
                let (lo, hi) = (bounds[s], bounds[s + 1]);
                let (a, b) = (w.nodes[lo], w.nodes[hi]);
                let sp = network.paths().from_source(network.graph(), a);
                let path = sp.path_to(b).expect("forest nodes are connected");
                new_nodes.extend_from_slice(&path[1..]);
                if s < w.vnf_positions.len() {
                    new_positions.push(new_nodes.len() - 1);
                }
            }
            // Degenerate: chain may end at the destination itself.
            w.nodes = new_nodes;
            w.vnf_positions = new_positions;
        }
        let after = candidate.cost(network).total();
        if after < before {
            *self = candidate;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Request, ServiceChain};
    use sof_graph::Graph;

    /// Path 0-1-2-3-4 with VMs at 1 (cost 2) and 2 (cost 3), unit links.
    fn fixture() -> SofInstance {
        let mut g = Graph::with_nodes(5);
        for i in 0..4 {
            g.add_edge(NodeId::new(i), NodeId::new(i + 1), Cost::new(1.0));
        }
        let mut net = Network::all_switches(g);
        net.make_vm(NodeId::new(1), Cost::new(2.0));
        net.make_vm(NodeId::new(2), Cost::new(3.0));
        SofInstance::new(
            net,
            Request::new(
                vec![NodeId::new(0)],
                vec![NodeId::new(4)],
                ServiceChain::with_len(2),
            ),
        )
        .unwrap()
    }

    fn walk(nodes: &[usize], pos: &[usize]) -> DestWalk {
        DestWalk {
            destination: NodeId::new(*nodes.last().unwrap()),
            source: NodeId::new(nodes[0]),
            nodes: nodes.iter().map(|&i| NodeId::new(i)).collect(),
            vnf_positions: pos.to_vec(),
        }
    }

    #[test]
    fn valid_forest_costs_add_up() {
        let inst = fixture();
        let f = ServiceForest::new(2, vec![walk(&[0, 1, 2, 3, 4], &[1, 2])]);
        f.validate(&inst).unwrap();
        let c = f.cost(&inst.network);
        assert_eq!(c.setup, Cost::new(5.0));
        assert_eq!(c.connection, Cost::new(4.0));
        assert_eq!(c.total(), Cost::new(9.0));
        let stats = f.stats();
        assert_eq!(stats.trees, 1);
        assert_eq!(stats.used_vms, 2);
    }

    #[test]
    fn revisited_link_across_segments_paid_twice() {
        // Walk 0,1,2,1,2,3,4 — f1 at first 2 (pos 2), f2 at second 2? Not
        // allowed (same node); instead place f1 at 1 (pos 1) and f2 at 2
        // after a detour: 0,1,2,1,2,3,4 with f1@1(pos 1), f2@2(pos 4).
        let inst = fixture();
        let f = ServiceForest::new(2, vec![walk(&[0, 1, 2, 1, 2, 3, 4], &[1, 4])]);
        f.validate(&inst).unwrap();
        let c = f.cost(&inst.network);
        // Segment 1 (f1→f2) = 1→2→1→2 uses (1,2),(2,1),(1,2)-dedup = 2 links;
        // segment 0 = (0,1); segment 2 = (2,3),(3,4). Total 5 link-uses.
        assert_eq!(c.connection, Cost::new(5.0));
    }

    #[test]
    fn shared_segment_links_paid_once() {
        let mut g = Graph::with_nodes(6);
        for i in 0..4 {
            g.add_edge(NodeId::new(i), NodeId::new(i + 1), Cost::new(1.0));
        }
        g.add_edge(NodeId::new(3), NodeId::new(5), Cost::new(1.0)); // second leaf
        let mut net = Network::all_switches(g);
        net.make_vm(NodeId::new(1), Cost::new(2.0));
        net.make_vm(NodeId::new(2), Cost::new(3.0));
        let inst = SofInstance::new(
            net,
            Request::new(
                vec![NodeId::new(0)],
                vec![NodeId::new(4), NodeId::new(5)],
                ServiceChain::with_len(2),
            ),
        )
        .unwrap();
        let f = ServiceForest::new(
            2,
            vec![
                walk(&[0, 1, 2, 3, 4], &[1, 2]),
                walk(&[0, 1, 2, 3, 5], &[1, 2]),
            ],
        );
        f.validate(&inst).unwrap();
        let c = f.cost(&inst.network);
        // Shared: (0,1),(1,2),(2,3); leaves (3,4),(3,5). VMs 2+3.
        assert_eq!(c.connection, Cost::new(5.0));
        assert_eq!(c.total(), Cost::new(10.0));
    }

    #[test]
    fn conflict_detected() {
        let inst = fixture();
        let f = ServiceForest::new(
            2,
            vec![
                walk(&[0, 1, 2, 3, 4], &[1, 2]),
                // Second walk swaps the VNF roles of VMs 1 and 2 — conflict.
                walk(&[0, 1, 2, 3, 4], &[2, 1]),
            ],
        );
        assert!(matches!(
            f.enabled_vms(),
            Err(ForestError::VnfConflict { .. })
        ));
        // (validate also trips on placement order for the second walk).
        assert!(f.validate(&inst).is_err());
    }

    #[test]
    fn validation_failures() {
        let inst = fixture();
        // Missing destination.
        let empty = ServiceForest::new(2, vec![]);
        assert!(matches!(
            empty.validate(&inst),
            Err(ForestError::MissingDestination(_))
        ));
        // Non-adjacent hop.
        let broken = ServiceForest::new(2, vec![walk(&[0, 2, 3, 4], &[1, 2])]);
        assert!(matches!(
            broken.validate(&inst),
            Err(ForestError::NotAdjacent(..))
        ));
        // VNF on a switch.
        let on_switch = ServiceForest::new(2, vec![walk(&[0, 1, 2, 3, 4], &[1, 3])]);
        assert!(matches!(
            on_switch.validate(&inst),
            Err(ForestError::PlacementOnSwitch(_))
        ));
        // Wrong placement count.
        let short = ServiceForest::new(2, vec![walk(&[0, 1, 2, 3, 4], &[1])]);
        assert!(matches!(
            short.validate(&inst),
            Err(ForestError::WrongPlacementCount { .. })
        ));
    }

    #[test]
    fn shorten_removes_detours() {
        let inst = fixture();
        let mut f = ServiceForest::new(2, vec![walk(&[0, 1, 2, 3, 2, 3, 4], &[1, 2])]);
        f.validate(&inst).unwrap();
        let before = f.cost(&inst.network).total();
        assert!(f.shorten(&inst.network));
        f.validate(&inst).unwrap();
        let after = f.cost(&inst.network).total();
        assert!(after < before);
        assert_eq!(f.walks[0].nodes.len(), 5);
    }
}

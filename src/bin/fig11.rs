//! Legacy shim: `fig11` now delegates to the bundled `fig11` preset spec
//! (see `crates/spec/specs/fig11.toml`); same flags, same output.
fn main() {
    sof_spec::shim::legacy_main("fig11");
}

//! Online-deployment workload generation (Fig. 12's request streams).

use sof_core::{Request, ServiceChain};
use sof_graph::{NodeId, Rng64};

/// Generator parameters for one network (§VIII-A online setup).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadParams {
    /// Inclusive range of candidate-source counts per request.
    pub sources: (usize, usize),
    /// Inclusive range of destination counts per request.
    pub destinations: (usize, usize),
    /// Demanded chain length (paper: 3).
    pub chain_len: usize,
    /// Per-request demand (Mbps; paper: 5).
    pub demand_mbps: f64,
}

impl WorkloadParams {
    /// The paper's SoftLayer online setup: |D| ∈ [13,17], |S| ∈ [8,12].
    pub fn softlayer() -> WorkloadParams {
        WorkloadParams {
            sources: (8, 12),
            destinations: (13, 17),
            chain_len: 3,
            demand_mbps: 5.0,
        }
    }

    /// The paper's Cogent online setup: |D| ∈ [20,60], |S| ∈ [10,30].
    pub fn cogent() -> WorkloadParams {
        WorkloadParams {
            sources: (10, 30),
            destinations: (20, 60),
            chain_len: 3,
            demand_mbps: 5.0,
        }
    }
}

/// Streams random multicast requests over the access nodes `0..n`.
#[derive(Clone, Debug)]
pub struct RequestStream {
    params: WorkloadParams,
    access_nodes: usize,
    rng: Rng64,
}

impl RequestStream {
    /// Creates a stream over `access_nodes` access nodes.
    pub fn new(params: WorkloadParams, access_nodes: usize, seed: u64) -> RequestStream {
        RequestStream {
            params,
            access_nodes,
            rng: Rng64::seed_from(seed),
        }
    }

    /// Draws the next request. Destinations are drawn first; the source
    /// count is capped by the remaining pool (on SoftLayer the paper's
    /// ranges |S| ≤ 12, |D| ≤ 17 can exceed the 27 access nodes, so the
    /// sets would otherwise overlap).
    pub fn next_request(&mut self) -> Request {
        let d = self
            .rng
            .range(self.params.destinations.0, self.params.destinations.1 + 1)
            .min(self.access_nodes.saturating_sub(1));
        let s = self
            .rng
            .range(self.params.sources.0, self.params.sources.1 + 1)
            .min(self.access_nodes - d);
        assert!(s >= 1, "no room left for sources");
        let picks = self.rng.sample_indices(self.access_nodes, s + d);
        Request::new(
            picks[..s].iter().map(|&i| NodeId::new(i)).collect(),
            picks[s..].iter().map(|&i| NodeId::new(i)).collect(),
            ServiceChain::with_len(self.params.chain_len),
        )
    }

    /// The configured per-request demand.
    pub fn demand(&self) -> f64 {
        self.params.demand_mbps
    }
}

impl Iterator for RequestStream {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        Some(self.next_request())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_within_ranges() {
        let mut stream = RequestStream::new(WorkloadParams::softlayer(), 27, 1);
        for _ in 0..50 {
            let r = stream.next_request();
            assert!(r.sources.len() <= 12 && r.sources.len() >= 8.min(27 - r.destinations.len()));
            assert!((13..=17).contains(&r.destinations.len()));
            assert_eq!(r.chain.len(), 3);
            // Sources and destinations must be disjoint.
            for s in &r.sources {
                assert!(!r.destinations.contains(s));
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<Request> = RequestStream::new(WorkloadParams::softlayer(), 27, 9)
            .take(5)
            .collect();
        let b: Vec<Request> = RequestStream::new(WorkloadParams::softlayer(), 27, 9)
            .take(5)
            .collect();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.sources, y.sources);
            assert_eq!(x.destinations, y.destinations);
        }
    }
}

//! Failure-injection tests: every solver must degrade with a clean error —
//! never a panic, never an invalid forest — under hostile inputs.

use sof::core::{
    solve_sofda, solve_sofda_ss, Network, Request, ServiceChain, SofInstance, SofdaConfig,
    SolveError,
};
use sof::graph::{Cost, Graph, NodeId};

fn line(n: usize) -> Graph {
    let mut g = Graph::with_nodes(n);
    for i in 0..n - 1 {
        g.add_edge(NodeId::new(i), NodeId::new(i + 1), Cost::new(1.0));
    }
    g
}

#[test]
fn vm_shortage_is_infeasible_not_a_panic() {
    let mut net = Network::all_switches(line(5));
    net.make_vm(NodeId::new(2), Cost::new(1.0));
    let inst = SofInstance::new(
        net,
        Request::new(
            vec![NodeId::new(0)],
            vec![NodeId::new(4)],
            ServiceChain::with_len(3), // needs 3 VMs, has 1
        ),
    )
    .unwrap();
    for err in [
        solve_sofda(&inst, &SofdaConfig::default()).unwrap_err(),
        solve_sofda_ss(&inst, &SofdaConfig::default()).unwrap_err(),
        sof::baselines::solve_st(&inst, &SofdaConfig::default()).unwrap_err(),
        sof::baselines::solve_est(&inst, &SofdaConfig::default()).unwrap_err(),
        sof::baselines::solve_enemp(&inst, &SofdaConfig::default()).unwrap_err(),
    ] {
        assert!(matches!(err, SolveError::Infeasible(_)), "{err}");
    }
    assert_eq!(
        sof::exact::solve_exact(&inst, 50).unwrap_err(),
        sof::exact::ExactError::Infeasible
    );
}

#[test]
fn disconnected_network_rejected_at_instance_construction() {
    let mut g = line(3);
    g.add_node(); // isolated
    let err = SofInstance::new(
        Network::all_switches(g),
        Request::new(
            vec![NodeId::new(0)],
            vec![NodeId::new(2)],
            ServiceChain::default(),
        ),
    )
    .unwrap_err();
    assert_eq!(err, sof::core::InstanceError::Disconnected);
}

#[test]
fn out_of_range_endpoints_rejected() {
    let err = SofInstance::new(
        Network::all_switches(line(3)),
        Request::new(
            vec![NodeId::new(7)],
            vec![NodeId::new(2)],
            ServiceChain::default(),
        ),
    )
    .unwrap_err();
    assert_eq!(
        err,
        sof::core::InstanceError::NodeOutOfRange(NodeId::new(7))
    );
}

#[test]
fn destination_equals_source_is_served() {
    // Degenerate but legal: a destination that is also a candidate source.
    let mut net = Network::all_switches(line(4));
    net.make_vm(NodeId::new(1), Cost::new(1.0));
    net.make_vm(NodeId::new(2), Cost::new(1.0));
    let inst = SofInstance::new(
        net,
        Request::new(
            vec![NodeId::new(0), NodeId::new(3)],
            vec![NodeId::new(3)],
            ServiceChain::with_len(1),
        ),
    )
    .unwrap();
    let out = solve_sofda(&inst, &SofdaConfig::default()).unwrap();
    out.forest.validate(&inst).unwrap();
}

#[test]
fn single_node_chain_on_two_node_network() {
    let mut g = Graph::with_nodes(2);
    g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(2.0));
    let mut net = Network::all_switches(g);
    net.make_vm(NodeId::new(1), Cost::new(3.0));
    let inst = SofInstance::new(
        net,
        Request::new(
            vec![NodeId::new(0)],
            vec![NodeId::new(1)],
            ServiceChain::with_len(1),
        ),
    )
    .unwrap();
    let out = solve_sofda(&inst, &SofdaConfig::default()).unwrap();
    out.forest.validate(&inst).unwrap();
    // Walk 0→1 with f1 at the destination itself: cost 2 + 3.
    assert_eq!(out.cost.total(), Cost::new(5.0));
}

#[test]
fn dynamics_reject_double_leave_and_foreign_nodes() {
    let mut net = Network::all_switches(line(6));
    net.make_vm(NodeId::new(2), Cost::new(1.0));
    let mut inst = SofInstance::new(
        net,
        Request::new(
            vec![NodeId::new(0)],
            vec![NodeId::new(5)],
            ServiceChain::with_len(1),
        ),
    )
    .unwrap();
    let out = solve_sofda(&inst, &SofdaConfig::default()).unwrap();
    let mut forest = out.forest;
    sof::core::dynamics::destination_leave(&mut inst, &mut forest, NodeId::new(5)).unwrap();
    assert!(
        sof::core::dynamics::destination_leave(&mut inst, &mut forest, NodeId::new(5)).is_err()
    );
    assert!(
        sof::core::dynamics::destination_join(&mut inst, &mut forest, NodeId::new(99)).is_err()
    );
}

#[test]
fn no_vms_at_all_is_infeasible_not_a_panic() {
    // A network of pure switches cannot host any chain of length >= 1.
    let inst = SofInstance::new(
        Network::all_switches(line(5)),
        Request::new(
            vec![NodeId::new(0)],
            vec![NodeId::new(4)],
            ServiceChain::with_len(2),
        ),
    )
    .unwrap();
    for err in [
        solve_sofda(&inst, &SofdaConfig::default()).unwrap_err(),
        solve_sofda_ss(&inst, &SofdaConfig::default()).unwrap_err(),
        sof::baselines::solve_st(&inst, &SofdaConfig::default()).unwrap_err(),
        sof::baselines::solve_est(&inst, &SofdaConfig::default()).unwrap_err(),
        sof::baselines::solve_enemp(&inst, &SofdaConfig::default()).unwrap_err(),
        sof::sdn::distributed_sofda(&inst, 2, &SofdaConfig::default()).unwrap_err(),
    ] {
        assert!(matches!(err, SolveError::Infeasible(_)), "{err}");
    }
    assert_eq!(
        sof::exact::solve_exact(&inst, 50).unwrap_err(),
        sof::exact::ExactError::Infeasible
    );
    // But with the empty chain the same network is plain multicast: fine.
    let inst = SofInstance::new(
        Network::all_switches(line(5)),
        Request::new(
            vec![NodeId::new(0)],
            vec![NodeId::new(4)],
            ServiceChain::default(),
        ),
    )
    .unwrap();
    let out = solve_sofda(&inst, &SofdaConfig::default()).unwrap();
    out.forest.validate(&inst).unwrap();
    assert_eq!(out.cost.total(), Cost::new(4.0));
}

#[test]
fn singleton_network_degenerates_gracefully() {
    // One node that is simultaneously source and destination, empty chain:
    // every solver must return the zero-cost forest, not panic.
    let inst = SofInstance::new(
        Network::all_switches(Graph::with_nodes(1)),
        Request::new(
            vec![NodeId::new(0)],
            vec![NodeId::new(0)],
            ServiceChain::default(),
        ),
    )
    .unwrap();
    for cost in [
        solve_sofda(&inst, &SofdaConfig::default()).unwrap().cost,
        solve_sofda_ss(&inst, &SofdaConfig::default()).unwrap().cost,
        sof::baselines::solve_st(&inst, &SofdaConfig::default())
            .unwrap()
            .cost,
        sof::baselines::solve_est(&inst, &SofdaConfig::default())
            .unwrap()
            .cost,
        sof::baselines::solve_enemp(&inst, &SofdaConfig::default())
            .unwrap()
            .cost,
        sof::sdn::distributed_sofda(&inst, 1, &SofdaConfig::default())
            .unwrap()
            .outcome
            .cost,
    ] {
        assert_eq!(cost.total(), Cost::ZERO);
    }
    assert_eq!(sof::exact::solve_exact(&inst, 50).unwrap().cost, Cost::ZERO);
}

#[test]
fn distributed_rejects_bad_domain_counts() {
    let mut net = Network::all_switches(line(6));
    net.make_vm(NodeId::new(2), Cost::new(1.0));
    let inst = SofInstance::new(
        net,
        Request::new(
            vec![NodeId::new(0)],
            vec![NodeId::new(5)],
            ServiceChain::with_len(1),
        ),
    )
    .unwrap();
    for bad_k in [0, 7, 99] {
        let err = sof::sdn::distributed_sofda(&inst, bad_k, &SofdaConfig::default()).unwrap_err();
        assert!(matches!(err, SolveError::Infeasible(_)), "k={bad_k}: {err}");
    }
}

#[test]
fn conflict_heavy_instance_stays_consistent() {
    // Tiny VM pool shared by many chains forces Procedure-4 resolution;
    // the result must still be conflict-free and validator-approved.
    let mut g = Graph::with_nodes(10);
    for i in 0..10 {
        g.add_edge(NodeId::new(i), NodeId::new((i + 1) % 10), Cost::new(1.0));
    }
    g.add_edge(NodeId::new(0), NodeId::new(5), Cost::new(1.0));
    let mut net = Network::all_switches(g);
    net.make_vm(NodeId::new(2), Cost::new(1.0));
    net.make_vm(NodeId::new(7), Cost::new(1.0));
    net.make_vm(NodeId::new(4), Cost::new(1.0));
    let inst = SofInstance::new(
        net,
        Request::new(
            vec![NodeId::new(0), NodeId::new(5), NodeId::new(8)],
            vec![
                NodeId::new(1),
                NodeId::new(3),
                NodeId::new(6),
                NodeId::new(9),
            ],
            ServiceChain::with_len(2),
        ),
    )
    .unwrap();
    for seed in 0..20 {
        let out = solve_sofda(&inst, &SofdaConfig::default().with_seed(seed)).unwrap();
        out.forest.validate(&inst).unwrap();
        assert!(out.forest.enabled_vms().is_ok());
        assert_eq!(
            out.stats.conflicts.fallbacks, 0,
            "fallback fired on seed {seed}"
        );
    }
}

//! # sof-sim — flow-level network simulation for the SOF reproduction
//!
//! The paper's Table II measures video QoE (startup latency, rebuffering)
//! on an HP OpenFlow testbed and on Emulab. This crate substitutes those
//! testbeds with a deterministic simulator (DESIGN.md §5.5):
//!
//! * [`EventQueue`] — a seedable, deterministic discrete-event core,
//! * [`max_min_rates`] — progressive-filling max-min fair bandwidth sharing
//!   across flows on capacitated links,
//! * [`simulate_sessions`] — concurrent video downloads over an embedded
//!   forest's paths, replayed against a player-buffer model
//!   ([`PlayerConfig`]) to produce [`Qoe`] per viewer, with
//!   [`EnvironmentProfile`] capturing the "Ours" vs "Emulab" overhead split,
//! * [`RequestStream`] — the online-deployment workload of Fig. 12,
//! * [`ChurnStream`] — viewer-churn snapshots of one long-lived group, the
//!   workload driving the incremental `OnlineSession` engine.
//!
//! # Examples
//!
//! ```
//! use sof_sim::{simulate_sessions, Session, PlayerConfig, EnvironmentProfile};
//! use sof_graph::EdgeId;
//! use std::collections::HashMap;
//!
//! let mut caps = HashMap::new();
//! caps.insert(EdgeId::new(0), 9.0); // Mbps
//! let sessions = vec![Session { links: vec![EdgeId::new(0)] }];
//! let qoe = simulate_sessions(
//!     &sessions,
//!     &caps,
//!     &PlayerConfig::default(),
//!     &EnvironmentProfile::emulab(),
//!     1.25,
//! );
//! assert!(qoe[0].startup_latency_s > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod des;
mod flow;
mod video;
mod workload;

pub use des::{EventQueue, SimTime};
pub use flow::{max_min_rates, Flow};
pub use video::{simulate_sessions, EnvironmentProfile, PlayerConfig, Qoe, Session};
pub use workload::{ChurnParams, ChurnStream, RequestStream, WorkloadParams};

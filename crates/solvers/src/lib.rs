//! # sof-solvers — the registry of SOF embedding algorithms
//!
//! Every algorithm in the workspace implements the object-safe
//! [`Solver`] trait; this crate collects them behind one roof so harnesses,
//! binaries and examples pick solvers by name instead of hard-wiring entry
//! points:
//!
//! | name       | algorithm                                             |
//! |------------|-------------------------------------------------------|
//! | `SOFDA`    | Algorithm 2, the paper's contribution                 |
//! | `SOFDA-SS` | Algorithm 1, single-source                            |
//! | `eNEMP`    | NEMP-style baseline with multi-source extension       |
//! | `eST`      | Steiner-tree baseline with multi-source extension     |
//! | `ST`       | single Steiner tree + bolted-on chain                 |
//! | `CPLEX*`   | exact branch-and-bound (auto budget, `\|D\|` ≤ 10)    |
//! | `D-SOFDA`  | §VI multi-controller SOFDA (3 domains)                |
//!
//! # Examples
//!
//! ```
//! use sof_solvers as solvers;
//!
//! let names: Vec<&str> = solvers::all().iter().map(|s| s.name()).collect();
//! assert!(names.contains(&"SOFDA") && names.contains(&"CPLEX*"));
//! let est = solvers::by_name("est").expect("case-insensitive lookup");
//! assert_eq!(est.name(), "eST");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sof_baselines::{Enemp, Est, St};
pub use sof_core::{Sofda, SofdaSs, Solver};
pub use sof_exact::{ExactBudget, ExactSolver};
pub use sof_sdn::DistributedSofda;

/// Every registered solver, in the evaluation's canonical order.
pub fn all() -> Vec<Box<dyn Solver>> {
    vec![
        Box::new(Sofda),
        Box::new(Enemp),
        Box::new(Est),
        Box::new(St),
        Box::new(ExactSolver::default()),
        Box::new(SofdaSs),
        Box::new(DistributedSofda::default()),
    ]
}

/// Looks a solver up by display name (case-insensitive; the `*` in
/// `CPLEX*` is optional).
pub fn by_name(name: &str) -> Option<Box<dyn Solver>> {
    let wanted = name.trim_end_matches('*');
    all()
        .into_iter()
        .find(|s| s.name().trim_end_matches('*').eq_ignore_ascii_case(wanted))
}

/// The standard comparison set of Figs. 8–10 and 12: SOFDA and the three
/// baselines, plus the exact "CPLEX" column when `with_exact`.
pub fn comparison_set(with_exact: bool) -> Vec<Box<dyn Solver>> {
    let mut v: Vec<Box<dyn Solver>> = vec![
        Box::new(Sofda),
        Box::new(Enemp),
        Box::new(Est),
        Box::new(St),
    ];
    if with_exact {
        v.push(Box::new(ExactSolver::default()));
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_lookup_roundtrips() {
        let solvers = all();
        let mut names: Vec<&str> = solvers.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), solvers.len(), "duplicate solver names");
        for s in &solvers {
            assert_eq!(by_name(s.name()).unwrap().name(), s.name());
            assert_eq!(
                by_name(&s.name().to_lowercase()).unwrap().name(),
                s.name(),
                "lookup should be case-insensitive"
            );
        }
        assert!(by_name("no-such-solver").is_none());
        assert_eq!(by_name("cplex").unwrap().name(), "CPLEX*");
    }

    #[test]
    fn comparison_set_matches_the_figures() {
        let names: Vec<&str> = comparison_set(false).iter().map(|s| s.name()).collect();
        assert_eq!(names, ["SOFDA", "eNEMP", "eST", "ST"]);
        let with_exact: Vec<&str> = comparison_set(true).iter().map(|s| s.name()).collect();
        assert_eq!(with_exact, ["SOFDA", "eNEMP", "eST", "ST", "CPLEX*"]);
    }

    #[test]
    fn every_registered_solver_embeds_a_tiny_instance() {
        use sof_core::{Network, Request, ServiceChain, SofInstance, SofdaConfig};
        use sof_graph::{Cost, Graph, NodeId};
        let mut g = Graph::with_nodes(5);
        for i in 0..4 {
            g.add_edge(NodeId::new(i), NodeId::new(i + 1), Cost::new(1.0));
        }
        let mut net = Network::all_switches(g);
        net.make_vm(NodeId::new(1), Cost::new(1.0));
        net.make_vm(NodeId::new(2), Cost::new(1.0));
        let inst = SofInstance::new(
            net,
            Request::new(
                vec![NodeId::new(0)],
                vec![NodeId::new(4)],
                ServiceChain::with_len(1),
            ),
        )
        .unwrap();
        for solver in all() {
            assert!(solver.supports(&inst), "{}", solver.name());
            let out = solver
                .solve(&inst, &SofdaConfig::default())
                .unwrap_or_else(|e| panic!("{} failed: {e}", solver.name()));
            out.forest
                .validate(&inst)
                .unwrap_or_else(|e| panic!("{} invalid: {e}", solver.name()));
        }
    }
}

//! The layered expansion of a SOF instance.
//!
//! Layer `i` holds a copy of every network node meaning "the demand has been
//! processed by `f1 … fi`". Intra-layer arcs are network links (both
//! directions, link cost); the arc `(v,i) → (v,i+1)` processes `f_{i+1}` on
//! VM `v` (setup cost). A virtual root feeds every source at layer 0. A
//! minimum directed Steiner arborescence from the root to all `(d, |C|)` is
//! exactly an optimal service overlay forest *relaxed* of the one-VNF-per-VM
//! constraint — the relaxation the branch-and-bound of [`crate::solve_exact`]
//! closes.

use sof_core::SofInstance;
use sof_graph::{Cost, NodeId};

/// A directed arc in the layered graph.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Arc {
    /// Tail node (layered index).
    pub from: usize,
    /// Head node (layered index).
    pub to: usize,
    /// Arc cost.
    pub cost: Cost,
    /// `Some((vm, vnf))` for processing arcs.
    pub process: Option<(NodeId, usize)>,
}

/// The layered directed graph.
#[derive(Clone, Debug)]
pub struct LayeredGraph {
    /// Number of network nodes `n`.
    pub base_nodes: usize,
    /// Chain length `L` (layers `0..=L`).
    pub chain_len: usize,
    /// All arcs.
    pub arcs: Vec<Arc>,
    /// Outgoing arc indices per node.
    pub out: Vec<Vec<usize>>,
    /// Incoming arc indices per node.
    pub into: Vec<Vec<usize>>,
    /// The virtual root index.
    pub root: usize,
    /// Terminal indices `(d, L)` in destination order.
    pub terminals: Vec<usize>,
}

impl LayeredGraph {
    /// Layered index of network node `v` at layer `i`.
    pub fn index(&self, v: NodeId, layer: usize) -> usize {
        layer * self.base_nodes + v.index()
    }

    /// Inverse of [`Self::index`]; `None` for the root.
    pub fn decode(&self, idx: usize) -> Option<(NodeId, usize)> {
        (idx != self.root).then(|| (NodeId::new(idx % self.base_nodes), idx / self.base_nodes))
    }

    /// Total node count (including the root).
    pub fn len(&self) -> usize {
        self.base_nodes * (self.chain_len + 1) + 1
    }

    /// Returns `true` for a degenerate empty graph (never constructed).
    pub fn is_empty(&self) -> bool {
        self.base_nodes == 0
    }

    /// Builds the layered graph for an instance.
    ///
    /// `source_cost` is charged on the root arcs (Appendix D); pass
    /// [`Cost::ZERO`] for the base model.
    pub fn build(instance: &SofInstance, source_cost: Cost) -> LayeredGraph {
        let network = &instance.network;
        let n = network.node_count();
        let chain_len = instance.chain_len();
        let node_count = n * (chain_len + 1) + 1;
        let root = node_count - 1;
        let mut lg = LayeredGraph {
            base_nodes: n,
            chain_len,
            arcs: Vec::new(),
            out: vec![Vec::new(); node_count],
            into: vec![Vec::new(); node_count],
            root,
            terminals: Vec::new(),
        };
        let push = |lg: &mut LayeredGraph, from: usize, to: usize, cost: Cost, process| {
            let id = lg.arcs.len();
            lg.arcs.push(Arc {
                from,
                to,
                cost,
                process,
            });
            lg.out[from].push(id);
            lg.into[to].push(id);
        };
        // Transport arcs per layer (cheapest parallel edge wins; both dirs).
        for layer in 0..=chain_len {
            for (_, e) in network.graph().edges() {
                let (u, v) = (e.u, e.v);
                let iu = layer * n + u.index();
                let iv = layer * n + v.index();
                push(&mut lg, iu, iv, e.cost, None);
                push(&mut lg, iv, iu, e.cost, None);
            }
        }
        // Processing arcs.
        for layer in 0..chain_len {
            for v in network.vms() {
                let from = layer * n + v.index();
                let to = (layer + 1) * n + v.index();
                push(&mut lg, from, to, network.node_cost(v), Some((v, layer)));
            }
        }
        // Root arcs.
        for &s in &instance.request.sources {
            push(&mut lg, root, s.index(), source_cost, None);
        }
        lg.terminals = instance
            .request
            .destinations
            .iter()
            .map(|d| chain_len * n + d.index())
            .collect();
        lg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sof_core::{Network, Request, ServiceChain};
    use sof_graph::Graph;

    fn instance() -> SofInstance {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(1.0));
        g.add_edge(NodeId::new(1), NodeId::new(2), Cost::new(2.0));
        let mut net = Network::all_switches(g);
        net.make_vm(NodeId::new(1), Cost::new(5.0));
        SofInstance::new(
            net,
            Request::new(
                vec![NodeId::new(0)],
                vec![NodeId::new(2)],
                ServiceChain::with_len(2),
            ),
        )
        .unwrap()
    }

    #[test]
    fn arc_counts() {
        let lg = LayeredGraph::build(&instance(), Cost::ZERO);
        // 3 layers × 2 undirected links × 2 directions = 12 transport arcs,
        // 2 processing arcs (VM 1, layers 0→1, 1→2), 1 root arc.
        assert_eq!(lg.arcs.len(), 12 + 2 + 1);
        assert_eq!(lg.len(), 3 * 3 + 1);
        assert_eq!(lg.terminals, vec![2 * 3 + 2]);
    }

    #[test]
    fn index_round_trip() {
        let lg = LayeredGraph::build(&instance(), Cost::ZERO);
        let idx = lg.index(NodeId::new(2), 1);
        assert_eq!(lg.decode(idx), Some((NodeId::new(2), 1)));
        assert_eq!(lg.decode(lg.root), None);
    }

    #[test]
    fn processing_arcs_identified() {
        let lg = LayeredGraph::build(&instance(), Cost::ZERO);
        let procs: Vec<_> = lg.arcs.iter().filter_map(|a| a.process).collect();
        assert_eq!(procs, vec![(NodeId::new(1), 0), (NodeId::new(1), 1)]);
    }
}

//! Legacy shim: `fig10` now delegates to the bundled `fig10` preset spec
//! (see `crates/spec/specs/fig10.toml`); same flags, same output.
fn main() {
    sof_spec::shim::legacy_main("fig10");
}

//! Metric closure over a set of terminal nodes.

use crate::{Cost, Graph, NodeId, PathEngine, ShortestPaths};
use std::sync::Arc;

/// The metric closure of a graph restricted to a terminal set.
///
/// For `k` terminals this runs `k` Dijkstras and stores the shortest-path
/// trees, so pairwise distances *and* realizing paths are available. It backs
/// both the KMB Steiner approximation and Procedure 1's k-stroll instance
/// construction (which needs shortest paths between every pair of VMs).
///
/// # Examples
///
/// ```
/// use sof_graph::{Graph, Cost, NodeId, MetricClosure};
///
/// let mut g = Graph::with_nodes(3);
/// g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(1.0));
/// g.add_edge(NodeId::new(1), NodeId::new(2), Cost::new(2.0));
/// let mc = MetricClosure::new(&g, vec![NodeId::new(0), NodeId::new(2)]);
/// assert_eq!(mc.dist_between(NodeId::new(0), NodeId::new(2)), Cost::new(3.0));
/// let path = mc.path_between(NodeId::new(0), NodeId::new(2)).unwrap();
/// assert_eq!(path.len(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct MetricClosure {
    terminals: Vec<NodeId>,
    index_of: Vec<Option<u32>>,
    /// Shared so an engine-backed closure costs one `Arc` clone per cached
    /// terminal instead of one Dijkstra (or one deep copy) per terminal.
    trees: Vec<Arc<ShortestPaths>>,
}

impl MetricClosure {
    /// Builds the closure for `terminals` in `graph`.
    ///
    /// Duplicate terminals are collapsed.
    pub fn new(graph: &Graph, terminals: Vec<NodeId>) -> MetricClosure {
        MetricClosure::build(terminals, graph, |g, t| {
            Arc::new(ShortestPaths::from_source(g, t))
        })
    }

    /// Builds the closure through a [`PathEngine`]: terminal trees already
    /// cached for the graph's current [cost epoch](Graph::cost_epoch) are
    /// reused (an `Arc` clone), fresh ones are computed once and cached for
    /// the next caller. Results are bit-identical to [`MetricClosure::new`].
    pub fn with_engine(
        graph: &Graph,
        terminals: Vec<NodeId>,
        engine: &PathEngine,
    ) -> MetricClosure {
        MetricClosure::build(terminals, graph, |g, t| engine.from_source(g, t))
    }

    fn build(
        mut terminals: Vec<NodeId>,
        graph: &Graph,
        tree_of: impl Fn(&Graph, NodeId) -> Arc<ShortestPaths>,
    ) -> MetricClosure {
        terminals.sort();
        terminals.dedup();
        let mut index_of = vec![None; graph.node_count()];
        for (i, &t) in terminals.iter().enumerate() {
            index_of[t.index()] = Some(i as u32);
        }
        let trees = terminals.iter().map(|&t| tree_of(graph, t)).collect();
        MetricClosure {
            terminals,
            index_of,
            trees,
        }
    }

    /// The terminal set, sorted and deduplicated.
    pub fn terminals(&self) -> &[NodeId] {
        &self.terminals
    }

    /// Number of terminals.
    pub fn len(&self) -> usize {
        self.terminals.len()
    }

    /// Returns `true` when there are no terminals.
    pub fn is_empty(&self) -> bool {
        self.terminals.is_empty()
    }

    /// Index of terminal `t` in [`Self::terminals`], if `t` is a terminal.
    pub fn terminal_index(&self, t: NodeId) -> Option<usize> {
        self.index_of
            .get(t.index())
            .copied()
            .flatten()
            .map(|i| i as usize)
    }

    /// Shortest-path tree rooted at terminal `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not a terminal.
    pub fn tree(&self, t: NodeId) -> &ShortestPaths {
        let i = self
            .terminal_index(t)
            .unwrap_or_else(|| panic!("{t} is not a terminal of this closure"));
        &self.trees[i]
    }

    /// Distance from terminal `a` to arbitrary node `b`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not a terminal.
    pub fn dist_between(&self, a: NodeId, b: NodeId) -> Cost {
        self.tree(a).dist(b)
    }

    /// Shortest path from terminal `a` to arbitrary node `b`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not a terminal.
    pub fn path_between(&self, a: NodeId, b: NodeId) -> Option<Vec<NodeId>> {
        self.tree(a).path_to(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 0..n - 1 {
            g.add_edge(NodeId::new(i), NodeId::new(i + 1), Cost::new(1.0));
        }
        g
    }

    #[test]
    fn distances_match_dijkstra() {
        let g = path_graph(5);
        let mc = MetricClosure::new(&g, vec![NodeId::new(0), NodeId::new(4), NodeId::new(2)]);
        assert_eq!(mc.len(), 3);
        assert_eq!(
            mc.dist_between(NodeId::new(0), NodeId::new(4)),
            Cost::new(4.0)
        );
        assert_eq!(
            mc.dist_between(NodeId::new(2), NodeId::new(4)),
            Cost::new(2.0)
        );
    }

    #[test]
    fn duplicates_collapse() {
        let g = path_graph(3);
        let mc = MetricClosure::new(&g, vec![NodeId::new(0), NodeId::new(0), NodeId::new(2)]);
        assert_eq!(mc.len(), 2);
        assert_eq!(mc.terminal_index(NodeId::new(2)), Some(1));
        assert_eq!(mc.terminal_index(NodeId::new(1)), None);
    }

    #[test]
    fn engine_backed_closure_matches_plain() {
        let g = path_graph(6);
        let engine = PathEngine::new();
        let ts = vec![NodeId::new(0), NodeId::new(3), NodeId::new(5)];
        let plain = MetricClosure::new(&g, ts.clone());
        let cached = MetricClosure::with_engine(&g, ts.clone(), &engine);
        for &a in &ts {
            for &b in &ts {
                assert_eq!(plain.dist_between(a, b), cached.dist_between(a, b));
                assert_eq!(plain.path_between(a, b), cached.path_between(a, b));
            }
        }
        // A second engine-backed build is pure cache hits.
        let misses = engine.stats().misses;
        let _again = MetricClosure::with_engine(&g, ts, &engine);
        assert_eq!(engine.stats().misses, misses);
        assert_eq!(engine.stats().hits, 3);
    }

    #[test]
    fn closure_satisfies_triangle_inequality() {
        // Random-ish fixed graph; closure distances must be metric.
        let mut g = Graph::with_nodes(6);
        let costs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let ends = [
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 0),
            (1, 4),
            (2, 5),
        ];
        for (&(u, v), &c) in ends.iter().zip(costs.iter()) {
            g.add_edge(NodeId::new(u), NodeId::new(v), Cost::new(c));
        }
        let ts: Vec<NodeId> = (0..6).map(NodeId::new).collect();
        let mc = MetricClosure::new(&g, ts.clone());
        for &a in &ts {
            for &b in &ts {
                for &c in &ts {
                    let ab = mc.dist_between(a, b);
                    let bc = mc.dist_between(b, c);
                    let ac = mc.dist_between(a, c);
                    assert!(ac <= ab + bc + Cost::new(1e-9));
                }
            }
        }
    }
}

//! Online deployment (Fig. 12): requests arrive one by one; link and VM
//! costs follow the convex Fortz–Thorup model so congested resources get
//! expensive and SOFDA routes around them.
//!
//! Run with `cargo run --release --example online_deployment`.

use sof::core::{LoadTracker, SofdaConfig};
use sof::sim::{RequestStream, WorkloadParams};
use sof::topo::{build_instance, softlayer, ScenarioParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = softlayer();
    let mut p = ScenarioParams::paper_defaults().with_seed(7);
    p.vm_count = topo.dc_nodes.len() * 5; // 5 VMs per data center
    let mut inst = build_instance(&topo, &p);
    let mut tracker = LoadTracker::new(&inst.network, 100.0, 5.0);
    let mut stream = RequestStream::new(WorkloadParams::softlayer(), 27, 7);
    let mut accumulated = 0.0;
    println!("arrival  request(|S|,|D|)  cost      accumulated");
    for arrival in 1..=20 {
        let request = stream.next_request();
        let dims = (request.sources.len(), request.destinations.len());
        inst.request = request;
        tracker.refresh_costs(&mut inst.network);
        let out = sof::core::solve_sofda(&inst, &SofdaConfig::default())?;
        out.forest.validate(&inst)?;
        tracker.apply_forest(&inst.network, &out.forest, stream.demand());
        accumulated += out.cost.total().value();
        println!(
            "{arrival:>7}  ({:>2},{:>2})            {:>8.1}  {accumulated:>10.1}",
            dims.0,
            dims.1,
            out.cost.total().value()
        );
    }
    Ok(())
}

//! Legacy shim: `fig9` now delegates to the bundled `fig9` preset spec
//! (see `crates/spec/specs/fig9.toml`); same flags, same output.
fn main() {
    sof_spec::shim::legacy_main("fig9");
}

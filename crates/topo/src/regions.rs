//! Region-aware topology generation for churn-at-scale workloads.
//!
//! The paper's networks are flat access graphs; production overlays span
//! named geographic regions whose *pairwise* link behaviour differs — an
//! intra-region hop is cheap, a transatlantic one is not. This module
//! synthesizes such networks deterministically:
//!
//! * every [`RegionDef`] becomes a ring-plus-chords subgraph with its own
//!   data-center nodes,
//! * every region pair is joined by a configurable number of gateway
//!   links,
//! * every edge cost is scaled by the region-pair factor (see
//!   [`RegionsParams::pair_factor`]), so inter-region paths are priced by
//!   "distance" between the regions,
//! * [`build_region_instance`] places VMs per region DC and prices links
//!   from random utilization **times** the pair factor — the region-aware
//!   analogue of [`crate::build_instance`].
//!
//! # Examples
//!
//! ```
//! use sof_topo::{RegionDef, RegionsParams, build_regions};
//!
//! let params = RegionsParams::new(vec![
//!     RegionDef::new("us-east", 8, 2),
//!     RegionDef::new("eu-west", 8, 2),
//! ]);
//! let rt = build_regions(&params, 7).unwrap();
//! assert_eq!(rt.topo.graph.node_count(), 16);
//! assert_eq!(rt.region_of(sof_graph::NodeId::new(0)), 0);
//! assert_eq!(rt.region_of(sof_graph::NodeId::new(9)), 1);
//! assert!(rt.topo.graph.is_connected());
//! ```

use crate::Topology;
use serde::{Deserialize, Serialize};
use sof_core::{fortz_thorup, Network, NodeKind, Request, ServiceChain, SofInstance};
use sof_graph::{Cost, Graph, NodeId, Rng64};

/// One named region: a contiguous block of access nodes, some hosting DCs.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionDef {
    /// Human-readable region name (e.g. `"us-east"`).
    pub name: String,
    /// Access nodes in the region (≥ 3 — each region is a ring).
    pub nodes: usize,
    /// Data-center nodes among them (≤ `nodes`).
    pub dcs: usize,
}

impl RegionDef {
    /// A region definition.
    pub fn new(name: impl Into<String>, nodes: usize, dcs: usize) -> RegionDef {
        RegionDef {
            name: name.into(),
            nodes,
            dcs,
        }
    }
}

/// Parameters of a multi-region network.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RegionsParams {
    /// The regions, in id order.
    pub regions: Vec<RegionDef>,
    /// Gateway links joining every region pair (≥ 1 keeps the network
    /// connected).
    pub gateway_links: usize,
    /// Explicit symmetric cost factors per region pair
    /// (`pair_cost[i][j]`); `None` uses `1 + |i − j|`, i.e. the regions
    /// sit on a line and farther pairs are proportionally costlier.
    pub pair_cost: Option<Vec<Vec<f64>>>,
}

impl RegionsParams {
    /// Parameters with default gateway count (2) and line-distance costs.
    pub fn new(regions: Vec<RegionDef>) -> RegionsParams {
        RegionsParams {
            regions,
            gateway_links: 2,
            pair_cost: None,
        }
    }

    /// The cost factor applied to edges between regions `i` and `j`
    /// (`i == j` for intra-region edges).
    pub fn pair_factor(&self, i: usize, j: usize) -> f64 {
        match &self.pair_cost {
            Some(m) => m[i][j],
            None => 1.0 + i.abs_diff(j) as f64,
        }
    }

    /// Checks the parameters without building anything.
    ///
    /// # Errors
    ///
    /// A message naming the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.regions.is_empty() {
            return Err("regions list must not be empty".into());
        }
        for (i, r) in self.regions.iter().enumerate() {
            if r.name.is_empty() {
                return Err(format!("regions[{i}] has an empty name"));
            }
            if r.nodes < 3 {
                return Err(format!(
                    "region '{}' needs at least 3 nodes, got {}",
                    r.name, r.nodes
                ));
            }
            if r.dcs == 0 || r.dcs > r.nodes {
                return Err(format!(
                    "region '{}' needs 1 ≤ dcs ≤ nodes, got dcs = {} for {} nodes",
                    r.name, r.dcs, r.nodes
                ));
            }
        }
        if self.regions.len() > 1 && self.gateway_links == 0 {
            return Err("gateway_links must be at least 1 to connect multiple regions".into());
        }
        if let Some(m) = &self.pair_cost {
            let n = self.regions.len();
            if m.len() != n || m.iter().any(|row| row.len() != n) {
                return Err(format!("pair_cost must be a {n}×{n} matrix"));
            }
            for (i, row) in m.iter().enumerate() {
                for (j, &f) in row.iter().enumerate() {
                    if !f.is_finite() || f <= 0.0 {
                        return Err(format!("pair_cost[{i}][{j}] must be positive, got {f}"));
                    }
                    if (f - m[j][i]).abs() > 1e-12 {
                        return Err(format!(
                            "pair_cost must be symmetric (pair_cost[{i}][{j}] ≠ pair_cost[{j}][{i}])"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// A built multi-region topology: the flat [`Topology`] plus the region
/// labelling the flat graph loses.
#[derive(Clone, Debug)]
pub struct RegionTopology {
    /// The flat access topology (all regions + gateways; `dc_nodes` spans
    /// every region).
    pub topo: Topology,
    /// The generating parameters (for pair factors and names).
    pub params: RegionsParams,
    /// Access node → region index.
    region_of: Vec<usize>,
    /// Per-region access nodes, in id order.
    region_nodes: Vec<Vec<NodeId>>,
    /// Per-region DC nodes, in id order.
    region_dcs: Vec<Vec<NodeId>>,
}

impl RegionTopology {
    /// The region index of an access node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an access node of this topology.
    pub fn region_of(&self, node: NodeId) -> usize {
        self.region_of[node.index()]
    }

    /// Number of regions.
    pub fn region_count(&self) -> usize {
        self.region_nodes.len()
    }

    /// The access nodes of region `r`.
    pub fn region_nodes(&self, r: usize) -> &[NodeId] {
        &self.region_nodes[r]
    }

    /// The DC nodes of region `r`.
    pub fn region_dcs(&self, r: usize) -> &[NodeId] {
        &self.region_dcs[r]
    }

    /// The name of region `r`.
    pub fn region_name(&self, r: usize) -> &str {
        &self.params.regions[r].name
    }
}

/// Builds a multi-region topology deterministically from `seed`.
///
/// Each region is a ring over its nodes plus `nodes / 4` random chords;
/// every region pair gets [`RegionsParams::gateway_links`] gateway edges
/// between randomly chosen endpoints. Edge costs carry the pair factor
/// (intra-region edges: `pair_factor(r, r)`), so even the un-recosted
/// graph prices inter-region hops by region distance.
///
/// # Errors
///
/// Everything [`RegionsParams::validate`] rejects.
pub fn build_regions(params: &RegionsParams, seed: u64) -> Result<RegionTopology, String> {
    params.validate()?;
    let mut rng = Rng64::seed_from(seed ^ 0x5E61_0175);
    let total: usize = params.regions.iter().map(|r| r.nodes).sum();
    let mut graph = Graph::with_nodes(total);
    let mut region_of = Vec::with_capacity(total);
    let mut region_nodes = Vec::with_capacity(params.regions.len());
    let mut region_dcs = Vec::with_capacity(params.regions.len());
    let mut base = 0usize;
    for (ri, region) in params.regions.iter().enumerate() {
        let intra = Cost::new(params.pair_factor(ri, ri));
        let nodes: Vec<NodeId> = (base..base + region.nodes).map(NodeId::new).collect();
        for i in 0..region.nodes {
            graph.add_edge(nodes[i], nodes[(i + 1) % region.nodes], intra);
        }
        // Deterministic chords thicken the ring (skip duplicates).
        for _ in 0..region.nodes / 4 {
            let a = rng.below(region.nodes);
            let b = rng.below(region.nodes);
            if a != b && graph.edge_between(nodes[a], nodes[b]).is_none() {
                graph.add_edge(nodes[a], nodes[b], intra);
            }
        }
        // DCs: evenly spread over the region's nodes.
        let stride = (region.nodes / region.dcs).max(1);
        let dcs: Vec<NodeId> = (0..region.dcs)
            .map(|k| nodes[(k * stride) % region.nodes])
            .collect();
        region_of.extend(std::iter::repeat_n(ri, region.nodes));
        region_nodes.push(nodes);
        region_dcs.push(dcs);
        base += region.nodes;
    }
    // Gateways join every region pair.
    for i in 0..params.regions.len() {
        for j in i + 1..params.regions.len() {
            let cost = Cost::new(params.pair_factor(i, j));
            for _ in 0..params.gateway_links {
                let a = *rng.pick(&region_nodes[i]);
                let b = *rng.pick(&region_nodes[j]);
                if graph.edge_between(a, b).is_none() {
                    graph.add_edge(a, b, cost);
                }
            }
        }
    }
    let dc_nodes: Vec<NodeId> = region_dcs.iter().flatten().copied().collect();
    Ok(RegionTopology {
        topo: Topology {
            name: "regions",
            graph,
            dc_nodes,
        },
        params: params.clone(),
        region_of,
        region_nodes,
        region_dcs,
    })
}

/// Scenario knobs for one region-aware instance (the per-group network a
/// churn-at-scale runner builds).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RegionScenario {
    /// VMs attached to every DC node.
    pub vms_per_dc: usize,
    /// Multiplier on VM setup costs.
    pub setup_scale: f64,
    /// RNG seed (controls utilization draws and VM costs).
    pub seed: u64,
}

impl RegionScenario {
    /// Defaults: 1 VM per DC, unscaled setup costs.
    pub fn new(seed: u64) -> RegionScenario {
        RegionScenario {
            vms_per_dc: 1,
            setup_scale: 1.0,
            seed,
        }
    }
}

/// Builds a full SOF instance on a region topology:
///
/// * every access link gets cost `fortz_thorup(u, 1) × pair_factor` for
///   utilization `u ~ U(0,1)` — the paper's pricing with the region-pair
///   behaviour layered on top, so inter-region links stay systematically
///   costlier than intra-region ones no matter the utilization draw,
/// * `vms_per_dc` VMs attach to **every** DC node with setup cost
///   `fortz_thorup(h, 1) × setup_scale`,
/// * the placeholder request uses `sources`/`destinations` (callers
///   normally overwrite it with the group's first churn snapshot).
pub fn build_region_instance(
    rt: &RegionTopology,
    scenario: &RegionScenario,
    sources: Vec<NodeId>,
    destinations: Vec<NodeId>,
    chain_len: usize,
) -> SofInstance {
    let mut rng = Rng64::seed_from(scenario.seed);
    let mut graph = rt.topo.graph.clone();
    let edges: Vec<_> = graph.edges().map(|(e, edge)| (e, edge.u, edge.v)).collect();
    for (e, u, v) in edges {
        let util = rng.next_f64().max(1e-6);
        let factor = rt.params.pair_factor(rt.region_of(u), rt.region_of(v));
        graph.set_edge_cost(e, fortz_thorup(util, 1.0) * factor);
    }
    let mut net = Network::all_switches(graph);
    for &dc in &rt.topo.dc_nodes {
        for _ in 0..scenario.vms_per_dc {
            let h = rng.next_f64().max(1e-6);
            let vm = net.add_node(NodeKind::Vm, fortz_thorup(h, 1.0) * scenario.setup_scale);
            net.graph_mut().add_edge(vm, dc, Cost::ZERO);
        }
    }
    SofInstance::new(
        net,
        Request::new(sources, destinations, ServiceChain::with_len(chain_len)),
    )
    .expect("constructed region instance is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_regions() -> RegionsParams {
        RegionsParams::new(vec![
            RegionDef::new("us-east", 8, 2),
            RegionDef::new("eu-west", 6, 2),
            RegionDef::new("ap-south", 5, 1),
        ])
    }

    #[test]
    fn builds_connected_labelled_topology() {
        let rt = build_regions(&three_regions(), 3).unwrap();
        assert_eq!(rt.topo.graph.node_count(), 19);
        assert!(rt.topo.graph.is_connected());
        assert_eq!(rt.region_count(), 3);
        assert_eq!(rt.topo.dc_nodes.len(), 5);
        // Region labelling is contiguous and complete.
        assert_eq!(rt.region_of(NodeId::new(0)), 0);
        assert_eq!(rt.region_of(NodeId::new(8)), 1);
        assert_eq!(rt.region_of(NodeId::new(14)), 2);
        for r in 0..3 {
            for &n in rt.region_nodes(r) {
                assert_eq!(rt.region_of(n), r);
            }
            for &d in rt.region_dcs(r) {
                assert!(rt.region_nodes(r).contains(&d));
            }
        }
        assert_eq!(rt.region_name(1), "eu-west");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = build_regions(&three_regions(), 9).unwrap();
        let b = build_regions(&three_regions(), 9).unwrap();
        assert_eq!(
            a.topo.graph.total_edge_cost(),
            b.topo.graph.total_edge_cost()
        );
        assert_eq!(a.topo.graph.edge_count(), b.topo.graph.edge_count());
        let c = build_regions(&three_regions(), 10).unwrap();
        assert!(
            a.topo.graph.edge_count() != c.topo.graph.edge_count()
                || a.topo.graph.total_edge_cost() != c.topo.graph.total_edge_cost(),
            "different seeds should draw different chords/gateways"
        );
    }

    #[test]
    fn inter_region_edges_carry_pair_factors() {
        let rt = build_regions(&three_regions(), 5).unwrap();
        for (_, edge) in rt.topo.graph.edges() {
            let (ru, rv) = (rt.region_of(edge.u), rt.region_of(edge.v));
            let expect = rt.params.pair_factor(ru, rv);
            assert_eq!(edge.cost.value(), expect, "edge {:?}", edge);
        }
        // Default factors: line distance + 1.
        assert_eq!(rt.params.pair_factor(0, 2), 3.0);
        assert_eq!(rt.params.pair_factor(1, 1), 1.0);
    }

    #[test]
    fn validation_rejects_bad_params() {
        let err = RegionsParams::new(vec![]).validate().unwrap_err();
        assert!(err.contains("empty"), "{err}");
        let err = RegionsParams::new(vec![RegionDef::new("x", 2, 1)])
            .validate()
            .unwrap_err();
        assert!(err.contains("at least 3 nodes"), "{err}");
        let err = RegionsParams::new(vec![RegionDef::new("x", 4, 0)])
            .validate()
            .unwrap_err();
        assert!(err.contains("dcs"), "{err}");
        let mut p = three_regions();
        p.gateway_links = 0;
        assert!(p.validate().unwrap_err().contains("gateway_links"));
        let mut p = three_regions();
        p.pair_cost = Some(vec![vec![1.0; 2]; 2]);
        assert!(p.validate().unwrap_err().contains("matrix"));
        let mut m = vec![vec![1.0; 3]; 3];
        m[0][2] = 4.0;
        let mut p = three_regions();
        p.pair_cost = Some(m);
        assert!(p.validate().unwrap_err().contains("symmetric"));
    }

    #[test]
    fn region_instance_prices_pairs_and_places_vms() {
        let rt = build_regions(&three_regions(), 11).unwrap();
        let scen = RegionScenario {
            vms_per_dc: 2,
            setup_scale: 1.0,
            seed: 4,
        };
        let src = vec![rt.region_nodes(0)[0]];
        let dst = vec![rt.region_nodes(0)[2], rt.region_nodes(1)[1]];
        let inst = build_region_instance(&rt, &scen, src, dst, 2);
        assert_eq!(inst.network.vms().len(), 10, "2 VMs × 5 DCs");
        // Re-costed edges keep the pair-factor ordering in aggregate: the
        // mean inter-region (0,2) edge cost exceeds the mean intra cost.
        let mut intra = (0.0, 0usize);
        let mut far = (0.0, 0usize);
        for (_, edge) in inst.network.graph().edges() {
            if edge.u.index() >= rt.topo.graph.node_count()
                || edge.v.index() >= rt.topo.graph.node_count()
            {
                continue; // VM stub
            }
            let (ru, rv) = (rt.region_of(edge.u), rt.region_of(edge.v));
            if ru == rv {
                intra = (intra.0 + edge.cost.value(), intra.1 + 1);
            } else if ru.abs_diff(rv) == 2 {
                far = (far.0 + edge.cost.value(), far.1 + 1);
            }
        }
        assert!(far.1 > 0 && intra.1 > 0);
        assert!(
            far.0 / far.1 as f64 > intra.0 / intra.1 as f64,
            "inter-region mean cost should dominate"
        );
        // End-to-end solvable.
        let out = sof_core::solve_sofda(&inst, &sof_core::SofdaConfig::default()).unwrap();
        out.forest.validate(&inst).unwrap();
    }

    #[test]
    fn instance_is_deterministic() {
        let rt = build_regions(&three_regions(), 11).unwrap();
        let scen = RegionScenario::new(8);
        let src = vec![rt.region_nodes(0)[0]];
        let dst = vec![rt.region_nodes(1)[0]];
        let a = build_region_instance(&rt, &scen, src.clone(), dst.clone(), 1);
        let b = build_region_instance(&rt, &scen, src, dst, 1);
        assert_eq!(
            a.network.graph().total_edge_cost(),
            b.network.graph().total_edge_cost()
        );
    }
}

//! Fig. 11: impact of the VM setup-cost multiple (cost and used VMs).
use sof_bench::{average, print_header, print_row, Args};
use sof_core::{Sofda, SofdaConfig};
use sof_topo::{build_instance, softlayer, ScenarioParams};

fn main() {
    let args = Args::parse(
        "fig11 — VM setup-cost multiple × chain length (SOFDA on SoftLayer)",
        &[
            ("seeds", "averaging width (default 5)"),
            ("seed", "base RNG seed (default 4000)"),
            (
                "limit",
                "truncate multiples and chain lengths to N values (default 0 = all)",
            ),
        ],
    );
    let seeds: u64 = args.seeds(5);
    let base: u64 = args.get("seed", 4000);
    let limit: usize = args.get("limit", 0);
    let cut = |v: &[usize]| -> Vec<usize> {
        let n = if limit > 0 {
            limit.min(v.len())
        } else {
            v.len()
        };
        v[..n].to_vec()
    };
    let multiples: Vec<usize> = cut(&[1, 3, 5, 7, 9]);
    let chains: Vec<usize> = cut(&[3, 4, 5, 6, 7]);
    let topo = softlayer();
    println!("# Fig. 11 — setup-cost multiple × chain length (SOFDA, SoftLayer, seeds = {seeds})");
    for metric in ["cost", "used VMs"] {
        println!("\n## Fig. 11 — {metric}\n");
        let mut hdr = vec!["multiple".to_string()];
        hdr.extend(chains.iter().map(|c| format!("|C|={c}")));
        let hdr_ref: Vec<&str> = hdr.iter().map(String::as_str).collect();
        print_header(&hdr_ref);
        for &mult in &multiples {
            let mut cells = vec![format!("{mult}x")];
            for &chain in &chains {
                let make = |seed: u64| {
                    let mut p = ScenarioParams::paper_defaults().with_seed(seed);
                    p.chain_len = chain;
                    p.setup_scale = mult as f64;
                    build_instance(&topo, &p)
                };
                let (c, vms, _) =
                    average(&Sofda, seeds, base, &SofdaConfig::default(), make).expect("feasible");
                cells.push(if metric == "cost" {
                    format!("{c:.1}")
                } else {
                    format!("{vms:.2}")
                });
            }
            print_row(&cells);
        }
    }
}

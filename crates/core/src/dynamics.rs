//! Dynamic adjustments of a deployed forest (§VII-C of the paper):
//! destination join/leave, VNF insertion/deletion, congestion rerouting and
//! VM-overload migration — all without re-running SOFDA from scratch.
//!
//! Every operation's shortest-path queries go through the network's shared
//! [`sof_graph::PathEngine`] ([`crate::Network::paths`]): repeated trees —
//! within one operation, across operations, and across arrivals of a
//! standing [`crate::OnlineSession`] — are cache hits instead of fresh
//! Dijkstras, and the former per-call `BTreeMap<NodeId, ShortestPaths>`
//! caches (with their per-entry deep clones) are gone.

use crate::{DestWalk, ServiceForest, SofInstance};
use sof_graph::{Cost, NodeId};
use std::collections::BTreeMap;
use std::fmt;

/// Errors from dynamic operations.
#[derive(Clone, Debug, PartialEq)]
pub enum DynamicsError {
    /// The destination is not currently served.
    NotServed(NodeId),
    /// The destination is already served.
    AlreadyServed(NodeId),
    /// No VM is available for the operation.
    NoFreeVm,
    /// VNF index out of range.
    BadVnfIndex(usize),
    /// The operation cannot produce a feasible walk.
    Infeasible(String),
}

impl fmt::Display for DynamicsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DynamicsError::NotServed(d) => write!(f, "destination {d} is not served"),
            DynamicsError::AlreadyServed(d) => write!(f, "destination {d} already served"),
            DynamicsError::NoFreeVm => write!(f, "no free VM available"),
            DynamicsError::BadVnfIndex(i) => write!(f, "VNF index {i} out of range"),
            DynamicsError::Infeasible(why) => write!(f, "infeasible adjustment: {why}"),
        }
    }
}

impl std::error::Error for DynamicsError {}

/// §VII-C (1) — removes a destination and its walk. Links and VMs used only
/// by that walk stop being charged automatically (union-based accounting),
/// which is exactly the paper's "remove the path up to the closest branch
/// node".
pub fn destination_leave(
    instance: &mut SofInstance,
    forest: &mut ServiceForest,
    d: NodeId,
) -> Result<(), DynamicsError> {
    let before = forest.walks.len();
    forest.walks.retain(|w| w.destination != d);
    if forest.walks.len() == before {
        return Err(DynamicsError::NotServed(d));
    }
    instance.request.destinations.retain(|&x| x != d);
    Ok(())
}

/// How [`destination_join_with`] searches for an attach point.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum JoinStrategy {
    /// Consider every forest node, including ones mid-chain (the remaining
    /// VNFs are completed by a fresh k-stroll over free VMs). Finds the
    /// cheapest extension but costs a metric-closure build per candidate.
    #[default]
    FullSearch,
    /// Only attach where the chain is already complete (`f(x) = |C|`), via
    /// a single shortest-path tree from the new destination. Orders of
    /// magnitude faster — the hot path of the online engine — and always
    /// feasible on connected networks with a non-empty forest.
    TailAttach,
}

impl JoinStrategy {
    /// The spec-file name of this strategy.
    pub fn as_str(&self) -> &'static str {
        match self {
            JoinStrategy::FullSearch => "full-search",
            JoinStrategy::TailAttach => "tail-attach",
        }
    }

    /// Parses a spec-file name (case-insensitive).
    ///
    /// # Errors
    ///
    /// A message naming the unknown strategy and the valid names.
    pub fn from_name(name: &str) -> Result<JoinStrategy, String> {
        match name.to_ascii_lowercase().as_str() {
            "full-search" | "full_search" | "full" => Ok(JoinStrategy::FullSearch),
            "tail-attach" | "tail_attach" | "tail" => Ok(JoinStrategy::TailAttach),
            other => Err(format!(
                "unknown join strategy '{other}' (expected 'tail-attach' or 'full-search')"
            )),
        }
    }
}

/// §VII-C (2) — connects a new destination to the forest with the cheapest
/// extension: for every node `x` already in the forest, `f(x)` VNFs are
/// done, so a walk from `x` to `d` through the remaining `|C| − f(x)` VNFs
/// (on currently free VMs) completes the chain; the cheapest `(x, walk)` is
/// chosen. Returns the cost increase.
///
/// Equivalent to [`destination_join_with`] under
/// [`JoinStrategy::FullSearch`].
pub fn destination_join(
    instance: &mut SofInstance,
    forest: &mut ServiceForest,
    d: NodeId,
) -> Result<Cost, DynamicsError> {
    destination_join_with(instance, forest, d, JoinStrategy::FullSearch)
}

/// [`destination_join`] with an explicit attach-point search strategy.
pub fn destination_join_with(
    instance: &mut SofInstance,
    forest: &mut ServiceForest,
    d: NodeId,
    strategy: JoinStrategy,
) -> Result<Cost, DynamicsError> {
    if forest.walks.iter().any(|w| w.destination == d) {
        return Err(DynamicsError::AlreadyServed(d));
    }
    if d.index() >= instance.network.node_count() {
        return Err(DynamicsError::Infeasible(format!("{d} out of range")));
    }
    let network = &instance.network;
    let chain_len = forest.chain_len;
    let enabled = forest
        .enabled_vms()
        .map_err(|e| DynamicsError::Infeasible(e.to_string()))?;
    let free: Vec<NodeId> = network
        .vms()
        .into_iter()
        .filter(|v| !enabled.contains_key(v))
        .collect();

    // Candidate attach points: (walk index, position) with progress f(x) =
    // number of VNFs completed at/before that position; keep the best
    // (largest f) occurrence per node. BTreeMap: equal-cost attach points
    // must tie-break by node order, not hash order, to keep runs
    // deterministic.
    let mut best_at: BTreeMap<NodeId, (usize, usize, usize)> = BTreeMap::new(); // node -> (f, walk, pos)
    for (wi, w) in forest.walks.iter().enumerate() {
        let mut f = 0usize;
        for (pos, &node) in w.nodes.iter().enumerate() {
            while f < w.vnf_positions.len() && w.vnf_positions[f] <= pos {
                f += 1;
            }
            let entry = best_at.entry(node).or_insert((f, wi, pos));
            if f > entry.0 {
                *entry = (f, wi, pos);
            }
        }
    }

    let sp_from_d = network.paths().from_source(network.graph(), d);
    // (cost, walk, pos, extension nodes, extension VNF offsets)
    type Extension = (Cost, usize, usize, Vec<NodeId>, Vec<usize>);
    let mut best: Option<Extension> = None;
    for (&x, &(f, wi, pos)) in &best_at {
        let remaining = chain_len - f;
        if strategy == JoinStrategy::TailAttach && remaining != 0 {
            continue;
        }
        if remaining == 0 {
            // Plain shortest path x → d.
            let cost = sp_from_d.dist(x);
            if !cost.is_finite() {
                continue;
            }
            if best.as_ref().is_none_or(|(b, ..)| cost < *b) {
                let mut path = sp_from_d.path_to(x).expect("finite distance");
                path.reverse(); // now x → d
                best = Some((cost, wi, pos, path, vec![]));
            }
        } else {
            if free.len() < remaining {
                continue;
            }
            // k-stroll from x through `remaining` free VMs to d, on a metric
            // over {x} ∪ free ∪ {d} with halved VM potentials.
            let mut nodes = vec![x];
            nodes.extend(free.iter().copied().filter(|&v| v != x && v != d));
            if d != x {
                nodes.push(d);
            } else {
                continue;
            }
            let closure =
                sof_graph::MetricClosure::with_engine(network.graph(), nodes, network.paths());
            let nodes = closure.terminals().to_vec();
            let Some(xi) = nodes.iter().position(|&n| n == x) else {
                continue;
            };
            let Some(di) = nodes.iter().position(|&n| n == d) else {
                continue;
            };
            let pot: Vec<Cost> = nodes
                .iter()
                .map(|&n| {
                    if n == x || n == d {
                        Cost::ZERO
                    } else {
                        network.node_cost(n) / 2.0
                    }
                })
                .collect();
            // Exact cheapest hop from O(1) closure lookups: restores the
            // pruning a dense build got from its memoized min_hop even when
            // the size-based cutover keeps the metric rows lazy.
            let mut min_hop = Cost::INFINITY;
            for (i, &a) in nodes.iter().enumerate() {
                for (j, &b) in nodes.iter().enumerate() {
                    if i != j {
                        min_hop = min_hop.min(closure.dist_between(a, b) + pot[i] + pot[j]);
                    }
                }
            }
            let hop_bound = if nodes.len() >= 2 {
                min_hop
            } else {
                Cost::ZERO
            };
            let metric = {
                let closure = closure.clone();
                let nodes = nodes.clone();
                let pot = pot.clone();
                sof_kstroll::AutoMetric::from_fn(nodes.len(), move |i, j| {
                    closure.dist_between(nodes[i], nodes[j]) + pot[i] + pot[j]
                })
                .with_hop_lower_bound(hop_bound)
            };
            let mut rng = sof_graph::Rng64::seed_from(0xD_E57 ^ d.index() as u64);
            let Some(stroll) =
                sof_kstroll::StrollSolver::Auto.solve(&metric, xi, di, remaining + 2, &mut rng)
            else {
                continue;
            };
            let cost = stroll.cost; // potentials of x, d are zero → true cost
            if best.as_ref().is_none_or(|(b, ..)| cost < *b) {
                // Expand through shortest paths.
                let mut ext = vec![x];
                let mut offsets = Vec::new();
                for pair in stroll.nodes.windows(2) {
                    let (a, b) = (nodes[pair[0]], nodes[pair[1]]);
                    let path = closure.path_between(a, b).expect("finite");
                    ext.extend_from_slice(&path[1..]);
                    offsets.push(ext.len() - 1);
                }
                offsets.pop(); // last stroll node is d, not a VM
                best = Some((cost, wi, pos, ext, offsets));
            }
        }
    }

    let (added, wi, pos, ext, offsets) = best.ok_or_else(|| {
        DynamicsError::Infeasible("no attach point reaches the new destination".into())
    })?;
    let host = &forest.walks[wi];
    let mut nodes = host.nodes[..=pos].to_vec();
    let base = nodes.len() - 1;
    nodes.extend_from_slice(&ext[1..]);
    let mut vnf_positions: Vec<usize> = host
        .vnf_positions
        .iter()
        .copied()
        .filter(|&p| p <= pos)
        .collect();
    vnf_positions.extend(offsets.iter().map(|&o| base + o));
    forest.walks.push(DestWalk {
        destination: d,
        source: host.source,
        nodes,
        vnf_positions,
    });
    if !instance.request.destinations.contains(&d) {
        instance.request.destinations.push(d);
    }
    Ok(added)
}

/// Survivability variant of a tail-attach join: plans (without applying) a
/// replacement walk for destination `d` that attaches where the chain is
/// already complete and traverses **none** of the banned elements — not in
/// the host-walk prefix it inherits and not in the fresh extension, which
/// runs over a banned-element-filtered shortest-path tree
/// ([`sof_graph::ShortestPaths::from_sources_filtered`]) instead of a
/// cost-mutated graph, so the shared [`sof_graph::PathEngine`] stays warm.
///
/// Returns the planned walk and its attachment cost. The caller applies it
/// (e.g. [`crate::OnlineSession::switch_walk`]) or discards it — planning
/// mutates nothing.
pub fn plan_attach_avoiding(
    instance: &SofInstance,
    forest: &ServiceForest,
    d: NodeId,
    banned_edges: &std::collections::BTreeSet<(NodeId, NodeId)>,
    banned_nodes: &std::collections::BTreeSet<NodeId>,
) -> Result<(DestWalk, Cost), DynamicsError> {
    if d.index() >= instance.network.node_count() {
        return Err(DynamicsError::Infeasible(format!("{d} out of range")));
    }
    if banned_nodes.contains(&d) {
        return Err(DynamicsError::Infeasible(format!("{d} is a failed node")));
    }
    let network = &instance.network;
    let chain_len = forest.chain_len;

    // Complete-chain attach points on *surviving* walk prefixes: a prefix
    // that itself crosses a banned element can't host the reattachment.
    let mut best_at: BTreeMap<NodeId, (usize, usize)> = BTreeMap::new(); // node -> (walk, pos)
    for (wi, w) in forest.walks.iter().enumerate() {
        if w.destination == d {
            continue; // the broken walk being replaced is not a host
        }
        let mut f = 0usize;
        let mut clean = true;
        for (pos, &node) in w.nodes.iter().enumerate() {
            if banned_nodes.contains(&node) {
                clean = false;
            }
            if pos > 0 {
                let (a, b) = (w.nodes[pos - 1].min(node), w.nodes[pos - 1].max(node));
                if banned_edges.contains(&(a, b)) {
                    clean = false;
                }
            }
            if !clean {
                break;
            }
            while f < w.vnf_positions.len() && w.vnf_positions[f] <= pos {
                f += 1;
            }
            if f == chain_len {
                best_at.entry(node).or_insert((wi, pos));
            }
        }
    }
    if best_at.is_empty() {
        return Err(DynamicsError::Infeasible(
            "no surviving complete-chain attach point".into(),
        ));
    }

    let sp =
        sof_graph::ShortestPaths::from_sources_filtered(network.graph(), [d], |from, _edge, to| {
            if banned_nodes.contains(&to) && to != d {
                return false;
            }
            let (a, b) = (from.min(to), from.max(to));
            !banned_edges.contains(&(a, b))
        });
    let mut best: Option<(Cost, NodeId, usize, usize)> = None;
    for (&x, &(wi, pos)) in &best_at {
        let cost = sp.dist(x);
        if !cost.is_finite() {
            continue;
        }
        if best.as_ref().is_none_or(|(b, ..)| cost < *b) {
            best = Some((cost, x, wi, pos));
        }
    }
    let (added, _x, wi, pos) = best.ok_or_else(|| {
        DynamicsError::Infeasible("every surviving attach point is cut off by failures".into())
    })?;
    let host = &forest.walks[wi];
    let mut path = sp.path_to(host.nodes[pos]).expect("finite distance");
    path.reverse(); // now x → d
    let mut nodes = host.nodes[..=pos].to_vec();
    nodes.extend_from_slice(&path[1..]);
    let vnf_positions: Vec<usize> = host
        .vnf_positions
        .iter()
        .copied()
        .filter(|&p| p <= pos)
        .collect();
    Ok((
        DestWalk {
            destination: d,
            source: host.source,
            nodes,
            vnf_positions,
        },
        added,
    ))
}

/// §VII-C (3) — removes VNF `idx` from the chain: every walk reconnects the
/// VM of `f_{idx-1}` (or the source) directly to the VM of `f_{idx+1}` (or
/// the walk's end) along a shortest path.
pub fn vnf_delete(
    instance: &mut SofInstance,
    forest: &mut ServiceForest,
    idx: usize,
) -> Result<(), DynamicsError> {
    if idx >= forest.chain_len {
        return Err(DynamicsError::BadVnfIndex(idx));
    }
    let network = instance.network.clone();
    let names: Vec<String> = instance
        .request
        .chain
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != idx)
        .map(|(_, n)| n.to_string())
        .collect();
    instance.request.chain = crate::ServiceChain::from_names(names);
    for w in &mut forest.walks {
        let p_del = w.vnf_positions[idx];
        let p_prev = if idx == 0 {
            0
        } else {
            w.vnf_positions[idx - 1]
        };
        let p_next = if idx + 1 < w.vnf_positions.len() {
            w.vnf_positions[idx + 1]
        } else {
            w.nodes.len() - 1
        };
        let _ = p_del;
        let (a, b) = (w.nodes[p_prev], w.nodes[p_next]);
        let sp = network.paths().from_source(network.graph(), a);
        let path = sp
            .path_to(b)
            .ok_or_else(|| DynamicsError::Infeasible(format!("{a} cut off from {b}")))?;
        let mut nodes = w.nodes[..=p_prev].to_vec();
        nodes.extend_from_slice(&path[1..]);
        let bridge_end = nodes.len() - 1;
        nodes.extend_from_slice(&w.nodes[p_next + 1..]);
        let mut positions = Vec::with_capacity(w.vnf_positions.len() - 1);
        for (i, &p) in w.vnf_positions.iter().enumerate() {
            match i.cmp(&idx) {
                std::cmp::Ordering::Less => positions.push(p),
                std::cmp::Ordering::Equal => {}
                std::cmp::Ordering::Greater => positions.push(bridge_end + (p - p_next)),
            }
        }
        w.nodes = nodes;
        w.vnf_positions = positions;
    }
    forest.chain_len -= 1;
    Ok(())
}

/// §VII-C (4) — inserts a new VNF at chain position `idx` (0-based; `idx ==
/// |C|` appends). Every walk routes through a VM chosen to minimize
/// `dist(a, v) + c(v) + dist(v, b)`; walks may share the VM (the paper's
/// pair-dedup), others pick the next-best free one only if the shared VM
/// is not free.
pub fn vnf_insert(
    instance: &mut SofInstance,
    forest: &mut ServiceForest,
    idx: usize,
    name: &str,
) -> Result<(), DynamicsError> {
    if idx > forest.chain_len {
        return Err(DynamicsError::BadVnfIndex(idx));
    }
    let network = instance.network.clone();
    let enabled = forest
        .enabled_vms()
        .map_err(|e| DynamicsError::Infeasible(e.to_string()))?;
    // VMs that may host the new VNF: currently unused ones.
    let free: Vec<NodeId> = network
        .vms()
        .into_iter()
        .filter(|v| !enabled.contains_key(v))
        .collect();
    if free.is_empty() {
        return Err(DynamicsError::NoFreeVm);
    }
    let mut chosen: BTreeMap<(NodeId, NodeId), NodeId> = BTreeMap::new(); // (a,b) -> shared v
    let mut new_walks = forest.walks.clone();
    for w in &mut new_walks {
        let p_a = if idx == 0 {
            0
        } else {
            w.vnf_positions[idx - 1]
        };
        let p_b = if idx < w.vnf_positions.len() {
            w.vnf_positions[idx]
        } else {
            w.nodes.len() - 1
        };
        let (a, b) = (w.nodes[p_a], w.nodes[p_b]);
        let v = match chosen.get(&(a, b)) {
            Some(&v) => v,
            None => {
                let sp_a = network.paths().from_source(network.graph(), a);
                let sp_b = network.paths().from_source(network.graph(), b);
                let v = free
                    .iter()
                    .copied()
                    .filter(|&v| v != a && v != b)
                    .filter(|&v| sp_a.dist(v).is_finite() && sp_b.dist(v).is_finite())
                    .min_by_key(|&v| (sp_a.dist(v) + network.node_cost(v) + sp_b.dist(v), v))
                    .ok_or(DynamicsError::NoFreeVm)?;
                chosen.insert((a, b), v);
                v
            }
        };
        let sp_a = network.paths().from_source(network.graph(), a);
        let sp_v = network.paths().from_source(network.graph(), v);
        let path_av = sp_a.path_to(v).ok_or(DynamicsError::NoFreeVm)?;
        let path_vb = sp_v.path_to(b).ok_or(DynamicsError::NoFreeVm)?;
        let mut nodes = w.nodes[..=p_a].to_vec();
        nodes.extend_from_slice(&path_av[1..]);
        let v_pos = nodes.len() - 1;
        nodes.extend_from_slice(&path_vb[1..]);
        let b_pos = nodes.len() - 1;
        nodes.extend_from_slice(&w.nodes[p_b + 1..]);
        let mut positions = Vec::with_capacity(w.vnf_positions.len() + 1);
        for (i, &p) in w.vnf_positions.iter().enumerate() {
            if i < idx {
                positions.push(p);
            } else if i == idx {
                positions.push(v_pos);
                positions.push(b_pos);
            } else {
                positions.push(b_pos + (p - p_b));
            }
        }
        if idx == w.vnf_positions.len() {
            positions.push(v_pos);
        } else if idx < w.vnf_positions.len() {
            // handled above: v_pos then the old idx-placement at b_pos.
        }
        w.nodes = nodes;
        w.vnf_positions = positions;
    }
    // Update chain naming.
    let mut names: Vec<String> = instance.request.chain.iter().map(str::to_string).collect();
    names.insert(idx, name.to_string());
    instance.request.chain = crate::ServiceChain::from_names(names);
    forest.walks = new_walks;
    forest.chain_len += 1;
    Ok(())
}

/// §VII-C (5) — after link costs changed (congestion), re-route every
/// pass-through stretch along current shortest paths. Equivalent to
/// [`ServiceForest::shorten`] but unconditional, since stale routes may now
/// sit on expensive links.
pub fn reroute_all(instance: &SofInstance, forest: &mut ServiceForest) {
    let network = &instance.network;
    for w in &mut forest.walks {
        let mut anchors = vec![0usize];
        anchors.extend_from_slice(&w.vnf_positions);
        if *anchors.last().expect("non-empty") != w.nodes.len() - 1 {
            anchors.push(w.nodes.len() - 1);
        }
        let mut nodes = vec![w.nodes[0]];
        let mut positions = Vec::with_capacity(w.vnf_positions.len());
        for pair in anchors.windows(2) {
            let (a, b) = (w.nodes[pair[0]], w.nodes[pair[1]]);
            let sp = network.paths().from_source(network.graph(), a);
            let path = sp.path_to(b).expect("network is connected");
            nodes.extend_from_slice(&path[1..]);
            if positions.len() < w.vnf_positions.len() {
                positions.push(nodes.len() - 1);
            }
        }
        w.nodes = nodes;
        w.vnf_positions = positions;
    }
}

/// §VII-C (6) — migrates an overloaded VM: every walk using `v` re-routes
/// through the substitute VM minimizing `dist(prev, v') + c(v') +
/// dist(v', next)`.
pub fn migrate_vm(
    instance: &SofInstance,
    forest: &mut ServiceForest,
    v: NodeId,
) -> Result<NodeId, DynamicsError> {
    let network = &instance.network;
    let enabled = forest
        .enabled_vms()
        .map_err(|e| DynamicsError::Infeasible(e.to_string()))?;
    if !enabled.contains_key(&v) {
        return Err(DynamicsError::Infeasible(format!("{v} hosts no VNF")));
    }
    let free: Vec<NodeId> = network
        .vms()
        .into_iter()
        .filter(|x| !enabled.contains_key(x) && *x != v)
        .collect();
    if free.is_empty() {
        return Err(DynamicsError::NoFreeVm);
    }
    // Choose the replacement using the first affected walk's neighborhood.
    let mut replacement: Option<NodeId> = None;
    let mut new_walks = forest.walks.clone();
    for w in &mut new_walks {
        let Some(i) = (0..w.vnf_positions.len()).find(|&i| w.vnf_node(i) == v) else {
            continue;
        };
        let p = w.vnf_positions[i];
        let p_a = if i == 0 { 0 } else { w.vnf_positions[i - 1] };
        let p_b = if i + 1 < w.vnf_positions.len() {
            w.vnf_positions[i + 1]
        } else {
            w.nodes.len() - 1
        };
        let (a, b) = (w.nodes[p_a], w.nodes[p_b]);
        let _ = p;
        let vv = match replacement {
            Some(vv) => vv,
            None => {
                let sp_a = network.paths().from_source(network.graph(), a);
                let sp_b = network.paths().from_source(network.graph(), b);
                let vv = free
                    .iter()
                    .copied()
                    .filter(|&x| x != a && x != b)
                    .filter(|&x| sp_a.dist(x).is_finite() && sp_b.dist(x).is_finite())
                    .min_by_key(|&x| (sp_a.dist(x) + network.node_cost(x) + sp_b.dist(x), x))
                    .ok_or(DynamicsError::NoFreeVm)?;
                replacement = Some(vv);
                vv
            }
        };
        let sp_a = network.paths().from_source(network.graph(), a);
        let sp_v = network.paths().from_source(network.graph(), vv);
        let path_av = sp_a.path_to(vv).ok_or(DynamicsError::NoFreeVm)?;
        let path_vb = sp_v.path_to(b).ok_or(DynamicsError::NoFreeVm)?;
        let mut nodes = w.nodes[..=p_a].to_vec();
        nodes.extend_from_slice(&path_av[1..]);
        let v_pos = nodes.len() - 1;
        nodes.extend_from_slice(&path_vb[1..]);
        let b_pos = nodes.len() - 1;
        nodes.extend_from_slice(&w.nodes[p_b + 1..]);
        let mut positions = Vec::with_capacity(w.vnf_positions.len());
        for (j, &q) in w.vnf_positions.iter().enumerate() {
            match j.cmp(&i) {
                std::cmp::Ordering::Less => positions.push(q),
                std::cmp::Ordering::Equal => positions.push(v_pos),
                std::cmp::Ordering::Greater => positions.push(b_pos + (q - p_b)),
            }
        }
        w.nodes = nodes;
        w.vnf_positions = positions;
    }
    forest.walks = new_walks;
    replacement.ok_or_else(|| DynamicsError::Infeasible(format!("no walk routes through {v}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve_sofda, Network, Request, ServiceChain, SofdaConfig};
    use sof_graph::{generators, CostRange, Graph, Rng64};

    fn instance(seed: u64) -> SofInstance {
        let mut rng = Rng64::seed_from(seed);
        let g = generators::gnp_connected(24, 0.18, CostRange::new(1.0, 6.0), &mut rng);
        let mut net = Network::all_switches(g);
        let picks = rng.sample_indices(24, 14);
        for &v in &picks[..8] {
            net.make_vm(
                sof_graph::NodeId::new(v),
                Cost::new(rng.range_f64(0.5, 3.0)),
            );
        }
        SofInstance::new(
            net,
            Request::new(
                vec![
                    sof_graph::NodeId::new(picks[8]),
                    sof_graph::NodeId::new(picks[9]),
                ],
                picks[10..13]
                    .iter()
                    .map(|&i| sof_graph::NodeId::new(i))
                    .collect(),
                ServiceChain::with_len(2),
            ),
        )
        .unwrap()
    }

    fn solved(seed: u64) -> (SofInstance, ServiceForest) {
        let inst = instance(seed);
        let out = solve_sofda(&inst, &SofdaConfig::default()).unwrap();
        (inst, out.forest)
    }

    #[test]
    fn leave_then_validate() {
        let (mut inst, mut forest) = solved(1);
        let d = inst.request.destinations[0];
        let before = forest.cost(&inst.network).total();
        destination_leave(&mut inst, &mut forest, d).unwrap();
        forest.validate(&inst).unwrap();
        assert!(forest.cost(&inst.network).total() <= before);
        assert_eq!(
            destination_leave(&mut inst, &mut forest, d).unwrap_err(),
            DynamicsError::NotServed(d)
        );
    }

    #[test]
    fn join_new_destination() {
        let (mut inst, mut forest) = solved(2);
        // Find an unserved node.
        let served: Vec<_> = inst.request.destinations.clone();
        let d = {
            let sources = inst.request.sources.clone();
            inst.network
                .graph()
                .nodes()
                .find(|n| !served.contains(n) && !sources.contains(n))
                .unwrap()
        };
        let before = forest.cost(&inst.network).total();
        let added = destination_join(&mut inst, &mut forest, d).unwrap();
        forest.validate(&inst).unwrap();
        let after = forest.cost(&inst.network).total();
        assert!(after <= before + added + Cost::new(1e-6));
        assert!(forest.walks.iter().any(|w| w.destination == d));
    }

    #[test]
    fn join_is_cheaper_than_resolve() {
        // The incremental join must not exceed re-running SOFDA... in cost
        // terms it may, but it must remain feasible and bounded by adding a
        // fresh chain. Here we just check feasibility across several seeds.
        for seed in 3..8 {
            let (mut inst, mut forest) = solved(seed);
            let served: Vec<_> = inst.request.destinations.clone();
            let candidate = inst
                .network
                .graph()
                .nodes()
                .find(|n| !served.contains(n) && !inst.request.sources.contains(n));
            if let Some(d) = candidate {
                destination_join(&mut inst, &mut forest, d).unwrap();
                forest.validate(&inst).unwrap();
            }
        }
    }

    #[test]
    fn vnf_delete_shrinks_chain() {
        let (mut inst, mut forest) = solved(4);
        let before_vms = forest.stats().used_vms;
        vnf_delete(&mut inst, &mut forest, 0).unwrap();
        forest.validate(&inst).unwrap();
        assert_eq!(forest.chain_len, 1);
        assert!(forest.stats().used_vms <= before_vms);
        // Deleting the remaining VNF leaves a pure multicast forest.
        vnf_delete(&mut inst, &mut forest, 0).unwrap();
        forest.validate(&inst).unwrap();
        assert_eq!(forest.cost(&inst.network).setup, Cost::ZERO);
    }

    #[test]
    fn vnf_insert_grows_chain() {
        let (mut inst, mut forest) = solved(5);
        vnf_insert(&mut inst, &mut forest, 1, "firewall").unwrap();
        forest.validate(&inst).unwrap();
        assert_eq!(forest.chain_len, 3);
        assert_eq!(inst.request.chain.name(1), "firewall");
        // Append at the end too.
        vnf_insert(&mut inst, &mut forest, 3, "logger").unwrap();
        forest.validate(&inst).unwrap();
        assert_eq!(forest.chain_len, 4);
    }

    #[test]
    fn reroute_after_cost_change() {
        let (mut inst, mut forest) = solved(6);
        // Inflate every link cost 10x: routes stay valid, reroute keeps
        // feasibility.
        let ids: Vec<_> = inst.network.graph().edges().map(|(e, _)| e).collect();
        for e in ids {
            let c = inst.network.graph().edge_cost(e);
            inst.network.graph_mut().set_edge_cost(e, c * 10.0);
        }
        reroute_all(&inst, &mut forest);
        forest.validate(&inst).unwrap();
    }

    #[test]
    fn migrate_overloaded_vm() {
        let (inst, mut forest) = solved(7);
        let enabled = forest.enabled_vms().unwrap();
        let v = *enabled.keys().next().unwrap();
        match migrate_vm(&inst, &mut forest, v) {
            Ok(vv) => {
                assert_ne!(vv, v);
                forest.validate(&inst).unwrap();
                assert!(!forest.enabled_vms().unwrap().contains_key(&v));
            }
            Err(DynamicsError::NoFreeVm) => {} // acceptable on tight pools
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn bad_indices_rejected() {
        let (mut inst, mut forest) = solved(8);
        assert_eq!(
            vnf_delete(&mut inst, &mut forest, 9).unwrap_err(),
            DynamicsError::BadVnfIndex(9)
        );
        assert_eq!(
            vnf_insert(&mut inst, &mut forest, 9, "x").unwrap_err(),
            DynamicsError::BadVnfIndex(9)
        );
    }

    #[test]
    fn tail_attach_join_is_feasible_and_no_cheaper_than_full() {
        for seed in 20..26 {
            let (inst, forest) = solved(seed);
            let served = inst.request.destinations.clone();
            let Some(d) = inst
                .network
                .graph()
                .nodes()
                .find(|n| !served.contains(n) && !inst.request.sources.contains(n))
            else {
                continue;
            };
            let (mut inst_tail, mut tail) = (inst.clone(), forest.clone());
            let added_tail =
                destination_join_with(&mut inst_tail, &mut tail, d, JoinStrategy::TailAttach)
                    .unwrap();
            tail.validate(&inst_tail).unwrap();
            let (mut inst_full, mut full) = (inst, forest);
            let added_full =
                destination_join_with(&mut inst_full, &mut full, d, JoinStrategy::FullSearch)
                    .unwrap();
            full.validate(&inst_full).unwrap();
            // FullSearch considers a superset of TailAttach's candidates.
            assert!(added_full <= added_tail + Cost::new(1e-9), "seed {seed}");
        }
    }

    #[test]
    fn plan_attach_avoiding_routes_around_banned_elements() {
        use std::collections::BTreeSet;
        for seed in 30..36 {
            let (inst, forest) = solved(seed);
            if forest.walks.len() < 2 {
                continue;
            }
            let d = forest.walks[0].destination;
            let no_edges: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
            let no_nodes: BTreeSet<NodeId> = BTreeSet::new();
            // With nothing banned the plan matches a plain tail-attach.
            let (walk, _cost) =
                plan_attach_avoiding(&inst, &forest, d, &no_edges, &no_nodes).unwrap();
            assert_eq!(walk.destination, d);
            assert_eq!(walk.vnf_positions.len(), forest.chain_len);
            // Ban the last hop of d's current walk; the plan must avoid it.
            let old = &forest.walks[0].nodes;
            let (u, v) = (old[old.len() - 2], old[old.len() - 1]);
            let banned: BTreeSet<_> = [(u.min(v), u.max(v))].into();
            match plan_attach_avoiding(&inst, &forest, d, &banned, &no_nodes) {
                Ok((walk, _)) => {
                    assert!(walk
                        .nodes
                        .windows(2)
                        .all(|p| { (p[0].min(p[1]), p[0].max(p[1])) != (u.min(v), u.max(v)) }));
                    assert_eq!(*walk.nodes.last().unwrap(), d);
                }
                Err(DynamicsError::Infeasible(_)) => {} // d genuinely cut off
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
    }

    #[test]
    fn join_with_zero_remaining_uses_tail_attach() {
        // Chain length 0: joins are plain shortest-path attachments.
        let mut g = Graph::with_nodes(5);
        for i in 0..4 {
            g.add_edge(
                sof_graph::NodeId::new(i),
                sof_graph::NodeId::new(i + 1),
                Cost::new(1.0),
            );
        }
        let net = Network::all_switches(g);
        let mut inst = SofInstance::new(
            net,
            Request::new(
                vec![sof_graph::NodeId::new(0)],
                vec![sof_graph::NodeId::new(2)],
                ServiceChain::default(),
            ),
        )
        .unwrap();
        let out = solve_sofda(&inst, &SofdaConfig::default()).unwrap();
        let mut forest = out.forest;
        destination_join(&mut inst, &mut forest, sof_graph::NodeId::new(4)).unwrap();
        forest.validate(&inst).unwrap();
        assert_eq!(forest.walks.len(), 2);
    }
}

//! The persistent worker pool behind `par_map_indexed` / `par_map_mut`.
//!
//! Before this module existed every `par_map` call spawned scoped OS
//! threads and joined them on exit — fine for second-scale sweeps, wasteful
//! for the millisecond-scale child relaxations `sof_exact` forks inside its
//! branch-and-bound expansion loop. The pool keeps long-lived workers
//! blocked on a job queue instead: a call enqueues one *job* (an erased
//! `run(index)` closure plus claim bookkeeping), workers and the caller
//! pull indices off a shared atomic counter, and the call returns once
//! every claimed index has finished. Scheduling remains work-stealing by
//! index, so output ordering — and therefore every determinism guarantee
//! documented on the crate — is untouched.
//!
//! # Safety
//!
//! This is the one module in the workspace that uses `unsafe`: the job
//! holds a raw pointer to the caller's stack-allocated closure, erased to
//! `'static` so long-lived workers can run it. The protocol that keeps the
//! pointer valid:
//!
//! * a worker **increments `active` before** reading `closed` or touching
//!   the job, and decrements it only after its last possible access;
//! * the caller **sets `closed` before waiting** for `active == 0`, and
//!   only returns (invalidating the closure) after that wait: any worker
//!   that incremented `active` pre-close is waited for, and any worker
//!   arriving post-close observes `closed` (its increment happens after
//!   the caller's store in the SeqCst total order) and never dereferences;
//! * `closed`/`active` transitions happen under the job's mutex+condvar,
//!   so the caller cannot miss the final wake-up.
//!
//! Panics inside a task are caught by the closure itself (it reports
//! failure through its return value), so workers survive poisoned jobs and
//! keep serving the queue.

#![allow(unsafe_code)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Hard cap on pool threads, far above any sensible `--threads` request.
const MAX_WORKERS: usize = 64;

/// An erased `run(index) -> keep_going` closure. `false` poisons the job
/// (remaining indices are skipped); the closure has already recorded the
/// panic payload by the time it returns.
type Task = dyn Fn(usize) -> bool + Sync;

/// A `Send + Sync` wrapper for the base pointer of a mutable slice, so
/// `par_map_mut` tasks can hand out `&mut` access to *distinct* elements
/// from shared closures.
///
/// SAFETY: soundness rests on the claim protocol — each index `i` is
/// produced by `fetch_add` exactly once per job, so at most one participant
/// ever touches element `i`, and the owning slice outlives the job (the
/// caller borrows it across `pool::run`).
pub(crate) struct SliceMutPtr<T>(pub(crate) *mut T);
unsafe impl<T: Send> Send for SliceMutPtr<T> {}
unsafe impl<T: Send> Sync for SliceMutPtr<T> {}

impl<T> SliceMutPtr<T> {
    /// Exclusive access to element `i`.
    ///
    /// SAFETY (caller): `i` must be in bounds and claimed exactly once for
    /// the lifetime of the underlying borrow.
    #[allow(clippy::mut_from_ref)] // disjointness guaranteed by the claim protocol
    pub(crate) unsafe fn get_mut(&self, i: usize) -> &mut T {
        unsafe { &mut *self.0.add(i) }
    }
}

/// Raw pointer to the caller's task, erased to `'static`.
///
/// SAFETY: only dereferenced under the active-guard protocol described in
/// the module docs, while the owning `run` frame is still alive.
struct TaskPtr(*const Task);
unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

/// One queued parallel call.
struct Job {
    task: TaskPtr,
    /// Next unclaimed index.
    next: AtomicUsize,
    /// Number of indices.
    len: usize,
    /// Worker participation slots remaining (callers always participate on
    /// top of this budget).
    slots: AtomicUsize,
    /// No further claims allowed; set by the caller before it waits out the
    /// stragglers and returns.
    closed: AtomicBool,
    /// A task reported failure; workers stop claiming.
    poisoned: AtomicBool,
    /// Participants currently inside the job, guarded with the condvar so
    /// the caller's drain cannot miss the last decrement.
    active: Mutex<usize>,
    done: Condvar,
}

impl Job {
    fn new(task: TaskPtr, len: usize, worker_slots: usize) -> Job {
        Job {
            task,
            next: AtomicUsize::new(0),
            len,
            slots: AtomicUsize::new(worker_slots),
            closed: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            active: Mutex::new(0),
            done: Condvar::new(),
        }
    }

    /// Tries to reserve a worker slot; `false` = budget exhausted.
    fn try_take_slot(&self) -> bool {
        self.slots
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |s| s.checked_sub(1))
            .is_ok()
    }

    /// Claims and runs indices until the job is drained, closed or
    /// poisoned. Must only be called between an `active` increment and
    /// decrement (see module docs).
    fn claim_loop(&self) {
        // SAFETY: `active` was incremented by our caller before this call,
        // so the job's owner is still parked in `run` waiting for us; the
        // closure behind the pointer outlives every dereference here.
        let task = unsafe { &*self.task.0 };
        loop {
            if self.closed.load(Ordering::SeqCst) || self.poisoned.load(Ordering::SeqCst) {
                return;
            }
            let i = self.next.fetch_add(1, Ordering::SeqCst);
            if i >= self.len {
                return;
            }
            if !task(i) {
                self.poisoned.store(true, Ordering::SeqCst);
            }
        }
    }

    /// Worker-side entry: guard with the active counter, then claim.
    fn participate(&self) {
        {
            let mut active = self.active.lock().expect("job active lock");
            *active += 1;
        }
        if !self.closed.load(Ordering::SeqCst) {
            self.claim_loop();
        }
        let mut active = self.active.lock().expect("job active lock");
        *active -= 1;
        if *active == 0 {
            self.done.notify_all();
        }
    }

    /// Caller-side completion: forbid further claims, then wait until no
    /// participant is left inside the job.
    fn close_and_drain(&self) {
        self.closed.store(true, Ordering::SeqCst);
        let mut active = self.active.lock().expect("job active lock");
        while *active > 0 {
            active = self.done.wait(active).expect("job active lock");
        }
    }
}

struct Shared {
    queue: Mutex<VecDeque<Arc<Job>>>,
    wake: Condvar,
    workers: AtomicUsize,
}

fn shared() -> &'static Arc<Shared> {
    static POOL: OnceLock<Arc<Shared>> = OnceLock::new();
    POOL.get_or_init(|| {
        Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            wake: Condvar::new(),
            workers: AtomicUsize::new(0),
        })
    })
}

/// Returns `true` unless the `SOF_PAR_POOL=0` escape hatch selects the
/// legacy spawn-per-call path (kept for debugging and as the baseline leg
/// of the `path_engine` microbench).
pub(crate) fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var("SOF_PAR_POOL").map_or(true, |v| v.trim() != "0"))
}

/// Lazily grows the pool towards `target` persistent workers.
fn ensure_workers(target: usize) {
    let target = target.min(MAX_WORKERS);
    let pool = shared();
    loop {
        let current = pool.workers.load(Ordering::SeqCst);
        if current >= target {
            return;
        }
        if pool
            .workers
            .compare_exchange(current, current + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            continue;
        }
        let handle = Arc::clone(pool);
        std::thread::Builder::new()
            .name("sof-par-worker".into())
            .spawn(move || worker_loop(&handle))
            .expect("spawn pool worker");
    }
}

fn worker_loop(pool: &Shared) {
    // Everything a pool worker runs is pool work: nested par_map calls
    // from inside tasks must degrade to serial execution.
    crate::enter_pool_scope();
    loop {
        let job = {
            let mut queue = pool.queue.lock().expect("pool queue lock");
            loop {
                queue.retain(|j| !j.closed.load(Ordering::SeqCst));
                if let Some(job) = queue
                    .iter()
                    .find(|j| j.next.load(Ordering::SeqCst) < j.len && j.try_take_slot())
                    .cloned()
                {
                    break job;
                }
                queue = pool.wake.wait(queue).expect("pool queue lock");
            }
        };
        job.participate();
    }
}

/// Runs `task(0..len)` on the persistent pool: up to `worker_budget` pool
/// workers join in, and the calling thread itself claims indices until the
/// job drains. Returns once every claimed index has finished.
pub(crate) fn run(len: usize, worker_budget: usize, task: &(dyn Fn(usize) -> bool + Sync)) {
    if len == 0 {
        return;
    }
    ensure_workers(worker_budget);
    // SAFETY: lifetime erasure of the task reference (`'_` → `'static` in
    // the pointee's object bound). `run` keeps the reference alive until
    // `close_and_drain` has proven no worker can still touch it (see the
    // module-level protocol).
    let task_ptr = TaskPtr(unsafe {
        std::mem::transmute::<*const (dyn Fn(usize) -> bool + Sync + '_), *const Task>(task)
    });
    let job = Arc::new(Job::new(task_ptr, len, worker_budget));
    let pool = shared();
    {
        let mut queue = pool.queue.lock().expect("pool queue lock");
        queue.push_back(Arc::clone(&job));
    }
    pool.wake.notify_all();
    // The caller is always a participant — work proceeds even with zero
    // pool workers — and runs nested par_map calls serially like workers.
    {
        let mut active = job.active.lock().expect("job active lock");
        *active += 1;
    }
    let was_in_pool = crate::enter_pool_scope();
    job.claim_loop();
    crate::exit_pool_scope(was_in_pool);
    {
        let mut active = job.active.lock().expect("job active lock");
        *active -= 1;
        if *active == 0 {
            job.done.notify_all();
        }
    }
    job.close_and_drain();
    // Drop our queue entry eagerly so late workers skip it cheaply.
    let mut queue = pool.queue.lock().expect("pool queue lock");
    queue.retain(|j| !Arc::ptr_eq(j, &job));
}

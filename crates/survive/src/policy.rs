//! Protection policies: what answers a disruption.
//!
//! A [`Protector`] sits next to one [`OnlineSession`] and decides how a
//! failure that broke standing walks gets repaired:
//!
//! * [`ProtectionPolicy::Reactive`] — drop the forest, let the next
//!   arrival rebuild it (the pre-survivability behavior). Recovery pays a
//!   full solve and the group stays dark until that arrival.
//! * [`ProtectionPolicy::BackupPaths`] — before a failure round hits, plan
//!   one element-disjoint backup attachment per destination (a
//!   [`sof_core::dynamics::plan_attach_avoiding`] walk that shares no link
//!   with the primary); switchover splices the pre-planned walk in and
//!   pays only the attachment cost.
//! * [`ProtectionPolicy::StandbyForest`] — keep a second forest solved on
//!   disjointness-priced costs; switchover is a pointer swap
//!   ([`OnlineSession::replace_forest`]) at **zero** recovery cost, and the
//!   standby is re-warmed afterwards (maintenance, not recovery).
//!
//! Every policy cascades on infeasibility: standby → backup walks →
//! reactive, so recovery never silently leaves a destination attached
//! through a failed element.

use crate::element::ElementRef;
use sof_core::{DestWalk, OnlineSession, ServiceForest, Solver};
use sof_graph::NodeId;
use std::collections::BTreeSet;

/// Cost multiplier steering the standby solve away from the primary
/// forest's links and VMs. High enough that disjoint routes win whenever
/// they exist, finite so the solve stays feasible when they don't.
const DISJOINT_SURCHARGE: f64 = 64.0;

/// How a session recovers from element failures.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum ProtectionPolicy {
    /// Rebuild affected groups from scratch at their next arrival.
    #[default]
    Reactive,
    /// Switch disrupted destinations onto pre-planned disjoint backup
    /// attachment paths.
    BackupPaths,
    /// Swap the whole forest for a pre-solved element-disjoint standby.
    StandbyForest,
}

impl ProtectionPolicy {
    /// The spec-file name of this policy.
    pub fn as_str(&self) -> &'static str {
        match self {
            ProtectionPolicy::Reactive => "reactive",
            ProtectionPolicy::BackupPaths => "backup-paths",
            ProtectionPolicy::StandbyForest => "standby-forest",
        }
    }

    /// Parses a spec-file name (case-insensitive).
    ///
    /// # Errors
    ///
    /// A message naming the unknown policy and the valid names.
    pub fn from_name(name: &str) -> Result<ProtectionPolicy, String> {
        match name.to_ascii_lowercase().as_str() {
            "reactive" => Ok(ProtectionPolicy::Reactive),
            "backup-paths" | "backup_paths" | "backup" => Ok(ProtectionPolicy::BackupPaths),
            "standby-forest" | "standby_forest" | "standby" => Ok(ProtectionPolicy::StandbyForest),
            other => Err(format!(
                "unknown protection policy '{other}' \
                 (expected 'reactive', 'backup-paths', or 'standby-forest')"
            )),
        }
    }
}

/// What one [`Protector::recover`] call did.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RecoveryOutcome {
    /// Destinations whose walks the failure broke.
    pub affected: usize,
    /// Destinations reattached within the failure round.
    pub recovered: usize,
    /// Cost of the reconfiguration installed now (0 for a standby swap;
    /// attachment cost for backup paths; 0 for reactive — its full-solve
    /// cost lands when the deferred rebuild happens).
    pub cost: f64,
    /// Whether restoration is deferred to the group's next arrival (the
    /// reactive path, and every fallback that ends there).
    pub pending: bool,
}

/// Per-session protection state: pre-planned backups and/or the standby
/// forest, plus the policy that drives them.
pub struct Protector {
    policy: ProtectionPolicy,
    /// Solver for standby re-warms (required by
    /// [`ProtectionPolicy::StandbyForest`], unused otherwise).
    solver: Option<Box<dyn Solver>>,
    standby: Option<ServiceForest>,
    /// Destination → (pre-planned disjoint walk, its attachment cost).
    backups: Vec<(NodeId, DestWalk, f64)>,
}

impl Protector {
    /// Builds a protector. `solver` powers standby solves; pass `None`
    /// for policies that never need one.
    pub fn new(policy: ProtectionPolicy, solver: Option<Box<dyn Solver>>) -> Protector {
        Protector {
            policy,
            solver,
            standby: None,
            backups: Vec::new(),
        }
    }

    /// The driving policy.
    pub fn policy(&self) -> ProtectionPolicy {
        self.policy
    }

    /// Whether a standby forest is currently warm (test/observability
    /// hook).
    pub fn standby_ready(&self) -> bool {
        self.standby.is_some()
    }

    /// Pre-provisions protection for the session's **current** group:
    /// plans disjoint backup walks (BackupPaths) or solves the standby
    /// forest on disjointness-priced costs (StandbyForest). Call right
    /// before a failure round is applied; Reactive pre-provisions nothing.
    pub fn prewarm(&mut self, session: &mut OnlineSession) {
        self.backups.clear();
        self.standby = None;
        let Some(forest) = session.forest() else {
            return;
        };
        match self.policy {
            ProtectionPolicy::Reactive => {}
            ProtectionPolicy::BackupPaths => {
                let dests: Vec<NodeId> = forest.walks.iter().map(|w| w.destination).collect();
                for d in dests {
                    if let Ok((walk, cost)) = session.plan_reattach(d, true) {
                        self.backups.push((d, walk, cost));
                    }
                }
            }
            ProtectionPolicy::StandbyForest => {
                let Some(solver) = &self.solver else { return };
                let mut priced = session.instance().clone();
                let seg: BTreeSet<(NodeId, NodeId)> =
                    forest.segment_edges().into_iter().flatten().collect();
                for (u, v) in seg {
                    if let Some(e) = priced.network.graph().edge_between(u, v) {
                        let c = priced.network.graph().edge_cost(e);
                        priced
                            .network
                            .graph_mut()
                            .set_edge_cost(e, c * DISJOINT_SURCHARGE);
                    }
                }
                if let Ok(used) = forest.enabled_vms() {
                    for &vm in used.keys() {
                        let c = priced.network.node_cost(vm);
                        priced.network.set_node_cost(vm, c * DISJOINT_SURCHARGE);
                    }
                }
                self.standby = solver
                    .solve(&priced, session.sofda_config())
                    .ok()
                    .map(|out| out.forest)
                    .filter(|f| f.validate(session.instance()).is_ok());
            }
        }
    }

    /// Recovers the session after `affected` destinations lost their
    /// walks to a failure. Cascades standby → backup → reactive so the
    /// forest never keeps traversing a failed element.
    pub fn recover(&mut self, session: &mut OnlineSession, affected: &[NodeId]) -> RecoveryOutcome {
        if affected.is_empty() {
            return RecoveryOutcome::default();
        }
        let mut outcome = RecoveryOutcome {
            affected: affected.len(),
            ..RecoveryOutcome::default()
        };
        if self.policy == ProtectionPolicy::StandbyForest {
            if let Some(standby) = self.standby.take() {
                let avoids = forest_avoids(
                    &standby,
                    &session.failed_edges(),
                    &session.failed_switches(),
                );
                if avoids && session.replace_forest(standby).is_ok() {
                    outcome.recovered = affected.len();
                    return outcome;
                }
            }
        }
        if self.policy != ProtectionPolicy::Reactive {
            let banned_e = session.failed_edges();
            let banned_n = session.failed_switches();
            let mut all_switched = true;
            for &d in affected {
                let planned = self
                    .backups
                    .iter()
                    .position(|(bd, ..)| *bd == d)
                    .map(|i| self.backups.swap_remove(i))
                    .filter(|(_, walk, _)| walk_avoids(walk, &banned_e, &banned_n))
                    .map(|(_, walk, cost)| (walk, cost));
                let fresh = planned.or_else(|| session.plan_reattach(d, false).ok());
                let Some((walk, cost)) = fresh else {
                    all_switched = false;
                    break;
                };
                if session.switch_walk(walk).is_err() {
                    all_switched = false;
                    break;
                }
                outcome.recovered += 1;
                outcome.cost += cost;
            }
            if all_switched {
                return outcome;
            }
        }
        // Reactive (and the terminal fallback): drop the forest, restore at
        // the group's next arrival.
        session.clear_forest();
        outcome.recovered = 0;
        outcome.cost = 0.0;
        outcome.pending = true;
        outcome
    }
}

/// Whether a single walk traverses none of the banned elements.
pub fn walk_avoids(
    walk: &DestWalk,
    banned_edges: &BTreeSet<(NodeId, NodeId)>,
    banned_nodes: &BTreeSet<NodeId>,
) -> bool {
    if walk.nodes.iter().any(|n| banned_nodes.contains(n)) {
        return false;
    }
    walk.nodes.windows(2).all(|p| {
        let (a, b) = (p[0].min(p[1]), p[0].max(p[1]));
        !banned_edges.contains(&(a, b))
    })
}

/// Whether every walk of a forest avoids the banned elements.
pub fn forest_avoids(
    forest: &ServiceForest,
    banned_edges: &BTreeSet<(NodeId, NodeId)>,
    banned_nodes: &BTreeSet<NodeId>,
) -> bool {
    forest
        .walks
        .iter()
        .all(|w| walk_avoids(w, banned_edges, banned_nodes))
}

/// The element universe for one scope over a base topology, in stable
/// order. `domains` are region names; `links` are base-graph endpoint
/// pairs; `vms`/`nodes` are node indices.
pub fn universe_for_scopes(
    scopes: &[String],
    links: &[(usize, usize)],
    nodes: &[usize],
    vms: &[usize],
    domains: &[String],
) -> Vec<ElementRef> {
    let mut out = Vec::new();
    for scope in scopes {
        match scope.as_str() {
            "vm" => out.extend(vms.iter().map(|&v| ElementRef::Vm(v))),
            "link" => out.extend(links.iter().map(|&(u, v)| ElementRef::link(u, v))),
            "node" => out.extend(nodes.iter().map(|&n| ElementRef::Node(n))),
            "domain" => out.extend(domains.iter().map(|d| ElementRef::Domain(d.clone()))),
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_names_round_trip() {
        for policy in [
            ProtectionPolicy::Reactive,
            ProtectionPolicy::BackupPaths,
            ProtectionPolicy::StandbyForest,
        ] {
            assert_eq!(
                ProtectionPolicy::from_name(policy.as_str()).unwrap(),
                policy
            );
        }
        let err = ProtectionPolicy::from_name("optimistic").unwrap_err();
        assert!(
            err.contains("'optimistic'") && err.contains("standby-forest"),
            "{err}"
        );
    }

    #[test]
    fn walk_avoidance_checks_edges_and_nodes() {
        let walk = DestWalk {
            destination: NodeId::new(3),
            source: NodeId::new(0),
            nodes: vec![NodeId::new(0), NodeId::new(1), NodeId::new(3)],
            vnf_positions: vec![1],
        };
        let no_edges: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        let no_nodes: BTreeSet<NodeId> = BTreeSet::new();
        assert!(walk_avoids(&walk, &no_edges, &no_nodes));
        let banned_e: BTreeSet<_> = [(NodeId::new(0), NodeId::new(1))].into();
        assert!(!walk_avoids(&walk, &banned_e, &no_nodes));
        let banned_n: BTreeSet<_> = [NodeId::new(1)].into();
        assert!(!walk_avoids(&walk, &no_edges, &banned_n));
    }

    #[test]
    fn universe_follows_scope_order() {
        let u = universe_for_scopes(
            &["link".into(), "vm".into()],
            &[(0, 1), (1, 2)],
            &[0, 1, 2],
            &[9, 10],
            &["us-east".into()],
        );
        assert_eq!(
            u,
            vec![
                ElementRef::link(0, 1),
                ElementRef::link(1, 2),
                ElementRef::Vm(9),
                ElementRef::Vm(10),
            ]
        );
    }
}

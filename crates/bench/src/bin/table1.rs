//! Table I: SOFDA running time (seconds) vs network size and source count.
use sof_bench::{print_header, print_row, Args};
use sof_core::{Sofda, SofdaConfig};
use sof_topo::{build_instance, inet_sized, ScenarioParams};

fn main() {
    let args = Args::parse(
        "table1 — SOFDA running time vs network size and source count",
        &[
            ("seed", "base RNG seed (default 6000)"),
            (
                "max-nodes",
                "largest network size to measure (default 5000)",
            ),
        ],
    );
    let seed: u64 = args.get("seed", 6000);
    let max_nodes: usize = args.get("max-nodes", 5000);
    println!("# Table I — SOFDA running time (seconds)\n");
    let sources = [2usize, 8, 14, 20, 26];
    let mut hdr = vec!["|V|".to_string()];
    hdr.extend(sources.iter().map(|s| format!("|S|={s}")));
    let hdr_ref: Vec<&str> = hdr.iter().map(String::as_str).collect();
    print_header(&hdr_ref);
    for nodes in [1000usize, 2000, 3000, 4000, 5000] {
        if nodes > max_nodes {
            break;
        }
        let links = nodes * 2;
        let dcs = (nodes * 2) / 5;
        let topo = inet_sized(nodes, links, dcs, seed);
        let mut cells = vec![nodes.to_string()];
        for &s in &sources {
            let mut p = ScenarioParams::paper_defaults().with_seed(seed + s as u64);
            p.sources = s;
            let inst = build_instance(&topo, &p);
            let r = sof_bench::run(&Sofda, &inst, &SofdaConfig::default()).expect("feasible");
            cells.push(format!("{:.2}", r.millis / 1e3));
        }
        print_row(&cells);
    }
}

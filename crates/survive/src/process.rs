//! Failure processes: seeded generators of timed fail/repair events.
//!
//! A [`FailureDriver`] advances round by round and emits, for each round,
//! the repairs that come due and the new failures that fire. The whole
//! trace is a pure function of `(seed, plan, universe)`: the RNG stream is
//! consumed in a fixed order regardless of which elements happen to be
//! failed, and repair times are drawn by the process itself — never by the
//! protection policy — so every policy leg of a comparison run sees the
//! identical trace.

use crate::element::ElementRef;
use crate::policy::ProtectionPolicy;
use sof_graph::Rng64;
use std::collections::BTreeMap;

/// Which generator produces the failure timeline.
#[derive(Clone, Debug, PartialEq)]
pub enum ProcessKind {
    /// Every `every` rounds, fail the next `count` elements of the
    /// universe in round-robin order (the deterministic descendant of the
    /// old `every`/`count` axis).
    Periodic {
        /// Fire period in rounds (≥ 1).
        every: usize,
        /// Elements failed per firing (≥ 1).
        count: usize,
    },
    /// Independent per-element Bernoulli trial each round with probability
    /// `rate` (the memoryless, Poisson-style model).
    Poisson {
        /// Per-element per-round failure probability in `[0, 1]`.
        rate: f64,
    },
    /// An explicit event list (exact reproduction of a known trace).
    Scripted(Vec<ScriptedEvent>),
}

impl ProcessKind {
    /// The spec-file name of this process.
    pub fn as_str(&self) -> &'static str {
        match self {
            ProcessKind::Periodic { .. } => "periodic",
            ProcessKind::Poisson { .. } => "poisson",
            ProcessKind::Scripted(_) => "scripted",
        }
    }
}

/// One entry of a scripted failure trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScriptedEvent {
    /// Round at which the element fails.
    pub at: usize,
    /// What fails.
    pub element: ElementRef,
    /// Rounds until repair (`0` = never repaired).
    pub repair: usize,
}

/// A compiled, validated failure configuration: the process, what it may
/// break, how long repairs take, and which protection policy answers.
#[derive(Clone, Debug, PartialEq)]
pub struct FailurePlan {
    /// The event generator.
    pub process: ProcessKind,
    /// Element scopes the generated universe draws from, in spec order
    /// (subset of `"vm"`, `"link"`, `"node"`, `"domain"`).
    pub scope: Vec<String>,
    /// Inclusive rounds-until-repair range; `(0, 0)` = failures are
    /// permanent.
    pub repair: (usize, usize),
    /// The protection policy recovering from disruptions.
    pub policy: ProtectionPolicy,
    /// Seed of the failure RNG stream (independent of the churn streams).
    pub seed: u64,
}

impl FailurePlan {
    /// Validates rates, periods and ranges, mirroring the runner's ward
    /// validation style.
    ///
    /// # Errors
    ///
    /// An actionable message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        match &self.process {
            ProcessKind::Periodic { every, count } => {
                if *every == 0 {
                    return Err("failures period must be at least 1 round, got 0".into());
                }
                if *count == 0 {
                    return Err("failures count must be at least 1 element, got 0".into());
                }
            }
            ProcessKind::Poisson { rate } => {
                if !rate.is_finite() || *rate < 0.0 || *rate > 1.0 {
                    return Err(format!(
                        "failures rate must be a finite probability in [0, 1], got {rate}"
                    ));
                }
            }
            ProcessKind::Scripted(events) => {
                if events.is_empty() {
                    return Err("scripted failures need at least one event".into());
                }
            }
        }
        if self.repair.0 > self.repair.1 {
            return Err(format!(
                "failures repair range must have lo <= hi, got [{}, {}]",
                self.repair.0, self.repair.1
            ));
        }
        for s in &self.scope {
            if !matches!(s.as_str(), "vm" | "link" | "node" | "domain") {
                return Err(format!(
                    "unknown failures scope '{s}' (expected 'vm', 'link', 'node', or 'domain')"
                ));
            }
        }
        if self.scope.is_empty() && !matches!(self.process, ProcessKind::Scripted(_)) {
            return Err("failures scope must name at least one element kind".into());
        }
        Ok(())
    }
}

/// What one round's worth of the failure process produced.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RoundEvents {
    /// Elements whose repair came due this round (restored before new
    /// failures fire).
    pub repairs: Vec<ElementRef>,
    /// Elements failing this round, with the round their repair is
    /// scheduled for (`None` = never).
    pub failures: Vec<(ElementRef, Option<usize>)>,
}

impl RoundEvents {
    /// Whether nothing happened this round.
    pub fn is_empty(&self) -> bool {
        self.repairs.is_empty() && self.failures.is_empty()
    }
}

/// The stateful generator: owns the failure RNG stream and the failed-set
/// bookkeeping. Drive it with [`advance`](FailureDriver::advance) once per
/// round, in order.
#[derive(Clone, Debug)]
pub struct FailureDriver {
    rng: Rng64,
    process: ProcessKind,
    repair: (usize, usize),
    universe: Vec<ElementRef>,
    /// Failed element → round its repair comes due (`usize::MAX` = never).
    failed: BTreeMap<ElementRef, usize>,
    /// Round-robin cursor for the periodic process.
    cursor: usize,
}

impl FailureDriver {
    /// Builds a driver over a concrete element universe (resolved from the
    /// plan's scopes by the consumer, in stable order).
    pub fn new(plan: &FailurePlan, universe: Vec<ElementRef>) -> FailureDriver {
        FailureDriver {
            rng: Rng64::seed_from(plan.seed),
            process: plan.process.clone(),
            repair: plan.repair,
            universe,
            failed: BTreeMap::new(),
            cursor: 0,
        }
    }

    /// Elements currently failed, in stable order.
    pub fn failed_elements(&self) -> impl Iterator<Item = &ElementRef> {
        self.failed.keys()
    }

    /// Produces this round's repairs and failures. Rounds must be visited
    /// in increasing order; repairs come due before new failures fire.
    pub fn advance(&mut self, round: usize) -> RoundEvents {
        let repairs: Vec<ElementRef> = self
            .failed
            .iter()
            .filter(|&(_, &due)| due <= round)
            .map(|(e, _)| e.clone())
            .collect();
        for e in &repairs {
            self.failed.remove(e);
        }
        let mut failures = Vec::new();
        match self.process.clone() {
            ProcessKind::Periodic { every, count } => {
                if round > 0 && round.is_multiple_of(every) && !self.universe.is_empty() {
                    let mut picked = 0;
                    let mut tried = 0;
                    while picked < count && tried < self.universe.len() {
                        let e = self.universe[self.cursor % self.universe.len()].clone();
                        self.cursor += 1;
                        tried += 1;
                        if self.failed.contains_key(&e) {
                            continue;
                        }
                        let due = self.draw_repair(round);
                        self.fail(e, due, &mut failures);
                        picked += 1;
                    }
                }
            }
            ProcessKind::Poisson { rate } => {
                for i in 0..self.universe.len() {
                    // The trial AND (on fire) the repair draw consume the
                    // stream regardless of the element's current state, so
                    // the trace never depends on what a policy repaired.
                    if !self.rng.chance(rate) {
                        continue;
                    }
                    let due = self.draw_repair(round);
                    let e = self.universe[i].clone();
                    if !self.failed.contains_key(&e) {
                        self.fail(e, due, &mut failures);
                    }
                }
            }
            ProcessKind::Scripted(events) => {
                for ev in events.iter().filter(|ev| ev.at == round) {
                    if self.failed.contains_key(&ev.element) {
                        continue;
                    }
                    let due = (ev.repair > 0).then(|| round + ev.repair);
                    self.fail(ev.element.clone(), due, &mut failures);
                }
            }
        }
        RoundEvents { repairs, failures }
    }

    fn fail(
        &mut self,
        e: ElementRef,
        due: Option<usize>,
        out: &mut Vec<(ElementRef, Option<usize>)>,
    ) {
        self.failed.insert(e.clone(), due.unwrap_or(usize::MAX));
        out.push((e, due));
    }

    fn draw_repair(&mut self, round: usize) -> Option<usize> {
        let (lo, hi) = self.repair;
        if hi == 0 {
            return None;
        }
        let delay = if hi > lo {
            self.rng.range(lo, hi + 1)
        } else {
            lo
        };
        Some(round + delay.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(process: ProcessKind) -> FailurePlan {
        FailurePlan {
            process,
            scope: vec!["link".into()],
            repair: (2, 4),
            policy: ProtectionPolicy::Reactive,
            seed: 97,
        }
    }

    fn universe() -> Vec<ElementRef> {
        (0..8).map(|i| ElementRef::link(i, i + 1)).collect()
    }

    fn trace(p: &FailurePlan, rounds: usize) -> Vec<(usize, RoundEvents)> {
        let mut d = FailureDriver::new(p, universe());
        (0..rounds).map(|r| (r, d.advance(r))).collect()
    }

    #[test]
    fn traces_are_pure_functions_of_seed_and_plan() {
        let p = plan(ProcessKind::Poisson { rate: 0.1 });
        assert_eq!(trace(&p, 64), trace(&p, 64));
        let mut p2 = p.clone();
        p2.seed = 98;
        assert_ne!(trace(&p, 64), trace(&p2, 64));
    }

    #[test]
    fn periodic_fires_on_schedule_and_round_robins() {
        let p = plan(ProcessKind::Periodic { every: 3, count: 1 });
        let t = trace(&p, 10);
        for (r, ev) in &t {
            let expect_fire = *r > 0 && r % 3 == 0;
            assert_eq!(!ev.failures.is_empty(), expect_fire, "round {r}: {ev:?}");
        }
        // Rounds 3, 6, 9 fail successive universe elements.
        assert_eq!(t[3].1.failures[0].0, ElementRef::link(0, 1));
        assert_eq!(t[6].1.failures[0].0, ElementRef::link(1, 2));
        assert_eq!(t[9].1.failures[0].0, ElementRef::link(2, 3));
    }

    #[test]
    fn repairs_come_due_and_elements_can_refail() {
        let p = FailurePlan {
            repair: (2, 2),
            ..plan(ProcessKind::Periodic { every: 2, count: 1 })
        };
        let mut d = FailureDriver::new(&p, universe());
        let r2 = d.advance_to(2);
        assert_eq!(r2.failures.len(), 1);
        assert_eq!(d.failed_elements().count(), 1);
        // Repair is due exactly two rounds later.
        let r4 = {
            d.advance(3);
            d.advance(4)
        };
        assert!(r4.repairs.contains(&ElementRef::link(0, 1)), "{r4:?}");
    }

    #[test]
    fn scripted_events_fire_at_their_round() {
        let events = vec![
            ScriptedEvent {
                at: 2,
                element: ElementRef::link(0, 1),
                repair: 3,
            },
            ScriptedEvent {
                at: 4,
                element: "node:5".parse().unwrap(),
                repair: 0,
            },
        ];
        let p = plan(ProcessKind::Scripted(events));
        let t = trace(&p, 8);
        assert_eq!(t[2].1.failures, vec![(ElementRef::link(0, 1), Some(5))]);
        assert_eq!(t[4].1.failures, vec![(ElementRef::Node(5), None)]);
        assert_eq!(t[5].1.repairs, vec![ElementRef::link(0, 1)]);
        assert!(t[7].1.is_empty());
    }

    #[test]
    fn plan_validation_rejects_bad_rates_and_ranges() {
        let bad = [
            plan(ProcessKind::Poisson { rate: f64::NAN }),
            plan(ProcessKind::Poisson { rate: -0.5 }),
            plan(ProcessKind::Poisson { rate: 1.5 }),
            plan(ProcessKind::Periodic { every: 0, count: 1 }),
            plan(ProcessKind::Periodic { every: 5, count: 0 }),
            FailurePlan {
                repair: (5, 2),
                ..plan(ProcessKind::Poisson { rate: 0.1 })
            },
            FailurePlan {
                scope: vec!["router".into()],
                ..plan(ProcessKind::Poisson { rate: 0.1 })
            },
            FailurePlan {
                scope: vec![],
                ..plan(ProcessKind::Poisson { rate: 0.1 })
            },
        ];
        for p in bad {
            let err = p.validate().unwrap_err();
            assert!(
                err.contains("failures") || err.contains("scripted"),
                "{err}"
            );
        }
        assert!(plan(ProcessKind::Poisson { rate: 0.02 }).validate().is_ok());
    }

    impl FailureDriver {
        /// Test helper: advance through rounds `0..=round`, returning the
        /// last round's events.
        fn advance_to(&mut self, round: usize) -> RoundEvents {
            let mut last = RoundEvents::default();
            for r in 0..=round {
                last = self.advance(r);
            }
            last
        }
    }
}

//! The spec-to-engine compiler: [`run_spec`] turns a validated
//! [`ScenarioSpec`] into a [`RunReport`] by driving the existing
//! machinery — [`sof_bench::sweep_tables`] / [`sof_bench::average_with`]
//! for one-shot workloads, [`sof_core::OnlineSession`] /
//! [`sof_core::SessionPool`] for online ones, and the flow-level QoE
//! simulator for the testbed table.
//!
//! Every numeric result is deterministic for a fixed spec + seed and any
//! thread count; only fields tagged as timings vary.

use crate::report::{
    Cell, Detail, ExtraRow, OnlineDetail, OnlineSolverStats, PoolDetail, ReportMeta, RunReport,
    Section, Table, TableRow,
};
use crate::spec::{
    ChurnSpec, FailureSpec, GridMetric, OnlineGroup, ScaleSpec, ScenarioSpec, SpecError, Workload,
};
use sof_bench::{ParamField, SweepAxis};
use sof_core::{
    fortz_thorup, EmbedMode, OnlineSession, Request, ServiceChain, SessionPool, SofInstance, Solver,
};
use sof_graph::{Cost, NodeId, Rng64};
use sof_runner::{CollectSink, JsonlSink, Record, Runner, RunnerConfig, Summary, Ward};
use sof_sim::{simulate_sessions, ChurnStream, EnvironmentProfile, PlayerConfig, Session};
use sof_topo::{build_instance, build_named, display_label, RegionsParams, Topology};
use std::time::Instant;

/// Execution knobs that are not part of the scenario itself.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunOptions {
    /// Worker threads for parallel stages (`0` = the configured default,
    /// [`sof_par::current_threads`]). Never changes numeric results.
    pub threads: usize,
    /// Include wall-clock measurements in the JSONL output.
    pub timings: bool,
    /// Phrase skip-notes in terms of the legacy binaries' flags (the
    /// shims set this to stay byte-identical to the historical output);
    /// off, notes reference the spec keys instead.
    pub legacy_notes: bool,
}

fn solver_by_name(name: &str) -> Result<Box<dyn Solver>, SpecError> {
    sof_solvers::by_name(name)
        .ok_or_else(|| SpecError(format!("solver '{name}' vanished from the registry")))
}

fn resolve_solvers(names: &[String]) -> Result<Vec<Box<dyn Solver>>, SpecError> {
    names.iter().map(|n| solver_by_name(n)).collect()
}

/// Runs a validated spec and returns the structured report.
///
/// # Errors
///
/// [`SpecError`] when the spec references something the engine cannot
/// resolve (a solver dropped from the registry, an unbuildable topology).
/// Per-point solver failures are **not** errors: they surface as missing
/// cells and warnings, exactly as the legacy binaries handled them.
pub fn run_spec(spec: &ScenarioSpec, opts: &RunOptions) -> Result<RunReport, SpecError> {
    spec.validate()?;
    match &spec.workload {
        Workload::CostCurve {
            points,
            step,
            capacity,
        } => run_cost_curve(spec, *points, *step, *capacity),
        Workload::Sweep {
            solvers,
            seeds,
            seed,
            axes,
        } => run_sweep(spec, solvers, *seeds, *seed, axes, opts),
        Workload::Grid {
            solver,
            seeds,
            seed,
            rows,
            cols,
            metrics,
        } => run_grid(spec, solver, *seeds, *seed, rows, cols, metrics, opts),
        Workload::Runtime {
            solver,
            seed,
            sizes,
            sources,
        } => run_runtime(spec, solver, *seed, sizes, sources),
        Workload::Qoe {
            solvers,
            seeds,
            seed,
        } => run_qoe(spec, solvers, *seeds, *seed),
        Workload::Online {
            seed,
            solvers,
            sessions,
            groups,
            failures,
        } => run_online(
            spec,
            *seed,
            solvers,
            *sessions,
            groups,
            failures.as_deref(),
            opts,
        ),
        Workload::ChurnAtScale(s) => run_churn_at_scale(spec, s, opts),
    }
}

/// Compiles a churn-at-scale spec into the runner's configuration.
///
/// # Errors
///
/// [`SpecError`] if the spec fails validation or its workload is not
/// `churn-at-scale`.
pub fn runner_config(spec: &ScenarioSpec, opts: &RunOptions) -> Result<RunnerConfig, SpecError> {
    spec.validate()?;
    let Workload::ChurnAtScale(s) = &spec.workload else {
        return Err(SpecError(format!(
            "runner_config needs a churn-at-scale workload, got '{}'",
            spec.workload.kind()
        )));
    };
    let mut cfg = RunnerConfig::new(spec.name.clone());
    cfg.regions = RegionsParams {
        regions: s.regions.clone(),
        gateway_links: s.gateway_links,
        pair_cost: s.pair_cost.clone(),
    };
    cfg.groups = s.groups;
    cfg.vms_per_dc = s.vms_per_dc;
    cfg.setup_scale = spec.params.setup_scale;
    cfg.churn = s.churn;
    cfg.solver = s.solver.clone();
    cfg.sofda = spec.sofda.with_seed(s.seed);
    cfg.online = spec.online.to_config(s.churn.demand_mbps);
    cfg.seed = s.seed;
    cfg.window = s.window;
    cfg.emit_events = s.emit_events;
    cfg.timings = opts.timings;
    cfg.threads = opts.threads;
    if let Some(f) = &s.failures {
        // The first listed policy; multi-policy comparison legs swap it.
        let plan = f
            .to_plan(&f.policies[0])
            .map_err(|e| SpecError(format!("'workload.failures': {e}")))?;
        cfg.failures = Some(plan);
    }
    cfg.wards = vec![Ward::MaxEvents(s.events)];
    if let Some(c) = &s.converge {
        cfg.wards.push(Ward::ConvergedCost {
            epsilon: c.epsilon,
            patience: c.patience,
        });
    }
    if let Some(secs) = s.max_seconds {
        cfg.wards
            .push(Ward::MaxWallclock(std::time::Duration::from_secs_f64(secs)));
    }
    Ok(cfg)
}

/// Runs a churn-at-scale spec, streaming every runner record to `out` as
/// JSON lines the moment it is produced — memory stays O(groups + open
/// window) no matter how many events the budget allows. Returns the
/// end-of-run totals (the same numbers as the final `summary` line).
///
/// # Errors
///
/// [`SpecError`] for invalid specs, non-`churn-at-scale` workloads, and
/// runner or sink failures.
pub fn run_churn_stream<W: std::io::Write + Send + 'static>(
    spec: &ScenarioSpec,
    opts: &RunOptions,
    out: W,
) -> Result<Summary, SpecError> {
    let cfg = runner_config(spec, opts)?;
    let policies = churn_policies(spec);
    if policies.len() <= 1 {
        let mut runner = Runner::new(cfg).map_err(SpecError)?;
        runner.add_sink(Box::new(JsonlSink::new(out)));
        return runner.run().map_err(SpecError);
    }
    // Policy-comparison run: one streamed leg per policy over the identical
    // failure trace, then a closing comparison line.
    let shared = SharedOut(std::sync::Arc::new(std::sync::Mutex::new(out)));
    let mut legs: Vec<(String, Summary)> = Vec::new();
    for policy in &policies {
        let mut leg = cfg.clone();
        if let Some(plan) = leg.failures.as_mut() {
            plan.policy = sof_survive::ProtectionPolicy::from_name(policy)
                .map_err(|e| SpecError(format!("'workload.failures.policies': {e}")))?;
        }
        let mut runner = Runner::new(leg).map_err(SpecError)?;
        runner.add_sink(Box::new(JsonlSink::new(shared.clone())));
        let summary = runner.run().map_err(SpecError)?;
        legs.push((policy.clone(), summary));
    }
    {
        let mut line = String::from("{\"type\":\"policy-comparison\",\"legs\":[");
        for (i, (policy, summary)) in legs.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            let r = summary.recovery.unwrap_or_default();
            line.push_str(&format!(
                "{{\"policy\":\"{policy}\",\"disruptions\":{},\"mean_recovery_cost\":{},\
                 \"availability\":{}}}",
                r.disruptions,
                crate::value::json_f64(r.mean_recovery_cost),
                crate::value::json_f64(r.availability),
            ));
        }
        line.push_str("]}");
        let mut w = shared.0.lock().expect("comparison stream");
        writeln!(w, "{line}").map_err(|e| SpecError(format!("stream write failed: {e}")))?;
    }
    Ok(legs.remove(0).1)
}

/// The protection policies a churn-at-scale spec's failure axis lists
/// (empty when the spec has no failure axis).
fn churn_policies(spec: &ScenarioSpec) -> Vec<String> {
    match &spec.workload {
        Workload::ChurnAtScale(s) => s
            .failures
            .as_ref()
            .map(|f| f.policies.clone())
            .unwrap_or_default(),
        _ => Vec::new(),
    }
}

/// Clonable writer handle letting several sequential runner legs share one
/// output stream.
struct SharedOut<W>(std::sync::Arc<std::sync::Mutex<W>>);

impl<W> Clone for SharedOut<W> {
    fn clone(&self) -> SharedOut<W> {
        SharedOut(self.0.clone())
    }
}

impl<W: std::io::Write> std::io::Write for SharedOut<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("shared stream").write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.0.lock().expect("shared stream").flush()
    }
}

/// The `run_spec` path for churn-at-scale: collect the window records and
/// shape them into a [`RunReport`] (markdown tables, the JSONL report
/// dialect). The full-scale streaming path is [`run_churn_stream`].
fn run_churn_at_scale(
    spec: &ScenarioSpec,
    s: &ScaleSpec,
    opts: &RunOptions,
) -> Result<RunReport, SpecError> {
    let cfg = runner_config(spec, opts)?;
    let policies = churn_policies(spec);
    // Comparison legs beyond the first rerun the identical trace under the
    // other policies; only their recovery summaries feed the report.
    let mut comparison: Vec<(String, sof_runner::RecoverySummary)> = Vec::new();
    for policy in policies.iter().skip(1) {
        let mut leg = cfg.clone();
        if let Some(plan) = leg.failures.as_mut() {
            plan.policy = sof_survive::ProtectionPolicy::from_name(policy)
                .map_err(|e| SpecError(format!("'workload.failures.policies': {e}")))?;
        }
        let leg_summary = Runner::new(leg)
            .map_err(SpecError)?
            .run()
            .map_err(SpecError)?;
        comparison.push((policy.clone(), leg_summary.recovery.unwrap_or_default()));
    }
    let mut runner = Runner::new(cfg).map_err(SpecError)?;
    let (sink, records) = CollectSink::new();
    runner.add_sink(Box::new(sink));
    let started = Instant::now();
    let summary = runner.run().map_err(SpecError)?;
    let secs = started.elapsed().as_secs_f64();
    if let (Some(first), Some(r)) = (policies.first(), summary.recovery) {
        comparison.insert(0, (first.clone(), r));
    }
    let records = records.lock().expect("collect sink");
    let columns: Vec<String> = [
        "events",
        "active",
        "retired",
        "errors",
        "full solves",
        "incremental",
        "mean cost",
        "Σ cost",
    ]
    .map(String::from)
    .to_vec();
    let mut rows = Vec::new();
    for record in records.iter() {
        let Record::Window(w) = record else { continue };
        rows.push(TableRow {
            label: w.index.to_string(),
            x: Some(w.index as f64),
            cells: vec![
                Cell::num(Some(w.events as f64), 0),
                Cell::num(Some(w.active as f64), 0),
                Cell::num(Some(w.retired as f64), 0),
                Cell::num(Some(w.errors as f64), 0),
                Cell::num(Some(w.full_solves as f64), 0),
                Cell::num(Some(w.incremental as f64), 0),
                Cell::num(Some(w.mean_cost), 2),
                Cell::num(Some(w.accumulated_cost), 1),
            ],
        });
    }
    let mut extra_rows = vec![
        summary_row("events", summary.events as f64, false),
        summary_row("windows", summary.windows as f64, false),
        summary_row("groups_seen", summary.groups_seen as f64, false),
        summary_row("retired", summary.retired as f64, false),
        summary_row("errors", summary.errors as f64, false),
        summary_row("accumulated_cost", summary.accumulated_cost, false),
        summary_row("secs", secs, true),
    ];
    if let Some(r) = summary.recovery {
        extra_rows.push(summary_row("fail_events", r.fail_events as f64, false));
        extra_rows.push(summary_row("disruptions", r.disruptions as f64, false));
        extra_rows.push(summary_row("recoveries", r.recoveries as f64, false));
        extra_rows.push(summary_row(
            "mean_recovery_cost",
            r.mean_recovery_cost,
            false,
        ));
        extra_rows.push(summary_row(
            "mean_events_to_restore",
            r.mean_events_to_restore,
            false,
        ));
        extra_rows.push(summary_row("availability", r.availability, false));
    }
    let mut sections = Vec::new();
    if comparison.len() > 1 {
        sections.push(Section {
            id: "policy-comparison".into(),
            heading: Some("Protection-policy comparison (identical failure trace)".into()),
            table: Some(Table {
                col0: "policy".into(),
                columns: [
                    "disruptions",
                    "immediate",
                    "mean recovery cost",
                    "mean events to restore",
                    "availability",
                ]
                .map(String::from)
                .to_vec(),
                rows: comparison
                    .iter()
                    .map(|(policy, r)| TableRow {
                        label: policy.clone(),
                        x: None,
                        cells: vec![
                            Cell::num(Some(r.disruptions as f64), 0),
                            Cell::num(Some(r.immediate as f64), 0),
                            Cell::num(Some(r.mean_recovery_cost), 2),
                            Cell::num(Some(r.mean_events_to_restore), 2),
                            Cell::num(Some(r.availability), 4),
                        ],
                    })
                    .collect(),
            }),
            extra_rows: Vec::new(),
            detail: Detail::None,
        });
    }
    Ok(RunReport {
        meta: meta(
            spec,
            format!(
                "{} — {} ({} concurrent groups, {} regions, stop: {})",
                spec.label,
                spec.title,
                s.groups,
                s.regions.len(),
                summary.stop.as_str()
            ),
            s.seed,
            1,
            vec![s.solver.clone()],
        ),
        sections: {
            let mut all = vec![Section {
                id: "windows".into(),
                heading: None,
                table: Some(Table {
                    col0: "window".into(),
                    columns,
                    rows,
                }),
                extra_rows,
                detail: Detail::None,
            }];
            all.extend(sections);
            all
        },
    })
}

fn summary_row(metric: &str, value: f64, timing: bool) -> ExtraRow {
    ExtraRow {
        x: "summary".into(),
        col: "run".into(),
        metric: metric.into(),
        value: Some(value),
        timing,
    }
}

fn meta(
    spec: &ScenarioSpec,
    heading: String,
    seed: u64,
    seeds: u64,
    solvers: Vec<String>,
) -> ReportMeta {
    ReportMeta {
        spec: spec.name.clone(),
        heading,
        seed,
        seeds,
        solvers,
    }
}

// ---------------------------------------------------------------------------
// cost-curve (Fig. 7)
// ---------------------------------------------------------------------------

fn run_cost_curve(
    spec: &ScenarioSpec,
    points: usize,
    step: f64,
    capacity: f64,
) -> Result<RunReport, SpecError> {
    let rows = (0..=points)
        .map(|i| {
            let l = i as f64 * step;
            TableRow {
                label: format!("{l:.2}"),
                x: Some(l),
                cells: vec![Cell::num(Some(fortz_thorup(l, capacity).value()), 3)],
            }
        })
        .collect();
    Ok(RunReport {
        meta: meta(
            spec,
            format!("{} — {}", spec.label, spec.title),
            0,
            1,
            Vec::new(),
        ),
        sections: vec![Section {
            id: "curve".into(),
            heading: None,
            table: Some(Table {
                col0: "load".into(),
                columns: vec!["cost".into()],
                rows,
            }),
            extra_rows: Vec::new(),
            detail: Detail::None,
        }],
    })
}

// ---------------------------------------------------------------------------
// sweep (Figs. 8–10)
// ---------------------------------------------------------------------------

fn sweep_heading(spec: &ScenarioSpec, seeds: u64) -> String {
    if spec.topology.name == "inet" {
        let nodes = spec.topology.nodes.unwrap_or(5000);
        format!(
            "{} — {} ({nodes} nodes, seeds = {seeds})",
            spec.label, spec.title
        )
    } else {
        format!("{} — {} (seeds = {seeds})", spec.label, spec.title)
    }
}

fn run_sweep(
    spec: &ScenarioSpec,
    solver_names: &[String],
    seeds: u64,
    seed: u64,
    axes: &[SweepAxis],
    opts: &RunOptions,
) -> Result<RunReport, SpecError> {
    let topo = build_named(&spec.topology, seed).map_err(SpecError)?;
    let algos = resolve_solvers(solver_names)?;
    let topo_label = display_label(&spec.topology.name).to_string();
    let tables = sof_bench::sweep_tables(
        &topo,
        &spec.params,
        &spec.sofda,
        &algos,
        axes,
        seeds,
        seed,
        opts.threads,
    );
    // Section ids must be unique for JSONL consumers even when two axes
    // share a label (e.g. the same field swept over two value sets).
    let mut seen_ids: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    let sections = tables
        .into_iter()
        .map(|t| {
            let base = format!("cost vs {}", t.axis);
            let n = seen_ids.entry(base.clone()).or_insert(0);
            *n += 1;
            let id = if *n == 1 {
                base
            } else {
                format!("{base} #{n}")
            };
            Section {
                id,
                heading: Some(format!(
                    "{} — cost vs {} ({topo_label})",
                    spec.label, t.axis
                )),
                table: Some(Table {
                    col0: t.axis.clone(),
                    columns: solver_names.to_vec(),
                    rows: t
                        .values
                        .iter()
                        .zip(&t.rows)
                        .map(|(&v, row)| TableRow {
                            label: v.to_string(),
                            x: Some(v as f64),
                            cells: row.iter().map(|&c| Cell::num(c, 1)).collect(),
                        })
                        .collect(),
                }),
                extra_rows: Vec::new(),
                detail: Detail::None,
            }
        })
        .collect();
    Ok(RunReport {
        meta: meta(
            spec,
            sweep_heading(spec, seeds),
            seed,
            seeds,
            solver_names.to_vec(),
        ),
        sections,
    })
}

// ---------------------------------------------------------------------------
// grid (Fig. 11)
// ---------------------------------------------------------------------------

fn grid_row_label(field: ParamField, v: usize) -> String {
    match field {
        ParamField::SetupScale => format!("{v}x"),
        _ => v.to_string(),
    }
}

fn grid_col_label(field: ParamField, v: usize) -> String {
    match field {
        ParamField::ChainLen => format!("|C|={v}"),
        ParamField::Sources => format!("|S|={v}"),
        ParamField::Destinations => format!("|D|={v}"),
        ParamField::VmCount => format!("VMs={v}"),
        ParamField::SetupScale => format!("{v}x"),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_grid(
    spec: &ScenarioSpec,
    solver_name: &str,
    seeds: u64,
    seed: u64,
    rows: &SweepAxis,
    cols: &SweepAxis,
    metrics: &[GridMetric],
    opts: &RunOptions,
) -> Result<RunReport, SpecError> {
    let topo = build_named(&spec.topology, seed).map_err(SpecError)?;
    let solver = solver_by_name(solver_name)?;
    let topo_label = display_label(&spec.topology.name);
    // One measurement per grid cell, shared by every metric (the legacy
    // binary re-ran the averaging per metric; results are deterministic,
    // so one pass is bit-identical and twice as fast).
    let mut measured: Vec<Vec<Option<(f64, f64, f64)>>> = Vec::with_capacity(rows.values.len());
    for &rv in &rows.values {
        let mut row = Vec::with_capacity(cols.values.len());
        for &cv in &cols.values {
            let make = |s: u64| {
                let mut p = spec.params.with_seed(s);
                rows.field.apply(&mut p, rv);
                cols.field.apply(&mut p, cv);
                build_instance(&topo, &p)
            };
            row.push(sof_bench::average_with(
                solver.as_ref(),
                seeds,
                seed,
                &spec.sofda,
                make,
                opts.threads,
            ));
        }
        measured.push(row);
    }
    let sections = metrics
        .iter()
        .map(|metric| Section {
            id: metric.display().to_string(),
            heading: Some(format!("{} — {}", spec.label, metric.display())),
            table: Some(Table {
                col0: rows.label.clone(),
                columns: cols
                    .values
                    .iter()
                    .map(|&v| grid_col_label(cols.field, v))
                    .collect(),
                rows: rows
                    .values
                    .iter()
                    .zip(&measured)
                    .map(|(&rv, row)| TableRow {
                        label: grid_row_label(rows.field, rv),
                        x: Some(rv as f64),
                        cells: row
                            .iter()
                            .map(|m| match metric {
                                GridMetric::Cost => Cell::num(m.map(|(c, _, _)| c), 1),
                                GridMetric::UsedVms => Cell::num(m.map(|(_, v, _)| v), 2),
                            })
                            .collect(),
                    })
                    .collect(),
            }),
            extra_rows: Vec::new(),
            detail: Detail::None,
        })
        .collect();
    Ok(RunReport {
        meta: meta(
            spec,
            format!(
                "{} — {} ({solver_name}, {topo_label}, seeds = {seeds})",
                spec.label, spec.title
            ),
            seed,
            seeds,
            vec![solver_name.to_string()],
        ),
        sections,
    })
}

// ---------------------------------------------------------------------------
// runtime (Table I)
// ---------------------------------------------------------------------------

fn run_runtime(
    spec: &ScenarioSpec,
    solver_name: &str,
    seed: u64,
    sizes: &[usize],
    sources: &[usize],
) -> Result<RunReport, SpecError> {
    let solver = solver_by_name(solver_name)?;
    let mut rows = Vec::with_capacity(sizes.len());
    let mut extra_rows = Vec::new();
    for &nodes in sizes {
        let links = nodes * 2;
        let dcs = (nodes * 2) / 5;
        let topo = sof_topo::inet_sized(nodes, links, dcs, seed);
        let mut cells = Vec::with_capacity(sources.len());
        for &s in sources {
            let mut p = spec.params.with_seed(seed + s as u64);
            p.sources = s;
            let inst = build_instance(&topo, &p);
            match sof_bench::run(solver.as_ref(), &inst, &spec.sofda) {
                Some(r) => {
                    cells.push(Cell::timing(r.millis / 1e3, 2));
                    extra_rows.push(ExtraRow {
                        x: nodes.to_string(),
                        col: format!("|S|={s}"),
                        metric: "cost".into(),
                        value: Some(r.cost),
                        timing: false,
                    });
                }
                None => cells.push(Cell::num(None, 2)),
            }
        }
        rows.push(TableRow {
            label: nodes.to_string(),
            x: Some(nodes as f64),
            cells,
        });
    }
    Ok(RunReport {
        meta: meta(
            spec,
            format!("{} — {}", spec.label, spec.title),
            seed,
            1,
            vec![solver_name.to_string()],
        ),
        sections: vec![Section {
            id: "runtime".into(),
            heading: None,
            table: Some(Table {
                col0: "|V|".into(),
                columns: sources.iter().map(|s| format!("|S|={s}")).collect(),
                rows,
            }),
            extra_rows,
            detail: Detail::None,
        }],
    })
}

// ---------------------------------------------------------------------------
// qoe (Table II)
// ---------------------------------------------------------------------------

fn run_qoe(
    spec: &ScenarioSpec,
    solver_names: &[String],
    seeds: u64,
    base: u64,
) -> Result<RunReport, SpecError> {
    let algos = resolve_solvers(solver_names)?;
    let player = PlayerConfig::default();
    let mut rows = Vec::with_capacity(algos.len());
    for algo in &algos {
        let mut sums = [0.0f64; 4];
        let mut n = 0.0;
        for i in 0..seeds {
            let seed = base + i;
            let mut rng = Rng64::seed_from(seed);
            let topo = sof_topo::testbed();
            // Build the instance: every node may host one VNF (paper
            // §VIII-D), costs uniform; two random sources, four random
            // destinations.
            let mut net = sof_core::Network::all_switches(topo.graph.clone());
            for v in 0..14 {
                let vm = net.add_node(sof_core::NodeKind::Vm, Cost::new(1.0));
                net.graph_mut().add_edge(vm, NodeId::new(v), Cost::ZERO);
            }
            let picks = rng.sample_indices(14, 6);
            let inst = SofInstance::new(
                net,
                Request::new(
                    vec![NodeId::new(picks[0]), NodeId::new(picks[1])],
                    picks[2..6].iter().map(|&i| NodeId::new(i)).collect(),
                    ServiceChain::from_names(["transcoder", "watermark"]),
                ),
            )
            .expect("valid instance");
            let Some(r) = sof_bench::run(algo.as_ref(), &inst, &spec.sofda.with_seed(seed)) else {
                continue;
            };
            let forest = r.outcome.expect("present").forest;
            // Available bandwidth 4.5–9 Mbps per link (congestion
            // emulation); VM stub links are uncongested.
            let mut caps: std::collections::HashMap<sof_graph::EdgeId, f64> =
                std::collections::HashMap::new();
            for (e, edge) in inst.network.graph().edges() {
                let stub = edge.u.index() >= 14 || edge.v.index() >= 14;
                caps.insert(
                    e,
                    if stub {
                        1000.0
                    } else {
                        rng.range_f64(4.5, 9.0)
                    },
                );
            }
            // Multicast: one download session per service tree (walks from
            // the same source share link bandwidth as a single stream copy).
            let mut by_tree: std::collections::BTreeMap<
                NodeId,
                std::collections::BTreeSet<sof_graph::EdgeId>,
            > = Default::default();
            for w in &forest.walks {
                let entry = by_tree.entry(w.source).or_default();
                for p in w.nodes.windows(2) {
                    if let Some(e) = inst.network.graph().edge_between(p[0], p[1]) {
                        entry.insert(e);
                    }
                }
            }
            let sessions: Vec<Session> = by_tree
                .values()
                .map(|links| Session {
                    links: links.iter().copied().collect(),
                })
                .collect();
            for (ei, env) in [
                EnvironmentProfile::hardware_testbed(),
                EnvironmentProfile::emulab(),
            ]
            .iter()
            .enumerate()
            {
                let qoe = simulate_sessions(&sessions, &caps, &player, env, 1.25);
                let fin: Vec<_> = qoe
                    .iter()
                    .filter(|q| q.startup_latency_s.is_finite())
                    .collect();
                if fin.is_empty() {
                    continue;
                }
                let su: f64 =
                    fin.iter().map(|q| q.startup_latency_s).sum::<f64>() / fin.len() as f64;
                let rb: f64 = fin.iter().map(|q| q.rebuffering_s).sum::<f64>() / fin.len() as f64;
                sums[ei] += su;
                sums[2 + ei] += rb;
            }
            n += 1.0;
        }
        rows.push(TableRow {
            label: algo.name().to_string(),
            x: None,
            cells: sums
                .iter()
                .map(|&s| Cell {
                    value: Some(s / n),
                    prec: 1,
                    suffix: " s",
                    timing: false,
                })
                .collect(),
        });
    }
    Ok(RunReport {
        meta: meta(
            spec,
            format!("{} — {}", spec.label, spec.title),
            base,
            seeds,
            solver_names.to_vec(),
        ),
        sections: vec![Section {
            id: "qoe".into(),
            heading: None,
            table: Some(Table {
                col0: "Algorithm".into(),
                columns: vec![
                    "Startup (ours)".into(),
                    "Startup (emulab)".into(),
                    "Rebuffer (ours)".into(),
                    "Rebuffer (emulab)".into(),
                ],
                rows,
            }),
            extra_rows: Vec::new(),
            detail: Detail::None,
        }],
    })
}

// ---------------------------------------------------------------------------
// online (Fig. 12)
// ---------------------------------------------------------------------------

/// Fails up to `count` VMs currently carrying VNFs in the session
/// (deterministically: the lowest-id enabled VMs). Returns how many were
/// actually failed.
fn inject_vm_failures(session: &mut OnlineSession, count: usize) -> usize {
    let Some(used) = session.forest().and_then(|f| f.enabled_vms().ok()) else {
        return 0;
    };
    let victims: Vec<NodeId> = used.keys().copied().take(count).collect();
    let mut injected = 0;
    for vm in victims {
        if session.fail_vm(vm).is_ok() {
            injected += 1;
        }
    }
    injected
}

fn group_topology(
    spec: &ScenarioSpec,
    group: &OnlineGroup,
    seed: u64,
) -> Result<Topology, SpecError> {
    let t = group.topology.as_ref().unwrap_or(&spec.topology);
    build_named(t, seed).map_err(SpecError)
}

fn group_instance(
    spec: &ScenarioSpec,
    group: &OnlineGroup,
    topo: &Topology,
    seed: u64,
) -> SofInstance {
    let mut p = spec.params.with_seed(seed);
    p.vm_count = topo.dc_nodes.len() * group.vms_per_dc;
    p.chain_len = group.churn.chain_len;
    build_instance(topo, &p)
}

fn run_online(
    spec: &ScenarioSpec,
    seed: u64,
    solver_names: &[String],
    sessions: usize,
    groups: &[OnlineGroup],
    failures: Option<&FailureSpec>,
    opts: &RunOptions,
) -> Result<RunReport, SpecError> {
    let heading = if sessions > 1 {
        format!(
            "{} — {} ({sessions} concurrent sessions per topology)",
            spec.label, spec.title
        )
    } else {
        format!(
            "{} — {} (accumulative cost, viewer churn)",
            spec.label, spec.title
        )
    };
    let mut report_solvers: Vec<String> = solver_names.to_vec();
    if sessions == 1 && groups.iter().any(|g| g.scratch) {
        report_solvers.insert(0, "SOFDA (scratch)".into());
    }
    let mut sections = Vec::with_capacity(groups.len());
    for (gi, group) in groups.iter().enumerate() {
        let section = if sessions > 1 {
            run_pool_group(
                spec,
                gi,
                group,
                seed,
                solver_names,
                sessions,
                failures,
                opts,
            )?
        } else {
            run_single_group(spec, gi, group, seed, solver_names, failures, opts)?
        };
        sections.push(section);
    }
    Ok(RunReport {
        meta: meta(spec, heading, seed, 1, report_solvers),
        sections,
    })
}

fn section_id(gi: usize, topo_name: &str) -> String {
    format!("group{gi}:{topo_name}")
}

#[allow(clippy::too_many_arguments)]
fn run_single_group(
    spec: &ScenarioSpec,
    gi: usize,
    group: &OnlineGroup,
    seed: u64,
    solver_names: &[String],
    failures: Option<&FailureSpec>,
    opts: &RunOptions,
) -> Result<Section, SpecError> {
    let topo = group_topology(spec, group, seed)?;
    if group.requests == 0 {
        return Ok(Section {
            id: section_id(gi, topo.name),
            heading: Some(format!(
                "{} — {} (0 arrivals requested — skipped)",
                spec.label, topo.name
            )),
            table: None,
            extra_rows: Vec::new(),
            detail: Detail::None,
        });
    }
    let churn: ChurnSpec = group.churn.clone();
    let mut stream = ChurnStream::new(churn.to_params(), topo.graph.node_count(), seed);
    let mut events = vec![stream.current().clone()];
    while events.len() < group.requests {
        events.push(stream.next_request());
    }
    let online_config = spec.online.to_config(stream.demand());

    let mut labels: Vec<String> = Vec::new();
    let mut engines: Vec<OnlineSession> = Vec::new();
    if group.scratch {
        labels.push("SOFDA (scratch)".into());
        engines.push(OnlineSession::new(
            group_instance(spec, group, &topo, seed),
            solver_by_name("SOFDA")?,
            spec.sofda.with_seed(seed),
            online_config.with_mode(EmbedMode::FromScratch),
        ));
    }
    for name in solver_names {
        let solver = solver_by_name(name)?;
        labels.push(solver.name().into());
        engines.push(OnlineSession::new(
            group_instance(spec, group, &topo, seed),
            solver,
            spec.sofda.with_seed(seed),
            online_config,
        ));
    }

    let mut stats: Vec<OnlineSolverStats> = labels
        .iter()
        .map(|l| OnlineSolverStats {
            label: l.clone(),
            ..OnlineSolverStats::default()
        })
        .collect();
    let mut rows = Vec::new();
    let mut warnings = Vec::new();
    let mut arrival_failures = 0usize;
    let mut vm_failures = 0usize;
    for (ai, request) in events.iter().enumerate() {
        let arrival = ai + 1;
        for (si, session) in engines.iter_mut().enumerate() {
            match session.arrive(request.clone()) {
                Ok(report) => {
                    let t = &mut stats[si];
                    if report.rebuilt {
                        t.solve_ms += report.millis;
                        t.solve_n += 1;
                    } else {
                        t.inc_ms += report.millis;
                        t.inc_n += 1;
                    }
                }
                Err(e) => {
                    arrival_failures += 1;
                    warnings.push(format!(
                        "{} failed on {} arrival {arrival}: {e}",
                        labels[si], topo.name
                    ));
                }
            }
        }
        if let Some(f) = failures {
            if arrival.is_multiple_of(f.every) && arrival < events.len() {
                for session in engines.iter_mut() {
                    vm_failures += inject_vm_failures(session, f.count);
                }
            }
        }
        if arrival % 5 == 0 || arrival == events.len() {
            rows.push(TableRow {
                label: arrival.to_string(),
                x: Some(arrival as f64),
                cells: engines
                    .iter()
                    .map(|s| Cell::num(Some(s.accumulated_cost()), 0))
                    .collect(),
            });
        }
    }
    for (session, t) in engines.iter().zip(&mut stats) {
        let st = session.stats();
        t.full_solves = st.full_solves;
        t.incremental_events = st.incremental_events;
        t.joins = st.joins;
        t.leaves = st.leaves;
        t.fallbacks = st.fallbacks;
        let eng = session.instance().network.paths().stats();
        t.engine_hits = eng.hits;
        t.engine_misses = eng.misses;
        t.engine_stale = eng.stale;
        t.engine_repairs = eng.repairs;
        t.engine_partial_repairs = eng.partial_repairs;
    }
    let suffix = if group.scratch {
        ""
    } else if opts.legacy_notes {
        // The historical fig12 wording, kept verbatim for shim parity.
        "; from-scratch baseline skipped, pass --scratch 2 to run it"
    } else {
        "; from-scratch baseline skipped (set scratch = true in the spec to run it)"
    };
    Ok(Section {
        id: section_id(gi, topo.name),
        heading: Some(format!(
            "{} — {} ({} arrivals, viewer churn{suffix})",
            spec.label, topo.name, group.requests
        )),
        table: Some(Table {
            col0: "#arrivals".into(),
            columns: labels,
            rows,
        }),
        extra_rows: Vec::new(),
        detail: Detail::Online(OnlineDetail {
            scratch: group.scratch,
            failures: arrival_failures,
            vm_failures,
            sessions: stats,
            warnings,
        }),
    })
}

#[allow(clippy::too_many_arguments)]
fn run_pool_group(
    spec: &ScenarioSpec,
    gi: usize,
    group: &OnlineGroup,
    seed: u64,
    solver_names: &[String],
    sessions: usize,
    failures: Option<&FailureSpec>,
    opts: &RunOptions,
) -> Result<Section, SpecError> {
    let topo = group_topology(spec, group, seed)?;
    if group.requests == 0 {
        return Ok(Section {
            id: section_id(gi, topo.name),
            heading: Some(format!(
                "{} — {} (0 arrivals requested — skipped)",
                spec.label, topo.name
            )),
            table: None,
            extra_rows: Vec::new(),
            detail: Detail::None,
        });
    }
    let solver_name = solver_names.first().map(String::as_str).unwrap_or("SOFDA");
    let churn = group.churn.to_params();
    let mut streams: Vec<ChurnStream> = (0..sessions)
        .map(|g| ChurnStream::new(churn, topo.graph.node_count(), seed + g as u64))
        .collect();
    let engines: Vec<OnlineSession> = (0..sessions)
        .map(|g| -> Result<OnlineSession, SpecError> {
            let group_seed = seed + g as u64;
            Ok(OnlineSession::new(
                group_instance(spec, group, &topo, group_seed),
                solver_by_name(solver_name)?,
                spec.sofda.with_seed(group_seed),
                spec.online.to_config(churn.base.demand_mbps),
            ))
        })
        .collect::<Result<_, _>>()?;
    let mut pool = SessionPool::new(engines).with_threads(opts.threads);
    let mut rows = Vec::new();
    let t0 = Instant::now();
    let mut arrival_failures = 0usize;
    let mut vm_failures = 0usize;
    for step in 0..group.requests {
        let snapshots: Vec<Request> = streams
            .iter_mut()
            .map(|s| {
                if step == 0 {
                    s.current().clone()
                } else {
                    s.next_request()
                }
            })
            .collect();
        arrival_failures += pool
            .arrive_each(&snapshots)
            .iter()
            .filter(|r| r.is_err())
            .count();
        let arrival = step + 1;
        if let Some(f) = failures {
            if arrival.is_multiple_of(f.every) && arrival < group.requests {
                for session in pool.sessions_mut() {
                    vm_failures += inject_vm_failures(session, f.count);
                }
            }
        }
        if arrival % 5 == 0 || arrival == group.requests {
            let total = pool.total_accumulated_cost();
            rows.push(TableRow {
                label: arrival.to_string(),
                x: Some(arrival as f64),
                cells: vec![
                    Cell::num(Some(total), 0),
                    Cell::num(Some(total / sessions as f64), 0),
                ],
            });
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    let solves: usize = pool.sessions().iter().map(|s| s.stats().full_solves).sum();
    let incremental: usize = pool
        .sessions()
        .iter()
        .map(|s| s.stats().incremental_events)
        .sum();
    // Report the worker count the pool actually ran with: the explicit
    // override when given, the configured default otherwise.
    let worker_count = if opts.threads == 0 {
        sof_par::current_threads()
    } else {
        sof_par::resolve_threads(opts.threads)
    };
    Ok(Section {
        id: section_id(gi, topo.name),
        heading: Some(format!(
            "{} — {} ({sessions} concurrent sessions × {} arrivals, {worker_count} threads)",
            spec.label, topo.name, group.requests,
        )),
        table: Some(Table {
            col0: "#arrivals".into(),
            columns: vec!["Σ accumulated cost".into(), "mean cost/session".into()],
            rows,
        }),
        extra_rows: Vec::new(),
        detail: Detail::Pool(PoolDetail {
            groups: sessions,
            requests: group.requests,
            secs,
            solves,
            incremental,
            failures: arrival_failures,
            vm_failures,
        }),
    })
}

//! Single-source and multi-source Dijkstra shortest paths.

use crate::{Cost, EdgeId, Graph, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of a (multi-source) Dijkstra run.
///
/// Stores, for every node, the distance to the closest source, the parent
/// hop on a shortest path, and which source ("site") it is closest to — the
/// latter turns the structure into a Voronoi partition, which is what
/// Mehlhorn's Steiner approximation consumes.
///
/// # Examples
///
/// ```
/// use sof_graph::{Graph, Cost, NodeId, ShortestPaths};
///
/// let mut g = Graph::with_nodes(3);
/// g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(1.0));
/// g.add_edge(NodeId::new(1), NodeId::new(2), Cost::new(2.0));
/// let sp = ShortestPaths::from_source(&g, NodeId::new(0));
/// assert_eq!(sp.dist(NodeId::new(2)), Cost::new(3.0));
/// assert_eq!(
///     sp.path_to(NodeId::new(2)).unwrap(),
///     vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]
/// );
/// ```
#[derive(Clone, Debug)]
pub struct ShortestPaths {
    dist: Vec<Cost>,
    parent: Vec<Option<(NodeId, EdgeId)>>,
    site: Vec<Option<NodeId>>,
}

impl ShortestPaths {
    /// Runs Dijkstra from a single source.
    pub fn from_source(graph: &Graph, source: NodeId) -> ShortestPaths {
        ShortestPaths::from_sources(graph, std::iter::once(source))
    }

    /// Runs Dijkstra from several sources at once.
    ///
    /// Every node is labelled with its closest source (`site`).
    ///
    /// # Panics
    ///
    /// Panics if any source is out of range.
    pub fn from_sources<I>(graph: &Graph, sources: I) -> ShortestPaths
    where
        I: IntoIterator<Item = NodeId>,
    {
        let n = graph.node_count();
        let mut dist = vec![Cost::INFINITY; n];
        let mut parent = vec![None; n];
        let mut site = vec![None; n];
        let mut heap = BinaryHeap::new();
        for s in sources {
            assert!(s.index() < n, "source {s} out of range");
            if dist[s.index()] > Cost::ZERO {
                dist[s.index()] = Cost::ZERO;
                site[s.index()] = Some(s);
                heap.push(Reverse((Cost::ZERO, s)));
            }
        }
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u.index()] {
                continue;
            }
            for (v, e) in graph.neighbors(u) {
                let nd = d + graph.edge_cost(e);
                if nd < dist[v.index()] {
                    dist[v.index()] = nd;
                    parent[v.index()] = Some((u, e));
                    site[v.index()] = site[u.index()];
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        ShortestPaths { dist, parent, site }
    }

    /// Distance from the closest source to `v`.
    #[inline]
    pub fn dist(&self, v: NodeId) -> Cost {
        self.dist[v.index()]
    }

    /// The source closest to `v`, or `None` if `v` is unreachable.
    #[inline]
    pub fn site(&self, v: NodeId) -> Option<NodeId> {
        self.site[v.index()]
    }

    /// Parent hop of `v` on its shortest path, or `None` at sources and
    /// unreachable nodes.
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<(NodeId, EdgeId)> {
        self.parent[v.index()]
    }

    /// Returns the shortest path from the closest source to `v` as a node
    /// sequence (source first), or `None` if `v` is unreachable.
    pub fn path_to(&self, v: NodeId) -> Option<Vec<NodeId>> {
        if !self.dist[v.index()].is_finite() {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some((p, _)) = self.parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// Returns the edges of the shortest path to `v` (in source→`v` order).
    pub fn edges_to(&self, v: NodeId) -> Option<Vec<EdgeId>> {
        if !self.dist[v.index()].is_finite() {
            return None;
        }
        let mut edges = Vec::new();
        let mut cur = v;
        while let Some((p, e)) = self.parent[cur.index()] {
            edges.push(e);
            cur = p;
        }
        edges.reverse();
        Some(edges)
    }

    /// Number of nodes covered by this run.
    pub fn len(&self) -> usize {
        self.dist.len()
    }

    /// Returns `true` if the run covered no nodes.
    pub fn is_empty(&self) -> bool {
        self.dist.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 -1- 1 -1- 2
    ///  \----5----/     plus isolated node 3
    fn diamond() -> Graph {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(1.0));
        g.add_edge(NodeId::new(1), NodeId::new(2), Cost::new(1.0));
        g.add_edge(NodeId::new(0), NodeId::new(2), Cost::new(5.0));
        g
    }

    #[test]
    fn single_source_distances() {
        let g = diamond();
        let sp = ShortestPaths::from_source(&g, NodeId::new(0));
        assert_eq!(sp.dist(NodeId::new(0)), Cost::ZERO);
        assert_eq!(sp.dist(NodeId::new(2)), Cost::new(2.0));
        assert_eq!(sp.dist(NodeId::new(3)), Cost::INFINITY);
        assert_eq!(sp.path_to(NodeId::new(3)), None);
    }

    #[test]
    fn path_reconstruction() {
        let g = diamond();
        let sp = ShortestPaths::from_source(&g, NodeId::new(0));
        let path = sp.path_to(NodeId::new(2)).unwrap();
        assert_eq!(path, vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
        let edges = sp.edges_to(NodeId::new(2)).unwrap();
        assert_eq!(edges.len(), 2);
        let total: Cost = edges.iter().map(|&e| g.edge_cost(e)).sum();
        assert_eq!(total, Cost::new(2.0));
    }

    #[test]
    fn multi_source_voronoi() {
        let mut g = Graph::with_nodes(5);
        // 0 -1- 1 -1- 2 -1- 3 -1- 4; sources 0 and 4.
        for i in 0..4 {
            g.add_edge(NodeId::new(i), NodeId::new(i + 1), Cost::new(1.0));
        }
        let sp = ShortestPaths::from_sources(&g, [NodeId::new(0), NodeId::new(4)]);
        assert_eq!(sp.site(NodeId::new(1)), Some(NodeId::new(0)));
        assert_eq!(sp.site(NodeId::new(3)), Some(NodeId::new(4)));
        assert_eq!(sp.dist(NodeId::new(2)), Cost::new(2.0));
        // Sites of the sources themselves.
        assert_eq!(sp.site(NodeId::new(0)), Some(NodeId::new(0)));
        assert_eq!(sp.site(NodeId::new(4)), Some(NodeId::new(4)));
    }

    #[test]
    fn duplicate_sources_are_fine() {
        let g = diamond();
        let sp = ShortestPaths::from_sources(&g, [NodeId::new(0), NodeId::new(0)]);
        assert_eq!(sp.dist(NodeId::new(1)), Cost::new(1.0));
    }

    #[test]
    fn zero_cost_edges() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId::new(0), NodeId::new(1), Cost::ZERO);
        g.add_edge(NodeId::new(1), NodeId::new(2), Cost::ZERO);
        let sp = ShortestPaths::from_source(&g, NodeId::new(0));
        assert_eq!(sp.dist(NodeId::new(2)), Cost::ZERO);
        assert_eq!(sp.path_to(NodeId::new(2)).unwrap().len(), 3);
    }
}

//! Fig. 7: the convex Fortz–Thorup cost function (p = 1).
use sof_bench::{print_header, print_row, Args};

fn main() {
    let _ = Args::parse(
        "fig7 — the convex Fortz–Thorup cost function (capacity p = 1)",
        &[],
    );
    println!("# Fig. 7 — cost function (capacity p = 1)\n");
    print_header(&["load", "cost"]);
    for i in 0..=24 {
        let l = i as f64 * 0.05;
        print_row(&[
            format!("{l:.2}"),
            format!("{:.3}", sof_core::fortz_thorup(l, 1.0)),
        ]);
    }
}

//! Recovery and availability accounting.
//!
//! One [`RecoveryMetrics`] accumulates over a run (or one policy leg of a
//! comparison): how many elements failed, how many session disruptions
//! resulted, what each recovery cost, how long groups stayed dark, and the
//! availability ratio those durations imply.

/// Counters for one run's failure/recovery story.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RecoveryMetrics {
    /// Element failures applied.
    pub fail_events: usize,
    /// Element repairs applied.
    pub repair_events: usize,
    /// Session-level disruptions (a failure that broke ≥ 1 standing walk).
    pub disruptions: usize,
    /// Disruptions recovered within their failure round (backup/standby).
    pub immediate: usize,
    /// Disruptions whose recovery has completed (immediate or deferred).
    pub recoveries: usize,
    /// Total cost of installed recovery reconfigurations.
    pub recovery_cost_sum: f64,
    /// Σ events-to-restore over completed recoveries (0 for immediate).
    pub events_to_restore_sum: usize,
    /// Destination×round samples spent disconnected.
    pub disconnected_dest_rounds: usize,
    /// Destination×round samples observed while failures were active.
    pub dest_rounds: usize,
    /// Wall-clock milliseconds spent in recovery work (only populated
    /// under `--timings`).
    pub recovery_millis: f64,
}

impl RecoveryMetrics {
    /// Records an immediate (same-round) recovery.
    pub fn record_immediate(&mut self, cost: f64) {
        self.disruptions += 1;
        self.immediate += 1;
        self.recoveries += 1;
        self.recovery_cost_sum += cost;
    }

    /// Records the start of a deferred (reactive) recovery.
    pub fn record_deferred(&mut self) {
        self.disruptions += 1;
    }

    /// Closes a deferred recovery: the rebuild happened `events_elapsed`
    /// group events after the disruption, at `cost`.
    pub fn record_restore(&mut self, events_elapsed: usize, cost: f64) {
        self.recoveries += 1;
        self.recovery_cost_sum += cost;
        self.events_to_restore_sum += events_elapsed;
    }

    /// Mean cost per completed recovery.
    pub fn mean_recovery_cost(&self) -> f64 {
        if self.recoveries == 0 {
            0.0
        } else {
            self.recovery_cost_sum / self.recoveries as f64
        }
    }

    /// Mean group events until service was restored (0 when every
    /// recovery was immediate).
    pub fn mean_events_to_restore(&self) -> f64 {
        if self.recoveries == 0 {
            0.0
        } else {
            self.events_to_restore_sum as f64 / self.recoveries as f64
        }
    }

    /// Fraction of destination×round samples spent connected (1.0 when no
    /// samples were taken).
    pub fn availability(&self) -> f64 {
        if self.dest_rounds == 0 {
            1.0
        } else {
            1.0 - self.disconnected_dest_rounds as f64 / self.dest_rounds as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_and_availability() {
        let mut m = RecoveryMetrics::default();
        assert_eq!(m.mean_recovery_cost(), 0.0);
        assert_eq!(m.availability(), 1.0);

        m.record_immediate(10.0);
        m.record_deferred();
        m.record_restore(4, 30.0);
        assert_eq!(m.disruptions, 2);
        assert_eq!(m.recoveries, 2);
        assert_eq!(m.mean_recovery_cost(), 20.0);
        assert_eq!(m.mean_events_to_restore(), 2.0);

        m.dest_rounds = 100;
        m.disconnected_dest_rounds = 25;
        assert_eq!(m.availability(), 0.75);
    }
}

//! Fig. 9: Cogent one-time deployment sweeps.
use sof_bench::{average, print_header, print_row, Algo, Args};
use sof_core::SofdaConfig;
use sof_topo::{build_instance, cogent, ScenarioParams};

fn main() {
    let args = Args::capture();
    let seeds: u64 = args.seeds(5);
    let base: u64 = args.get("seed", 2000);
    println!("# Fig. 9 — Cogent one-time deployment (seeds = {seeds})");
    let topo = cogent();
    let sweeps = sof_bench::standard_sweeps();
    for (name, values, apply) in sweeps {
        println!("\n## Fig. 9 — cost vs {name} (Cogent)\n");
        let algos = Algo::comparison_set(false);
        let mut hdr = vec![name];
        hdr.extend(algos.iter().map(|a| a.name()));
        print_header(&hdr);
        for &v in &values {
            let mut cells = vec![v.to_string()];
            for &algo in &algos {
                let make = |seed: u64| {
                    let mut p = ScenarioParams::paper_defaults().with_seed(seed);
                    apply(&mut p, v);
                    build_instance(&topo, &p)
                };
                match average(algo, seeds, base, &SofdaConfig::default(), make) {
                    Some((c, _, _)) => cells.push(format!("{c:.1}")),
                    None => cells.push("-".into()),
                }
            }
            print_row(&cells);
        }
    }
}

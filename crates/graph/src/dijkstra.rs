//! Single-source and multi-source Dijkstra shortest paths.

use crate::{Cost, CostChange, EdgeId, Graph, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Repair bails out once the affected region exceeds this fraction of the
/// node count — beyond it a fresh run's simple sweep beats the repair
/// pass's bookkeeping (see [`DijkstraWorkspace::repair`]).
const REGION_FRACTION: usize = 4;

/// Graphs are never too small to repair: the region may always grow to
/// this many vertices regardless of [`REGION_FRACTION`].
const REGION_FLOOR: usize = 8;

/// Result of a (multi-source) Dijkstra run.
///
/// Stores, for every node, the distance to the closest source, the parent
/// hop on a shortest path, and which source ("site") it is closest to — the
/// latter turns the structure into a Voronoi partition, which is what
/// Mehlhorn's Steiner approximation consumes.
///
/// # Examples
///
/// ```
/// use sof_graph::{Graph, Cost, NodeId, ShortestPaths};
///
/// let mut g = Graph::with_nodes(3);
/// g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(1.0));
/// g.add_edge(NodeId::new(1), NodeId::new(2), Cost::new(2.0));
/// let sp = ShortestPaths::from_source(&g, NodeId::new(0));
/// assert_eq!(sp.dist(NodeId::new(2)), Cost::new(3.0));
/// assert_eq!(
///     sp.path_to(NodeId::new(2)).unwrap(),
///     vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]
/// );
/// ```
#[derive(Clone, Debug)]
pub struct ShortestPaths {
    dist: Vec<Cost>,
    parent: Vec<Option<(NodeId, EdgeId)>>,
    site: Vec<Option<NodeId>>,
}

impl ShortestPaths {
    /// Runs Dijkstra from a single source.
    pub fn from_source(graph: &Graph, source: NodeId) -> ShortestPaths {
        ShortestPaths::from_sources(graph, std::iter::once(source))
    }

    /// Runs Dijkstra from several sources at once.
    ///
    /// Every node is labelled with its closest source (`site`).
    ///
    /// This is a convenience wrapper that allocates a fresh
    /// [`DijkstraWorkspace`] per call; hot paths that run many Dijkstras
    /// should reuse a workspace (or go through [`crate::PathEngine`], which
    /// also memoizes whole trees) — both produce bit-identical results.
    ///
    /// # Panics
    ///
    /// Panics if any source is out of range.
    pub fn from_sources<I>(graph: &Graph, sources: I) -> ShortestPaths
    where
        I: IntoIterator<Item = NodeId>,
    {
        let mut ws = DijkstraWorkspace::new();
        ws.run(graph, sources);
        ws.into_paths()
    }

    /// Runs multi-source Dijkstra relaxing only the edges `allow` accepts.
    ///
    /// The filter sees each candidate hop as `(from, edge, to)`; returning
    /// `false` makes the hop impassable for this run without touching the
    /// graph's costs (so shared caches like [`crate::PathEngine`] stay
    /// warm). Sources are seeded unconditionally — exclude unusable
    /// sources before calling. This is the routing primitive under
    /// survivability's "reattach avoiding failed elements": temporarily
    /// severed links and nodes are modelled as a filter, not a mutation.
    ///
    /// # Panics
    ///
    /// Panics if any source is out of range.
    pub fn from_sources_filtered<I, F>(graph: &Graph, sources: I, mut allow: F) -> ShortestPaths
    where
        I: IntoIterator<Item = NodeId>,
        F: FnMut(NodeId, EdgeId, NodeId) -> bool,
    {
        let n = graph.node_count();
        let mut sp = ShortestPaths {
            dist: vec![Cost::INFINITY; n],
            parent: vec![None; n],
            site: vec![None; n],
        };
        let mut heap: BinaryHeap<Reverse<(Cost, NodeId)>> = BinaryHeap::new();
        for s in sources {
            assert!(s.index() < n, "source {s} out of range");
            if sp.dist[s.index()] > Cost::ZERO {
                sp.dist[s.index()] = Cost::ZERO;
                sp.site[s.index()] = Some(s);
                heap.push(Reverse((Cost::ZERO, s)));
            }
        }
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > sp.dist[u.index()] {
                continue;
            }
            let su = sp.site[u.index()];
            for (v, e) in graph.neighbors(u) {
                if !allow(u, e, v) {
                    continue;
                }
                let nd = d + graph.edge_cost(e);
                if nd < sp.dist[v.index()] {
                    sp.dist[v.index()] = nd;
                    sp.parent[v.index()] = Some((u, e));
                    sp.site[v.index()] = su;
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        sp
    }

    /// Distance from the closest source to `v`.
    #[inline]
    pub fn dist(&self, v: NodeId) -> Cost {
        self.dist[v.index()]
    }

    /// The source closest to `v`, or `None` if `v` is unreachable.
    #[inline]
    pub fn site(&self, v: NodeId) -> Option<NodeId> {
        self.site[v.index()]
    }

    /// Parent hop of `v` on its shortest path, or `None` at sources and
    /// unreachable nodes.
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<(NodeId, EdgeId)> {
        self.parent[v.index()]
    }

    /// Returns the shortest path from the closest source to `v` as a node
    /// sequence (source first), or `None` if `v` is unreachable.
    pub fn path_to(&self, v: NodeId) -> Option<Vec<NodeId>> {
        if !self.dist[v.index()].is_finite() {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some((p, _)) = self.parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// Returns the edges of the shortest path to `v` (in source→`v` order).
    pub fn edges_to(&self, v: NodeId) -> Option<Vec<EdgeId>> {
        if !self.dist[v.index()].is_finite() {
            return None;
        }
        let mut edges = Vec::new();
        let mut cur = v;
        while let Some((p, e)) = self.parent[cur.index()] {
            edges.push(e);
            cur = p;
        }
        edges.reverse();
        Some(edges)
    }

    /// Number of nodes covered by this run.
    pub fn len(&self) -> usize {
        self.dist.len()
    }

    /// Returns `true` if the run covered no nodes.
    pub fn is_empty(&self) -> bool {
        self.dist.is_empty()
    }
}

/// A reusable Dijkstra scratchpad: epoch-stamped `dist`/`parent`/`site`
/// arrays plus a drained heap.
///
/// Resetting between runs is O(1) — a single epoch bump lazily invalidates
/// every slot — so once the arrays have grown to the graph size, repeated
/// runs perform **zero O(n) allocation**. This is the engine under
/// [`ShortestPaths::from_sources`] (fresh workspace per call), the
/// memoizing [`crate::PathEngine`] (one long-lived workspace), and the
/// incremental restarts of the Takahashi–Matsuyama Steiner heuristic
/// (re-seeded with the grown tree each attachment).
///
/// Results are bit-identical to [`ShortestPaths::from_sources`]: both run
/// the same relaxation with the same `(cost, node)` heap order.
///
/// # Examples
///
/// ```
/// use sof_graph::{Cost, DijkstraWorkspace, Graph, NodeId};
///
/// let mut g = Graph::with_nodes(3);
/// g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(1.0));
/// g.add_edge(NodeId::new(1), NodeId::new(2), Cost::new(2.0));
/// let mut ws = DijkstraWorkspace::new();
/// ws.run(&g, [NodeId::new(0)]);
/// assert_eq!(ws.dist(NodeId::new(2)), Cost::new(3.0));
/// ws.run(&g, [NodeId::new(2)]); // reuses the same buffers
/// assert_eq!(ws.dist(NodeId::new(0)), Cost::new(3.0));
/// assert_eq!(ws.grows(), 1, "arrays were allocated exactly once");
/// ```
#[derive(Clone, Debug, Default)]
pub struct DijkstraWorkspace {
    /// Current run id; a slot is live iff `stamp[i] == epoch`.
    epoch: u64,
    stamp: Vec<u64>,
    dist: Vec<Cost>,
    parent: Vec<Option<(NodeId, EdgeId)>>,
    site: Vec<Option<NodeId>>,
    heap: BinaryHeap<Reverse<(Cost, NodeId)>>,
    /// Node count of the most recent run.
    len: usize,
    runs: u64,
    grows: u64,
    /// Scratch for [`DijkstraWorkspace::repair`]: the affected region in
    /// discovery order, plus a child-list CSR over the old tree's parent
    /// pointers (offsets and flattened child ids).
    region: Vec<NodeId>,
    kid_off: Vec<u32>,
    kids: Vec<u32>,
}

impl DijkstraWorkspace {
    /// Creates an empty workspace; arrays grow on first use.
    pub fn new() -> DijkstraWorkspace {
        DijkstraWorkspace::default()
    }

    /// Runs multi-source Dijkstra over `graph`, reusing the workspace's
    /// buffers. Previous results are invalidated by a single epoch bump —
    /// no per-node clearing, no allocation once the arrays fit the graph.
    ///
    /// # Panics
    ///
    /// Panics if any source is out of range.
    pub fn run<I>(&mut self, graph: &Graph, sources: I)
    where
        I: IntoIterator<Item = NodeId>,
    {
        let n = graph.node_count();
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.dist.resize(n, Cost::INFINITY);
            self.parent.resize(n, None);
            self.site.resize(n, None);
            self.grows += 1;
        }
        self.len = n;
        self.epoch += 1;
        self.runs += 1;
        self.heap.clear();
        for s in sources {
            assert!(s.index() < n, "source {s} out of range");
            if self.dist_at(s.index()) > Cost::ZERO {
                self.write(s.index(), Cost::ZERO, None, Some(s));
                self.heap.push(Reverse((Cost::ZERO, s)));
            }
        }
        while let Some(Reverse((d, u))) = self.heap.pop() {
            if d > self.dist_at(u.index()) {
                continue;
            }
            let su = self.site_at(u.index());
            for (v, e) in graph.neighbors(u) {
                let nd = d + graph.edge_cost(e);
                if nd < self.dist_at(v.index()) {
                    self.write(v.index(), nd, Some((u, e)), su);
                    self.heap.push(Reverse((nd, v)));
                }
            }
        }
    }

    #[inline]
    fn dist_at(&self, i: usize) -> Cost {
        if self.stamp[i] == self.epoch {
            self.dist[i]
        } else {
            Cost::INFINITY
        }
    }

    #[inline]
    fn parent_at(&self, i: usize) -> Option<(NodeId, EdgeId)> {
        if self.stamp[i] == self.epoch {
            self.parent[i]
        } else {
            None
        }
    }

    #[inline]
    fn site_at(&self, i: usize) -> Option<NodeId> {
        if self.stamp[i] == self.epoch {
            self.site[i]
        } else {
            None
        }
    }

    /// Distance from the closest source of the latest run to `v`.
    #[inline]
    pub fn dist(&self, v: NodeId) -> Cost {
        self.dist_at(v.index())
    }

    /// The source closest to `v` in the latest run.
    #[inline]
    pub fn site(&self, v: NodeId) -> Option<NodeId> {
        self.site_at(v.index())
    }

    /// Parent hop of `v` in the latest run.
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<(NodeId, EdgeId)> {
        self.parent_at(v.index())
    }

    /// Shortest path from the closest source to `v` (source first), or
    /// `None` if `v` is unreachable. Allocates only the returned path.
    pub fn path_to(&self, v: NodeId) -> Option<Vec<NodeId>> {
        if !self.dist_at(v.index()).is_finite() {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some((p, _)) = self.parent_at(cur.index()) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// Edges of the shortest path to `v` in source→`v` order.
    pub fn edges_to(&self, v: NodeId) -> Option<Vec<EdgeId>> {
        if !self.dist_at(v.index()).is_finite() {
            return None;
        }
        let mut edges = Vec::new();
        let mut cur = v;
        while let Some((p, e)) = self.parent_at(cur.index()) {
            edges.push(e);
            cur = p;
        }
        edges.reverse();
        Some(edges)
    }

    #[inline]
    fn write(&mut self, i: usize, d: Cost, p: Option<(NodeId, EdgeId)>, s: Option<NodeId>) {
        self.stamp[i] = self.epoch;
        self.dist[i] = d;
        self.parent[i] = p;
        self.site[i] = s;
    }

    /// Copies the latest run out into an owned [`ShortestPaths`]
    /// (the workspace stays warm). One O(n) copy — the price of a cache
    /// miss in [`crate::PathEngine`]; cache hits pay nothing.
    pub fn snapshot(&self) -> ShortestPaths {
        let n = self.len;
        ShortestPaths {
            dist: (0..n).map(|i| self.dist_at(i)).collect(),
            parent: (0..n).map(|i| self.parent_at(i)).collect(),
            site: (0..n).map(|i| self.site_at(i)).collect(),
        }
    }

    /// Consumes the workspace into an owned [`ShortestPaths`] without
    /// copying the arrays (used by [`ShortestPaths::from_sources`]).
    fn into_paths(mut self) -> ShortestPaths {
        for i in 0..self.len {
            if self.stamp[i] != self.epoch {
                self.dist[i] = Cost::INFINITY;
                self.parent[i] = None;
                self.site[i] = None;
            }
        }
        self.dist.truncate(self.len);
        self.parent.truncate(self.len);
        self.site.truncate(self.len);
        ShortestPaths {
            dist: self.dist,
            parent: self.parent,
            site: self.site,
        }
    }

    /// Dynamic-SSSP tree repair (Ramalingam–Reps style): given the tree
    /// `old` previously computed for `sources` and the cost-journal slice
    /// `changes` that separates it from `graph`'s current costs, rebuilds
    /// only the *affected region* and returns a tree **bit-identical to a
    /// fresh Dijkstra** — distances, parent hops, Voronoi sites and every
    /// tie-break included (the identity argument lives in
    /// `docs/DYNSSSP.md`).
    ///
    /// Returns `None` when repairing is not worthwhile: the affected
    /// region (dirty seeds plus their whole old-tree subtrees) exceeds
    /// `max(8, n / 4)` vertices, or `old` does not cover the graph. The
    /// caller then falls back to a cold run.
    ///
    /// The pass reuses the workspace's heap and stamp buffers (the stamp
    /// array doubles as the region marker), so its only O(n) work is the
    /// child-list pass and the output clone — the price a cache miss pays
    /// for its snapshot anyway. The workspace's previous run is
    /// invalidated, exactly as a fresh [`run`](DijkstraWorkspace::run)
    /// would invalidate it.
    pub fn repair(
        &mut self,
        graph: &Graph,
        old: &ShortestPaths,
        sources: &[NodeId],
        changes: &[CostChange],
    ) -> Option<ShortestPaths> {
        let n = graph.node_count();
        if old.len() != n {
            return None;
        }
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.dist.resize(n, Cost::INFINITY);
            self.parent.resize(n, None);
            self.site.resize(n, None);
            self.grows += 1;
        }
        let cap = REGION_FLOOR.max(n / REGION_FRACTION);
        self.epoch += 1;
        self.heap.clear();
        self.region.clear();

        // Phase 1a: seed the region with every vertex a dirtied edge can
        // invalidate. Per direction x→y of a changed edge with current
        // cost c: the tree hop into y was repriced off its label, or a
        // non-tree hop now wins or ties a relaxation into y (`<=` keeps
        // tie flips, which can move parents and sites without moving
        // distances).
        for ch in changes {
            let edge = graph.edge(ch.edge);
            let c = edge.cost;
            for (x, y) in [(edge.u, edge.v), (edge.v, edge.u)] {
                let (dx, dy) = (old.dist(x), old.dist(y));
                let dirty = if old.parent(y) == Some((x, ch.edge)) {
                    dx + c != dy
                } else {
                    dx.is_finite() && dx + c <= dy
                };
                if dirty && self.stamp[y.index()] != self.epoch {
                    self.stamp[y.index()] = self.epoch;
                    self.region.push(y);
                    if self.region.len() > cap {
                        self.epoch += 1;
                        return None;
                    }
                }
            }
        }
        if self.region.is_empty() {
            // Every change provably lost every relaxation: the old tree
            // is the fresh tree.
            return Some(old.clone());
        }

        // Phase 1b: close the region downward. Every old-tree descendant
        // of a dirty vertex inherited its label through it, so it must be
        // relabelled too. Child lists come from one counting pass over
        // the parent array (CSR layout in kid_off/kids).
        self.kid_off.clear();
        self.kid_off.resize(n + 1, 0);
        for v in 0..n {
            if let Some((p, _)) = old.parent[v] {
                self.kid_off[p.index() + 1] += 1;
            }
        }
        for i in 0..n {
            self.kid_off[i + 1] += self.kid_off[i];
        }
        self.kids.clear();
        self.kids.resize(n, 0);
        for v in 0..n {
            if let Some((p, _)) = old.parent[v] {
                let slot = self.kid_off[p.index()];
                self.kids[slot as usize] = v as u32;
                self.kid_off[p.index()] += 1;
            }
        }
        // After the fill, kid_off[p] is the END of p's child range and
        // the start is kid_off[p - 1] (0 for p == 0).
        let mut cursor = 0;
        while cursor < self.region.len() {
            let x = self.region[cursor].index();
            cursor += 1;
            let start = if x == 0 { 0 } else { self.kid_off[x - 1] };
            for i in start..self.kid_off[x] {
                let k = self.kids[i as usize] as usize;
                if self.stamp[k] != self.epoch {
                    self.stamp[k] = self.epoch;
                    self.region.push(NodeId::new(k));
                    if self.region.len() > cap {
                        self.epoch += 1;
                        return None;
                    }
                }
            }
        }

        // Phase 2: restricted Dijkstra. Labels live in a clone of the old
        // tree; region labels are invalidated, region sources re-seeded,
        // and every still-valid vertex adjacent to the region enters the
        // heap at its old label — the same (dist, node) key a full run
        // would pop it with.
        let mut sp = old.clone();
        for &v in &self.region {
            sp.dist[v.index()] = Cost::INFINITY;
            sp.parent[v.index()] = None;
            sp.site[v.index()] = None;
        }
        for &s in sources {
            if self.stamp[s.index()] == self.epoch {
                sp.dist[s.index()] = Cost::ZERO;
                sp.site[s.index()] = Some(s);
                self.heap.push(Reverse((Cost::ZERO, s)));
            }
        }
        for &v in &self.region {
            for (b, _) in graph.neighbors(v) {
                let bi = b.index();
                if self.stamp[bi] != self.epoch && sp.dist[bi].is_finite() {
                    self.heap.push(Reverse((sp.dist[bi], b)));
                }
            }
        }
        while let Some(Reverse((d, u))) = self.heap.pop() {
            if d > sp.dist[u.index()] {
                continue;
            }
            let su = sp.site[u.index()];
            for (v, e) in graph.neighbors(u) {
                let vi = v.index();
                let nd = d + graph.edge_cost(e);
                if nd < sp.dist[vi] {
                    // Plain fresh semantics; a still-valid vertex that
                    // improves joins the region from here on.
                    self.stamp[vi] = self.epoch;
                    sp.dist[vi] = nd;
                    sp.parent[vi] = Some((u, e));
                    sp.site[vi] = su;
                    self.heap.push(Reverse((nd, v)));
                } else if nd == sp.dist[vi] {
                    // A tie. A fresh run parents v on the first proposer in
                    // *pop* order, and pop order equals (dist, node) key
                    // order except for vertices whose own parent hop costs
                    // zero: those are discovered through an equal-distance
                    // plateau and enter the heap later than their key
                    // suggests. When such a "displaced" vertex takes part
                    // in an equal-key contest, no local rule can
                    // reconstruct the fresh order — give up and let the
                    // caller run cold. (Zero-cost edges are a modeling
                    // idiom here: VM nodes attach to their datacenter at
                    // cost zero, so ordinary repairs must survive them; a
                    // leaf VM never contests anything, and the bail below
                    // fires only on genuine plateau ambiguity, e.g. a
                    // source VM whose zero chain fans out.)
                    let displaced = |sp: &ShortestPaths, x: NodeId| {
                        sp.parent[x.index()]
                            .is_some_and(|(px, _)| sp.dist[px.index()] == sp.dist[x.index()])
                    };
                    if let Some((p, pe)) = sp.parent[vi] {
                        if d == sp.dist[p.index()] && (displaced(&sp, u) || displaced(&sp, p)) {
                            self.epoch += 1;
                            return None;
                        }
                        if self.stamp[vi] != self.epoch {
                            // Still-valid label: flip when this candidate's
                            // key strictly beats the stored parent's, and
                            // cascade site changes through unchanged parent
                            // hops (they move Voronoi ownership without
                            // moving distances). Region labels keep their
                            // first proposer — same as a fresh run's
                            // strict-< rule.
                            if p == u && pe == e {
                                if sp.site[vi] != su {
                                    sp.site[vi] = su;
                                    self.heap.push(Reverse((nd, v)));
                                }
                            } else if (d, u) < (sp.dist[p.index()], p) {
                                sp.parent[vi] = Some((u, e));
                                if sp.site[vi] != su {
                                    sp.site[vi] = su;
                                }
                                self.heap.push(Reverse((nd, v)));
                            }
                        }
                    }
                    // A source (no parent) never gains one on a tie.
                }
            }
        }
        // The stamp array was borrowed as the region marker, so the
        // workspace's label arrays no longer correspond to it; retire the
        // epoch so the accessors read as "no run" rather than garbage.
        self.epoch += 1;
        Some(sp)
    }

    /// Number of runs performed.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Number of times the arrays had to (re)grow — stays at 1 across any
    /// number of runs on same-sized graphs, which is how tests pin the
    /// "zero O(n) allocation on the warm path" guarantee.
    pub fn grows(&self) -> u64 {
        self.grows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 -1- 1 -1- 2
    ///  \----5----/     plus isolated node 3
    fn diamond() -> Graph {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(1.0));
        g.add_edge(NodeId::new(1), NodeId::new(2), Cost::new(1.0));
        g.add_edge(NodeId::new(0), NodeId::new(2), Cost::new(5.0));
        g
    }

    #[test]
    fn single_source_distances() {
        let g = diamond();
        let sp = ShortestPaths::from_source(&g, NodeId::new(0));
        assert_eq!(sp.dist(NodeId::new(0)), Cost::ZERO);
        assert_eq!(sp.dist(NodeId::new(2)), Cost::new(2.0));
        assert_eq!(sp.dist(NodeId::new(3)), Cost::INFINITY);
        assert_eq!(sp.path_to(NodeId::new(3)), None);
    }

    #[test]
    fn path_reconstruction() {
        let g = diamond();
        let sp = ShortestPaths::from_source(&g, NodeId::new(0));
        let path = sp.path_to(NodeId::new(2)).unwrap();
        assert_eq!(path, vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
        let edges = sp.edges_to(NodeId::new(2)).unwrap();
        assert_eq!(edges.len(), 2);
        let total: Cost = edges.iter().map(|&e| g.edge_cost(e)).sum();
        assert_eq!(total, Cost::new(2.0));
    }

    #[test]
    fn multi_source_voronoi() {
        let mut g = Graph::with_nodes(5);
        // 0 -1- 1 -1- 2 -1- 3 -1- 4; sources 0 and 4.
        for i in 0..4 {
            g.add_edge(NodeId::new(i), NodeId::new(i + 1), Cost::new(1.0));
        }
        let sp = ShortestPaths::from_sources(&g, [NodeId::new(0), NodeId::new(4)]);
        assert_eq!(sp.site(NodeId::new(1)), Some(NodeId::new(0)));
        assert_eq!(sp.site(NodeId::new(3)), Some(NodeId::new(4)));
        assert_eq!(sp.dist(NodeId::new(2)), Cost::new(2.0));
        // Sites of the sources themselves.
        assert_eq!(sp.site(NodeId::new(0)), Some(NodeId::new(0)));
        assert_eq!(sp.site(NodeId::new(4)), Some(NodeId::new(4)));
    }

    #[test]
    fn duplicate_sources_are_fine() {
        let g = diamond();
        let sp = ShortestPaths::from_sources(&g, [NodeId::new(0), NodeId::new(0)]);
        assert_eq!(sp.dist(NodeId::new(1)), Cost::new(1.0));
    }

    #[test]
    fn zero_cost_edges() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId::new(0), NodeId::new(1), Cost::ZERO);
        g.add_edge(NodeId::new(1), NodeId::new(2), Cost::ZERO);
        let sp = ShortestPaths::from_source(&g, NodeId::new(0));
        assert_eq!(sp.dist(NodeId::new(2)), Cost::ZERO);
        assert_eq!(sp.path_to(NodeId::new(2)).unwrap().len(), 3);
    }

    #[test]
    fn filtered_run_routes_around_banned_hops() {
        let g = diamond();
        // Unfiltered, the cheap route 0→1→2 wins; banning the 0–1 hop
        // forces the expensive direct edge instead of mutating any cost.
        let banned = (NodeId::new(0), NodeId::new(1));
        let sp = ShortestPaths::from_sources_filtered(&g, [NodeId::new(0)], |u, _, v| {
            (u.min(v), u.max(v)) != banned
        });
        assert_eq!(sp.dist(NodeId::new(2)), Cost::new(5.0));
        assert_eq!(
            sp.path_to(NodeId::new(2)).unwrap(),
            vec![NodeId::new(0), NodeId::new(2)]
        );
        assert_eq!(sp.dist(NodeId::new(1)), Cost::new(6.0), "via 2");
        // An all-pass filter matches the unfiltered run exactly.
        let open = ShortestPaths::from_sources_filtered(&g, [NodeId::new(0)], |_, _, _| true);
        let reference = ShortestPaths::from_source(&g, NodeId::new(0));
        for v in g.nodes() {
            assert_eq!(open.dist(v), reference.dist(v));
            assert_eq!(open.path_to(v), reference.path_to(v));
        }
    }

    #[test]
    fn workspace_reuse_leaves_no_stale_state() {
        let g = diamond();
        let mut ws = DijkstraWorkspace::new();
        ws.run(&g, [NodeId::new(0)]);
        assert_eq!(ws.dist(NodeId::new(2)), Cost::new(2.0));
        // Re-run from the isolated node: every previous label must read as
        // unreachable, not leak through from the first run.
        ws.run(&g, [NodeId::new(3)]);
        assert_eq!(ws.dist(NodeId::new(0)), Cost::INFINITY);
        assert_eq!(ws.dist(NodeId::new(2)), Cost::INFINITY);
        assert_eq!(ws.site(NodeId::new(1)), None);
        assert_eq!(ws.parent(NodeId::new(1)), None);
        assert_eq!(ws.path_to(NodeId::new(0)), None);
        assert_eq!(ws.dist(NodeId::new(3)), Cost::ZERO);
        assert_eq!(ws.runs(), 2);
        assert_eq!(ws.grows(), 1, "second run must not reallocate");
    }

    #[test]
    fn workspace_matches_from_sources_on_random_graphs() {
        for seed in 0..6u64 {
            let mut rng = crate::Rng64::seed_from(seed);
            let g = crate::generators::gnp_connected(
                40,
                0.12,
                crate::CostRange::new(1.0, 7.0),
                &mut rng,
            );
            let mut ws = DijkstraWorkspace::new();
            for sources in [vec![0usize], vec![3, 17], vec![1, 2, 39]] {
                let srcs: Vec<NodeId> = sources.iter().map(|&i| NodeId::new(i)).collect();
                let reference = ShortestPaths::from_sources(&g, srcs.iter().copied());
                ws.run(&g, srcs.iter().copied());
                let snap = ws.snapshot();
                for v in g.nodes() {
                    assert_eq!(ws.dist(v), reference.dist(v), "seed {seed} node {v}");
                    assert_eq!(snap.dist(v), reference.dist(v));
                    assert_eq!(ws.parent(v), reference.parent(v));
                    assert_eq!(snap.parent(v), reference.parent(v));
                    assert_eq!(ws.site(v), reference.site(v));
                    assert_eq!(ws.path_to(v), reference.path_to(v));
                    assert_eq!(ws.edges_to(v), reference.edges_to(v));
                }
            }
            assert_eq!(ws.grows(), 1);
        }
    }

    /// Repaired trees must match a fresh run on every label — distance,
    /// parent hop, and site — not just distances.
    fn assert_tree_identical(g: &Graph, got: &ShortestPaths, want: &ShortestPaths, ctx: &str) {
        for v in g.nodes() {
            assert_eq!(got.dist(v), want.dist(v), "{ctx}: dist of {v}");
            assert_eq!(got.parent(v), want.parent(v), "{ctx}: parent of {v}");
            assert_eq!(got.site(v), want.site(v), "{ctx}: site of {v}");
        }
    }

    #[test]
    fn repair_matches_fresh_after_reprice() {
        let mut g = diamond();
        let srcs = [NodeId::new(0)];
        let old = ShortestPaths::from_sources(&g, srcs);
        let e0 = g.cost_epoch();
        // Reprice the 0-1 edge up so the 0-2 direct edge wins.
        g.set_edge_cost(EdgeId::new(0), Cost::new(9.0));
        let changes = g.cost_changes_since(e0).unwrap().to_vec();
        let mut ws = DijkstraWorkspace::new();
        let repaired = ws
            .repair(&g, &old, &srcs, &changes)
            .expect("region is tiny");
        let fresh = ShortestPaths::from_sources(&g, srcs);
        assert_tree_identical(&g, &repaired, &fresh, "reprice up");
        assert_eq!(repaired.dist(NodeId::new(2)), Cost::new(5.0));
    }

    #[test]
    fn repair_handles_losing_and_winning_changes() {
        let mut g = diamond();
        let srcs = [NodeId::new(0)];
        let old = ShortestPaths::from_sources(&g, srcs);
        let e0 = g.cost_epoch();
        // A non-tree edge getting *worse* provably changes nothing...
        g.set_edge_cost(EdgeId::new(2), Cost::new(50.0));
        let changes = g.cost_changes_since(e0).unwrap().to_vec();
        let mut ws = DijkstraWorkspace::new();
        let repaired = ws.repair(&g, &old, &srcs, &changes).unwrap();
        assert_tree_identical(&g, &repaired, &old, "losing change");
        // ...while the same edge getting *better* flips node 2's parent.
        let e1 = g.cost_epoch();
        g.set_edge_cost(EdgeId::new(2), Cost::new(0.5));
        let changes = g.cost_changes_since(e1).unwrap().to_vec();
        let repaired = ws.repair(&g, &old, &srcs, &changes).unwrap();
        let fresh = ShortestPaths::from_sources(&g, srcs);
        assert_tree_identical(&g, &repaired, &fresh, "winning change");
        assert_eq!(
            repaired.parent(NodeId::new(2)),
            Some((NodeId::new(0), EdgeId::new(2)))
        );
    }

    #[test]
    fn repair_preserves_tie_breaks_and_sites() {
        // Path 0-1-2-3-4 with sources at both ends; repricing 3-4 moves
        // the Voronoi boundary, and tie-breaks at the midpoint must come
        // out exactly as a fresh run's.
        let mut g = Graph::with_nodes(5);
        for i in 0..4 {
            g.add_edge(NodeId::new(i), NodeId::new(i + 1), Cost::new(1.0));
        }
        let srcs = [NodeId::new(0), NodeId::new(4)];
        let old = ShortestPaths::from_sources(&g, srcs);
        let e0 = g.cost_epoch();
        g.set_edge_cost(EdgeId::new(3), Cost::new(3.0));
        let changes = g.cost_changes_since(e0).unwrap().to_vec();
        let mut ws = DijkstraWorkspace::new();
        let repaired = ws.repair(&g, &old, &srcs, &changes).unwrap();
        let fresh = ShortestPaths::from_sources(&g, srcs);
        assert_tree_identical(&g, &repaired, &fresh, "tie after reprice");
        // The tie at node 3 goes to source 4: it proposed first (popped at
        // distance 0) and fresh Dijkstra never overwrites on equality.
        assert_eq!(repaired.site(NodeId::new(3)), Some(NodeId::new(4)));
    }

    #[test]
    fn repair_survives_leaf_vm_zero_edges() {
        // The codebase attaches VM nodes to their datacenter at cost zero;
        // a leaf behind a zero edge never contests a tie, so repairs must
        // keep working in its presence. 0 --3(e0)-- 1 --0(e1)-- 2 (vm),
        // 0 --1(e2)-- 3 --1(e3)-- 1.
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(3.0));
        g.add_edge(NodeId::new(1), NodeId::new(2), Cost::ZERO);
        g.add_edge(NodeId::new(0), NodeId::new(3), Cost::new(1.0));
        g.add_edge(NodeId::new(3), NodeId::new(1), Cost::new(1.0));
        let srcs = [NodeId::new(0)];
        let old = ShortestPaths::from_sources(&g, srcs);
        assert_eq!(old.dist(NodeId::new(2)), Cost::new(2.0));
        let e0 = g.cost_epoch();
        // Repricing the 3-1 hop dirties node 1 and its vm child.
        g.set_edge_cost(EdgeId::new(3), Cost::new(5.0));
        let changes = g.cost_changes_since(e0).unwrap().to_vec();
        let mut ws = DijkstraWorkspace::new();
        let repaired = ws
            .repair(&g, &old, &srcs, &changes)
            .expect("a leaf vm plateau must not block the repair");
        let fresh = ShortestPaths::from_sources(&g, srcs);
        assert_tree_identical(&g, &repaired, &fresh, "leaf vm zero edge");
        assert_eq!(repaired.dist(NodeId::new(2)), Cost::new(3.0));
    }

    #[test]
    fn repair_bails_on_ambiguous_zero_cost_plateau() {
        // A source VM whose zero chain fans out: 3 --0(e0)-- 0 --0(e1)-- 2,
        // plus positive edges 1-0 and 1-2. Every vertex on the plateau
        // {3, 0, 2} sits at distance zero, and a fresh run settles their
        // parent contests by *discovery* order — which the repair cannot
        // reconstruct locally, so it must refuse rather than guess.
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId::new(3), NodeId::new(0), Cost::ZERO);
        g.add_edge(NodeId::new(0), NodeId::new(2), Cost::ZERO);
        g.add_edge(NodeId::new(1), NodeId::new(0), Cost::new(5.0));
        g.add_edge(NodeId::new(1), NodeId::new(2), Cost::new(4.0));
        let srcs = [NodeId::new(3)];
        let old = ShortestPaths::from_sources(&g, srcs);
        assert_eq!(
            old.parent(NodeId::new(2)),
            Some((NodeId::new(0), EdgeId::new(1)))
        );
        let e0 = g.cost_epoch();
        // Reprice node 1's tree hop so its relabelling walks the plateau
        // boundary, where the displaced-vertex contests live.
        g.set_edge_cost(EdgeId::new(3), Cost::new(6.0));
        let changes = g.cost_changes_since(e0).unwrap().to_vec();
        let mut ws = DijkstraWorkspace::new();
        assert!(
            ws.repair(&g, &old, &srcs, &changes).is_none(),
            "ambiguous plateau ties must fall back to a cold run"
        );
        // The workspace stays reusable after the bail.
        ws.run(&g, srcs);
        let fresh = ShortestPaths::from_sources(&g, srcs);
        assert_tree_identical(&g, &ws.snapshot(), &fresh, "post-bail run");
    }

    #[test]
    fn repair_bails_when_region_is_large_or_graph_changed_shape() {
        let mut rng = crate::Rng64::seed_from(7);
        let mut g =
            crate::generators::gnp_connected(60, 0.1, crate::CostRange::new(1.0, 7.0), &mut rng);
        let srcs = [NodeId::new(0)];
        let old = ShortestPaths::from_sources(&g, srcs);
        let e0 = g.cost_epoch();
        // Reprice a big slice of the edge set: the dirty region blows
        // past max(8, n/4) and the caller must fall back to a cold run.
        let m = g.edge_count();
        for e in 0..m / 2 {
            let c = g.edge_cost(EdgeId::new(e));
            g.set_edge_cost(EdgeId::new(e), c + Cost::new(3.0));
        }
        let changes = g.cost_changes_since(e0).unwrap().to_vec();
        let mut ws = DijkstraWorkspace::new();
        assert!(ws.repair(&g, &old, &srcs, &changes).is_none());
        // A tree sized for a smaller graph is rejected outright.
        g.add_node();
        assert!(ws.repair(&g, &old, &srcs, &[]).is_none());
    }

    #[test]
    fn repair_matches_fresh_on_random_reprice_batches() {
        for seed in 0..8u64 {
            let mut rng = crate::Rng64::seed_from(seed);
            let mut g = crate::generators::gnp_connected(
                50,
                0.1,
                crate::CostRange::new(1.0, 7.0),
                &mut rng,
            );
            let srcs: Vec<NodeId> = vec![NodeId::new(1), NodeId::new(29)];
            let mut ws = DijkstraWorkspace::new();
            let mut old = ShortestPaths::from_sources(&g, srcs.iter().copied());
            for round in 0..10 {
                let e0 = g.cost_epoch();
                for _ in 0..3 {
                    let e = EdgeId::new((rng.next_u64() as usize) % g.edge_count());
                    let delta = ((rng.next_u64() % 9) as f64 - 4.0) / 2.0;
                    let c = (g.edge_cost(e).value() + delta).max(0.5);
                    g.set_edge_cost(e, Cost::new(c));
                }
                let changes = g.cost_changes_since(e0).unwrap().to_vec();
                let fresh = ShortestPaths::from_sources(&g, srcs.iter().copied());
                if let Some(repaired) = ws.repair(&g, &old, &srcs, &changes) {
                    assert_tree_identical(
                        &g,
                        &repaired,
                        &fresh,
                        &format!("seed {seed} round {round}"),
                    );
                }
                old = fresh;
            }
        }
    }

    #[test]
    fn workspace_grows_for_larger_graphs() {
        let small = diamond();
        let mut big = Graph::with_nodes(10);
        for i in 0..9 {
            big.add_edge(NodeId::new(i), NodeId::new(i + 1), Cost::new(1.0));
        }
        let mut ws = DijkstraWorkspace::new();
        ws.run(&small, [NodeId::new(0)]);
        ws.run(&big, [NodeId::new(0)]);
        assert_eq!(ws.grows(), 2);
        assert_eq!(ws.dist(NodeId::new(9)), Cost::new(9.0));
        // Shrinking back reuses the larger buffers without reallocating,
        // and the snapshot is sized to the current graph.
        ws.run(&small, [NodeId::new(0)]);
        assert_eq!(ws.grows(), 2);
        assert_eq!(ws.snapshot().len(), small.node_count());
    }
}

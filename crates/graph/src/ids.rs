//! Typed node and edge identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node inside a [`Graph`](crate::Graph).
///
/// `NodeId`s are dense indices assigned in insertion order, so they can be
/// used to index `Vec`s sized by `Graph::node_count`.
///
/// # Examples
///
/// ```
/// use sof_graph::NodeId;
/// let n = NodeId::new(3);
/// assert_eq!(n.index(), 3);
/// assert_eq!(format!("{n}"), "n3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    #[inline]
    pub fn new(index: usize) -> NodeId {
        NodeId(u32::try_from(index).expect("node index exceeds u32"))
    }

    /// Returns the dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> NodeId {
        NodeId::new(index)
    }
}

/// Identifier of an undirected edge inside a [`Graph`](crate::Graph).
///
/// # Examples
///
/// ```
/// use sof_graph::EdgeId;
/// let e = EdgeId::new(7);
/// assert_eq!(e.index(), 7);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct EdgeId(u32);

impl EdgeId {
    /// Creates an edge id from a dense index.
    #[inline]
    pub fn new(index: usize) -> EdgeId {
        EdgeId(u32::try_from(index).expect("edge index exceeds u32"))
    }

    /// Returns the dense index of this edge.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<usize> for EdgeId {
    fn from(index: usize) -> EdgeId {
        EdgeId::new(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        assert_eq!(NodeId::new(5).index(), 5);
        assert_eq!(EdgeId::new(9).index(), 9);
        assert_eq!(NodeId::from(2), NodeId::new(2));
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(EdgeId::new(0) < EdgeId::new(10));
    }

    #[test]
    fn debug_is_compact() {
        assert_eq!(format!("{:?}", NodeId::new(4)), "n4");
        assert_eq!(format!("{:?}", EdgeId::new(4)), "e4");
    }
}

//! Legacy-binary shims and the shared override layer.
//!
//! The eight historical fig/table binaries survive as one-line `main`s
//! calling [`legacy_main`]: the preset spec is loaded, the binary's
//! historical flags (declared once, here) are mapped onto spec overrides,
//! and the run renders through [`crate::render_markdown`] — so their
//! output is byte-identical to `sof run <preset> --format markdown` with
//! the matching overrides.

use crate::engine::{run_spec, RunOptions};
use crate::presets;
use crate::report::render_markdown;
use crate::spec::{ScenarioSpec, Workload};
use sof_bench::Args;

/// Generic spec overrides shared by the `sof` CLI and the legacy shims.
#[derive(Clone, Debug, Default)]
pub struct Overrides {
    /// Replace the averaging width (sweep/grid/qoe workloads).
    pub seeds: Option<u64>,
    /// Replace the base RNG seed.
    pub seed: Option<u64>,
    /// Truncate every sweep/grid axis to its first N values (`0` = all);
    /// for runtime workloads, truncate the size list.
    pub limit: Option<usize>,
    /// Replace the solver set (first entry only for single-solver kinds).
    pub solvers: Option<Vec<String>>,
    /// Resize the spec's topology (`inet` family only).
    pub nodes: Option<usize>,
    /// Replace every online group's arrival count.
    pub requests: Option<usize>,
    /// Replace the concurrent-group count (churn-at-scale workloads).
    pub groups: Option<usize>,
    /// Replace the event budget (churn-at-scale workloads).
    pub events: Option<u64>,
    /// Replace the window size (churn-at-scale workloads).
    pub window: Option<u64>,
}

/// Applies generic overrides to a spec (validate afterwards — an override
/// can introduce an unknown solver or an invalid size).
///
/// Returns the names of overrides that do not apply to this spec's
/// workload kind (e.g. `--seeds` on an online workload) so callers can
/// warn instead of silently running the unmodified scenario.
pub fn apply_overrides(spec: &mut ScenarioSpec, o: &Overrides) -> Vec<&'static str> {
    let mut ignored = Vec::new();
    if let Some(nodes) = o.nodes {
        // Churn-at-scale builds its network from [workload.regions]; the
        // spec topology is unused there, so resizing it would be a no-op.
        if matches!(spec.workload, Workload::ChurnAtScale(_)) {
            ignored.push("nodes");
        } else {
            spec.topology.nodes = Some(nodes);
        }
    }
    if o.requests.is_some() && !matches!(spec.workload, Workload::Online { .. }) {
        ignored.push("requests");
    }
    if !matches!(spec.workload, Workload::ChurnAtScale(_)) {
        for (name, set) in [
            ("groups", o.groups.is_some()),
            ("events", o.events.is_some()),
            ("window", o.window.is_some()),
        ] {
            if set {
                ignored.push(name);
            }
        }
    }
    let inapplicable: &[&'static str] = match &spec.workload {
        Workload::CostCurve { .. } => &["seeds", "seed", "limit", "solvers"],
        Workload::Online { .. } => &["seeds", "limit"],
        Workload::Runtime { .. } => &["seeds"],
        Workload::Qoe { .. } => &["limit"],
        Workload::ChurnAtScale(_) => &["seeds", "limit"],
        Workload::Sweep { .. } | Workload::Grid { .. } => &[],
    };
    for &name in inapplicable {
        let set = match name {
            "seeds" => o.seeds.is_some(),
            "seed" => o.seed.is_some(),
            "limit" => o.limit.is_some(),
            _ => o.solvers.is_some(),
        };
        if set {
            ignored.push(name);
        }
    }
    match &mut spec.workload {
        Workload::CostCurve { .. } => {}
        Workload::Sweep {
            solvers,
            seeds,
            seed,
            axes,
        } => {
            if let Some(s) = o.seeds {
                *seeds = s.max(1);
            }
            if let Some(s) = o.seed {
                *seed = s;
            }
            if let Some(limit) = o.limit {
                for axis in axes.iter_mut() {
                    axis.truncate(limit);
                }
            }
            if let Some(list) = &o.solvers {
                *solvers = list.clone();
            }
        }
        Workload::Grid {
            solver,
            seeds,
            seed,
            rows,
            cols,
            ..
        } => {
            if let Some(s) = o.seeds {
                *seeds = s.max(1);
            }
            if let Some(s) = o.seed {
                *seed = s;
            }
            if let Some(limit) = o.limit {
                rows.truncate(limit);
                cols.truncate(limit);
            }
            if let Some(list) = &o.solvers {
                if let Some(first) = list.first() {
                    *solver = first.clone();
                }
            }
        }
        Workload::Runtime {
            solver,
            seed,
            sizes,
            ..
        } => {
            if let Some(s) = o.seed {
                *seed = s;
            }
            if let Some(limit) = o.limit {
                if limit > 0 {
                    sizes.truncate(limit);
                }
            }
            if let Some(list) = &o.solvers {
                if let Some(first) = list.first() {
                    *solver = first.clone();
                }
            }
        }
        Workload::Qoe {
            solvers,
            seeds,
            seed,
        } => {
            if let Some(s) = o.seeds {
                *seeds = s.max(1);
            }
            if let Some(s) = o.seed {
                *seed = s;
            }
            if let Some(list) = &o.solvers {
                *solvers = list.clone();
            }
        }
        Workload::Online {
            solvers,
            seed,
            groups,
            ..
        } => {
            if let Some(s) = o.seed {
                *seed = s;
            }
            if let Some(list) = &o.solvers {
                *solvers = list.clone();
            }
            if let Some(r) = o.requests {
                for g in groups.iter_mut() {
                    g.requests = r;
                }
            }
        }
        Workload::ChurnAtScale(s) => {
            if let Some(seed) = o.seed {
                s.seed = seed;
            }
            if let Some(list) = &o.solvers {
                if let Some(first) = list.first() {
                    s.solver = first.clone();
                }
            }
            if let Some(g) = o.groups {
                s.groups = g;
            }
            if let Some(e) = o.events {
                s.events = e;
            }
            if let Some(w) = o.window {
                s.window = w;
            }
        }
    }
    ignored
}

fn fatal(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Runs a spec and prints it exactly as the legacy binaries did: warnings
/// to stderr, markdown to stdout.
pub fn run_and_print_markdown(spec: &ScenarioSpec, opts: &RunOptions) {
    let report = match run_spec(spec, opts) {
        Ok(r) => r,
        Err(e) => fatal(e),
    };
    for w in report.warnings() {
        eprintln!("warning: {w}");
    }
    print!("{}", render_markdown(&report));
}

/// The entry point behind every legacy fig/table binary: parses the
/// binary's historical flag set, maps it onto the preset spec, runs, and
/// prints the historical markdown.
///
/// # Panics
///
/// Panics when `name` is not a bundled preset (a build defect).
pub fn legacy_main(name: &str) {
    let (about, flags): (&str, &[(&str, &str)]) = match name {
        "fig7" => (
            "fig7 — the convex Fortz–Thorup cost function (capacity p = 1)",
            &[],
        ),
        "fig8" => (
            "fig8 — SoftLayer one-time deployment sweeps (incl. the exact \"CPLEX\" column)",
            &[
                ("seeds", "averaging width (default 5)"),
                ("seed", "base RNG seed (default 1000)"),
                (
                    "exact",
                    "1 = include the exact column, 0 = skip it (default 1)",
                ),
                (
                    "limit",
                    "truncate every sweep to its first N values (default 0 = all)",
                ),
            ],
        ),
        "fig9" => (
            "fig9 — Cogent one-time deployment sweeps",
            &[
                ("seeds", "averaging width (default 5)"),
                ("seed", "base RNG seed (default 2000)"),
                (
                    "limit",
                    "truncate every sweep to its first N values (default 0 = all)",
                ),
            ],
        ),
        "fig10" => (
            "fig10 — synthetic Inet network sweeps",
            &[
                ("seeds", "averaging width (default 2)"),
                ("seed", "base RNG seed (default 3000)"),
                (
                    "nodes",
                    "network size (default 5000; links = 2×, DCs = 2/5×)",
                ),
                (
                    "limit",
                    "truncate every sweep to its first N values (default 0 = all)",
                ),
            ],
        ),
        "fig11" => (
            "fig11 — VM setup-cost multiple × chain length (SOFDA on SoftLayer)",
            &[
                ("seeds", "averaging width (default 5)"),
                ("seed", "base RNG seed (default 4000)"),
                (
                    "limit",
                    "truncate multiples and chain lengths to N values (default 0 = all)",
                ),
            ],
        ),
        "fig12" => (
            "fig12 — online deployment under viewer churn: from-scratch vs incremental \
             re-embedding",
            &[
                ("seed", "base RNG seed (default 5000)"),
                ("requests-softlayer", "SoftLayer arrival count (default 30)"),
                ("requests-cogent", "Cogent arrival count (default 45)"),
                (
                    "scratch",
                    "from-scratch baseline: 0 = never, 1 = SoftLayer only, 2 = both (default 1 — \
                     the full Cogent from-scratch trajectory alone takes ~4 min)",
                ),
                (
                    "drift",
                    "rebuild when churn since last solve reaches drift × |D| (default 2.0)",
                ),
                (
                    "sessions",
                    "independent concurrent churn groups served through a SessionPool \
                     (default 1 = the classic solver comparison; > 1 ignores --scratch)",
                ),
            ],
        ),
        "table1" => (
            "table1 — SOFDA running time vs network size and source count",
            &[
                ("seed", "base RNG seed (default 6000)"),
                (
                    "max-nodes",
                    "largest network size to measure (default 5000)",
                ),
            ],
        ),
        "table2" => (
            "table2 — testbed QoE (startup latency / rebuffering) per algorithm",
            &[
                ("seeds", "averaging width (default 10)"),
                ("seed", "base RNG seed (default 7000)"),
            ],
        ),
        other => panic!("'{other}' is not a legacy preset shim"),
    };
    let args = Args::parse(about, flags);
    let mut spec = presets::preset(name)
        .unwrap_or_else(|| panic!("bundled preset '{name}' missing"))
        .unwrap_or_else(|e| panic!("bundled preset '{name}' invalid: {e}"));
    // Each shim declares exactly the flags its workload kind understands,
    // so nothing can land in the ignored list here.
    let ignored = apply_overrides(
        &mut spec,
        &Overrides {
            seeds: args.opt("seeds"),
            seed: args.opt("seed"),
            limit: args.opt("limit"),
            ..Overrides::default()
        },
    );
    debug_assert!(ignored.is_empty(), "shim flag set out of sync: {ignored:?}");
    // Preset-specific flag semantics.
    match name {
        "fig8" if args.get("exact", 1usize) == 0 => {
            if let Workload::Sweep { solvers, .. } = &mut spec.workload {
                solvers.retain(|s| s != "CPLEX*");
            }
        }
        "fig10" => {
            if let Some(nodes) = args.opt::<usize>("nodes") {
                spec.topology.nodes = Some(nodes);
            }
        }
        "fig12" => {
            if let Some(d) = args.opt::<f64>("drift") {
                spec.online.drift = d;
            }
            let scratch_flag = args.get("scratch", 1usize);
            let pool_sessions = args.get("sessions", 1usize);
            if let Workload::Online {
                sessions, groups, ..
            } = &mut spec.workload
            {
                *sessions = pool_sessions.max(1);
                for (gi, group) in groups.iter_mut().enumerate() {
                    group.scratch = scratch_flag > gi;
                    let flag = if gi == 0 {
                        "requests-softlayer"
                    } else {
                        "requests-cogent"
                    };
                    if let Some(r) = args.opt::<usize>(flag) {
                        group.requests = r;
                    }
                }
                if *sessions > 1 && scratch_flag != 1 {
                    eprintln!(
                        "note: --scratch is ignored with --sessions > 1 \
                         (the session-pool mode has no from-scratch baseline)"
                    );
                }
            }
        }
        "table1" => {
            if let Some(max) = args.opt::<usize>("max-nodes") {
                if let Workload::Runtime { sizes, .. } = &mut spec.workload {
                    sizes.retain(|&n| n <= max);
                }
            }
        }
        _ => {}
    }
    if let Err(e) = spec.validate() {
        fatal(e);
    }
    run_and_print_markdown(
        &spec,
        &RunOptions {
            threads: 0,
            timings: true,
            legacy_notes: true,
        },
    );
}

//! Fig. 12: online deployment — accumulative cost as requests arrive.
use sof_bench::{print_header, print_row, Algo, Args};
use sof_core::{LoadTracker, SofInstance, SofdaConfig};
use sof_sim::{RequestStream, WorkloadParams};
use sof_topo::{build_instance, cogent, softlayer, ScenarioParams, Topology};

fn online(topo: &Topology, params: WorkloadParams, requests: usize, seed: u64) {
    println!("\n## Fig. 12 — {} ({requests} arrivals)\n", topo.name);
    let algos = Algo::comparison_set(false);
    let mut hdr = vec!["#arrivals"];
    hdr.extend(algos.iter().map(|a| a.name()));
    print_header(&hdr);
    // Independent network state per algorithm.
    let mut states: Vec<(SofInstance, LoadTracker, f64)> = algos
        .iter()
        .map(|_| {
            let mut p = ScenarioParams::paper_defaults().with_seed(seed);
            p.vm_count = topo.dc_nodes.len() * 5; // 5 VMs per data center
            p.chain_len = params.chain_len;
            let inst = build_instance(topo, &p);
            let tracker = LoadTracker::new(&inst.network, 100.0, 5.0);
            (inst, tracker, 0.0)
        })
        .collect();
    let mut stream = RequestStream::new(params, topo.graph.node_count(), seed);
    for arrival in 1..=requests {
        let request = stream.next_request();
        for (ai, &algo) in algos.iter().enumerate() {
            let (inst, tracker, acc) = &mut states[ai];
            inst.request = request.clone();
            tracker.refresh_costs(&mut inst.network);
            if let Some(r) = sof_bench::run(algo, inst, &SofdaConfig::default().with_seed(seed)) {
                let forest = r.outcome.expect("present").forest;
                tracker.apply_forest(&inst.network, &forest, stream.demand());
                *acc += r.cost;
            }
        }
        if arrival % 5 == 0 || arrival == requests {
            let mut cells = vec![arrival.to_string()];
            for (_, _, acc) in &states {
                cells.push(format!("{acc:.0}"));
            }
            print_row(&cells);
        }
    }
}

fn main() {
    let args = Args::capture();
    let seed: u64 = args.get("seed", 5000);
    let softlayer_reqs: usize = args.get("requests-softlayer", 30);
    let cogent_reqs: usize = args.get("requests-cogent", 45);
    println!("# Fig. 12 — online deployment (accumulative cost)");
    online(
        &softlayer(),
        WorkloadParams::softlayer(),
        softlayer_reqs,
        seed,
    );
    online(&cogent(), WorkloadParams::cogent(), cogent_reqs, seed);
}

//! A minimal discrete-event simulation engine.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation time in seconds.
pub type SimTime = f64;

/// A deterministic future-event queue.
///
/// Events at equal times fire in insertion order (a monotone sequence number
/// breaks ties), which keeps runs reproducible.
///
/// # Examples
///
/// ```
/// use sof_sim::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(2.0, "later");
/// q.schedule(1.0, "sooner");
/// q.schedule(1.0, "same-time-second");
/// assert_eq!(q.pop(), Some((1.0, "sooner")));
/// assert_eq!(q.pop(), Some((1.0, "same-time-second")));
/// assert_eq!(q.pop(), Some((2.0, "later")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Clone, Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(OrderedTime, u64, usize)>>,
    payloads: Vec<Option<E>>,
    seq: u64,
}

/// Total-ordered wrapper for event times (NaN is rejected on insert).
#[derive(Clone, Copy, Debug, PartialEq)]
struct OrderedTime(f64);

impl Eq for OrderedTime {}

impl PartialOrd for OrderedTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            payloads: Vec::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at absolute time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is NaN or negative.
    pub fn schedule(&mut self, t: SimTime, event: E) {
        assert!(!t.is_nan() && t >= 0.0, "invalid event time {t}");
        let slot = self.payloads.len();
        self.payloads.push(Some(event));
        self.heap.push(Reverse((OrderedTime(t), self.seq, slot)));
        self.seq += 1;
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse((t, _, slot)) = self.heap.pop()?;
        let e = self.payloads[slot].take().expect("event fired once");
        Some((t.0, e))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((t, _, _))| t.0)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(1.0, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((1.0, i)));
        }
    }

    #[test]
    fn ordering_across_times() {
        let mut q = EventQueue::new();
        q.schedule(5.0, 'c');
        q.schedule(0.5, 'a');
        q.schedule(2.5, 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    #[should_panic(expected = "invalid event time")]
    fn rejects_nan() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, ());
    }
}

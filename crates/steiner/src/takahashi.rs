//! Takahashi–Matsuyama shortest-path Steiner heuristic.
//!
//! Greedily grows a tree from the first terminal, repeatedly attaching the
//! terminal closest to the current tree via a shortest path. Also a
//! 2-approximation; often the strongest of the three classical heuristics
//! in practice. Its incremental structure is what the distributed
//! implementation in `sof-sdn` mirrors (§VI of the paper).
//!
//! Each attachment needs a multi-source Dijkstra from the whole current
//! tree. Instead of a fresh [`sof_graph::ShortestPaths::from_sources`]
//! (three O(n) allocations per attached terminal), the loop re-seeds one
//! warm [`DijkstraWorkspace`] with the grown tree's node set — an O(1)
//! epoch bump — so the restart allocates nothing beyond the returned paths
//! and stays bit-identical to the from-scratch run.

use crate::tree::{check_terminals, prune_non_terminal_leaves, SteinerError, SteinerTree};
use sof_graph::{DijkstraWorkspace, EdgeId, Graph, NodeId};
use std::collections::BTreeSet;

/// Computes a Steiner tree spanning `terminals` by iterative shortest-path
/// attachment.
///
/// # Errors
///
/// Same contract as [`crate::mehlhorn`].
///
/// # Examples
///
/// ```
/// use sof_graph::{Graph, Cost, NodeId};
/// use sof_steiner::takahashi_matsuyama;
///
/// let mut g = Graph::with_nodes(4);
/// g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(1.0));
/// g.add_edge(NodeId::new(1), NodeId::new(2), Cost::new(1.0));
/// g.add_edge(NodeId::new(1), NodeId::new(3), Cost::new(5.0));
/// let tree = takahashi_matsuyama(&g, &[NodeId::new(0), NodeId::new(2), NodeId::new(3)])?;
/// assert_eq!(tree.cost, Cost::new(7.0));
/// # Ok::<(), sof_steiner::SteinerError>(())
/// ```
pub fn takahashi_matsuyama(
    graph: &Graph,
    terminals: &[NodeId],
) -> Result<SteinerTree, SteinerError> {
    check_terminals(graph, terminals)?;
    let mut remaining: BTreeSet<NodeId> = terminals.iter().copied().collect();
    if remaining.len() <= 1 {
        return Ok(SteinerTree::default());
    }
    let first = *remaining.iter().next().expect("non-empty");
    remaining.remove(&first);
    let mut tree_nodes: BTreeSet<NodeId> = BTreeSet::from([first]);
    let mut edges: Vec<EdgeId> = Vec::new();
    let mut ws = DijkstraWorkspace::new();
    while !remaining.is_empty() {
        // Multi-source Dijkstra from the whole current tree: an incremental
        // restart of the warm workspace, re-seeded with the grown tree.
        ws.run(graph, tree_nodes.iter().copied());
        let next = remaining
            .iter()
            .copied()
            .min_by_key(|&t| (ws.dist(t), t))
            .expect("non-empty remaining");
        if !ws.dist(next).is_finite() {
            return Err(SteinerError::Unreachable { terminal: next });
        }
        let path = ws.path_to(next).expect("finite distance implies a path");
        let path_edges = ws.edges_to(next).expect("finite distance implies a path");
        edges.extend(path_edges);
        tree_nodes.extend(path);
        remaining.remove(&next);
    }
    debug_assert!(ws.grows() <= 1, "warm restarts must not reallocate");
    let distinct: Vec<NodeId> = terminals.to_vec();
    let kept = prune_non_terminal_leaves(graph, edges, &distinct);
    Ok(SteinerTree::from_edges(graph, kept))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sof_graph::Cost;

    #[test]
    fn grows_from_nearest_terminal() {
        let mut g = Graph::with_nodes(6);
        // Path 0-1-2-3-4-5, terminals {0, 3, 5}.
        for i in 0..5 {
            g.add_edge(NodeId::new(i), NodeId::new(i + 1), Cost::new(1.0));
        }
        let ts = vec![NodeId::new(0), NodeId::new(3), NodeId::new(5)];
        let tree = takahashi_matsuyama(&g, &ts).unwrap();
        tree.validate(&g, &ts).unwrap();
        assert_eq!(tree.cost, Cost::new(5.0));
    }

    #[test]
    fn reuses_tree_paths() {
        // Y shape: center 3; terminals at the three tips.
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId::new(0), NodeId::new(3), Cost::new(2.0));
        g.add_edge(NodeId::new(1), NodeId::new(3), Cost::new(2.0));
        g.add_edge(NodeId::new(2), NodeId::new(3), Cost::new(2.0));
        let ts = vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)];
        let tree = takahashi_matsuyama(&g, &ts).unwrap();
        assert_eq!(tree.cost, Cost::new(6.0));
        assert_eq!(tree.edges.len(), 3);
    }

    #[test]
    fn unreachable_terminal() {
        let g = Graph::with_nodes(3);
        let err = takahashi_matsuyama(&g, &[NodeId::new(0), NodeId::new(1)]).unwrap_err();
        assert!(matches!(err, SteinerError::Unreachable { .. }));
    }

    /// The greedy loop with a fresh `from_sources` per attachment — the
    /// pre-workspace implementation, kept as a reference oracle.
    fn reference(graph: &Graph, terminals: &[NodeId]) -> SteinerTree {
        use sof_graph::ShortestPaths;
        let mut remaining: BTreeSet<NodeId> = terminals.iter().copied().collect();
        let first = *remaining.iter().next().unwrap();
        remaining.remove(&first);
        let mut tree_nodes: BTreeSet<NodeId> = BTreeSet::from([first]);
        let mut edges: Vec<EdgeId> = Vec::new();
        while !remaining.is_empty() {
            let sp = ShortestPaths::from_sources(graph, tree_nodes.iter().copied());
            let next = remaining
                .iter()
                .copied()
                .min_by_key(|&t| (sp.dist(t), t))
                .unwrap();
            edges.extend(sp.edges_to(next).unwrap());
            tree_nodes.extend(sp.path_to(next).unwrap());
            remaining.remove(&next);
        }
        let kept = prune_non_terminal_leaves(graph, edges, terminals);
        SteinerTree::from_edges(graph, kept)
    }

    #[test]
    fn warm_restart_matches_fresh_runs_bit_for_bit() {
        use sof_graph::{generators, CostRange, Rng64};
        for seed in 0..8u64 {
            let mut rng = Rng64::seed_from(seed);
            let g = generators::gnp_connected(50, 0.1, CostRange::new(1.0, 9.0), &mut rng);
            let ts: Vec<NodeId> = rng
                .sample_indices(50, 7)
                .into_iter()
                .map(NodeId::new)
                .collect();
            let warm = takahashi_matsuyama(&g, &ts).unwrap();
            let fresh = reference(&g, &ts);
            assert_eq!(warm.edges, fresh.edges, "seed {seed}");
            assert_eq!(warm.cost, fresh.cost, "seed {seed}");
        }
    }
}

//! Bundled preset specs: every figure and table of the paper's evaluation
//! as a checked-in `.toml` file under `crates/spec/specs/`, embedded into
//! the binary so `sof run fig8` works anywhere.

use crate::spec::{ScenarioSpec, SpecError};

/// `(name, TOML source)` of every bundled preset, in evaluation order.
pub const PRESETS: &[(&str, &str)] = &[
    ("fig7", include_str!("../specs/fig7.toml")),
    ("fig8", include_str!("../specs/fig8.toml")),
    ("fig9", include_str!("../specs/fig9.toml")),
    ("fig10", include_str!("../specs/fig10.toml")),
    ("fig11", include_str!("../specs/fig11.toml")),
    ("fig12", include_str!("../specs/fig12.toml")),
    ("table1", include_str!("../specs/table1.toml")),
    ("table2", include_str!("../specs/table2.toml")),
    (
        "inet-churn-failures",
        include_str!("../specs/inet-churn-failures.toml"),
    ),
    (
        "churn-at-scale",
        include_str!("../specs/churn-at-scale.toml"),
    ),
    (
        "churn-pair-cost",
        include_str!("../specs/churn-pair-cost.toml"),
    ),
    (
        "churn-failures-protected",
        include_str!("../specs/churn-failures-protected.toml"),
    ),
];

/// The bundled preset names, in evaluation order.
pub fn preset_names() -> Vec<&'static str> {
    PRESETS.iter().map(|(n, _)| *n).collect()
}

/// The TOML source of a bundled preset.
pub fn preset_source(name: &str) -> Option<&'static str> {
    PRESETS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, src)| *src)
}

/// Parses a bundled preset. `None` for unknown names.
///
/// # Errors
///
/// [`SpecError`] if a bundled spec fails to parse — a build defect, caught
/// by the crate tests.
pub fn preset(name: &str) -> Option<Result<ScenarioSpec, SpecError>> {
    preset_source(name).map(ScenarioSpec::from_toml)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_parses_validates_and_round_trips() {
        for (name, src) in PRESETS {
            let spec = ScenarioSpec::from_toml(src)
                .unwrap_or_else(|e| panic!("preset {name} rejected: {e}"));
            assert_eq!(&spec.name, name, "preset file name vs spec name");
            spec.validate().unwrap();
            // Lossless serialization: TOML and JSON round trips are the
            // identity.
            let again = ScenarioSpec::from_toml(&spec.to_toml())
                .unwrap_or_else(|e| panic!("preset {name} TOML round trip: {e}"));
            assert_eq!(spec, again, "{name} TOML round trip changed the spec");
            let again = ScenarioSpec::from_json(&spec.to_json())
                .unwrap_or_else(|e| panic!("preset {name} JSON round trip: {e}"));
            assert_eq!(spec, again, "{name} JSON round trip changed the spec");
        }
    }

    #[test]
    fn preset_lookup() {
        assert!(preset("fig8").is_some());
        assert!(preset("fig99").is_none());
        assert_eq!(preset_names().len(), PRESETS.len());
    }
}

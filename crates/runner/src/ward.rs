//! Wards: pluggable stop conditions checked between stepping rounds.
//!
//! A churn-at-scale run has no natural end — groups retire and are
//! replaced forever — so the runner carries a set of wards and stops at
//! the first one that trips. [`Ward::MaxEvents`] is the deterministic
//! budget used by presets and goldens; [`Ward::MaxWallclock`] is a safety
//! net whose trip point depends on the host (never use it for golden
//! output); [`Ward::ConvergedCost`] watches the windowed mean forest cost
//! and stops once it has settled.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// A stop condition.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Ward {
    /// Stop once this many events have been processed (the runner never
    /// oversteps: the final round is trimmed to land exactly on the
    /// budget).
    MaxEvents(u64),
    /// Stop at the first round boundary past this wall-clock budget.
    /// Host-dependent by construction — keep it out of golden runs.
    MaxWallclock(Duration),
    /// Stop once the windowed mean forest cost has converged: the
    /// relative change between consecutive windows stays within
    /// `epsilon` for `patience` consecutive windows.
    ConvergedCost {
        /// Maximum relative change still counted as "settled".
        epsilon: f64,
        /// Consecutive settled windows required.
        patience: usize,
    },
}

/// Why a run stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// The [`Ward::MaxEvents`] budget was reached.
    MaxEvents,
    /// The [`Ward::MaxWallclock`] budget was exceeded.
    MaxWallclock,
    /// The [`Ward::ConvergedCost`] condition held long enough.
    Converged,
    /// [`RunnerHandle::stop`](crate::RunnerHandle::stop) was called.
    Stopped,
}

impl StopReason {
    /// Stable lower-kebab name used in JSONL records.
    pub fn as_str(self) -> &'static str {
        match self {
            StopReason::MaxEvents => "max-events",
            StopReason::MaxWallclock => "max-wallclock",
            StopReason::Converged => "converged-cost",
            StopReason::Stopped => "stopped",
        }
    }
}

/// Per-[`Ward::ConvergedCost`] streak state: every convergence ward in a
/// set is tracked independently, so a strict ward can never be shadowed by
/// a looser one that happens to come first.
#[derive(Clone, Copy, Debug)]
struct ConvergenceState {
    epsilon: f64,
    patience: usize,
    settled: usize,
}

/// Evaluates a ward set over the run's progress.
#[derive(Clone, Debug)]
pub(crate) struct WardSet {
    wards: Vec<Ward>,
    convergence: Vec<ConvergenceState>,
    last_mean: Option<f64>,
}

impl WardSet {
    pub(crate) fn new(wards: Vec<Ward>) -> WardSet {
        let convergence = wards
            .iter()
            .filter_map(|w| match w {
                Ward::ConvergedCost { epsilon, patience } => Some(ConvergenceState {
                    epsilon: *epsilon,
                    patience: *patience,
                    settled: 0,
                }),
                _ => None,
            })
            .collect();
        WardSet {
            wards,
            convergence,
            last_mean: None,
        }
    }

    /// Events the next round may still process before [`Ward::MaxEvents`]
    /// trips (`None` = unbounded).
    pub(crate) fn events_left(&self, done: u64) -> Option<u64> {
        self.wards
            .iter()
            .filter_map(|w| match w {
                Ward::MaxEvents(max) => Some(max.saturating_sub(done)),
                _ => None,
            })
            .min()
    }

    /// Checks the round-granular wards after `done` events and `elapsed`
    /// wall-clock time.
    pub(crate) fn after_round(&self, done: u64, elapsed: Duration) -> Option<StopReason> {
        for w in &self.wards {
            match w {
                Ward::MaxEvents(max) if done >= *max => return Some(StopReason::MaxEvents),
                Ward::MaxWallclock(budget) if elapsed >= *budget => {
                    return Some(StopReason::MaxWallclock)
                }
                _ => {}
            }
        }
        None
    }

    /// Feeds one closed window's mean forest cost to every convergence
    /// ward. Each ward keeps its own settled streak; the set converges as
    /// soon as any ward's streak reaches its patience. A ward never trips
    /// before at least one pair of windows has actually been compared —
    /// even a (library-constructed) `patience: 0` ward needs one settled
    /// comparison.
    pub(crate) fn after_window(&mut self, mean_cost: f64) -> Option<StopReason> {
        if self.convergence.is_empty() {
            return None;
        }
        if let Some(prev) = self.last_mean {
            let rel = if prev == 0.0 {
                (mean_cost - prev).abs()
            } else {
                ((mean_cost - prev) / prev).abs()
            };
            for state in &mut self.convergence {
                if rel <= state.epsilon {
                    state.settled += 1;
                } else {
                    state.settled = 0;
                }
            }
        }
        self.last_mean = Some(mean_cost);
        self.convergence
            .iter()
            .any(|s| s.settled >= s.patience.max(1))
            .then_some(StopReason::Converged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_events_caps_the_round_budget() {
        let set = WardSet::new(vec![Ward::MaxEvents(100)]);
        assert_eq!(set.events_left(0), Some(100));
        assert_eq!(set.events_left(97), Some(3));
        assert_eq!(set.events_left(100), Some(0));
        assert_eq!(set.after_round(99, Duration::ZERO), None);
        assert_eq!(
            set.after_round(100, Duration::ZERO),
            Some(StopReason::MaxEvents)
        );
    }

    #[test]
    fn unbounded_without_a_max_events_ward() {
        let set = WardSet::new(vec![Ward::MaxWallclock(Duration::from_secs(3600))]);
        assert_eq!(set.events_left(u64::MAX / 2), None);
        assert_eq!(set.after_round(1, Duration::from_secs(1)), None);
        assert_eq!(
            set.after_round(1, Duration::from_secs(3600)),
            Some(StopReason::MaxWallclock)
        );
    }

    #[test]
    fn convergence_needs_patience_consecutive_settled_windows() {
        let mut set = WardSet::new(vec![Ward::ConvergedCost {
            epsilon: 0.05,
            patience: 2,
        }]);
        assert_eq!(set.after_window(100.0), None); // first window: no pair yet
        assert_eq!(set.after_window(101.0), None); // settled ×1
        assert_eq!(set.after_window(150.0), None); // jump resets the streak
        assert_eq!(set.after_window(151.0), None); // settled ×1
        assert_eq!(set.after_window(152.0), Some(StopReason::Converged));
    }

    /// Regression: `patience: 0` used to converge on the very first window
    /// (`settled 0 >= patience 0`) before any two windows had been
    /// compared. A ward built directly with `patience: 0` must still wait
    /// for one settled comparison.
    #[test]
    fn zero_patience_still_needs_one_settled_comparison() {
        let mut set = WardSet::new(vec![Ward::ConvergedCost {
            epsilon: 0.05,
            patience: 0,
        }]);
        assert_eq!(
            set.after_window(100.0),
            None,
            "first window has nothing to compare against"
        );
        assert_eq!(set.after_window(101.0), Some(StopReason::Converged));
    }

    /// Regression: `after_window` used to `find_map` the first
    /// `ConvergedCost` ward and silently ignore the rest — a loose ward
    /// listed first could trip while a strict one listed after it had
    /// never settled, and a strict ward first made a loose one after it
    /// unreachable. Every convergence ward is tracked independently now.
    #[test]
    fn every_convergence_ward_is_tracked_independently() {
        // Strict first, loose second: the loose ward must still fire.
        let mut set = WardSet::new(vec![
            Ward::ConvergedCost {
                epsilon: 1e-9,
                patience: 5,
            },
            Ward::ConvergedCost {
                epsilon: 0.5,
                patience: 1,
            },
        ]);
        assert_eq!(set.after_window(100.0), None);
        assert_eq!(
            set.after_window(110.0),
            Some(StopReason::Converged),
            "the second (loose) ward settled, even though the first did not"
        );

        // Loose-but-patient first, tight-and-quick second: a jump resets
        // both streaks; the quick ward fires first once windows settle.
        let mut set = WardSet::new(vec![
            Ward::ConvergedCost {
                epsilon: 0.5,
                patience: 4,
            },
            Ward::ConvergedCost {
                epsilon: 0.05,
                patience: 2,
            },
        ]);
        assert_eq!(set.after_window(100.0), None);
        assert_eq!(set.after_window(101.0), None); // both settle ×1
        assert_eq!(set.after_window(102.0), Some(StopReason::Converged));
    }

    #[test]
    fn stop_reasons_have_stable_names() {
        assert_eq!(StopReason::MaxEvents.as_str(), "max-events");
        assert_eq!(StopReason::MaxWallclock.as_str(), "max-wallclock");
        assert_eq!(StopReason::Converged.as_str(), "converged-cost");
        assert_eq!(StopReason::Stopped.as_str(), "stopped");
    }
}

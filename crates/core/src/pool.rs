//! Concurrent execution of many independent [`OnlineSession`]s.
//!
//! Online workloads (Fig. 12 at production scale) serve many multicast
//! groups at once; the sessions are fully independent, so a [`SessionPool`]
//! steps them in parallel on `sof_par` workers while keeping results
//! bit-identical to stepping them one by one: session `i` always processes
//! request `i`, and reports come back in session order regardless of the
//! thread count.
//!
//! # Examples
//!
//! ```
//! use sof_core::{
//!     Network, OnlineConfig, OnlineSession, Request, ServiceChain, SessionPool, Sofda,
//!     SofInstance, SofdaConfig,
//! };
//! use sof_graph::{Cost, Graph, NodeId};
//!
//! let session = |dest: usize| {
//!     let mut g = Graph::with_nodes(8);
//!     for i in 0..8 {
//!         g.add_edge(NodeId::new(i), NodeId::new((i + 1) % 8), Cost::new(1.0));
//!     }
//!     let mut net = Network::all_switches(g);
//!     net.make_vm(NodeId::new(2), Cost::new(1.0));
//!     let request = Request::new(
//!         vec![NodeId::new(0)],
//!         vec![NodeId::new(dest)],
//!         ServiceChain::with_len(1),
//!     );
//!     let inst = SofInstance::new(net, request).expect("valid instance");
//!     OnlineSession::new(inst, Box::new(Sofda), SofdaConfig::default(), OnlineConfig::default())
//! };
//! let mut pool = SessionPool::new(vec![session(4), session(5)]).with_threads(2);
//! let requests: Vec<Request> = pool
//!     .sessions()
//!     .iter()
//!     .map(|s| s.instance().request.clone())
//!     .collect();
//! let reports = pool.arrive_each(&requests);
//! assert_eq!(reports.len(), 2);
//! assert!(reports.iter().all(|r| r.as_ref().is_ok_and(|a| a.rebuilt)));
//! assert!(pool.total_accumulated_cost() > 0.0);
//! ```

use crate::{ArrivalReport, OnlineSession, Request, SolveError};

/// A pool of independent online sessions stepped concurrently.
///
/// `threads = 0` (the default) resolves through
/// [`sof_par::current_threads`] (`--threads` / `SOF_THREADS` / auto).
pub struct SessionPool {
    sessions: Vec<OnlineSession>,
    threads: usize,
}

impl SessionPool {
    /// Wraps `sessions`; thread count resolves automatically.
    pub fn new(sessions: Vec<OnlineSession>) -> SessionPool {
        SessionPool {
            sessions,
            threads: 0,
        }
    }

    /// Pins the worker count (`0` = auto via [`sof_par::current_threads`]).
    pub fn with_threads(mut self, threads: usize) -> SessionPool {
        self.threads = threads;
        self
    }

    /// Number of sessions in the pool.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Read access to the sessions, in pool order.
    pub fn sessions(&self) -> &[OnlineSession] {
        &self.sessions
    }

    /// Mutable access to the sessions, in pool order (e.g. for injecting
    /// failures between steps).
    pub fn sessions_mut(&mut self) -> &mut [OnlineSession] {
        &mut self.sessions
    }

    /// Consumes the pool, returning its sessions.
    pub fn into_sessions(self) -> Vec<OnlineSession> {
        self.sessions
    }

    /// Appends a session, returning its slot index.
    pub fn push(&mut self, session: OnlineSession) -> usize {
        self.sessions.push(session);
        self.sessions.len() - 1
    }

    /// Swaps the session in slot `i` for a fresh one, returning the
    /// retired session. Slot indices of other sessions are unchanged, so
    /// long-running drivers can retire finished groups in place while the
    /// pool keeps its size (and its lockstep step shape) constant.
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.len()`.
    pub fn replace(&mut self, i: usize, session: OnlineSession) -> OnlineSession {
        std::mem::replace(&mut self.sessions[i], session)
    }

    /// Steps every session once: session `i` processes `requests[i]`.
    /// Reports come back in session order and are bit-identical to calling
    /// [`OnlineSession::arrive`] sequentially, for any thread count.
    ///
    /// # Panics
    ///
    /// Panics when `requests.len() != self.len()`, or when a session's
    /// solver panics (the worker pool surfaces it after draining cleanly).
    pub fn arrive_each(&mut self, requests: &[Request]) -> Vec<Result<ArrivalReport, SolveError>> {
        assert_eq!(
            requests.len(),
            self.sessions.len(),
            "one request per session"
        );
        sof_par::par_map_mut(&mut self.sessions, self.threads, |i, session| {
            session.arrive(requests[i].clone())
        })
        .unwrap_or_else(|e| panic!("session pool: {e}"))
    }

    /// Steps only the sessions that have a request this round: slot `i`
    /// processes `requests[i]` when it is `Some`, and is left untouched
    /// (no cost, no counters) when it is `None`. Reports come back in
    /// slot order with `None` for idle slots; like
    /// [`SessionPool::arrive_each`] the outcome is bit-identical to a
    /// sequential sweep, for any thread count.
    ///
    /// # Panics
    ///
    /// Panics when `requests.len() != self.len()`, or when a session's
    /// solver panics.
    pub fn arrive_opt(
        &mut self,
        requests: &[Option<Request>],
    ) -> Vec<Option<Result<ArrivalReport, SolveError>>> {
        assert_eq!(
            requests.len(),
            self.sessions.len(),
            "one request slot per session"
        );
        sof_par::par_map_mut(&mut self.sessions, self.threads, |i, session| {
            requests[i].as_ref().map(|r| session.arrive(r.clone()))
        })
        .unwrap_or_else(|e| panic!("session pool: {e}"))
    }

    /// Per-session accumulated costs, in pool order.
    pub fn accumulated_costs(&self) -> Vec<f64> {
        self.sessions
            .iter()
            .map(OnlineSession::accumulated_cost)
            .collect()
    }

    /// Sum of accumulated costs, folded in pool order (deterministic).
    pub fn total_accumulated_cost(&self) -> f64 {
        self.sessions
            .iter()
            .map(OnlineSession::accumulated_cost)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Network, OnlineConfig, ServiceChain, SofInstance, Sofda, SofdaConfig};
    use sof_graph::{generators, Cost, CostRange, NodeId, Rng64};

    fn session(seed: u64) -> OnlineSession {
        let mut rng = Rng64::seed_from(seed);
        let g = generators::gnp_connected(24, 0.18, CostRange::new(1.0, 5.0), &mut rng);
        let mut net = Network::all_switches(g);
        let picks = rng.sample_indices(24, 9);
        for &v in &picks[..5] {
            net.make_vm(NodeId::new(v), Cost::new(1.0));
        }
        let inst = SofInstance::new(
            net,
            Request::new(
                vec![NodeId::new(picks[5]), NodeId::new(picks[6])],
                vec![NodeId::new(picks[7]), NodeId::new(picks[8])],
                ServiceChain::with_len(2),
            ),
        )
        .unwrap();
        OnlineSession::new(
            inst,
            Box::new(Sofda),
            SofdaConfig::default().with_seed(seed),
            OnlineConfig::default(),
        )
    }

    #[test]
    fn pool_matches_sequential_sessions() {
        let seeds = [3u64, 4, 5, 6, 7];
        // Sequential baseline.
        let mut serial_costs = Vec::new();
        for &s in &seeds {
            let mut one = session(s);
            let req = one.instance().request.clone();
            one.arrive(req.clone()).unwrap();
            one.arrive(req).unwrap();
            serial_costs.push(one.accumulated_cost());
        }
        for threads in [1, 2, 8] {
            let mut pool =
                SessionPool::new(seeds.iter().map(|&s| session(s)).collect()).with_threads(threads);
            let requests: Vec<Request> = pool
                .sessions()
                .iter()
                .map(|s| s.instance().request.clone())
                .collect();
            let first = pool.arrive_each(&requests);
            assert!(first.iter().all(|r| r.is_ok()), "threads={threads}");
            pool.arrive_each(&requests);
            assert_eq!(pool.accumulated_costs(), serial_costs, "threads={threads}");
            assert_eq!(pool.len(), seeds.len());
        }
    }

    #[test]
    #[should_panic(expected = "one request per session")]
    fn mismatched_request_count_panics() {
        let mut pool = SessionPool::new(vec![session(1)]);
        pool.arrive_each(&[]);
    }

    #[test]
    fn push_and_replace_keep_slot_order() {
        let mut pool = SessionPool::new(vec![session(1), session(2)]);
        assert_eq!(pool.push(session(3)), 2);
        assert_eq!(pool.len(), 3);
        let req = pool.sessions()[1].instance().request.clone();
        pool.sessions_mut()[1].arrive(req).unwrap();
        let stepped_cost = pool.accumulated_costs()[1];
        assert!(stepped_cost > 0.0);
        let retired = pool.replace(1, session(9));
        assert_eq!(retired.accumulated_cost(), stepped_cost);
        assert_eq!(pool.accumulated_costs()[1], 0.0, "fresh session in slot 1");
        assert_eq!(pool.len(), 3);
    }

    #[test]
    fn arrive_opt_skips_idle_slots() {
        let seeds = [3u64, 4, 5];
        for threads in [1, 4] {
            let mut pool =
                SessionPool::new(seeds.iter().map(|&s| session(s)).collect()).with_threads(threads);
            let req1 = pool.sessions()[1].instance().request.clone();
            let reports = pool.arrive_opt(&[None, Some(req1), None]);
            assert!(reports[0].is_none() && reports[2].is_none());
            assert!(reports[1].as_ref().unwrap().is_ok());
            let costs = pool.accumulated_costs();
            assert_eq!(costs[0], 0.0);
            assert_eq!(costs[2], 0.0);
            assert!(costs[1] > 0.0);
            // The stepped slot matches a solo sequential session.
            let mut solo = session(4);
            let req = solo.instance().request.clone();
            solo.arrive(req).unwrap();
            assert_eq!(costs[1], solo.accumulated_cost(), "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "one request slot per session")]
    fn arrive_opt_mismatch_panics() {
        let mut pool = SessionPool::new(vec![session(1)]);
        pool.arrive_opt(&[None, None]);
    }
}

//! Integration tests for `sofd`, the embedding daemon: the full wire
//! round trip on an ephemeral port, malformed-request 4xx behavior,
//! janitor TTL expiry, and graceful shutdown with an in-flight request.

use sof::daemon::{Client, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn start(config: ServerConfig) -> sof::daemon::ServerHandle {
    Server::start(config).expect("bind 127.0.0.1:0")
}

const BENCH_TOPO: &str = r#"{"name":"t","regions":[
  {"name":"us-east","nodes":6,"dcs":2},
  {"name":"eu-west","nodes":6,"dcs":2}
],"gateway_links":2,"seed":7}"#;

const SESSION: &str = r#"{"topology":"t","sources":[0],"destinations":[3,9],
  "chain_len":2,"seed":11,"ttl_secs":0}"#;

/// The embed → join → leave → fail → stats → delete round trip, all over
/// real HTTP on an ephemeral port.
#[test]
fn wire_round_trip() {
    let handle = start(ServerConfig::default());
    let mut c = Client::new(handle.addr());

    let (status, body) = c.request("GET", "/healthz", "").unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"ok\":true"), "{body}");

    let (status, body) = c.request("POST", "/v1/topologies", BENCH_TOPO).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"kind\":\"regions\""), "{body}");
    // Duplicate names conflict.
    let (status, body) = c.request("POST", "/v1/topologies", BENCH_TOPO).unwrap();
    assert_eq!(status, 409, "{body}");

    let (status, body) = c.request("POST", "/v1/sessions", SESSION).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"id\":1"), "{body}");
    assert!(body.contains("\"rebuilt\":true"), "{body}");

    // Join is served incrementally (§VII-C), not by a rebuild.
    let (status, body) = c
        .request("POST", "/v1/sessions/1/join", "{\"destination\":5}")
        .unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"rebuilt\":false"), "{body}");
    assert!(body.contains("\"joined\":1"), "{body}");
    // Joining a destination twice is a client error.
    let (status, body) = c
        .request("POST", "/v1/sessions/1/join", "{\"destination\":5}")
        .unwrap();
    assert_eq!(status, 400, "{body}");

    let (status, body) = c
        .request("POST", "/v1/sessions/1/leave", "{\"destination\":5}")
        .unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"destinations\":[3,9]"), "{body}");

    // A VM failure on a non-VM node is a 400 with the library's message.
    let (status, body) = c
        .request("POST", "/v1/sessions/1/fail", "{\"vm\":0}")
        .unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("not a VM"), "{body}");
    // Access nodes 0..12 come first, then the VMs (one per DC).
    let (status, body) = c
        .request("POST", "/v1/sessions/1/fail", "{\"vm\":12}")
        .unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"disrupted\""), "{body}");

    let (status, body) = c.request("GET", "/v1/sessions/1", "").unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"solver\":\"SOFDA\""), "{body}");
    assert!(body.contains("\"vm_failures\":1"), "{body}");

    let (status, body) = c.request("GET", "/v1/stats", "").unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"live\":1"), "{body}");
    assert!(body.contains("\"engine\":"), "{body}");
    assert!(body.contains("\"per_session\":"), "{body}");

    let (status, body) = c.request("DELETE", "/v1/sessions/1", "").unwrap();
    assert_eq!(status, 200, "{body}");
    let (status, _) = c.request("GET", "/v1/sessions/1", "").unwrap();
    assert_eq!(status, 404);

    // The stats survive the deletion and count every request so far.
    let (status, body) = c.request("GET", "/v1/stats", "").unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"deleted\":1"), "{body}");

    handle.stop();
}

/// Every malformed request gets an actionable 4xx, never a dropped
/// connection or a panic.
#[test]
fn malformed_requests_get_4xx() {
    let handle = start(ServerConfig {
        max_body: 256,
        ..ServerConfig::default()
    });
    let mut c = Client::new(handle.addr());

    // Not JSON at all.
    let (status, body) = c.request("POST", "/v1/sessions", "{nope").unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("not JSON"), "{body}");
    // JSON, but not an object.
    let (status, body) = c.request("POST", "/v1/sessions", "[1,2]").unwrap();
    assert_eq!(status, 400, "{body}");
    // Missing required fields name the field.
    let (status, body) = c.request("POST", "/v1/sessions", "{}").unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("'topology'"), "{body}");
    // Unknown fields are rejected, not ignored.
    let (status, body) = c
        .request(
            "POST",
            "/v1/topologies",
            r#"{"name":"x","topology":"testbed","seeds":1}"#,
        )
        .unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("'seeds'"), "{body}");
    // Unknown topology registry names list the valid ones.
    let (status, body) = c
        .request(
            "POST",
            "/v1/topologies",
            r#"{"name":"x","topology":"fatlayer"}"#,
        )
        .unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("softlayer"), "{body}");
    // An invalid pair_cost matrix surfaces the library validator verbatim.
    let bad = r#"{"name":"x","regions":[{"name":"a","nodes":4,"dcs":1},
        {"name":"b","nodes":4,"dcs":1}],"pair_cost":[[1.0,2.0],[3.0,1.0]]}"#;
    let (status, body) = c.request("POST", "/v1/topologies", bad).unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("pair_cost must be symmetric"), "{body}");
    // Unknown routes 404 with the endpoint list; wrong methods 405.
    let (status, body) = c.request("GET", "/v2/nope", "").unwrap();
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("/v1/sessions"), "{body}");
    let (status, body) = c.request("PATCH", "/healthz", "").unwrap();
    assert_eq!(status, 405, "{body}");
    // Session ids must be integers; unknown ids are 404s.
    let (status, body) = c.request("GET", "/v1/sessions/abc", "").unwrap();
    assert_eq!(status, 400, "{body}");
    let (status, _) = c.request("GET", "/v1/sessions/99", "").unwrap();
    assert_eq!(status, 404);
    // Oversized bodies get a 413 naming the limit.
    let huge = format!(r#"{{"topology":"{}"}}"#, "x".repeat(512));
    let (status, body) = c.request("POST", "/v1/sessions", &huge).unwrap();
    assert_eq!(status, 413, "{body}");
    assert!(body.contains("256-byte limit"), "{body}");

    // All of the above counted as errors, and the daemon still serves.
    let (status, body) = c.request("GET", "/v1/stats", "").unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"errors\":11"), "{body}");
    handle.stop();
}

/// The survivability surface: link/node/domain failures, immediate
/// repairs, janitor-applied scheduled repairs, and strict 4xx validation
/// of the element vocabulary.
#[test]
fn survivability_fail_and_repair_endpoints() {
    let handle = start(ServerConfig {
        janitor_period: Duration::from_millis(50),
        ..ServerConfig::default()
    });
    let mut c = Client::new(handle.addr());
    c.request("POST", "/v1/topologies", BENCH_TOPO).unwrap();
    let (status, body) = c.request("POST", "/v1/sessions", SESSION).unwrap();
    assert_eq!(status, 200, "{body}");

    // A transit-node failure reports the disconnected destinations and
    // leaves the forest standing.
    let (status, body) = c
        .request("POST", "/v1/sessions/1/fail", "{\"node\":1}")
        .unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"element\":\"node:1\""), "{body}");
    assert!(body.contains("\"disconnected\""), "{body}");
    let (status, body) = c
        .request("POST", "/v1/sessions/1/repair", "{\"node\":1}")
        .unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"repaired\":\"node:1\""), "{body}");
    // Repairing an element that is not failed is a client error.
    let (status, body) = c
        .request("POST", "/v1/sessions/1/repair", "{\"node\":1}")
        .unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("not a failed node"), "{body}");

    // The topology's graph is seeded, so probe for a real link off node 0
    // and run the fail → repair round trip on it.
    let mut linked = None;
    for u in 1..12 {
        let (status, body) = c
            .request(
                "POST",
                "/v1/sessions/1/fail",
                &format!("{{\"link\":[0,{u}]}}"),
            )
            .unwrap();
        if status == 200 {
            assert!(
                body.contains(&format!("\"element\":\"link:0-{u}\"")),
                "{body}"
            );
            linked = Some(u);
            break;
        }
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("no link between"), "{body}");
    }
    let u = linked.expect("node 0 has at least one incident link");
    let (status, body) = c
        .request(
            "POST",
            "/v1/sessions/1/repair",
            &format!("{{\"link\":[0,{u}]}}"),
        )
        .unwrap();
    assert_eq!(status, 200, "{body}");

    // Domain failures need a regions topology and a known region name…
    let (status, body) = c
        .request("POST", "/v1/sessions/1/fail", "{\"domain\":\"zz\"}")
        .unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("us-east"), "{body}");
    // …and skip the request's endpoint nodes instead of erroring on them.
    let (status, body) = c
        .request("POST", "/v1/sessions/1/fail", "{\"domain\":\"eu-west\"}")
        .unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"element\":\"domain:eu-west\""), "{body}");
    let (status, body) = c
        .request("POST", "/v1/sessions/1/repair", "{\"domain\":\"eu-west\"}")
        .unwrap();
    assert_eq!(status, 200, "{body}");

    // Strict element validation: exactly one element key, well-formed
    // pairs, no unknown fields.
    let (status, body) = c
        .request("POST", "/v1/sessions/1/fail", "{\"vm\":12,\"node\":1}")
        .unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("exactly one of"), "{body}");
    let (status, body) = c.request("POST", "/v1/sessions/1/fail", "{}").unwrap();
    assert_eq!(status, 400, "{body}");
    let (status, body) = c
        .request("POST", "/v1/sessions/1/fail", "{\"link\":[3]}")
        .unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("endpoint pair"), "{body}");
    let (status, body) = c
        .request("POST", "/v1/sessions/1/fail", "{\"link\":[3,3]}")
        .unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("must differ"), "{body}");
    let (status, body) = c
        .request("POST", "/v1/sessions/1/fail", "{\"node\":0}")
        .unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("source or destination"), "{body}");
    let (status, body) = c
        .request("POST", "/v1/sessions/1/fail", "{\"node\":2,\"typo\":1}")
        .unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("'typo'"), "{body}");

    // A scheduled repair shows up in the session view and the janitor
    // applies it once due.
    let (status, body) = c
        .request(
            "POST",
            "/v1/sessions/1/fail",
            "{\"node\":2,\"repair_secs\":1}",
        )
        .unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"repair_in_secs\":1"), "{body}");
    let (status, body) = c.request("GET", "/v1/sessions/1", "").unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"pending_repairs\":1"), "{body}");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        std::thread::sleep(Duration::from_millis(100));
        let (_, body) = c.request("GET", "/v1/sessions/1", "").unwrap();
        if body.contains("\"pending_repairs\":0") {
            break;
        }
        assert!(Instant::now() < deadline, "janitor never repaired: {body}");
    }
    // The janitor really repaired it: a manual repair now 400s.
    let (status, body) = c
        .request("POST", "/v1/sessions/1/repair", "{\"node\":2}")
        .unwrap();
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("not a failed node"), "{body}");

    handle.stop();
}

/// The janitor expires idle sessions past their TTL; touched sessions
/// live on.
#[test]
fn janitor_expires_idle_sessions() {
    let handle = start(ServerConfig {
        default_ttl: Some(Duration::from_millis(300)),
        janitor_period: Duration::from_millis(50),
        ..ServerConfig::default()
    });
    let mut c = Client::new(handle.addr());
    c.request("POST", "/v1/topologies", BENCH_TOPO).unwrap();
    // ttl_secs omitted → the server default applies.
    let body = r#"{"topology":"t","sources":[0],"destinations":[3,9],"seed":11}"#;
    let (status, resp) = c.request("POST", "/v1/sessions", body).unwrap();
    assert_eq!(status, 200, "{resp}");

    // Idle past the TTL: the janitor reaps it.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        std::thread::sleep(Duration::from_millis(100));
        let (_, stats) = c.request("GET", "/v1/stats", "").unwrap();
        if stats.contains("\"expired\":1") {
            assert!(stats.contains("\"live\":0"), "{stats}");
            break;
        }
        assert!(Instant::now() < deadline, "janitor never expired: {stats}");
    }
    let (status, _) = c.request("GET", "/v1/sessions/1", "").unwrap();
    assert_eq!(status, 404);

    // A ttl_secs of 0 opts out of expiry entirely.
    let immortal = r#"{"topology":"t","sources":[0],"destinations":[3,9],"seed":12,"ttl_secs":0}"#;
    let (status, resp) = c.request("POST", "/v1/sessions", immortal).unwrap();
    assert_eq!(status, 200, "{resp}");
    std::thread::sleep(Duration::from_millis(700));
    let (status, _) = c.request("GET", "/v1/sessions/2", "").unwrap();
    assert_eq!(status, 200, "session with ttl_secs 0 must not expire");
    handle.stop();
}

/// Graceful shutdown drains in-flight requests: a request already written
/// to the socket when `stop` begins still gets its complete response.
#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let handle = start(ServerConfig::default());
    let addr = handle.addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
        .unwrap();
    stream.flush().unwrap();

    // Stop the daemon while the request is in flight. `stop` joins the
    // accept loop, which joins every connection thread — so it cannot
    // return until our request has been answered.
    let stopper = std::thread::spawn(move || handle.stop());
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    stopper.join().unwrap();

    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    assert!(response.contains("\"ok\":true"), "{response}");

    // The daemon is actually gone: new connections are refused (or reset
    // at the first read on lingering backlog accepts).
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(mut s) => {
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let _ = s.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
            let mut buf = String::new();
            assert_eq!(
                s.read_to_string(&mut buf).unwrap_or(0),
                0,
                "daemon answered after shutdown: {buf}"
            );
        }
    }
}

/// `POST /v1/shutdown` flips the stop flag the serving loop watches.
#[test]
fn shutdown_endpoint_requests_stop() {
    let handle = start(ServerConfig::default());
    let mut c = Client::new(handle.addr());
    assert!(!handle.stop_requested());
    let (status, body) = c.request("POST", "/v1/shutdown", "").unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"stopping\":true"), "{body}");
    assert!(handle.stop_requested());
    handle.stop();
}

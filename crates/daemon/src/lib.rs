//! # sofd — the long-running embedding daemon
//!
//! The paper casts the SOF controller as a long-lived SDN service that
//! admits multicast groups online; this crate is that service. It wraps
//! the deterministic library — [`sof_core::OnlineSession`] driving any
//! registered solver over a warm `PathEngine` — in a JSON control plane
//! served over a hand-rolled, dependency-free HTTP/1.1 layer on
//! [`std::net::TcpListener`] (the same vendored-stand-in discipline that
//! made `sof_spec` hand-roll TOML/JSON).
//!
//! ## Wire API
//!
//! | Method & path                  | Does |
//! |--------------------------------|------|
//! | `POST /v1/topologies`          | register a named or multi-region topology |
//! | `POST /v1/sessions`            | embed a new group (first [`sof_core::ArrivalReport`]) |
//! | `GET /v1/sessions/{id}`        | session state + lifetime counters |
//! | `POST /v1/sessions/{id}/join`  | incremental §VII-C destination join |
//! | `POST /v1/sessions/{id}/leave` | incremental destination leave |
//! | `POST /v1/sessions/{id}/fail`  | inject a VM failure |
//! | `DELETE /v1/sessions/{id}`     | tear the session down |
//! | `GET /healthz`                 | liveness |
//! | `GET /v1/stats`                | request/error totals, engine counters, per-session costs |
//! | `POST /v1/shutdown`            | request a graceful stop |
//!
//! See `docs/DAEMON.md` for JSON shapes and error semantics. Robustness
//! is first-class: bounded request bodies, per-request socket timeouts,
//! 4xx with actionable messages for every malformed request (handler
//! panics become 500s, never a dead connection thread), a janitor thread
//! expiring sessions past their TTL, and graceful shutdown that drains
//! in-flight connections before returning.
//!
//! # Examples
//!
//! ```
//! use sof_daemon::{Client, Server, ServerConfig};
//!
//! let handle = Server::start(ServerConfig::default())?; // 127.0.0.1:0
//! let mut client = Client::new(handle.addr());
//! let (status, body) = client.request("GET", "/healthz", "")?;
//! assert_eq!(status, 200);
//! assert!(body.contains("\"ok\":true"));
//! handle.stop(); // graceful: drains in-flight connections
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod client;
pub mod http;
pub mod registry;
pub mod router;
pub mod server;
pub mod wire;

pub use bench::{register_bench_topology, run_bench, BenchOptions, BenchReport};
pub use client::Client;
pub use registry::{DaemonStats, Registry};
pub use server::{Server, ServerConfig, ServerHandle};
pub use wire::{ApiError, Body};

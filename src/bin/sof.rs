//! `sof` — the unified scenario CLI.
//!
//! ```text
//! sof run <preset|spec.toml|spec.json> [options]   run a scenario
//! sof list                                         list bundled presets
//! sof validate <preset|file>... | --all            check specs without running
//! ```
//!
//! `sof run` emits the structured `RunReport` as JSON lines by default
//! (deterministic for a fixed seed and any `--threads`); pass
//! `--format markdown` for the legacy figure tables.

use sof_spec::shim::{apply_overrides, Overrides};
use sof_spec::{
    render_markdown, run_churn_stream, run_spec, write_jsonl, Detail, RunOptions, RunReport,
    ScenarioSpec, Workload,
};
use std::io::Write;
use std::path::Path;
use std::process::exit;

const USAGE: &str = "sof — Service Overlay Forest scenarios

Usage:
  sof run <preset|spec.toml|spec.json> [options]
  sof list
  sof validate <preset|file>... | --all
  sof bench-snapshot [--out FILE] [--reps N] [--threads N] [--entry NAME]...
  sof serve [--addr HOST:PORT] [--ttl-secs N] [--stdin]
  sof serve-bench [--addr HOST:PORT] [--connections N] [--requests N]
                  [--reps N] [--out FILE] [--shutdown]
  sof help

Run options:
  --format <jsonl|markdown>  output format (default jsonl)
  --seeds <N>                override the averaging width
  --seed <N>                 override the base RNG seed
  --limit <N>                truncate every sweep axis to its first N values
  --solvers <A,B,...>        override the solver set
  --nodes <N>                resize the topology (inet family only)
  --requests <N>             override every online group's arrival count
  --groups <N>               override the concurrent-group count (churn-at-scale)
  --events <N>               override the event budget (churn-at-scale)
  --window <N>               override the window size (churn-at-scale)
  --threads <N>              worker threads (0 = all cores; overrides SOF_THREADS)
  --timings                  include wall-clock measurements in the JSONL output

Presets are bundled spec files (see `sof list`); anything containing a
path separator or ending in .toml/.json is read from disk.

churn-at-scale workloads stream their records (meta, windows, optional
per-event samples, summary) to stdout incrementally in jsonl format —
memory stays bounded no matter how many events the budget allows.

`sof bench-snapshot` runs a fixed miniature preset set and writes a JSON
wall-clock snapshot (the `BENCH_*.json` perf trajectory; CI uploads one
per run and diffs it against the committed snapshot).

`sof serve` runs sofd, the long-running embedding daemon: a JSON control
plane over HTTP/1.1 (see docs/DAEMON.md). It prints the bound address,
then serves until POST /v1/shutdown arrives; --ttl-secs gives sessions a
default idle TTL the janitor enforces (0 = never), and --stdin also stops
the daemon when stdin reaches EOF (for supervisors holding a pipe —
unsafe as a default, since a backgrounded daemon's stdin is often
/dev/null, which is EOF immediately).

`sof serve-bench` drives a daemon with a closed-loop client (N keep-alive
connections cycling create/join/leave/delete) and reports requests/sec
plus p50/p99 latency. Without --addr it benches an in-process daemon on
an ephemeral port; --shutdown posts /v1/shutdown afterwards (the CI smoke
job uses both against a backgrounded `sof serve`).";

fn fatal(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    exit(2);
}

fn load_spec(target: &str) -> ScenarioSpec {
    let looks_like_path = target.contains('/')
        || target.ends_with(".toml")
        || target.ends_with(".json")
        || Path::new(target).exists();
    if looks_like_path {
        match ScenarioSpec::from_path(Path::new(target)) {
            Ok(s) => s,
            Err(e) => fatal(e),
        }
    } else {
        match sof_spec::presets::preset(target) {
            Some(Ok(s)) => s,
            Some(Err(e)) => fatal(format!("bundled preset '{target}' is invalid: {e}")),
            None => fatal(format!(
                "unknown preset '{target}' (run `sof list`, or pass a spec file path)"
            )),
        }
    }
}

/// Applies one `--flag value` pair onto `Overrides`; `false` means the
/// flag is not an override flag. Shared by `sof run` and
/// `sof bench-snapshot` so the two can never drift apart.
fn override_flag(overrides: &mut Overrides, flag: &str, val: &str) -> bool {
    match flag {
        "--seeds" => overrides.seeds = Some(parse_num(val, flag)),
        "--seed" => overrides.seed = Some(parse_num(val, flag)),
        "--limit" => overrides.limit = Some(parse_num(val, flag) as usize),
        "--solvers" => {
            overrides.solvers = Some(val.split(',').map(|s| s.trim().to_string()).collect())
        }
        "--nodes" => overrides.nodes = Some(parse_num(val, flag) as usize),
        "--requests" => overrides.requests = Some(parse_num(val, flag) as usize),
        "--groups" => overrides.groups = Some(parse_num(val, flag) as usize),
        "--events" => overrides.events = Some(parse_num(val, flag)),
        "--window" => overrides.window = Some(parse_num(val, flag)),
        _ => return false,
    }
    true
}

fn cmd_run(args: Vec<String>) {
    let mut format = "jsonl".to_string();
    let mut overrides = Overrides::default();
    let mut threads: Option<usize> = None;
    let mut timings = false;
    let mut target: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next()
                .unwrap_or_else(|| fatal(format!("flag '{flag}' is missing its value")))
        };
        match arg.as_str() {
            "--format" => format = value("--format"),
            "--seeds" | "--seed" | "--limit" | "--solvers" | "--nodes" | "--requests"
            | "--groups" | "--events" | "--window" => {
                let v = value(&arg);
                override_flag(&mut overrides, &arg, &v);
            }
            "--threads" => threads = Some(parse_num(&value("--threads"), "--threads") as usize),
            "--timings" => timings = true,
            other if other.starts_with("--") => fatal(format!("unknown flag '{other}'")),
            _ => {
                if target.is_some() {
                    fatal(format!("unexpected extra argument '{arg}'"));
                }
                target = Some(arg);
            }
        }
    }
    let Some(target) = target else {
        fatal("`sof run` needs a preset name or spec file (see `sof list`)");
    };
    if let Some(t) = threads {
        sof_par::set_threads(t);
    }
    let mut spec = load_spec(&target);
    for name in apply_overrides(&mut spec, &overrides) {
        eprintln!(
            "warning: --{name} does not apply to a '{}' workload and was ignored",
            spec.workload.kind()
        );
    }
    if let Err(e) = spec.validate() {
        fatal(e);
    }
    let opts = RunOptions {
        threads: 0,
        timings,
        legacy_notes: false,
    };
    match format.as_str() {
        "jsonl" | "json" => {
            // churn-at-scale streams: records hit stdout the moment the
            // runner produces them instead of accumulating a report.
            if matches!(spec.workload, Workload::ChurnAtScale(_)) {
                let out = std::io::BufWriter::new(std::io::stdout());
                match run_churn_stream(&spec, &opts, out) {
                    Ok(summary) => {
                        let _ = std::io::stdout().flush();
                        eprintln!(
                            "{} events in {} windows, stop: {}",
                            summary.events,
                            summary.windows,
                            summary.stop.as_str()
                        );
                    }
                    Err(e) => fatal(e),
                }
                return;
            }
            let report = match run_spec(&spec, &opts) {
                Ok(r) => r,
                Err(e) => fatal(e),
            };
            for w in report.warnings() {
                eprintln!("warning: {w}");
            }
            print!("{}", write_jsonl(&report, timings));
        }
        "markdown" | "md" => {
            let report = match run_spec(&spec, &opts) {
                Ok(r) => r,
                Err(e) => fatal(e),
            };
            for w in report.warnings() {
                eprintln!("warning: {w}");
            }
            print!("{}", render_markdown(&report));
        }
        other => fatal(format!(
            "unknown format '{other}' (expected 'jsonl' or 'markdown')"
        )),
    }
}

fn parse_num(v: &str, flag: &str) -> u64 {
    v.parse()
        .unwrap_or_else(|_| fatal(format!("invalid value '{v}' for flag '{flag}'")))
}

/// The fixed preset set of the perf trajectory (`BENCH_*.json`): one
/// online workload (engine + incremental path), comparison sweeps at
/// miniature scale (engine across solvers), the exact solver (relaxation
/// memo + pool), and a large-topology point. Entries mirror the CI golden
/// invocations, so every timed run is also output-pinned.
const BENCH_PRESETS: &[(&str, &str, &str)] = &[
    ("fig12-online-r8", "fig12", "--requests 8"),
    ("fig9-sweep", "fig9", "--seeds 1 --limit 1"),
    (
        "fig8-sweep",
        "fig8",
        "--seeds 2 --limit 2 --solvers SOFDA,eNEMP,eST,ST",
    ),
    ("table1-exact", "table1", "--limit 1"),
    ("fig10-inet300", "fig10", "--seeds 1 --limit 1 --nodes 300"),
    ("table2-exact", "table2", "--seeds 2"),
    (
        "churn-at-scale",
        "churn-at-scale",
        "--groups 200 --events 4000 --window 1000",
    ),
    // The survivability subsystem: a three-policy comparison over one
    // failure trace (failure application, protection prewarm, recovery).
    ("failures-recovery", "churn-failures-protected", ""),
];

/// Sums the `PathEngine` counters over every online session in the
/// report: (hits, misses, stale, repairs, partial_repairs). `None` when
/// the report has no online sections (sweeps don't surface per-session
/// engine stats).
fn engine_counters(report: &RunReport) -> Option<(u64, u64, u64, u64, u64)> {
    let mut any = false;
    let mut sum = (0u64, 0u64, 0u64, 0u64, 0u64);
    for section in &report.sections {
        if let Detail::Online(d) = &section.detail {
            for s in &d.sessions {
                any = true;
                sum.0 += s.engine_hits;
                sum.1 += s.engine_misses;
                sum.2 += s.engine_stale;
                sum.3 += s.engine_repairs;
                sum.4 += s.engine_partial_repairs;
            }
        }
    }
    any.then_some(sum)
}

fn cmd_bench_snapshot(args: Vec<String>) {
    let mut out: Option<String> = None;
    let mut reps = 3usize;
    let mut threads: Option<usize> = None;
    let mut only: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next()
                .unwrap_or_else(|| fatal(format!("flag '{flag}' is missing its value")))
        };
        match arg.as_str() {
            "--out" => out = Some(value("--out")),
            "--reps" => reps = parse_num(&value("--reps"), "--reps") as usize,
            "--threads" => threads = Some(parse_num(&value("--threads"), "--threads") as usize),
            "--entry" => only.push(value("--entry")),
            other => fatal(format!("unknown flag '{other}' for bench-snapshot")),
        }
    }
    if reps == 0 {
        fatal("--reps must be at least 1");
    }
    // Perf iteration on one preset shouldn't re-run the whole suite:
    // --entry (repeatable) narrows the snapshot to the named entries.
    for name in &only {
        let known = name == "daemon-serve" || BENCH_PRESETS.iter().any(|&(n, _, _)| n == name);
        if !known {
            fatal(format!(
                "unknown bench entry '{name}' (entries: {}, daemon-serve)",
                BENCH_PRESETS
                    .iter()
                    .map(|&(n, _, _)| n)
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
    }
    let wanted = |name: &str| only.is_empty() || only.iter().any(|n| n == name);
    if let Some(t) = threads {
        sof_par::set_threads(t);
    }
    let opts = RunOptions {
        threads: 0,
        timings: true,
        legacy_notes: false,
    };
    let mut entries: Vec<String> = Vec::new();
    for &(name, preset, flags) in BENCH_PRESETS {
        if !wanted(name) {
            continue;
        }
        let mut spec = load_spec(preset);
        let mut overrides = Overrides::default();
        let mut flag_it = flags.split_whitespace();
        while let Some(flag) = flag_it.next() {
            let val = flag_it.next().unwrap_or_default();
            if !override_flag(&mut overrides, flag, val) {
                fatal(format!("internal bench preset uses unknown flag '{flag}'"));
            }
        }
        apply_overrides(&mut spec, &overrides);
        if let Err(e) = spec.validate() {
            fatal(format!("bench preset {name}: {e}"));
        }
        let mut wall_ms = Vec::with_capacity(reps);
        let mut last_report: Option<RunReport> = None;
        for _ in 0..reps {
            let start = std::time::Instant::now();
            match run_spec(&spec, &opts) {
                Ok(r) => last_report = Some(r),
                Err(e) => fatal(format!("bench preset {name}: {e}")),
            }
            wall_ms.push(start.elapsed().as_secs_f64() * 1e3);
        }
        let engine = last_report.as_ref().and_then(engine_counters);
        let engine_note = engine
            .map(|(h, m, s, r, p)| {
                format!("  engine hits {h} / misses {m} / stale {s} / repairs {r} / partial {p}")
            })
            .unwrap_or_default();
        // Churn-at-scale entries also report throughput: the event budget
        // divided by each rep's wall clock.
        let events_per_sec: Option<Vec<f64>> = match &spec.workload {
            Workload::ChurnAtScale(s) => Some(
                wall_ms
                    .iter()
                    .map(|ms| s.events as f64 / (ms / 1e3))
                    .collect(),
            ),
            _ => None,
        };
        let throughput_note = events_per_sec
            .as_ref()
            .and_then(|eps| eps.last())
            .map(|eps| format!("  {eps:.0} events/s"))
            .unwrap_or_default();
        eprintln!(
            "{name:<16} {}{engine_note}{throughput_note}",
            wall_ms
                .iter()
                .map(|ms| format!("{ms:.0} ms"))
                .collect::<Vec<_>>()
                .join("  ")
        );
        let values = wall_ms
            .iter()
            .map(|ms| format!("{ms:.1}"))
            .collect::<Vec<_>>()
            .join(",");
        let engine_json = engine
            .map(|(h, m, s, r, p)| {
                format!(
                    ",\"engine\":{{\"hits\":{h},\"misses\":{m},\"stale\":{s},\"repairs\":{r},\"partial_repairs\":{p}}}"
                )
            })
            .unwrap_or_default();
        let throughput_json = events_per_sec
            .map(|eps| {
                format!(
                    ",\"events_per_sec\":[{}]",
                    eps.iter()
                        .map(|e| format!("{e:.1}"))
                        .collect::<Vec<_>>()
                        .join(",")
                )
            })
            .unwrap_or_default();
        entries.push(format!(
            "    {{\"name\":\"{name}\",\"preset\":\"{preset}\",\"args\":\"{flags}\",\"wall_ms\":[{values}]{engine_json}{throughput_json}}}"
        ));
    }
    // The daemon rides the same trajectory: a closed-loop client against
    // an in-process `sofd` on an ephemeral port, so requests/sec joins
    // the wall-clock series.
    if wanted("daemon-serve") {
        let handle = match sof_daemon::Server::start(sof_daemon::ServerConfig::default()) {
            Ok(h) => h,
            Err(e) => fatal(format!("daemon bench: bind failed: {e}")),
        };
        let opts = sof_daemon::BenchOptions {
            connections: 4,
            requests: 400,
        };
        if let Err(e) = sof_daemon::register_bench_topology(handle.addr()) {
            fatal(format!("daemon bench: {e}"));
        }
        let mut wall_ms = Vec::with_capacity(reps);
        let mut req_per_sec = Vec::with_capacity(reps);
        for _ in 0..reps {
            match sof_daemon::run_bench(handle.addr(), opts) {
                Ok(r) => {
                    wall_ms.push(r.wall_ms);
                    req_per_sec.push(r.requests_per_sec);
                }
                Err(e) => fatal(format!("daemon bench: {e}")),
            }
        }
        handle.stop();
        eprintln!(
            "{:<16} {}  {:.0} req/s",
            "daemon-serve",
            wall_ms
                .iter()
                .map(|ms| format!("{ms:.0} ms"))
                .collect::<Vec<_>>()
                .join("  "),
            req_per_sec.last().copied().unwrap_or(0.0),
        );
        entries.push(format!(
            "    {{\"name\":\"daemon-serve\",\"preset\":\"serve-bench\",\"args\":\"--connections 4 --requests 400\",\"wall_ms\":[{}],\"requests_per_sec\":[{}]}}",
            wall_ms
                .iter()
                .map(|ms| format!("{ms:.1}"))
                .collect::<Vec<_>>()
                .join(","),
            req_per_sec
                .iter()
                .map(|r| format!("{r:.1}"))
                .collect::<Vec<_>>()
                .join(","),
        ));
    }
    let threads_used = sof_par::current_threads();
    let entries = entries.join(",\n");
    let json = format!(
        "{{\n  \"kind\": \"sof-bench-snapshot\",\n  \"threads\": {threads_used},\n  \"reps\": {reps},\n  \"entries\": [\n{entries}\n  ]\n}}\n"
    );
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &json) {
                fatal(format!("writing {path}: {e}"));
            }
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
}

fn parse_daemon_addr(raw: &str) -> std::net::SocketAddr {
    let trimmed = raw.strip_prefix("http://").unwrap_or(raw);
    let trimmed = trimmed.trim_end_matches('/');
    trimmed
        .parse()
        .unwrap_or_else(|_| fatal(format!("invalid daemon address '{raw}' (want HOST:PORT)")))
}

fn cmd_serve(args: Vec<String>) {
    let mut config = sof_daemon::ServerConfig {
        addr: "127.0.0.1:8080".into(),
        ..sof_daemon::ServerConfig::default()
    };
    let mut watch_stdin = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next()
                .unwrap_or_else(|| fatal(format!("flag '{flag}' is missing its value")))
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--ttl-secs" => {
                let secs = parse_num(&value("--ttl-secs"), "--ttl-secs");
                config.default_ttl = (secs > 0).then(|| std::time::Duration::from_secs(secs));
            }
            "--stdin" => watch_stdin = true,
            other => fatal(format!("unknown flag '{other}' for serve")),
        }
    }
    let handle = match sof_daemon::Server::start(config) {
        Ok(h) => h,
        Err(e) => fatal(format!("bind failed: {e}")),
    };
    // The address line goes to stdout so scripts can capture the resolved
    // ephemeral port; everything else is stderr commentary.
    println!("listening on {}", handle.base_url());
    let _ = std::io::stdout().flush();
    if watch_stdin {
        eprintln!("stop with POST /v1/shutdown or by closing stdin");
        // Opt-in only: a backgrounded daemon's stdin is usually /dev/null,
        // which reads as EOF immediately and would stop it at startup.
        let stop = handle.stop_signal();
        std::thread::spawn(move || {
            use std::io::Read;
            let mut sink = [0u8; 1024];
            let mut stdin = std::io::stdin();
            while !matches!(stdin.read(&mut sink), Ok(0) | Err(_)) {}
            stop.store(true, std::sync::atomic::Ordering::Release);
        });
    } else {
        eprintln!("stop with POST /v1/shutdown");
    }
    while !handle.stop_requested() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    handle.stop();
    eprintln!("shutdown complete");
}

fn cmd_serve_bench(args: Vec<String>) {
    let mut addr: Option<String> = None;
    let mut opts = sof_daemon::BenchOptions::default();
    let mut reps = 1usize;
    let mut out: Option<String> = None;
    let mut shutdown = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next()
                .unwrap_or_else(|| fatal(format!("flag '{flag}' is missing its value")))
        };
        match arg.as_str() {
            "--addr" => addr = Some(value("--addr")),
            "--connections" => {
                opts.connections = parse_num(&value("--connections"), "--connections") as usize;
            }
            "--requests" => opts.requests = parse_num(&value("--requests"), "--requests") as usize,
            "--reps" => reps = parse_num(&value("--reps"), "--reps") as usize,
            "--out" => out = Some(value("--out")),
            "--shutdown" => shutdown = true,
            other => fatal(format!("unknown flag '{other}' for serve-bench")),
        }
    }
    if reps == 0 {
        fatal("--reps must be at least 1");
    }
    // Without --addr, bench an in-process daemon on an ephemeral port.
    let (target, local) = match &addr {
        Some(a) => (parse_daemon_addr(a), None),
        None => {
            let handle = match sof_daemon::Server::start(sof_daemon::ServerConfig::default()) {
                Ok(h) => h,
                Err(e) => fatal(format!("bind failed: {e}")),
            };
            (handle.addr(), Some(handle))
        }
    };
    if let Err(e) = sof_daemon::register_bench_topology(target) {
        fatal(format!("daemon at {target}: {e}"));
    }
    let mut entries = Vec::with_capacity(reps);
    for _ in 0..reps {
        match sof_daemon::run_bench(target, opts) {
            Ok(report) => {
                eprintln!(
                    "{} requests over {} connections in {:.0} ms: {:.0} req/s, \
                     p50 {:.2} ms, p99 {:.2} ms, {} errors",
                    report.requests,
                    report.connections,
                    report.wall_ms,
                    report.requests_per_sec,
                    report.p50_ms,
                    report.p99_ms,
                    report.errors,
                );
                entries.push(report.to_json());
            }
            Err(e) => fatal(format!("bench against {target}: {e}")),
        }
    }
    if shutdown {
        let mut client = sof_daemon::Client::new(target);
        if let Err(e) = client.request("POST", "/v1/shutdown", "") {
            fatal(format!("posting /v1/shutdown to {target}: {e}"));
        }
        eprintln!("posted /v1/shutdown to {target}");
    }
    if let Some(handle) = local {
        handle.stop();
    }
    let json = format!(
        "{{\n  \"kind\": \"sof-serve-bench\",\n  \"connections\": {},\n  \"requests\": {},\n  \"reps\": {reps},\n  \"entries\": [\n    {}\n  ]\n}}\n",
        opts.connections,
        opts.requests,
        entries.join(",\n    "),
    );
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &json) {
                fatal(format!("writing {path}: {e}"));
            }
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
}

fn cmd_list() {
    println!("bundled presets:");
    for name in sof_spec::presets::preset_names() {
        let spec = sof_spec::presets::preset(name)
            .expect("listed preset exists")
            .expect("bundled presets are valid");
        let failures = match &spec.workload {
            Workload::Online { failures, .. } => failures.is_some(),
            Workload::ChurnAtScale(s) => s.failures.is_some(),
            _ => false,
        };
        println!(
            "  {name:<24} {:<16} {:<9} {}",
            spec.workload.kind(),
            if failures { "failures" } else { "-" },
            spec.description
        );
    }
    println!("\nrun one with `sof run <name>`; validate a file with `sof validate <path>`.");
}

fn cmd_validate(args: Vec<String>) {
    let targets: Vec<String> = if args.iter().any(|a| a == "--all") {
        sof_spec::presets::preset_names()
            .into_iter()
            .map(String::from)
            .collect()
    } else if args.is_empty() {
        fatal("`sof validate` needs preset names / spec files, or --all");
    } else {
        args
    };
    let mut failed = false;
    for target in &targets {
        let looks_like_path = target.contains('/')
            || target.ends_with(".toml")
            || target.ends_with(".json")
            || Path::new(target).exists();
        let result = if looks_like_path {
            ScenarioSpec::from_path(Path::new(target))
        } else {
            match sof_spec::presets::preset(target) {
                Some(r) => r,
                None => {
                    eprintln!("{target}: unknown preset");
                    failed = true;
                    continue;
                }
            }
        };
        match result {
            Ok(spec) => {
                // The round trip is part of the contract: serializing and
                // re-parsing must be the identity.
                match ScenarioSpec::from_toml(&spec.to_toml()) {
                    Ok(again) if again == spec => println!("{target}: ok ({})", spec.name),
                    Ok(_) => {
                        eprintln!("{target}: round trip changed the spec (internal bug)");
                        failed = true;
                    }
                    Err(e) => {
                        eprintln!("{target}: round trip failed: {e}");
                        failed = true;
                    }
                }
            }
            Err(e) => {
                eprintln!("{target}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        exit(1);
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        println!("{USAGE}");
        return;
    }
    let cmd = args.remove(0);
    match cmd.as_str() {
        "run" => cmd_run(args),
        "list" => cmd_list(),
        "validate" => cmd_validate(args),
        "bench-snapshot" => cmd_bench_snapshot(args),
        "serve" => cmd_serve(args),
        "serve-bench" => cmd_serve_bench(args),
        "help" | "--help" | "-h" => println!("{USAGE}"),
        other => fatal(format!("unknown command '{other}' (try `sof help`)")),
    }
}

//! Fig. 9: Cogent one-time deployment sweeps.
use sof_bench::{run_comparison_sweeps, Args};
use sof_topo::cogent;

fn main() {
    let args = Args::parse(
        "fig9 — Cogent one-time deployment sweeps",
        &[
            ("seeds", "averaging width (default 5)"),
            ("seed", "base RNG seed (default 2000)"),
            (
                "limit",
                "truncate every sweep to its first N values (default 0 = all)",
            ),
        ],
    );
    let seeds: u64 = args.seeds(5);
    let base: u64 = args.get("seed", 2000);
    let limit: usize = args.get("limit", 0);
    println!("# Fig. 9 — Cogent one-time deployment (seeds = {seeds})");
    let algos = sof_solvers::comparison_set(false);
    run_comparison_sweeps("Fig. 9", &cogent(), "Cogent", &algos, seeds, base, limit);
}

//! Undirected weighted graph with adjacency lists.

use crate::{Cost, EdgeId, NodeId};
use serde::{Deserialize, Serialize};

/// An undirected edge with a non-negative cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// First endpoint.
    pub u: NodeId,
    /// Second endpoint.
    pub v: NodeId,
    /// Connection cost of the link.
    pub cost: Cost,
}

impl Edge {
    /// Returns the endpoint opposite to `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not an endpoint of this edge.
    #[inline]
    pub fn other(&self, n: NodeId) -> NodeId {
        if n == self.u {
            self.v
        } else if n == self.v {
            self.u
        } else {
            panic!("{n} is not an endpoint of edge {:?}-{:?}", self.u, self.v)
        }
    }

    /// Returns both endpoints as a tuple.
    #[inline]
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        (self.u, self.v)
    }
}

/// An undirected weighted graph.
///
/// Nodes are dense indices `0..node_count`. Parallel edges are allowed
/// (useful when VMs are replicated); self-loops are not.
///
/// Every mutation (adding nodes or edges, changing an edge cost) stamps the
/// graph with a fresh process-wide *cost epoch* (see [`Graph::cost_epoch`]);
/// the [`crate::PathEngine`] keys its shortest-path cache on it, so stale
/// entries are never served and unchanged graphs keep their warm cache.
/// Cost-only mutations are additionally recorded in a bounded per-graph
/// *dirty journal* ([`Graph::cost_changes_since`]), which lets the engine
/// scope invalidation to the edges that actually changed instead of
/// discarding every cached tree. Setting an edge cost to its current value
/// is a no-op: no epoch churn, no journal record.
///
/// # Examples
///
/// ```
/// use sof_graph::{Graph, Cost, NodeId};
///
/// let mut g = Graph::with_nodes(3);
/// g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(2.0));
/// g.add_edge(NodeId::new(1), NodeId::new(2), Cost::new(3.0));
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// assert!(g.is_connected());
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
#[serde(from = "GraphData", into = "GraphData")]
pub struct Graph {
    adj: Vec<Vec<(NodeId, EdgeId)>>,
    edges: Vec<Edge>,
    /// Process-unique stamp of this graph's current topology + costs.
    ///
    /// Freshly drawn from a global counter on every mutation, so two graphs
    /// share an epoch only when one is an unmutated clone of the other —
    /// i.e. equal epochs imply equal contents. Not serialized (clones of a
    /// deserialized graph get fresh epochs as they mutate).
    epoch: u64,
    /// Recent cost-only mutations, oldest first (see
    /// [`Graph::cost_changes_since`]). Cloned with the graph, so a clone's
    /// journal diverges from the original's exactly like its epoch does.
    journal: CostJournal,
}

/// One recorded cost-only mutation: the edge whose cost changed at the
/// transition **to** [`CostChange::epoch`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostChange {
    /// The [`Graph::cost_epoch`] the graph entered when this change landed.
    pub epoch: u64,
    /// The mutated edge.
    pub edge: EdgeId,
}

/// Edge-scoped dirty tracking: a bounded chain of [`CostChange`] records
/// reaching back from the current epoch to `base`. Structural mutations
/// (nodes or edges added) sever the chain — no repair across topology
/// changes — and overflow drops the oldest records, advancing `base`.
#[derive(Clone, Debug, Default)]
struct CostJournal {
    /// Oldest epoch still reconstructible from `records` (the epoch the
    /// graph had just before `records[0]` landed).
    base: u64,
    /// Cost changes in application order; `records.last().epoch` equals the
    /// graph's current epoch whenever the journal is non-empty.
    records: Vec<CostChange>,
}

/// Cost changes retained per graph. A congestion refresh dirties one record
/// per repriced edge, so the cap bounds how many repricings back a cached
/// tree may still be revalidated instead of recomputed.
const JOURNAL_CAP: usize = 256;

/// Draws the next process-wide cost epoch (never zero).
fn next_cost_epoch() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Serialized form of a [`Graph`]: node count plus edge list.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct GraphData {
    nodes: usize,
    edges: Vec<Edge>,
}

impl From<GraphData> for Graph {
    fn from(data: GraphData) -> Graph {
        let mut g = Graph::with_nodes(data.nodes);
        for e in data.edges {
            g.add_edge(e.u, e.v, e.cost);
        }
        g
    }
}

impl From<Graph> for GraphData {
    fn from(g: Graph) -> GraphData {
        GraphData {
            nodes: g.node_count(),
            edges: g.edges,
        }
    }
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Graph {
        Graph::default()
    }

    /// Creates a graph with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Graph {
        let epoch = next_cost_epoch();
        Graph {
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
            epoch,
            journal: CostJournal {
                base: epoch,
                records: Vec::new(),
            },
        }
    }

    /// The graph's current cost epoch: a process-unique stamp renewed on
    /// every mutation. Equal epochs imply identical topology and edge
    /// costs, which is what lets [`crate::PathEngine`] reuse cached
    /// shortest-path trees without ever serving stale distances.
    #[inline]
    pub fn cost_epoch(&self) -> u64 {
        self.epoch
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        self.sever_journal();
        NodeId::new(self.adj.len() - 1)
    }

    /// Renews the epoch for a structural mutation, severing the cost
    /// journal: cached trees predating a topology change are never repaired.
    fn sever_journal(&mut self) {
        self.epoch = next_cost_epoch();
        self.journal.records.clear();
        self.journal.base = self.epoch;
    }

    /// Adds an undirected edge and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or if `u == v`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, cost: Cost) -> EdgeId {
        assert!(u.index() < self.adj.len(), "node {u} out of range");
        assert!(v.index() < self.adj.len(), "node {v} out of range");
        assert_ne!(u, v, "self-loops are not allowed");
        let id = EdgeId::new(self.edges.len());
        self.edges.push(Edge { u, v, cost });
        self.adj[u.index()].push((v, id));
        self.adj[v.index()].push((u, id));
        self.sever_journal();
        id
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterates over all node ids in increasing order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adj.len()).map(NodeId::new)
    }

    /// Iterates over all edges with their ids.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId::new(i), e))
    }

    /// Returns the edge record for `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e.index()]
    }

    /// Returns the cost of edge `e`.
    #[inline]
    pub fn edge_cost(&self, e: EdgeId) -> Cost {
        self.edges[e.index()].cost
    }

    /// Updates the cost of edge `e` (used by the online cost model).
    ///
    /// Renews the [cost epoch](Self::cost_epoch) and records the change in
    /// the dirty journal, so the [`crate::PathEngine`] invalidates only
    /// cached trees this edge can actually affect. Writing the current cost
    /// back is a **no-op**: the epoch stays put and every cached tree stays
    /// warm (the common case for a congestion refresh over idle links).
    pub fn set_edge_cost(&mut self, e: EdgeId, cost: Cost) {
        if self.edges[e.index()].cost == cost {
            return;
        }
        self.edges[e.index()].cost = cost;
        self.epoch = next_cost_epoch();
        self.journal.records.push(CostChange {
            epoch: self.epoch,
            edge: e,
        });
        if self.journal.records.len() > JOURNAL_CAP {
            let dropped = self.journal.records.remove(0);
            self.journal.base = dropped.epoch;
        }
    }

    /// The cost-only changes that turned the graph at `epoch` into the
    /// graph as it is now, oldest first — or `None` when that history is
    /// unknown (`epoch` is not on this graph's recorded lineage, a
    /// structural mutation intervened, or the journal overflowed past it).
    ///
    /// An empty slice means the contents are identical. The same edge may
    /// appear more than once. [`crate::PathEngine`] uses this to decide,
    /// per cached tree, between revalidating and recomputing.
    pub fn cost_changes_since(&self, epoch: u64) -> Option<&[CostChange]> {
        if epoch == self.journal.base {
            return Some(&self.journal.records);
        }
        self.journal
            .records
            .iter()
            .position(|r| r.epoch == epoch)
            .map(|pos| &self.journal.records[pos + 1..])
    }

    /// Neighbors of `u` as `(neighbor, edge)` pairs, in insertion order.
    pub fn neighbors(&self, u: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        self.adj[u.index()].iter().copied()
    }

    /// Degree of `u` (counting parallel edges).
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.adj[u.index()].len()
    }

    /// Returns the cheapest edge between `u` and `v`, if any.
    pub fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        self.adj[u.index()]
            .iter()
            .filter(|(n, _)| *n == v)
            .min_by_key(|(_, e)| self.edge_cost(*e))
            .map(|&(_, e)| e)
    }

    /// Returns `true` when every node is reachable from node 0.
    ///
    /// The empty graph is considered connected.
    pub fn is_connected(&self) -> bool {
        if self.adj.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.adj.len()];
        let mut stack = vec![NodeId::new(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for (v, _) in self.neighbors(u) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == self.adj.len()
    }

    /// Sum of all edge costs.
    pub fn total_edge_cost(&self) -> Cost {
        self.edges.iter().map(|e| e.cost).sum()
    }

    /// Total cost of a walk given as a node sequence, following the cheapest
    /// parallel edge at each hop.
    ///
    /// Returns `None` if two consecutive nodes are not adjacent.
    pub fn walk_cost(&self, walk: &[NodeId]) -> Option<Cost> {
        let mut total = Cost::ZERO;
        for w in walk.windows(2) {
            let e = self.edge_between(w[0], w[1])?;
            total += self.edge_cost(e);
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(1.0));
        g.add_edge(NodeId::new(1), NodeId::new(2), Cost::new(2.0));
        g.add_edge(NodeId::new(2), NodeId::new(0), Cost::new(4.0));
        g
    }

    #[test]
    fn construction_and_counts() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(NodeId::new(0)), 2);
        assert_eq!(g.total_edge_cost(), Cost::new(7.0));
    }

    #[test]
    fn neighbors_are_symmetric() {
        let g = triangle();
        let n0: Vec<_> = g.neighbors(NodeId::new(0)).map(|(n, _)| n).collect();
        assert_eq!(n0, vec![NodeId::new(1), NodeId::new(2)]);
        let e = g.edge_between(NodeId::new(0), NodeId::new(2)).unwrap();
        assert_eq!(g.edge_cost(e), Cost::new(4.0));
        assert_eq!(g.edge(e).other(NodeId::new(0)), NodeId::new(2));
    }

    #[test]
    fn parallel_edges_pick_cheapest() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(5.0));
        let cheap = g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(1.0));
        assert_eq!(g.edge_between(NodeId::new(0), NodeId::new(1)), Some(cheap));
    }

    #[test]
    fn connectivity() {
        let mut g = triangle();
        assert!(g.is_connected());
        g.add_node();
        assert!(!g.is_connected());
        assert!(Graph::new().is_connected());
    }

    #[test]
    fn walk_cost_follows_edges() {
        let g = triangle();
        let walk = [
            NodeId::new(0),
            NodeId::new(1),
            NodeId::new(2),
            NodeId::new(1),
        ];
        assert_eq!(g.walk_cost(&walk), Some(Cost::new(5.0)));
        let broken = [NodeId::new(0), NodeId::new(0)];
        assert_eq!(g.walk_cost(&broken), None);
    }

    #[test]
    fn set_edge_cost_updates() {
        let mut g = triangle();
        let e = g.edge_between(NodeId::new(0), NodeId::new(1)).unwrap();
        g.set_edge_cost(e, Cost::new(10.0));
        assert_eq!(g.edge_cost(e), Cost::new(10.0));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let mut g = Graph::with_nodes(1);
        g.add_edge(NodeId::new(0), NodeId::new(0), Cost::ZERO);
    }

    #[test]
    fn cost_epoch_tracks_mutations() {
        let mut g = triangle();
        let e0 = g.cost_epoch();
        let clone = g.clone();
        // An unmutated clone shares the epoch (identical contents).
        assert_eq!(clone.cost_epoch(), e0);
        let e = g.edge_between(NodeId::new(0), NodeId::new(1)).unwrap();
        g.set_edge_cost(e, Cost::new(9.0));
        assert_ne!(g.cost_epoch(), e0, "cost change renews the epoch");
        assert_eq!(clone.cost_epoch(), e0, "the clone is untouched");
        let before = g.cost_epoch();
        g.add_node();
        assert_ne!(g.cost_epoch(), before, "topology change renews the epoch");
        // Distinct graphs never share an epoch, even with equal contents.
        assert_ne!(triangle().cost_epoch(), triangle().cost_epoch());
    }

    #[test]
    fn unchanged_cost_write_is_a_no_op() {
        let mut g = triangle();
        let epoch = g.cost_epoch();
        let e = g.edge_between(NodeId::new(0), NodeId::new(1)).unwrap();
        g.set_edge_cost(e, g.edge_cost(e));
        assert_eq!(g.cost_epoch(), epoch, "same-value write must not churn");
        assert_eq!(g.cost_changes_since(epoch), Some(&[][..]));
    }

    #[test]
    fn journal_traces_cost_only_lineage() {
        let mut g = triangle();
        let e0 = g.cost_epoch();
        let e01 = g.edge_between(NodeId::new(0), NodeId::new(1)).unwrap();
        let e12 = g.edge_between(NodeId::new(1), NodeId::new(2)).unwrap();
        g.set_edge_cost(e01, Cost::new(9.0));
        let e1 = g.cost_epoch();
        g.set_edge_cost(e12, Cost::new(8.0));
        // Full history from e0, suffix from e1, empty from the present.
        let edges: Vec<EdgeId> = g
            .cost_changes_since(e0)
            .unwrap()
            .iter()
            .map(|c| c.edge)
            .collect();
        assert_eq!(edges, vec![e01, e12]);
        let tail: Vec<EdgeId> = g
            .cost_changes_since(e1)
            .unwrap()
            .iter()
            .map(|c| c.edge)
            .collect();
        assert_eq!(tail, vec![e12]);
        assert_eq!(g.cost_changes_since(g.cost_epoch()), Some(&[][..]));
        // Epochs of another lineage are unknown.
        assert_eq!(g.cost_changes_since(triangle().cost_epoch()), None);
    }

    #[test]
    fn structural_mutations_sever_the_journal() {
        let mut g = triangle();
        let e = g.edge_between(NodeId::new(0), NodeId::new(1)).unwrap();
        g.set_edge_cost(e, Cost::new(9.0));
        let before = g.cost_epoch();
        g.add_node();
        assert_eq!(g.cost_changes_since(before), None);
        assert_eq!(g.cost_changes_since(g.cost_epoch()), Some(&[][..]));
    }

    #[test]
    fn journal_overflow_advances_the_base() {
        let mut g = triangle();
        let start = g.cost_epoch();
        let e = g.edge_between(NodeId::new(0), NodeId::new(1)).unwrap();
        for i in 0..(JOURNAL_CAP + 5) {
            g.set_edge_cost(e, Cost::new(10.0 + i as f64));
        }
        assert_eq!(
            g.cost_changes_since(start),
            None,
            "history past the cap is forgotten"
        );
        let kept = g
            .cost_changes_since(g.cost_epoch())
            .expect("current epoch always traces");
        assert!(kept.is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let g = triangle();
        let json = serde_json_lite(&g);
        assert!(json.contains("\"nodes\":3"));
    }

    // Minimal serialization smoke test without pulling serde_json:
    // serialize through serde's derived impl into a debug-ish string using
    // the `serde::Serialize` trait with a tiny writer is overkill here, so we
    // simply re-build from GraphData.
    fn serde_json_lite(g: &Graph) -> String {
        let data = GraphData {
            nodes: g.node_count(),
            edges: g.edges.clone(),
        };
        let rebuilt = Graph::from(data.clone());
        assert_eq!(rebuilt.node_count(), g.node_count());
        assert_eq!(rebuilt.edge_count(), g.edge_count());
        format!(
            "{{\"nodes\":{},\"edges\":{}}}",
            data.nodes,
            data.edges.len()
        )
    }
}

//! Subscriber/sink metric layer: incremental JSONL records instead of one
//! end-of-run report.
//!
//! The runner pushes every [`Record`] to each attached [`Sink`] the
//! moment it is produced, so a churn-at-scale run emits its metrics while
//! it executes and retains only the open window's accumulators — O(1) in
//! the event count. [`JsonlSink`] writes the stable line format the
//! golden tests diff; [`CollectSink`] buffers records for tests; channel
//! subscribers (see [`Runner::subscribe`](crate::Runner::subscribe))
//! receive clones of the same stream.
//!
//! Wall-clock fields (`millis`) are `None` unless the runner was built
//! with timings enabled, so the default record stream — and therefore the
//! JSONL bytes — is deterministic for a fixed seed at any thread count.

use crate::ward::StopReason;
use std::io::{self, Write};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};

/// Cumulative `PathEngine` cache counters summed over every session the
/// run has stepped (retired sessions included).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineTotals {
    /// Queries served from cached trees.
    pub hits: u64,
    /// Queries that ran a Dijkstra.
    pub misses: u64,
    /// Misses whose source set was cached under older epochs.
    pub stale: u64,
    /// Stale entries revalidated in place without a Dijkstra.
    pub repairs: u64,
}

/// Cumulative failure-subsystem counters carried by window records (only
/// present when the run has a failure plan).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FailureTotals {
    /// Element failures applied so far.
    pub fail_events: u64,
    /// Element repairs applied so far.
    pub repair_events: u64,
    /// Session disruptions (a failure that broke ≥ 1 standing walk) so far.
    pub disruptions: u64,
    /// Slots currently dark, waiting on a deferred (reactive) rebuild.
    pub pending: u64,
}

/// One element failing or being repaired (only emitted when the run has a
/// failure plan).
#[derive(Clone, Debug, PartialEq)]
pub struct FailureRecord {
    /// Global event sequence number at emission time (failure records sit
    /// between rounds, so consecutive records may share a `seq`).
    pub seq: u64,
    /// Failure-process round the event belongs to.
    pub round: u64,
    /// `"fail"` or `"repair"`.
    pub action: &'static str,
    /// The element, in `ElementRef` display form (`link:3-7`, `vm:12`,
    /// `node:5`, `domain:us-east`).
    pub element: String,
    /// Destinations across all live groups whose walks this element's
    /// failure broke (0 for repairs).
    pub disrupted: u64,
    /// Round the element's repair is scheduled for (`None` = never, and
    /// for repair records).
    pub repair_at: Option<u64>,
}

/// One per-round recovery outcome, emitted after a round's failures were
/// applied and every affected session answered (only when ≥ 1 session was
/// disrupted).
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryRecord {
    /// Global event sequence number at emission time.
    pub seq: u64,
    /// Failure-process round.
    pub round: u64,
    /// The protection policy that answered (spec name).
    pub policy: &'static str,
    /// Destinations disrupted this round, across all sessions.
    pub disrupted: u64,
    /// Destinations reattached within the round (backup/standby).
    pub recovered: u64,
    /// Cost of the reconfigurations installed now (0 for standby swaps
    /// and for deferred reactive rebuilds).
    pub cost: f64,
    /// Sessions left dark for a deferred (reactive) rebuild.
    pub pending: u64,
}

/// End-of-run recovery/availability totals (only present when the run has
/// a failure plan).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RecoverySummary {
    /// Element failures applied.
    pub fail_events: u64,
    /// Element repairs applied.
    pub repair_events: u64,
    /// Session disruptions.
    pub disruptions: u64,
    /// Disruptions recovered within their failure round.
    pub immediate: u64,
    /// Disruptions whose recovery completed (immediate or deferred).
    pub recoveries: u64,
    /// Mean cost per completed recovery.
    pub mean_recovery_cost: f64,
    /// Mean group events until service was restored.
    pub mean_events_to_restore: f64,
    /// Fraction of destination×round samples spent connected.
    pub availability: f64,
}

/// One windowed aggregate over `events` consecutive events.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowRecord {
    /// Zero-based window index.
    pub index: u64,
    /// Events aggregated in this window.
    pub events: u64,
    /// Cumulative events at window close.
    pub total_events: u64,
    /// Live groups (slots) at window close.
    pub active: usize,
    /// Cumulative groups retired at window close.
    pub retired: u64,
    /// Cumulative failed embeds at window close.
    pub errors: u64,
    /// Full solver runs in this window (initial embeds + drift rebuilds).
    pub full_solves: u64,
    /// Events served purely incrementally in this window.
    pub incremental: u64,
    /// Viewers joined in this window.
    pub joins: u64,
    /// Viewers removed in this window.
    pub leaves: u64,
    /// Mean standing-forest cost over this window's events.
    pub mean_cost: f64,
    /// Total accumulated embedding cost (retired groups included).
    pub accumulated_cost: f64,
    /// Cumulative path-cache counters at window close.
    pub engine: EngineTotals,
    /// Cumulative failure-subsystem counters at window close (failure
    /// plans only).
    pub failures: Option<FailureTotals>,
    /// Wall-clock milliseconds spent embedding this window's events
    /// (timings mode only).
    pub millis: Option<f64>,
}

/// One per-event record (only emitted when the runner is configured with
/// `emit_events`).
#[derive(Clone, Debug, PartialEq)]
pub struct EventRecord {
    /// Zero-based global event sequence number.
    pub seq: u64,
    /// Pool slot that processed the event.
    pub slot: usize,
    /// Global id of the group living in that slot.
    pub group: u64,
    /// Whether this was the group's initial embed.
    pub initial: bool,
    /// Viewer count after the event.
    pub viewers: usize,
    /// Viewers joined incrementally.
    pub joined: usize,
    /// Viewers removed incrementally.
    pub left: usize,
    /// Whether the solver ran from scratch.
    pub rebuilt: bool,
    /// Standing forest cost after the event.
    pub cost: f64,
    /// Wall-clock milliseconds spent embedding (timings mode only).
    pub millis: Option<f64>,
}

/// End-of-run totals.
#[derive(Clone, Debug, PartialEq)]
pub struct SummaryRecord {
    /// Total events processed.
    pub events: u64,
    /// Windows emitted.
    pub windows: u64,
    /// Distinct groups created over the run.
    pub groups_seen: u64,
    /// Groups retired over the run.
    pub retired: u64,
    /// Failed embeds over the run.
    pub errors: u64,
    /// Total accumulated embedding cost.
    pub accumulated_cost: f64,
    /// Which ward (or stop request) ended the run.
    pub stop: StopReason,
    /// Recovery/availability totals (failure plans only).
    pub recovery: Option<RecoverySummary>,
    /// Total wall-clock milliseconds (timings mode only).
    pub millis: Option<f64>,
}

/// A record pushed to every sink, in emission order: one `Meta`, then
/// interleaved `Event`/`Window` records, then one `Summary`.
#[derive(Clone, Debug, PartialEq)]
pub enum Record {
    /// Run header.
    Meta {
        /// Run (preset) name.
        name: String,
        /// Concurrent groups (pool slots).
        groups: usize,
        /// Region names, in region-index order.
        regions: Vec<String>,
        /// Run seed.
        seed: u64,
        /// Solver registry name.
        solver: String,
        /// Events per window.
        window: u64,
        /// The `MaxEvents` ward budget, if one is set.
        events_target: Option<u64>,
        /// The protection policy, when the run has a failure plan.
        policy: Option<String>,
    },
    /// Windowed aggregate.
    Window(WindowRecord),
    /// Per-event sample.
    Event(EventRecord),
    /// One element failing or being repaired.
    Failure(FailureRecord),
    /// One round's recovery outcome.
    Recovery(RecoveryRecord),
    /// End-of-run totals.
    Summary(SummaryRecord),
}

impl Record {
    /// Renders the record as one JSON line (no trailing newline). Key
    /// order is fixed; `millis` fields are omitted when `None`, so
    /// default-mode output is byte-stable.
    pub fn to_json(&self) -> String {
        match self {
            Record::Meta {
                name,
                groups,
                regions,
                seed,
                solver,
                window,
                events_target,
                policy,
            } => {
                let regions = regions
                    .iter()
                    .map(|r| quote(r))
                    .collect::<Vec<_>>()
                    .join(",");
                let target = match events_target {
                    Some(t) => t.to_string(),
                    None => "null".into(),
                };
                let mut line = format!(
                    "{{\"type\":\"meta\",\"subsystem\":\"churn-at-scale\",\"name\":{},\
                     \"groups\":{groups},\"regions\":[{regions}],\"seed\":{seed},\
                     \"solver\":{},\"window\":{window},\"events_target\":{target}",
                    quote(name),
                    quote(solver),
                );
                if let Some(p) = policy {
                    line.push_str(&format!(",\"policy\":{}", quote(p)));
                }
                line.push('}');
                line
            }
            Record::Window(w) => {
                let mut line = format!(
                    "{{\"type\":\"window\",\"index\":{},\"events\":{},\"total_events\":{},\
                     \"active\":{},\"retired\":{},\"errors\":{},\"full_solves\":{},\
                     \"incremental\":{},\"joins\":{},\"leaves\":{},\"mean_cost\":{},\
                     \"accumulated_cost\":{},\"engine_hits\":{},\"engine_misses\":{},\
                     \"engine_stale\":{},\"engine_repairs\":{}",
                    w.index,
                    w.events,
                    w.total_events,
                    w.active,
                    w.retired,
                    w.errors,
                    w.full_solves,
                    w.incremental,
                    w.joins,
                    w.leaves,
                    float(w.mean_cost),
                    float(w.accumulated_cost),
                    w.engine.hits,
                    w.engine.misses,
                    w.engine.stale,
                    w.engine.repairs,
                );
                if let Some(f) = &w.failures {
                    line.push_str(&format!(
                        ",\"fail_events\":{},\"repair_events\":{},\"disruptions\":{},\
                         \"pending\":{}",
                        f.fail_events, f.repair_events, f.disruptions, f.pending,
                    ));
                }
                push_millis(&mut line, w.millis);
                line.push('}');
                line
            }
            Record::Event(e) => {
                let mut line = format!(
                    "{{\"type\":\"event\",\"seq\":{},\"slot\":{},\"group\":{},\"kind\":{},\
                     \"viewers\":{},\"joined\":{},\"left\":{},\"rebuilt\":{},\"cost\":{}",
                    e.seq,
                    e.slot,
                    e.group,
                    if e.initial {
                        "\"initial\""
                    } else {
                        "\"churn\""
                    },
                    e.viewers,
                    e.joined,
                    e.left,
                    e.rebuilt,
                    float(e.cost),
                );
                push_millis(&mut line, e.millis);
                line.push('}');
                line
            }
            Record::Failure(f) => {
                let repair = match f.repair_at {
                    Some(r) => r.to_string(),
                    None => "null".into(),
                };
                format!(
                    "{{\"type\":\"failure\",\"seq\":{},\"round\":{},\"action\":\"{}\",\
                     \"element\":{},\"disrupted\":{},\"repair_at\":{repair}}}",
                    f.seq,
                    f.round,
                    f.action,
                    quote(&f.element),
                    f.disrupted,
                )
            }
            Record::Recovery(r) => {
                format!(
                    "{{\"type\":\"recovery\",\"seq\":{},\"round\":{},\"policy\":\"{}\",\
                     \"disrupted\":{},\"recovered\":{},\"cost\":{},\"pending\":{}}}",
                    r.seq,
                    r.round,
                    r.policy,
                    r.disrupted,
                    r.recovered,
                    float(r.cost),
                    r.pending,
                )
            }
            Record::Summary(s) => {
                let mut line = format!(
                    "{{\"type\":\"summary\",\"events\":{},\"windows\":{},\"groups_seen\":{},\
                     \"retired\":{},\"errors\":{},\"accumulated_cost\":{},\"stop\":\"{}\"",
                    s.events,
                    s.windows,
                    s.groups_seen,
                    s.retired,
                    s.errors,
                    float(s.accumulated_cost),
                    s.stop.as_str(),
                );
                if let Some(r) = &s.recovery {
                    line.push_str(&format!(
                        ",\"fail_events\":{},\"repair_events\":{},\"disruptions\":{},\
                         \"immediate\":{},\"recoveries\":{},\"mean_recovery_cost\":{},\
                         \"mean_events_to_restore\":{},\"availability\":{}",
                        r.fail_events,
                        r.repair_events,
                        r.disruptions,
                        r.immediate,
                        r.recoveries,
                        float(r.mean_recovery_cost),
                        float(r.mean_events_to_restore),
                        float(r.availability),
                    ));
                }
                push_millis(&mut line, s.millis);
                line.push('}');
                line
            }
        }
    }
}

fn push_millis(line: &mut String, millis: Option<f64>) {
    if let Some(ms) = millis {
        line.push_str(&format!(",\"millis\":{}", float(ms)));
    }
}

/// Shortest round-trip float, valid JSON (mirrors `sof_spec`'s format so
/// the two JSONL dialects agree byte-for-byte on numbers).
fn float(f: f64) -> String {
    if f.is_finite() {
        format!("{f:?}")
    } else {
        "null".into()
    }
}

/// JSON string quoting (mirrors `sof_spec::quote_string`).
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Receives the runner's record stream incrementally.
pub trait Sink: Send {
    /// Handles one record. Errors abort the run.
    fn record(&mut self, record: &Record) -> io::Result<()>;

    /// Flushes any buffering (called at window boundaries and at the end
    /// of the run).
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Writes each record as one JSON line the moment it arrives.
pub struct JsonlSink<W: Write + Send> {
    out: W,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer (pair with `BufWriter` for event-mode runs).
    pub fn new(out: W) -> JsonlSink<W> {
        JsonlSink { out }
    }
}

impl<W: Write + Send> Sink for JsonlSink<W> {
    fn record(&mut self, record: &Record) -> io::Result<()> {
        self.out.write_all(record.to_json().as_bytes())?;
        self.out.write_all(b"\n")
    }

    fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// Buffers every record behind a shared handle (tests, report building).
pub struct CollectSink {
    records: Arc<Mutex<Vec<Record>>>,
}

impl CollectSink {
    /// Creates the sink and the handle its records can be read through
    /// after (or during) the run.
    pub fn new() -> (CollectSink, Arc<Mutex<Vec<Record>>>) {
        let records = Arc::new(Mutex::new(Vec::new()));
        (
            CollectSink {
                records: Arc::clone(&records),
            },
            records,
        )
    }
}

impl Sink for CollectSink {
    fn record(&mut self, record: &Record) -> io::Result<()> {
        self.records
            .lock()
            .expect("collect sink poisoned")
            .push(record.clone());
        Ok(())
    }
}

/// Forwards records to an `mpsc` channel; a dropped receiver is ignored
/// so an abandoned subscriber never aborts the run.
pub(crate) struct ChannelSink {
    pub(crate) tx: Sender<Record>,
}

impl Sink for ChannelSink {
    fn record(&mut self, record: &Record) -> io::Result<()> {
        let _ = self.tx.send(record.clone());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_lines_are_stable() {
        let meta = Record::Meta {
            name: "t".into(),
            groups: 4,
            regions: vec!["a".into(), "b".into()],
            seed: 7,
            solver: "SOFDA".into(),
            window: 8,
            events_target: Some(40),
            policy: None,
        };
        assert_eq!(
            meta.to_json(),
            "{\"type\":\"meta\",\"subsystem\":\"churn-at-scale\",\"name\":\"t\",\"groups\":4,\
             \"regions\":[\"a\",\"b\"],\"seed\":7,\"solver\":\"SOFDA\",\"window\":8,\
             \"events_target\":40}"
        );
        let win = Record::Window(WindowRecord {
            index: 0,
            events: 8,
            total_events: 8,
            active: 4,
            retired: 1,
            errors: 0,
            full_solves: 4,
            incremental: 4,
            joins: 5,
            leaves: 3,
            mean_cost: 12.5,
            accumulated_cost: 100.0,
            engine: EngineTotals {
                hits: 9,
                misses: 2,
                stale: 1,
                repairs: 1,
            },
            failures: None,
            millis: None,
        });
        assert_eq!(
            win.to_json(),
            "{\"type\":\"window\",\"index\":0,\"events\":8,\"total_events\":8,\"active\":4,\
             \"retired\":1,\"errors\":0,\"full_solves\":4,\"incremental\":4,\"joins\":5,\
             \"leaves\":3,\"mean_cost\":12.5,\"accumulated_cost\":100.0,\"engine_hits\":9,\
             \"engine_misses\":2,\"engine_stale\":1,\"engine_repairs\":1}"
        );
        let ev = Record::Event(EventRecord {
            seq: 3,
            slot: 1,
            group: 9,
            initial: true,
            viewers: 5,
            joined: 0,
            left: 0,
            rebuilt: true,
            cost: 4.0,
            millis: Some(1.25),
        });
        assert_eq!(
            ev.to_json(),
            "{\"type\":\"event\",\"seq\":3,\"slot\":1,\"group\":9,\"kind\":\"initial\",\
             \"viewers\":5,\"joined\":0,\"left\":0,\"rebuilt\":true,\"cost\":4.0,\
             \"millis\":1.25}"
        );
        let sum = Record::Summary(SummaryRecord {
            events: 40,
            windows: 5,
            groups_seen: 6,
            retired: 2,
            errors: 0,
            accumulated_cost: 321.0,
            stop: StopReason::MaxEvents,
            recovery: None,
            millis: None,
        });
        assert_eq!(
            sum.to_json(),
            "{\"type\":\"summary\",\"events\":40,\"windows\":5,\"groups_seen\":6,\"retired\":2,\
             \"errors\":0,\"accumulated_cost\":321.0,\"stop\":\"max-events\"}"
        );
    }

    #[test]
    fn failure_subsystem_record_lines_are_stable() {
        let meta = Record::Meta {
            name: "t".into(),
            groups: 4,
            regions: vec!["a".into()],
            seed: 7,
            solver: "SOFDA".into(),
            window: 8,
            events_target: Some(40),
            policy: Some("standby-forest".into()),
        };
        assert!(
            meta.to_json()
                .ends_with("\"events_target\":40,\"policy\":\"standby-forest\"}"),
            "{}",
            meta.to_json()
        );
        let fail = Record::Failure(FailureRecord {
            seq: 12,
            round: 3,
            action: "fail",
            element: "link:3-7".into(),
            disrupted: 2,
            repair_at: Some(9),
        });
        assert_eq!(
            fail.to_json(),
            "{\"type\":\"failure\",\"seq\":12,\"round\":3,\"action\":\"fail\",\
             \"element\":\"link:3-7\",\"disrupted\":2,\"repair_at\":9}"
        );
        let rec = Record::Recovery(RecoveryRecord {
            seq: 12,
            round: 3,
            policy: "backup-paths",
            disrupted: 2,
            recovered: 2,
            cost: 6.5,
            pending: 0,
        });
        assert_eq!(
            rec.to_json(),
            "{\"type\":\"recovery\",\"seq\":12,\"round\":3,\"policy\":\"backup-paths\",\
             \"disrupted\":2,\"recovered\":2,\"cost\":6.5,\"pending\":0}"
        );
        let sum = Record::Summary(SummaryRecord {
            events: 40,
            windows: 5,
            groups_seen: 6,
            retired: 2,
            errors: 0,
            accumulated_cost: 321.0,
            stop: StopReason::MaxEvents,
            recovery: Some(RecoverySummary {
                fail_events: 4,
                repair_events: 2,
                disruptions: 3,
                immediate: 2,
                recoveries: 3,
                mean_recovery_cost: 10.5,
                mean_events_to_restore: 0.5,
                availability: 0.975,
            }),
            millis: None,
        });
        assert_eq!(
            sum.to_json(),
            "{\"type\":\"summary\",\"events\":40,\"windows\":5,\"groups_seen\":6,\"retired\":2,\
             \"errors\":0,\"accumulated_cost\":321.0,\"stop\":\"max-events\",\"fail_events\":4,\
             \"repair_events\":2,\"disruptions\":3,\"immediate\":2,\"recoveries\":3,\
             \"mean_recovery_cost\":10.5,\"mean_events_to_restore\":0.5,\"availability\":0.975}"
        );
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_record() {
        let mut buf = Vec::new();
        {
            let mut sink = JsonlSink::new(&mut buf);
            sink.record(&Record::Summary(SummaryRecord {
                events: 1,
                windows: 1,
                groups_seen: 1,
                retired: 0,
                errors: 0,
                accumulated_cost: 1.0,
                stop: StopReason::Stopped,
                recovery: None,
                millis: None,
            }))
            .unwrap();
            sink.flush().unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.ends_with('\n'));
        assert!(text.contains("\"stop\":\"stopped\""));
    }
}

//! Single-source and multi-source Dijkstra shortest paths.

use crate::{Cost, EdgeId, Graph, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of a (multi-source) Dijkstra run.
///
/// Stores, for every node, the distance to the closest source, the parent
/// hop on a shortest path, and which source ("site") it is closest to — the
/// latter turns the structure into a Voronoi partition, which is what
/// Mehlhorn's Steiner approximation consumes.
///
/// # Examples
///
/// ```
/// use sof_graph::{Graph, Cost, NodeId, ShortestPaths};
///
/// let mut g = Graph::with_nodes(3);
/// g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(1.0));
/// g.add_edge(NodeId::new(1), NodeId::new(2), Cost::new(2.0));
/// let sp = ShortestPaths::from_source(&g, NodeId::new(0));
/// assert_eq!(sp.dist(NodeId::new(2)), Cost::new(3.0));
/// assert_eq!(
///     sp.path_to(NodeId::new(2)).unwrap(),
///     vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]
/// );
/// ```
#[derive(Clone, Debug)]
pub struct ShortestPaths {
    dist: Vec<Cost>,
    parent: Vec<Option<(NodeId, EdgeId)>>,
    site: Vec<Option<NodeId>>,
}

impl ShortestPaths {
    /// Runs Dijkstra from a single source.
    pub fn from_source(graph: &Graph, source: NodeId) -> ShortestPaths {
        ShortestPaths::from_sources(graph, std::iter::once(source))
    }

    /// Runs Dijkstra from several sources at once.
    ///
    /// Every node is labelled with its closest source (`site`).
    ///
    /// This is a convenience wrapper that allocates a fresh
    /// [`DijkstraWorkspace`] per call; hot paths that run many Dijkstras
    /// should reuse a workspace (or go through [`crate::PathEngine`], which
    /// also memoizes whole trees) — both produce bit-identical results.
    ///
    /// # Panics
    ///
    /// Panics if any source is out of range.
    pub fn from_sources<I>(graph: &Graph, sources: I) -> ShortestPaths
    where
        I: IntoIterator<Item = NodeId>,
    {
        let mut ws = DijkstraWorkspace::new();
        ws.run(graph, sources);
        ws.into_paths()
    }

    /// Runs multi-source Dijkstra relaxing only the edges `allow` accepts.
    ///
    /// The filter sees each candidate hop as `(from, edge, to)`; returning
    /// `false` makes the hop impassable for this run without touching the
    /// graph's costs (so shared caches like [`crate::PathEngine`] stay
    /// warm). Sources are seeded unconditionally — exclude unusable
    /// sources before calling. This is the routing primitive under
    /// survivability's "reattach avoiding failed elements": temporarily
    /// severed links and nodes are modelled as a filter, not a mutation.
    ///
    /// # Panics
    ///
    /// Panics if any source is out of range.
    pub fn from_sources_filtered<I, F>(graph: &Graph, sources: I, mut allow: F) -> ShortestPaths
    where
        I: IntoIterator<Item = NodeId>,
        F: FnMut(NodeId, EdgeId, NodeId) -> bool,
    {
        let n = graph.node_count();
        let mut sp = ShortestPaths {
            dist: vec![Cost::INFINITY; n],
            parent: vec![None; n],
            site: vec![None; n],
        };
        let mut heap: BinaryHeap<Reverse<(Cost, NodeId)>> = BinaryHeap::new();
        for s in sources {
            assert!(s.index() < n, "source {s} out of range");
            if sp.dist[s.index()] > Cost::ZERO {
                sp.dist[s.index()] = Cost::ZERO;
                sp.site[s.index()] = Some(s);
                heap.push(Reverse((Cost::ZERO, s)));
            }
        }
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > sp.dist[u.index()] {
                continue;
            }
            let su = sp.site[u.index()];
            for (v, e) in graph.neighbors(u) {
                if !allow(u, e, v) {
                    continue;
                }
                let nd = d + graph.edge_cost(e);
                if nd < sp.dist[v.index()] {
                    sp.dist[v.index()] = nd;
                    sp.parent[v.index()] = Some((u, e));
                    sp.site[v.index()] = su;
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        sp
    }

    /// Distance from the closest source to `v`.
    #[inline]
    pub fn dist(&self, v: NodeId) -> Cost {
        self.dist[v.index()]
    }

    /// The source closest to `v`, or `None` if `v` is unreachable.
    #[inline]
    pub fn site(&self, v: NodeId) -> Option<NodeId> {
        self.site[v.index()]
    }

    /// Parent hop of `v` on its shortest path, or `None` at sources and
    /// unreachable nodes.
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<(NodeId, EdgeId)> {
        self.parent[v.index()]
    }

    /// Returns the shortest path from the closest source to `v` as a node
    /// sequence (source first), or `None` if `v` is unreachable.
    pub fn path_to(&self, v: NodeId) -> Option<Vec<NodeId>> {
        if !self.dist[v.index()].is_finite() {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some((p, _)) = self.parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// Returns the edges of the shortest path to `v` (in source→`v` order).
    pub fn edges_to(&self, v: NodeId) -> Option<Vec<EdgeId>> {
        if !self.dist[v.index()].is_finite() {
            return None;
        }
        let mut edges = Vec::new();
        let mut cur = v;
        while let Some((p, e)) = self.parent[cur.index()] {
            edges.push(e);
            cur = p;
        }
        edges.reverse();
        Some(edges)
    }

    /// Number of nodes covered by this run.
    pub fn len(&self) -> usize {
        self.dist.len()
    }

    /// Returns `true` if the run covered no nodes.
    pub fn is_empty(&self) -> bool {
        self.dist.is_empty()
    }
}

/// A reusable Dijkstra scratchpad: epoch-stamped `dist`/`parent`/`site`
/// arrays plus a drained heap.
///
/// Resetting between runs is O(1) — a single epoch bump lazily invalidates
/// every slot — so once the arrays have grown to the graph size, repeated
/// runs perform **zero O(n) allocation**. This is the engine under
/// [`ShortestPaths::from_sources`] (fresh workspace per call), the
/// memoizing [`crate::PathEngine`] (one long-lived workspace), and the
/// incremental restarts of the Takahashi–Matsuyama Steiner heuristic
/// (re-seeded with the grown tree each attachment).
///
/// Results are bit-identical to [`ShortestPaths::from_sources`]: both run
/// the same relaxation with the same `(cost, node)` heap order.
///
/// # Examples
///
/// ```
/// use sof_graph::{Cost, DijkstraWorkspace, Graph, NodeId};
///
/// let mut g = Graph::with_nodes(3);
/// g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(1.0));
/// g.add_edge(NodeId::new(1), NodeId::new(2), Cost::new(2.0));
/// let mut ws = DijkstraWorkspace::new();
/// ws.run(&g, [NodeId::new(0)]);
/// assert_eq!(ws.dist(NodeId::new(2)), Cost::new(3.0));
/// ws.run(&g, [NodeId::new(2)]); // reuses the same buffers
/// assert_eq!(ws.dist(NodeId::new(0)), Cost::new(3.0));
/// assert_eq!(ws.grows(), 1, "arrays were allocated exactly once");
/// ```
#[derive(Clone, Debug, Default)]
pub struct DijkstraWorkspace {
    /// Current run id; a slot is live iff `stamp[i] == epoch`.
    epoch: u64,
    stamp: Vec<u64>,
    dist: Vec<Cost>,
    parent: Vec<Option<(NodeId, EdgeId)>>,
    site: Vec<Option<NodeId>>,
    heap: BinaryHeap<Reverse<(Cost, NodeId)>>,
    /// Node count of the most recent run.
    len: usize,
    runs: u64,
    grows: u64,
}

impl DijkstraWorkspace {
    /// Creates an empty workspace; arrays grow on first use.
    pub fn new() -> DijkstraWorkspace {
        DijkstraWorkspace::default()
    }

    /// Runs multi-source Dijkstra over `graph`, reusing the workspace's
    /// buffers. Previous results are invalidated by a single epoch bump —
    /// no per-node clearing, no allocation once the arrays fit the graph.
    ///
    /// # Panics
    ///
    /// Panics if any source is out of range.
    pub fn run<I>(&mut self, graph: &Graph, sources: I)
    where
        I: IntoIterator<Item = NodeId>,
    {
        let n = graph.node_count();
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.dist.resize(n, Cost::INFINITY);
            self.parent.resize(n, None);
            self.site.resize(n, None);
            self.grows += 1;
        }
        self.len = n;
        self.epoch += 1;
        self.runs += 1;
        self.heap.clear();
        for s in sources {
            assert!(s.index() < n, "source {s} out of range");
            if self.dist_at(s.index()) > Cost::ZERO {
                self.write(s.index(), Cost::ZERO, None, Some(s));
                self.heap.push(Reverse((Cost::ZERO, s)));
            }
        }
        while let Some(Reverse((d, u))) = self.heap.pop() {
            if d > self.dist_at(u.index()) {
                continue;
            }
            let su = self.site_at(u.index());
            for (v, e) in graph.neighbors(u) {
                let nd = d + graph.edge_cost(e);
                if nd < self.dist_at(v.index()) {
                    self.write(v.index(), nd, Some((u, e)), su);
                    self.heap.push(Reverse((nd, v)));
                }
            }
        }
    }

    #[inline]
    fn dist_at(&self, i: usize) -> Cost {
        if self.stamp[i] == self.epoch {
            self.dist[i]
        } else {
            Cost::INFINITY
        }
    }

    #[inline]
    fn parent_at(&self, i: usize) -> Option<(NodeId, EdgeId)> {
        if self.stamp[i] == self.epoch {
            self.parent[i]
        } else {
            None
        }
    }

    #[inline]
    fn site_at(&self, i: usize) -> Option<NodeId> {
        if self.stamp[i] == self.epoch {
            self.site[i]
        } else {
            None
        }
    }

    /// Distance from the closest source of the latest run to `v`.
    #[inline]
    pub fn dist(&self, v: NodeId) -> Cost {
        self.dist_at(v.index())
    }

    /// The source closest to `v` in the latest run.
    #[inline]
    pub fn site(&self, v: NodeId) -> Option<NodeId> {
        self.site_at(v.index())
    }

    /// Parent hop of `v` in the latest run.
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<(NodeId, EdgeId)> {
        self.parent_at(v.index())
    }

    /// Shortest path from the closest source to `v` (source first), or
    /// `None` if `v` is unreachable. Allocates only the returned path.
    pub fn path_to(&self, v: NodeId) -> Option<Vec<NodeId>> {
        if !self.dist_at(v.index()).is_finite() {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some((p, _)) = self.parent_at(cur.index()) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// Edges of the shortest path to `v` in source→`v` order.
    pub fn edges_to(&self, v: NodeId) -> Option<Vec<EdgeId>> {
        if !self.dist_at(v.index()).is_finite() {
            return None;
        }
        let mut edges = Vec::new();
        let mut cur = v;
        while let Some((p, e)) = self.parent_at(cur.index()) {
            edges.push(e);
            cur = p;
        }
        edges.reverse();
        Some(edges)
    }

    #[inline]
    fn write(&mut self, i: usize, d: Cost, p: Option<(NodeId, EdgeId)>, s: Option<NodeId>) {
        self.stamp[i] = self.epoch;
        self.dist[i] = d;
        self.parent[i] = p;
        self.site[i] = s;
    }

    /// Copies the latest run out into an owned [`ShortestPaths`]
    /// (the workspace stays warm). One O(n) copy — the price of a cache
    /// miss in [`crate::PathEngine`]; cache hits pay nothing.
    pub fn snapshot(&self) -> ShortestPaths {
        let n = self.len;
        ShortestPaths {
            dist: (0..n).map(|i| self.dist_at(i)).collect(),
            parent: (0..n).map(|i| self.parent_at(i)).collect(),
            site: (0..n).map(|i| self.site_at(i)).collect(),
        }
    }

    /// Consumes the workspace into an owned [`ShortestPaths`] without
    /// copying the arrays (used by [`ShortestPaths::from_sources`]).
    fn into_paths(mut self) -> ShortestPaths {
        for i in 0..self.len {
            if self.stamp[i] != self.epoch {
                self.dist[i] = Cost::INFINITY;
                self.parent[i] = None;
                self.site[i] = None;
            }
        }
        self.dist.truncate(self.len);
        self.parent.truncate(self.len);
        self.site.truncate(self.len);
        ShortestPaths {
            dist: self.dist,
            parent: self.parent,
            site: self.site,
        }
    }

    /// Number of runs performed.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Number of times the arrays had to (re)grow — stays at 1 across any
    /// number of runs on same-sized graphs, which is how tests pin the
    /// "zero O(n) allocation on the warm path" guarantee.
    pub fn grows(&self) -> u64 {
        self.grows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 -1- 1 -1- 2
    ///  \----5----/     plus isolated node 3
    fn diamond() -> Graph {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(1.0));
        g.add_edge(NodeId::new(1), NodeId::new(2), Cost::new(1.0));
        g.add_edge(NodeId::new(0), NodeId::new(2), Cost::new(5.0));
        g
    }

    #[test]
    fn single_source_distances() {
        let g = diamond();
        let sp = ShortestPaths::from_source(&g, NodeId::new(0));
        assert_eq!(sp.dist(NodeId::new(0)), Cost::ZERO);
        assert_eq!(sp.dist(NodeId::new(2)), Cost::new(2.0));
        assert_eq!(sp.dist(NodeId::new(3)), Cost::INFINITY);
        assert_eq!(sp.path_to(NodeId::new(3)), None);
    }

    #[test]
    fn path_reconstruction() {
        let g = diamond();
        let sp = ShortestPaths::from_source(&g, NodeId::new(0));
        let path = sp.path_to(NodeId::new(2)).unwrap();
        assert_eq!(path, vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
        let edges = sp.edges_to(NodeId::new(2)).unwrap();
        assert_eq!(edges.len(), 2);
        let total: Cost = edges.iter().map(|&e| g.edge_cost(e)).sum();
        assert_eq!(total, Cost::new(2.0));
    }

    #[test]
    fn multi_source_voronoi() {
        let mut g = Graph::with_nodes(5);
        // 0 -1- 1 -1- 2 -1- 3 -1- 4; sources 0 and 4.
        for i in 0..4 {
            g.add_edge(NodeId::new(i), NodeId::new(i + 1), Cost::new(1.0));
        }
        let sp = ShortestPaths::from_sources(&g, [NodeId::new(0), NodeId::new(4)]);
        assert_eq!(sp.site(NodeId::new(1)), Some(NodeId::new(0)));
        assert_eq!(sp.site(NodeId::new(3)), Some(NodeId::new(4)));
        assert_eq!(sp.dist(NodeId::new(2)), Cost::new(2.0));
        // Sites of the sources themselves.
        assert_eq!(sp.site(NodeId::new(0)), Some(NodeId::new(0)));
        assert_eq!(sp.site(NodeId::new(4)), Some(NodeId::new(4)));
    }

    #[test]
    fn duplicate_sources_are_fine() {
        let g = diamond();
        let sp = ShortestPaths::from_sources(&g, [NodeId::new(0), NodeId::new(0)]);
        assert_eq!(sp.dist(NodeId::new(1)), Cost::new(1.0));
    }

    #[test]
    fn zero_cost_edges() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId::new(0), NodeId::new(1), Cost::ZERO);
        g.add_edge(NodeId::new(1), NodeId::new(2), Cost::ZERO);
        let sp = ShortestPaths::from_source(&g, NodeId::new(0));
        assert_eq!(sp.dist(NodeId::new(2)), Cost::ZERO);
        assert_eq!(sp.path_to(NodeId::new(2)).unwrap().len(), 3);
    }

    #[test]
    fn filtered_run_routes_around_banned_hops() {
        let g = diamond();
        // Unfiltered, the cheap route 0→1→2 wins; banning the 0–1 hop
        // forces the expensive direct edge instead of mutating any cost.
        let banned = (NodeId::new(0), NodeId::new(1));
        let sp = ShortestPaths::from_sources_filtered(&g, [NodeId::new(0)], |u, _, v| {
            (u.min(v), u.max(v)) != banned
        });
        assert_eq!(sp.dist(NodeId::new(2)), Cost::new(5.0));
        assert_eq!(
            sp.path_to(NodeId::new(2)).unwrap(),
            vec![NodeId::new(0), NodeId::new(2)]
        );
        assert_eq!(sp.dist(NodeId::new(1)), Cost::new(6.0), "via 2");
        // An all-pass filter matches the unfiltered run exactly.
        let open = ShortestPaths::from_sources_filtered(&g, [NodeId::new(0)], |_, _, _| true);
        let reference = ShortestPaths::from_source(&g, NodeId::new(0));
        for v in g.nodes() {
            assert_eq!(open.dist(v), reference.dist(v));
            assert_eq!(open.path_to(v), reference.path_to(v));
        }
    }

    #[test]
    fn workspace_reuse_leaves_no_stale_state() {
        let g = diamond();
        let mut ws = DijkstraWorkspace::new();
        ws.run(&g, [NodeId::new(0)]);
        assert_eq!(ws.dist(NodeId::new(2)), Cost::new(2.0));
        // Re-run from the isolated node: every previous label must read as
        // unreachable, not leak through from the first run.
        ws.run(&g, [NodeId::new(3)]);
        assert_eq!(ws.dist(NodeId::new(0)), Cost::INFINITY);
        assert_eq!(ws.dist(NodeId::new(2)), Cost::INFINITY);
        assert_eq!(ws.site(NodeId::new(1)), None);
        assert_eq!(ws.parent(NodeId::new(1)), None);
        assert_eq!(ws.path_to(NodeId::new(0)), None);
        assert_eq!(ws.dist(NodeId::new(3)), Cost::ZERO);
        assert_eq!(ws.runs(), 2);
        assert_eq!(ws.grows(), 1, "second run must not reallocate");
    }

    #[test]
    fn workspace_matches_from_sources_on_random_graphs() {
        for seed in 0..6u64 {
            let mut rng = crate::Rng64::seed_from(seed);
            let g = crate::generators::gnp_connected(
                40,
                0.12,
                crate::CostRange::new(1.0, 7.0),
                &mut rng,
            );
            let mut ws = DijkstraWorkspace::new();
            for sources in [vec![0usize], vec![3, 17], vec![1, 2, 39]] {
                let srcs: Vec<NodeId> = sources.iter().map(|&i| NodeId::new(i)).collect();
                let reference = ShortestPaths::from_sources(&g, srcs.iter().copied());
                ws.run(&g, srcs.iter().copied());
                let snap = ws.snapshot();
                for v in g.nodes() {
                    assert_eq!(ws.dist(v), reference.dist(v), "seed {seed} node {v}");
                    assert_eq!(snap.dist(v), reference.dist(v));
                    assert_eq!(ws.parent(v), reference.parent(v));
                    assert_eq!(snap.parent(v), reference.parent(v));
                    assert_eq!(ws.site(v), reference.site(v));
                    assert_eq!(ws.path_to(v), reference.path_to(v));
                    assert_eq!(ws.edges_to(v), reference.edges_to(v));
                }
            }
            assert_eq!(ws.grows(), 1);
        }
    }

    #[test]
    fn workspace_grows_for_larger_graphs() {
        let small = diamond();
        let mut big = Graph::with_nodes(10);
        for i in 0..9 {
            big.add_edge(NodeId::new(i), NodeId::new(i + 1), Cost::new(1.0));
        }
        let mut ws = DijkstraWorkspace::new();
        ws.run(&small, [NodeId::new(0)]);
        ws.run(&big, [NodeId::new(0)]);
        assert_eq!(ws.grows(), 2);
        assert_eq!(ws.dist(NodeId::new(9)), Cost::new(9.0));
        // Shrinking back reuses the larger buffers without reallocating,
        // and the snapshot is sized to the current graph.
        ws.run(&small, [NodeId::new(0)]);
        assert_eq!(ws.grows(), 2);
        assert_eq!(ws.snapshot().len(), small.node_count());
    }
}

//! Fig. 10: synthetic Inet network sweeps (5000 nodes / 10000 links).
use sof_bench::{average, print_header, print_row, Algo, Args};
use sof_core::SofdaConfig;
use sof_topo::{build_instance, inet_synthetic, ScenarioParams};

fn main() {
    let args = Args::capture();
    let seeds: u64 = args.seeds(2);
    let base: u64 = args.get("seed", 3000);
    println!("# Fig. 10 — Inet synthetic network (seeds = {seeds})");
    let topo = inet_synthetic(base);
    let sweeps = sof_bench::standard_sweeps();
    for (name, values, apply) in sweeps {
        println!("\n## Fig. 10 — cost vs {name} (Inet)\n");
        let algos = Algo::comparison_set(false);
        let mut hdr = vec![name];
        hdr.extend(algos.iter().map(|a| a.name()));
        print_header(&hdr);
        for &v in &values {
            let mut cells = vec![v.to_string()];
            for &algo in &algos {
                let make = |seed: u64| {
                    let mut p = ScenarioParams::paper_defaults().with_seed(seed);
                    apply(&mut p, v);
                    build_instance(&topo, &p)
                };
                match average(algo, seeds, base, &SofdaConfig::default(), make) {
                    Some((c, _, _)) => cells.push(format!("{c:.1}")),
                    None => cells.push("-".into()),
                }
            }
            print_row(&cells);
        }
    }
}

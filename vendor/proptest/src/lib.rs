//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the subset of proptest that `tests/proptests.rs`
//! uses: the `proptest!` macro over `#[test]` functions whose arguments
//! are drawn from integer-range strategies, `prop_assert!`, and
//! `ProptestConfig::with_cases`. Cases are generated deterministically
//! (splitmix64 keyed on the test name and case index), so failures are
//! reproducible; there is no shrinking. Swap the path dependency for the
//! real crates.io package to get full strategy combinators and shrinking.

use std::fmt;
use std::ops::Range;

/// Per-test configuration (`cases` = number of generated inputs).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property assertion, carried out of the test body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic splitmix64 generator used to draw case inputs.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds from the test name and the case index.
    pub fn new(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Anything a `proptest!` argument can be drawn from.
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Draws one value.
    fn pick(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u128;
                self.start + (u128::from(rng.next_u64()) % span) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

/// The usual proptest import surface.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Declares deterministic randomized tests (see crate docs for limits).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($tail:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($tail)* }
    };
    ($($tail:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($tail)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
      $($tail:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::new(stringify!($name), __case);
                $( let $arg = $crate::Strategy::pick(&($strat), &mut __rng); )*
                let __result: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = __result {
                    panic!(
                        "proptest {} failed at case {} with inputs {:?}: {}",
                        stringify!($name),
                        __case,
                        ($(stringify!($arg), $arg,)*),
                        e
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($tail)* }
    };
}

/// Property assertion: fails the current case with context on falsity.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
}

//! Offline stand-in for the `crossbeam` crate, backed by `std::sync::mpsc`.
//!
//! Only the unbounded-channel surface used by `sof_sdn` is provided. The
//! std channel is MPSC rather than MPMC, which is sufficient here: no
//! receiver is ever cloned. Swap the path dependency for the real
//! crates.io package to get the full crossbeam API.

/// Unbounded FIFO channels (`crossbeam::channel` stand-in).
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender};

    /// Creates an unbounded channel, mirroring `crossbeam::channel::unbounded`.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

//! Algorithm 1: SOFDA-SS, the `(2+ρST)`-approximation for a single source.
//!
//! For every candidate last VM `u`: find the cheapest service chain from the
//! source to `u` through `|C|` distinct VMs (k-stroll on the Procedure 1
//! instance), then span `u` and all destinations with a Steiner tree; keep
//! the cheapest combination. Theorem 2 bounds the result by
//! `(2+ρST)·OPT`.

use crate::{
    ChainMetric, DestWalk, ServiceForest, SofInstance, SofdaConfig, SolveError, SolveOutcome,
    SolveStats,
};
use sof_graph::{Cost, Rng64};

/// Solves the single-source SOF problem (Algorithm 1).
///
/// # Errors
///
/// * [`SolveError::SingleSourceOnly`] if the request has multiple sources.
/// * [`SolveError::Infeasible`] when fewer than `|C|` VMs exist.
/// * [`SolveError::Steiner`] if destinations are unreachable.
///
/// # Examples
///
/// ```
/// use sof_core::{Network, Request, ServiceChain, SofInstance, SofdaConfig, solve_sofda_ss};
/// use sof_graph::{Graph, Cost, NodeId};
///
/// // 0 —1→ 1(VM,2) —1→ 2(VM,3) —1→ 3
/// let mut g = Graph::with_nodes(4);
/// for i in 0..3 {
///     g.add_edge(NodeId::new(i), NodeId::new(i + 1), Cost::new(1.0));
/// }
/// let mut net = Network::all_switches(g);
/// net.make_vm(NodeId::new(1), Cost::new(2.0));
/// net.make_vm(NodeId::new(2), Cost::new(3.0));
/// let inst = SofInstance::new(
///     net,
///     Request::new(vec![NodeId::new(0)], vec![NodeId::new(3)], ServiceChain::with_len(2)),
/// )?;
/// let out = solve_sofda_ss(&inst, &SofdaConfig::default())?;
/// assert_eq!(out.cost.total(), Cost::new(8.0)); // 3 links + VMs 2+3
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn solve_sofda_ss(
    instance: &SofInstance,
    config: &SofdaConfig,
) -> Result<SolveOutcome, SolveError> {
    if instance.request.sources.len() != 1 {
        return Err(SolveError::SingleSourceOnly {
            sources: instance.request.sources.len(),
        });
    }
    let source = instance.request.sources[0];
    let network = &instance.network;
    let dests = &instance.request.destinations;
    let chain_len = instance.chain_len();
    let mut rng = Rng64::seed_from(config.seed);
    let mut stats = SolveStats::default();

    // |C| = 0: the forest is a plain Steiner tree rooted at the source.
    if chain_len == 0 {
        let mut terminals = vec![source];
        terminals.extend_from_slice(dests);
        let tree = config.steiner.solve(network.graph(), &terminals)?;
        stats.steiner_cost = tree.cost;
        let walks = dests
            .iter()
            .map(|&d| {
                let nodes = tree
                    .path_between(network.graph(), source, d)
                    .expect("steiner tree spans all terminals");
                DestWalk {
                    destination: d,
                    source,
                    nodes,
                    vnf_positions: vec![],
                }
            })
            .collect();
        return finish(instance, config, ServiceForest::new(0, walks), stats);
    }

    let vms = network.vms();
    if vms.len() < chain_len {
        return Err(SolveError::Infeasible(format!(
            "chain needs {chain_len} VMs, network has {}",
            vms.len()
        )));
    }
    let cm = ChainMetric::build(network, source, &vms, config.source_cost())
        .ok_or_else(|| SolveError::Infeasible("some VM unreachable from the source".into()))?;

    // One multi-target k-stroll run covers every candidate last VM.
    let chains = cm.chains_to_all_vms(chain_len, config.stroll, &mut rng);
    if chains.is_empty() {
        return Err(SolveError::Infeasible(
            "no service chain with the demanded length exists".into(),
        ));
    }

    let mut best: Option<(Cost, ServiceForest, Cost)> = None;
    for (target, stroll, _chain_cost) in &chains {
        stats.candidate_chains += 1;
        let u = cm.node(*target);
        let (walk, positions) = cm.expand(stroll);
        // Steiner tree spanning the last VM and all destinations.
        let mut terminals = vec![u];
        terminals.extend_from_slice(dests);
        let Ok(tree) = config.steiner.solve(network.graph(), &terminals) else {
            continue;
        };
        let walks: Vec<DestWalk> = dests
            .iter()
            .map(|&d| {
                let tail = tree
                    .path_between(network.graph(), u, d)
                    .expect("steiner tree spans terminals");
                let mut nodes = walk.clone();
                nodes.extend_from_slice(&tail[1..]);
                DestWalk {
                    destination: d,
                    source,
                    nodes,
                    vnf_positions: positions.clone(),
                }
            })
            .collect();
        let forest = ServiceForest::new(chain_len, walks);
        let total = forest.cost(network).total() + config.source_cost();
        if best.as_ref().is_none_or(|(b, _, _)| total < *b) {
            best = Some((total, forest, tree.cost));
        }
    }

    let (_, forest, steiner_cost) =
        best.ok_or_else(|| SolveError::Infeasible("no feasible last VM".into()))?;
    stats.steiner_cost = steiner_cost;
    finish(instance, config, forest, stats)
}

/// Shared epilogue: optional shortening, validation, cost extraction.
pub(crate) fn finish(
    instance: &SofInstance,
    config: &SofdaConfig,
    mut forest: ServiceForest,
    stats: SolveStats,
) -> Result<SolveOutcome, SolveError> {
    if config.shorten {
        forest.shorten(&instance.network);
    }
    forest.validate(instance).map_err(SolveError::Internal)?;
    let cost = forest.cost(&instance.network);
    Ok(SolveOutcome {
        forest,
        cost,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Network, Request, ServiceChain};
    use sof_graph::{Graph, NodeId};

    /// Fig. 3-like fixture: a source, a pool of VMs, two destinations.
    fn fixture(chain_len: usize) -> SofInstance {
        let mut g = Graph::with_nodes(10);
        let edges = [
            (0, 1, 1.0),
            (1, 2, 1.0),
            (2, 3, 1.0),
            (3, 4, 1.0),
            (4, 5, 1.0),
            (5, 6, 1.0),
            (6, 7, 1.0),
            (2, 8, 2.0),
            (5, 9, 2.0),
            (0, 3, 3.0),
            (1, 6, 4.0),
        ];
        for (u, v, c) in edges {
            g.add_edge(NodeId::new(u), NodeId::new(v), Cost::new(c));
        }
        let mut net = Network::all_switches(g);
        for (vm, cost) in [(1, 1.0), (2, 2.0), (3, 1.0), (4, 2.0), (5, 1.0), (6, 3.0)] {
            net.make_vm(NodeId::new(vm), Cost::new(cost));
        }
        SofInstance::new(
            net,
            Request::new(
                vec![NodeId::new(0)],
                vec![NodeId::new(8), NodeId::new(9)],
                ServiceChain::with_len(chain_len),
            ),
        )
        .unwrap()
    }

    #[test]
    fn produces_valid_forest_for_various_chain_lengths() {
        for len in 0..=4 {
            let inst = fixture(len);
            let out = solve_sofda_ss(&inst, &SofdaConfig::default()).unwrap();
            out.forest.validate(&inst).unwrap();
            assert_eq!(out.forest.walks.len(), 2);
            assert_eq!(out.forest.chain_len, len);
            let stats = out.forest.stats();
            assert_eq!(stats.used_vms, len);
        }
    }

    #[test]
    fn rejects_multi_source() {
        let mut inst = fixture(1);
        inst.request.sources.push(NodeId::new(7));
        let err = solve_sofda_ss(&inst, &SofdaConfig::default()).unwrap_err();
        assert!(matches!(err, SolveError::SingleSourceOnly { sources: 2 }));
    }

    #[test]
    fn infeasible_when_chain_longer_than_vm_pool() {
        let inst = fixture(7); // only 6 VMs
        let err = solve_sofda_ss(&inst, &SofdaConfig::default()).unwrap_err();
        assert!(matches!(err, SolveError::Infeasible(_)));
    }

    #[test]
    fn doc_example_cost() {
        let mut g = Graph::with_nodes(4);
        for i in 0..3 {
            g.add_edge(NodeId::new(i), NodeId::new(i + 1), Cost::new(1.0));
        }
        let mut net = Network::all_switches(g);
        net.make_vm(NodeId::new(1), Cost::new(2.0));
        net.make_vm(NodeId::new(2), Cost::new(3.0));
        let inst = SofInstance::new(
            net,
            Request::new(
                vec![NodeId::new(0)],
                vec![NodeId::new(3)],
                ServiceChain::with_len(2),
            ),
        )
        .unwrap();
        let out = solve_sofda_ss(&inst, &SofdaConfig::default()).unwrap();
        assert_eq!(out.cost.total(), Cost::new(8.0));
        assert_eq!(out.cost.setup, Cost::new(5.0));
    }

    #[test]
    fn appendix_d_source_cost_added() {
        let inst = fixture(2);
        let base = solve_sofda_ss(&inst, &SofdaConfig::default()).unwrap();
        let with_cost = solve_sofda_ss(
            &inst,
            &SofdaConfig::default().with_source_setup_cost(Cost::new(5.0)),
        )
        .unwrap();
        // The reported forest cost excludes the source fee, but the chosen
        // forest can only be weakly worse under the fee's influence.
        assert!(with_cost.cost.total() + Cost::new(5.0) >= base.cost.total());
    }
}

//! OpenFlow-style rule compilation from a service overlay forest.
//!
//! Each chain segment gets its own multicast group tag; switches replicate
//! packets along the segment's tree, and VMs rewrite the tag when they
//! process a VNF — the standard encoding of service-chained multicast in
//! match+action pipelines. [`RuleTable::tcam_entries`] gives the flow-table
//! footprint (the paper's §II cites TCAM size as a first-class constraint).

use sof_core::{Network, ServiceForest};
use sof_graph::NodeId;
use std::collections::{BTreeMap, BTreeSet};

/// A compiled flow rule: match `(group)` at `switch`, replicate to
/// `outputs`, optionally process a VNF first (advancing the group tag).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlowRule {
    /// Switch (or VM host) holding the rule.
    pub switch: NodeId,
    /// Segment tag the rule matches (`0 ..= |C|`).
    pub group: usize,
    /// Next hops the packet is replicated to.
    pub outputs: Vec<NodeId>,
    /// `Some(i)` when this node runs VNF `i` (consumes tag `i`, emits
    /// tag `i+1`).
    pub process: Option<usize>,
}

/// The forest's compiled rule set.
#[derive(Clone, Debug, Default)]
pub struct RuleTable {
    rules: Vec<FlowRule>,
}

impl RuleTable {
    /// Compiles a forest into per-switch multicast rules.
    pub fn compile(forest: &ServiceForest) -> RuleTable {
        let enabled = forest.enabled_vms().expect("conflict-free forest");
        // outputs[(node, group)] -> set of next hops.
        let mut outputs: BTreeMap<(NodeId, usize), BTreeSet<NodeId>> = BTreeMap::new();
        for (seg, edges) in forest.segment_edges().into_iter().enumerate() {
            for (a, b) in edges {
                outputs.entry((a, seg)).or_default().insert(b);
            }
        }
        let mut rules: Vec<FlowRule> = outputs
            .into_iter()
            .map(|((switch, group), outs)| FlowRule {
                switch,
                group,
                outputs: outs.into_iter().collect(),
                process: enabled.get(&switch).copied().filter(|&i| i + 1 == group),
            })
            .collect();
        // Processing VMs that terminate a walk (no further outputs in the
        // next segment from them) still need a processing rule.
        for (&vm, &i) in &enabled {
            let has = rules.iter().any(|r| r.switch == vm && r.group == i + 1);
            if !has {
                rules.push(FlowRule {
                    switch: vm,
                    group: i + 1,
                    outputs: vec![],
                    process: Some(i),
                });
            }
        }
        rules.sort_by_key(|r| (r.switch, r.group));
        RuleTable { rules }
    }

    /// All rules, ordered by `(switch, group)`.
    pub fn rules(&self) -> &[FlowRule] {
        &self.rules
    }

    /// Total TCAM entries consumed.
    pub fn tcam_entries(&self) -> usize {
        self.rules.len()
    }

    /// TCAM entries on one switch.
    pub fn entries_at(&self, switch: NodeId) -> usize {
        self.rules.iter().filter(|r| r.switch == switch).count()
    }

    /// The maximum per-switch table occupancy.
    pub fn max_entries_per_switch(&self) -> usize {
        let mut per: BTreeMap<NodeId, usize> = BTreeMap::new();
        for r in &self.rules {
            *per.entry(r.switch).or_insert(0) += 1;
        }
        per.values().copied().max().unwrap_or(0)
    }

    /// Data-plane check: floods a packet from every used source with tag 0
    /// and verifies each destination receives a fully processed copy
    /// (tag `|C|`). This validates the *compiled rules*, independent of the
    /// forest structures they came from.
    pub fn delivers(&self, network: &Network, forest: &ServiceForest) -> bool {
        let chain_len = forest.chain_len;
        let _ = network;
        let mut index: BTreeMap<(NodeId, usize), &FlowRule> = BTreeMap::new();
        for r in &self.rules {
            index.insert((r.switch, r.group), r);
        }
        let enabled = forest.enabled_vms().expect("conflict-free");
        let sources: BTreeSet<NodeId> = forest.walks.iter().map(|w| w.source).collect();
        let mut reached: BTreeSet<(NodeId, usize)> = BTreeSet::new();
        let mut stack: Vec<(NodeId, usize)> = sources.iter().map(|&s| (s, 0)).collect();
        while let Some((node, tag)) = stack.pop() {
            if !reached.insert((node, tag)) {
                continue;
            }
            // Processing: a VM holding tag == its VNF index advances it.
            if let Some(&i) = enabled.get(&node) {
                if i == tag && tag < chain_len {
                    stack.push((node, tag + 1));
                }
            }
            if let Some(rule) = index.get(&(node, tag)) {
                for &out in &rule.outputs {
                    stack.push((out, tag));
                }
            }
        }
        forest
            .walks
            .iter()
            .all(|w| reached.contains(&(w.destination, chain_len)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sof_core::{solve_sofda, Network, Request, ServiceChain, SofInstance, SofdaConfig};
    use sof_graph::{generators, Cost, CostRange, Rng64};

    fn solved(seed: u64) -> (SofInstance, ServiceForest) {
        let mut rng = Rng64::seed_from(seed);
        let g = generators::gnp_connected(22, 0.18, CostRange::new(1.0, 6.0), &mut rng);
        let mut net = Network::all_switches(g);
        let picks = rng.sample_indices(22, 13);
        for &v in &picks[..6] {
            net.make_vm(NodeId::new(v), Cost::new(rng.range_f64(0.5, 3.0)));
        }
        let inst = SofInstance::new(
            net,
            Request::new(
                vec![NodeId::new(picks[6]), NodeId::new(picks[7])],
                picks[8..12].iter().map(|&i| NodeId::new(i)).collect(),
                ServiceChain::with_len(2),
            ),
        )
        .unwrap();
        let out = solve_sofda(&inst, &SofdaConfig::default()).unwrap();
        (inst, out.forest)
    }

    #[test]
    fn compiled_rules_deliver_to_all_destinations() {
        for seed in 0..8 {
            let (inst, forest) = solved(seed);
            let table = RuleTable::compile(&forest);
            assert!(
                table.delivers(&inst.network, &forest),
                "seed {seed}: rules failed to deliver"
            );
            assert!(table.tcam_entries() > 0);
            assert!(table.max_entries_per_switch() <= forest.chain_len + 1);
        }
    }

    #[test]
    fn rule_counts_track_segment_fanout() {
        let (_, forest) = solved(1);
        let table = RuleTable::compile(&forest);
        // One rule per (node, segment) with outputs, plus terminal process
        // rules; every rule's group is within range.
        for r in table.rules() {
            assert!(r.group <= forest.chain_len);
        }
    }

    #[test]
    fn empty_forest_compiles_to_empty_table() {
        let table = RuleTable::compile(&ServiceForest::default());
        assert_eq!(table.tcam_entries(), 0);
        assert_eq!(table.max_entries_per_switch(), 0);
    }
}

//! The daemon's state: named topologies, live [`OnlineSession`]s with TTL
//! bookkeeping, and the counters `/v1/stats` serves.
//!
//! One registry sits behind a reader-writer lock; handlers hold it for the
//! duration of one operation. Read-only routes (`GET /v1/sessions/{id}`,
//! `GET /v1/stats`, `/healthz`) take `&self` — including the TTL renewal a
//! read performs and the request counting every route performs, which go
//! through interior mutability — so probes and dashboards never serialize
//! behind a long-running embed. The deterministic core is untouched — a
//! session here is exactly the library's [`OnlineSession`], addressed by
//! id instead of by ownership.

use crate::wire::{ApiError, Body};
use sof_core::{ArrivalReport, OnlineConfig, OnlineSession, Request, ServiceChain, SofdaConfig};
use sof_graph::{NodeId, PathEngineStats};
use sof_spec::value::Value;
use sof_survive::ElementRef;
use sof_topo::{
    build_instance, build_named, build_region_instance, build_regions, RegionDef, RegionScenario,
    RegionTopology, RegionsParams, ScenarioParams, Topology, TopologySpec,
};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A registered topology: either a named library topology or a built
/// multi-region network.
enum Topo {
    Named(Topology),
    Regions(RegionTopology),
}

impl Topo {
    fn graph(&self) -> &sof_graph::Graph {
        match self {
            Topo::Named(t) => &t.graph,
            Topo::Regions(rt) => &rt.topo.graph,
        }
    }

    fn dc_count(&self) -> usize {
        match self {
            Topo::Named(t) => t.dc_nodes.len(),
            Topo::Regions(rt) => rt.topo.dc_nodes.len(),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Topo::Named(_) => "named",
            Topo::Regions(_) => "regions",
        }
    }
}

/// One live session plus its control-plane bookkeeping.
struct SessionEntry {
    topology: String,
    session: OnlineSession,
    /// Standing forest cost after the latest operation.
    last_cost: f64,
    ttl: Option<Duration>,
    /// Behind its own lock so a shared-lock `GET` can renew the TTL
    /// without holding the registry exclusively.
    deadline: Mutex<Option<Instant>>,
    /// Scheduled repairs the janitor applies once their instant passes.
    repairs: Vec<(Instant, ElementRef)>,
}

impl SessionEntry {
    fn touch(&self, now: Instant) {
        let mut deadline = self.deadline.lock().unwrap_or_else(|e| e.into_inner());
        *deadline = self.ttl.map(|t| now + t);
    }

    fn expired(&self, now: Instant) -> bool {
        let deadline = self.deadline.lock().unwrap_or_else(|e| e.into_inner());
        deadline.is_some_and(|d| now >= d)
    }
}

/// Cumulative counters the control plane exposes.
#[derive(Clone, Copy, Debug, Default)]
pub struct DaemonStats {
    /// Requests routed (including failures).
    pub requests: u64,
    /// Requests answered with a 4xx/5xx.
    pub errors: u64,
    /// Sessions ever created.
    pub sessions_created: u64,
    /// Sessions reaped by the janitor.
    pub sessions_expired: u64,
    /// Sessions deleted by clients.
    pub sessions_deleted: u64,
}

fn add_engine(into: &mut PathEngineStats, s: PathEngineStats) {
    into.hits += s.hits;
    into.misses += s.misses;
    into.stale += s.stale;
    into.evictions += s.evictions;
    into.repairs += s.repairs;
    into.partial_repairs += s.partial_repairs;
}

/// The daemon's mutable state (topologies, sessions, counters).
pub struct Registry {
    topologies: BTreeMap<String, Topo>,
    sessions: BTreeMap<u64, SessionEntry>,
    next_id: u64,
    started: Instant,
    default_ttl: Option<Duration>,
    /// Routed-request / error totals; atomic because *every* route counts
    /// one, including the read-locked ones.
    requests: AtomicU64,
    errors: AtomicU64,
    sessions_created: u64,
    sessions_expired: u64,
    sessions_deleted: u64,
    /// Engine counters of sessions that already left the registry, so
    /// `/v1/stats` never goes backwards.
    retired_engine: PathEngineStats,
}

fn engine_value(s: PathEngineStats) -> Value {
    let mut v = Value::table();
    v.set("hits", Value::Int(s.hits as i64));
    v.set("misses", Value::Int(s.misses as i64));
    v.set("stale", Value::Int(s.stale as i64));
    v.set("evictions", Value::Int(s.evictions as i64));
    v.set("repairs", Value::Int(s.repairs as i64));
    v.set("partial_repairs", Value::Int(s.partial_repairs as i64));
    v
}

fn nodes_value(nodes: &[NodeId]) -> Value {
    Value::Array(nodes.iter().map(|n| Value::Int(n.index() as i64)).collect())
}

/// Reads the element reference a fail/repair body names: exactly one of
/// `vm`, `link` (`[u, v]`), `node`, or `domain`.
fn read_element(body: &mut Body) -> Result<ElementRef, ApiError> {
    let vm = body.opt_u64("vm")?;
    let link = body.opt_node_list("link")?;
    let node = body.opt_u64("node")?;
    let domain = body.opt_str("domain")?;
    let given = [
        vm.is_some(),
        link.is_some(),
        node.is_some(),
        domain.is_some(),
    ]
    .iter()
    .filter(|&&b| b)
    .count();
    if given != 1 {
        return Err(ApiError::bad_request(
            "give exactly one of 'vm', 'link' ([u, v]), 'node', or 'domain'",
        ));
    }
    if let Some(v) = vm {
        return Ok(ElementRef::Vm(v as usize));
    }
    if let Some(pair) = link {
        let [u, v] = pair.as_slice() else {
            return Err(ApiError::bad_request(format!(
                "'link' must be a [u, v] endpoint pair, got {} entries",
                pair.len()
            )));
        };
        if u == v {
            return Err(ApiError::bad_request("'link' endpoints must differ"));
        }
        return Ok(ElementRef::link(*u, *v));
    }
    if let Some(n) = node {
        return Ok(ElementRef::Node(n as usize));
    }
    Ok(ElementRef::Domain(domain.expect("counted above")))
}

/// Resolves a domain name to its region's nodes (regions topologies only).
fn domain_nodes(
    topologies: &BTreeMap<String, Topo>,
    topology: &str,
    name: &str,
) -> Result<Vec<NodeId>, ApiError> {
    match topologies.get(topology) {
        Some(Topo::Regions(rt)) => {
            match (0..rt.region_count()).find(|&r| rt.region_name(r) == name) {
                Some(r) => Ok(rt.region_nodes(r).to_vec()),
                None => Err(ApiError::bad_request(format!(
                    "unknown domain '{name}' (topology '{topology}' has: {})",
                    (0..rt.region_count())
                        .map(|r| rt.region_name(r))
                        .collect::<Vec<_>>()
                        .join(", ")
                ))),
            }
        }
        Some(Topo::Named(_)) => Err(ApiError::bad_request(format!(
            "topology '{topology}' is not a multi-region build; \
             domain failures need a regions topology"
        ))),
        None => Err(ApiError::not_found(format!(
            "unknown topology '{topology}'"
        ))),
    }
}

/// Applies one element repair to a session. Domain repairs restore every
/// region node that was failed, skipping the rest.
fn repair_in_session(
    session: &mut OnlineSession,
    element: &ElementRef,
    domain: Option<Vec<NodeId>>,
) -> Result<(), sof_core::SolveError> {
    match element {
        ElementRef::Vm(n) => session.repair_vm(NodeId::new(*n)),
        ElementRef::Link(u, v) => session.repair_link(NodeId::new(*u), NodeId::new(*v)),
        ElementRef::Node(n) => session.repair_node(NodeId::new(*n)),
        ElementRef::Domain(_) => {
            for n in domain.unwrap_or_default() {
                let _ = session.repair_node(n);
            }
            Ok(())
        }
    }
}

fn report_value(id: u64, r: &ArrivalReport) -> Value {
    let mut v = Value::table();
    v.set("id", Value::Int(id as i64));
    v.set("forest_cost", Value::Float(r.forest_cost));
    v.set("accumulated_cost", Value::Float(r.accumulated_cost));
    v.set("rebuilt", Value::Bool(r.rebuilt));
    v.set("joined", Value::Int(r.joined as i64));
    v.set("left", Value::Int(r.left as i64));
    v
}

impl Registry {
    /// An empty registry. `default_ttl` applies to sessions that pin no
    /// `ttl_secs` of their own (`None` = sessions never expire).
    pub fn new(default_ttl: Option<Duration>) -> Registry {
        Registry {
            topologies: BTreeMap::new(),
            sessions: BTreeMap::new(),
            next_id: 1,
            started: Instant::now(),
            default_ttl,
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            sessions_created: 0,
            sessions_expired: 0,
            sessions_deleted: 0,
            retired_engine: PathEngineStats::default(),
        }
    }

    /// Counts one routed request (and optionally one error) for
    /// `/v1/stats`. Takes `&self` — counting happens on every route, so it
    /// must not force read-only routes onto the exclusive lock.
    pub fn count(&self, is_error: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if is_error {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A consistent snapshot of the lifecycle counters.
    pub fn stats(&self) -> DaemonStats {
        DaemonStats {
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            sessions_created: self.sessions_created,
            sessions_expired: self.sessions_expired,
            sessions_deleted: self.sessions_deleted,
        }
    }

    /// Live session count.
    pub fn live_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// `POST /v1/topologies` — registers a named library topology
    /// (`{"name", "topology", "nodes"?, "seed"?}`) or a multi-region build
    /// (`{"name", "regions": [{name, nodes, dcs}…], "gateway_links"?,
    /// "pair_cost"?, "seed"?}`).
    ///
    /// # Errors
    ///
    /// 400 for malformed bodies or library-rejected parameters, 409 for a
    /// duplicate name.
    pub fn create_topology(&mut self, mut body: Body) -> Result<Value, ApiError> {
        let name = body.str("name")?;
        if name.is_empty() {
            return Err(ApiError::bad_request("'name' must not be empty"));
        }
        if self.topologies.contains_key(&name) {
            return Err(ApiError::conflict(format!(
                "topology '{name}' already exists"
            )));
        }
        let named = body.opt_str("topology")?;
        let regions = body.opt_regions("regions")?;
        let seed = body.opt_u64("seed")?.unwrap_or(7);
        let topo = match (named, regions) {
            (Some(reg_name), None) => {
                let mut spec = TopologySpec::named(reg_name);
                spec.nodes = body.opt_u64("nodes")?.map(|n| n as usize);
                body.finish()?;
                Topo::Named(build_named(&spec, seed).map_err(ApiError::bad_request)?)
            }
            (None, Some(regions)) => {
                let params = RegionsParams {
                    regions: regions
                        .into_iter()
                        .map(|(n, nodes, dcs)| RegionDef::new(n, nodes, dcs))
                        .collect(),
                    gateway_links: body.opt_u64("gateway_links")?.unwrap_or(2) as usize,
                    pair_cost: body.opt_matrix("pair_cost")?,
                };
                body.finish()?;
                params.validate().map_err(ApiError::bad_request)?;
                Topo::Regions(build_regions(&params, seed).map_err(ApiError::bad_request)?)
            }
            (Some(_), Some(_)) => {
                return Err(ApiError::bad_request(
                    "give either 'topology' (a registry name) or 'regions', not both",
                ))
            }
            (None, None) => {
                return Err(ApiError::bad_request(
                    "missing 'topology' (a registry name) or 'regions' (a multi-region build)",
                ))
            }
        };
        let mut v = Value::table();
        v.set("name", Value::Str(name.clone()));
        v.set("kind", Value::Str(topo.kind().to_string()));
        v.set("nodes", Value::Int(topo.graph().node_count() as i64));
        v.set("links", Value::Int(topo.graph().edge_count() as i64));
        v.set("dcs", Value::Int(topo.dc_count() as i64));
        self.topologies.insert(name, topo);
        Ok(v)
    }

    /// `POST /v1/sessions` — embeds a new group on a registered topology
    /// and returns the first [`ArrivalReport`]. Body: `{"topology",
    /// "sources", "destinations", "solver"?, "chain_len"?, "seed"?,
    /// "vm_count"?, "vms_per_dc"?, "ttl_secs"?}`.
    ///
    /// # Errors
    ///
    /// 400 for malformed bodies or out-of-range nodes, 404 for an unknown
    /// topology, 409 when the initial embedding is infeasible.
    pub fn create_session(&mut self, mut body: Body) -> Result<Value, ApiError> {
        let topology = body.str("topology")?;
        let sources: Vec<NodeId> = body
            .node_list("sources")?
            .into_iter()
            .map(NodeId::new)
            .collect();
        let destinations: Vec<NodeId> = body
            .node_list("destinations")?
            .into_iter()
            .map(NodeId::new)
            .collect();
        let solver_name = body.opt_str("solver")?.unwrap_or_else(|| "SOFDA".into());
        let chain_len = body.opt_u64("chain_len")?.unwrap_or(2) as usize;
        let seed = body.opt_u64("seed")?.unwrap_or(0x50F);
        let vm_count = body.opt_u64("vm_count")?.unwrap_or(25) as usize;
        let vms_per_dc = body.opt_u64("vms_per_dc")?.unwrap_or(1) as usize;
        let ttl = match body.opt_u64("ttl_secs")? {
            None => self.default_ttl,
            Some(0) => None,
            Some(secs) => Some(Duration::from_secs(secs)),
        };
        body.finish()?;

        if sources.is_empty() || destinations.is_empty() {
            return Err(ApiError::bad_request(
                "'sources' and 'destinations' must be non-empty",
            ));
        }
        if sources.iter().any(|s| destinations.contains(s)) {
            return Err(ApiError::bad_request(
                "'sources' and 'destinations' must be disjoint",
            ));
        }
        let topo = self.topologies.get(&topology).ok_or_else(|| {
            ApiError::not_found(format!(
                "unknown topology '{topology}' (register it via POST /v1/topologies)"
            ))
        })?;
        let access_nodes = topo.graph().node_count();
        for &n in sources.iter().chain(&destinations) {
            if n.index() >= access_nodes {
                return Err(ApiError::bad_request(format!(
                    "node {} is out of range (topology '{topology}' has {access_nodes} access nodes)",
                    n.index()
                )));
            }
        }
        let solver = sof_solvers::by_name(&solver_name).ok_or_else(|| {
            ApiError::bad_request(format!(
                "unknown solver '{solver_name}' (try one of {})",
                sof_solvers::all()
                    .iter()
                    .map(|s| s.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })?;

        let request = Request::new(
            sources.clone(),
            destinations.clone(),
            ServiceChain::with_len(chain_len),
        );
        let instance = match topo {
            Topo::Named(t) => {
                // The library builder draws its own placeholder endpoints;
                // the first `arrive` below replaces them with the request.
                let params = ScenarioParams {
                    vm_count,
                    sources: 1,
                    destinations: 1,
                    chain_len,
                    setup_scale: 1.0,
                    seed,
                };
                build_instance(t, &params)
            }
            Topo::Regions(rt) => {
                let scenario = RegionScenario {
                    vms_per_dc,
                    setup_scale: 1.0,
                    seed,
                };
                build_region_instance(rt, &scenario, sources, destinations, chain_len)
            }
        };
        let mut session = OnlineSession::new(
            instance,
            solver,
            SofdaConfig::default(),
            OnlineConfig::default(),
        );
        let report = session
            .arrive(request)
            .map_err(|e| ApiError::conflict(format!("initial embedding failed: {e}")))?;

        let id = self.next_id;
        self.next_id += 1;
        let now = Instant::now();
        let entry = SessionEntry {
            topology,
            session,
            last_cost: report.forest_cost,
            ttl,
            deadline: Mutex::new(None),
            repairs: Vec::new(),
        };
        entry.touch(now);
        self.sessions.insert(id, entry);
        self.sessions_created += 1;
        Ok(report_value(id, &report))
    }

    fn entry(&mut self, id: u64) -> Result<&mut SessionEntry, ApiError> {
        self.sessions
            .get_mut(&id)
            .ok_or_else(|| ApiError::not_found(format!("no session {id}")))
    }

    /// `POST /v1/sessions/{id}/join` — adds `{"destination": n}` to the
    /// served group via the §VII-C incremental join (full rebuild only on
    /// drift or failure, exactly the library's policy).
    ///
    /// # Errors
    ///
    /// 404 for an unknown session, 400 for a missing/duplicate
    /// destination, 409 when re-embedding fails.
    pub fn session_join(&mut self, id: u64, mut body: Body) -> Result<Value, ApiError> {
        let destination = NodeId::new(body.u64("destination")? as usize);
        body.finish()?;
        let entry = self.entry(id)?;
        let request = {
            let req = &entry.session.instance().request;
            if req.destinations.contains(&destination) {
                return Err(ApiError::bad_request(format!(
                    "destination {} is already served by session {id}",
                    destination.index()
                )));
            }
            let mut dests = req.destinations.clone();
            dests.push(destination);
            Request::new(req.sources.clone(), dests, req.chain.clone())
        };
        let report = entry
            .session
            .arrive(request)
            .map_err(|e| ApiError::conflict(format!("join failed: {e}")))?;
        entry.last_cost = report.forest_cost;
        entry.touch(Instant::now());
        Ok(report_value(id, &report))
    }

    /// `POST /v1/sessions/{id}/leave` — removes `{"destination": n}` via
    /// the incremental leave operation.
    ///
    /// # Errors
    ///
    /// 404 for an unknown session, 400 when the destination is not served.
    pub fn session_leave(&mut self, id: u64, mut body: Body) -> Result<Value, ApiError> {
        let destination = NodeId::new(body.u64("destination")? as usize);
        body.finish()?;
        let entry = self.entry(id)?;
        let cost = entry
            .session
            .depart(destination)
            .map_err(|e| ApiError::bad_request(format!("leave failed: {e}")))?;
        entry.last_cost = cost;
        entry.touch(Instant::now());
        let mut v = Value::table();
        v.set("id", Value::Int(id as i64));
        v.set("forest_cost", Value::Float(cost));
        v.set(
            "destinations",
            nodes_value(&entry.session.instance().request.destinations),
        );
        Ok(v)
    }

    /// `POST /v1/sessions/{id}/fail` — injects an element failure. The
    /// body names exactly one element — `{"vm": n}`, `{"link": [u, v]}`,
    /// `{"node": n}`, or `{"domain": "name"}` (regions topologies only) —
    /// plus an optional `"repair_secs"` scheduling an automatic repair the
    /// janitor applies once the interval passes.
    ///
    /// VM failures keep the legacy semantics (the disrupted forest
    /// rebuilds on the next join, `disrupted` is a boolean); link, node
    /// and domain failures leave the forest standing and report the
    /// disconnected destinations.
    ///
    /// # Errors
    ///
    /// 404 for an unknown session, 400 for a malformed element, a node
    /// that is not a VM, a non-existent link, or an unknown domain.
    pub fn session_fail(&mut self, id: u64, mut body: Body) -> Result<Value, ApiError> {
        let element = read_element(&mut body)?;
        let repair_secs = body.opt_u64("repair_secs")?;
        body.finish()?;
        // Resolve domain membership before mutably borrowing the session.
        let topology = self
            .sessions
            .get(&id)
            .ok_or_else(|| ApiError::not_found(format!("no session {id}")))?
            .topology
            .clone();
        let domain = match &element {
            ElementRef::Domain(name) => Some(domain_nodes(&self.topologies, &topology, name)?),
            _ => None,
        };
        let entry = self.sessions.get_mut(&id).expect("checked above");
        let mut v = Value::table();
        v.set("id", Value::Int(id as i64));
        v.set("element", Value::Str(element.to_string()));
        match &element {
            ElementRef::Vm(n) => {
                let disrupted = entry
                    .session
                    .fail_vm(NodeId::new(*n))
                    .map_err(|e| ApiError::bad_request(format!("fail failed: {e}")))?;
                v.set("disrupted", Value::Bool(disrupted));
            }
            ElementRef::Link(u, w) => {
                let dests = entry
                    .session
                    .fail_link(NodeId::new(*u), NodeId::new(*w))
                    .map_err(|e| ApiError::bad_request(format!("fail failed: {e}")))?;
                v.set("disrupted", Value::Int(dests.len() as i64));
                v.set("disconnected", nodes_value(&dests));
            }
            ElementRef::Node(n) => {
                let dests = entry
                    .session
                    .fail_node(NodeId::new(*n))
                    .map_err(|e| ApiError::bad_request(format!("fail failed: {e}")))?;
                v.set("disrupted", Value::Int(dests.len() as i64));
                v.set("disconnected", nodes_value(&dests));
            }
            ElementRef::Domain(_) => {
                // Endpoint nodes of the request are skipped (a member
                // leaving is a different event than a transit fault).
                let mut dests: std::collections::BTreeSet<NodeId> =
                    std::collections::BTreeSet::new();
                for n in domain.clone().expect("resolved above") {
                    if let Ok(d) = entry.session.fail_node(n) {
                        dests.extend(d);
                    }
                }
                let dests: Vec<NodeId> = dests.into_iter().collect();
                v.set("disrupted", Value::Int(dests.len() as i64));
                v.set("disconnected", nodes_value(&dests));
            }
        }
        if let Some(secs) = repair_secs.filter(|&s| s > 0) {
            entry
                .repairs
                .push((Instant::now() + Duration::from_secs(secs), element));
            v.set("repair_in_secs", Value::Int(secs as i64));
        }
        entry.touch(Instant::now());
        Ok(v)
    }

    /// `POST /v1/sessions/{id}/repair` — restores a previously failed
    /// element immediately. Same element vocabulary as `fail`; any repair
    /// the janitor had scheduled for the element is cancelled.
    ///
    /// # Errors
    ///
    /// 404 for an unknown session, 400 when the element is malformed or
    /// not currently failed.
    pub fn session_repair(&mut self, id: u64, mut body: Body) -> Result<Value, ApiError> {
        let element = read_element(&mut body)?;
        body.finish()?;
        let topology = self
            .sessions
            .get(&id)
            .ok_or_else(|| ApiError::not_found(format!("no session {id}")))?
            .topology
            .clone();
        let domain = match &element {
            ElementRef::Domain(name) => Some(domain_nodes(&self.topologies, &topology, name)?),
            _ => None,
        };
        let entry = self.sessions.get_mut(&id).expect("checked above");
        repair_in_session(&mut entry.session, &element, domain)
            .map_err(|e| ApiError::bad_request(format!("repair failed: {e}")))?;
        entry.repairs.retain(|(_, e)| e != &element);
        entry.touch(Instant::now());
        let mut v = Value::table();
        v.set("id", Value::Int(id as i64));
        v.set("repaired", Value::Str(element.to_string()));
        Ok(v)
    }

    /// `GET /v1/sessions/{id}` — the session's current state and lifetime
    /// counters. Reading a session renews its TTL.
    ///
    /// # Errors
    ///
    /// 404 for an unknown session.
    pub fn session_get(&self, id: u64) -> Result<Value, ApiError> {
        let entry = self
            .sessions
            .get(&id)
            .ok_or_else(|| ApiError::not_found(format!("no session {id}")))?;
        entry.touch(Instant::now());
        let stats = *entry.session.stats();
        let req = &entry.session.instance().request;
        let mut v = Value::table();
        v.set("id", Value::Int(id as i64));
        v.set("topology", Value::Str(entry.topology.clone()));
        v.set(
            "solver",
            Value::Str(entry.session.solver_name().to_string()),
        );
        v.set("sources", nodes_value(&req.sources));
        v.set("destinations", nodes_value(&req.destinations));
        v.set("chain_len", Value::Int(req.chain.len() as i64));
        v.set("forest_cost", Value::Float(entry.last_cost));
        v.set(
            "accumulated_cost",
            Value::Float(entry.session.accumulated_cost()),
        );
        v.set(
            "ttl_secs",
            match entry.ttl {
                Some(t) => Value::Int(t.as_secs() as i64),
                None => Value::Null,
            },
        );
        let mut c = Value::table();
        c.set("arrivals", Value::Int(stats.arrivals as i64));
        c.set("full_solves", Value::Int(stats.full_solves as i64));
        c.set("incremental", Value::Int(stats.incremental_events as i64));
        c.set("joins", Value::Int(stats.joins as i64));
        c.set("leaves", Value::Int(stats.leaves as i64));
        c.set("reroutes", Value::Int(stats.reroutes as i64));
        c.set("fallbacks", Value::Int(stats.fallbacks as i64));
        c.set("vm_failures", Value::Int(stats.vm_failures as i64));
        v.set("counters", c);
        v.set("pending_repairs", Value::Int(entry.repairs.len() as i64));
        v.set(
            "engine",
            engine_value(entry.session.instance().network.paths().stats()),
        );
        Ok(v)
    }

    fn retire(&mut self, entry: SessionEntry) {
        add_engine(
            &mut self.retired_engine,
            entry.session.instance().network.paths().stats(),
        );
    }

    /// `DELETE /v1/sessions/{id}` — tears the session down.
    ///
    /// # Errors
    ///
    /// 404 for an unknown session.
    pub fn session_delete(&mut self, id: u64) -> Result<Value, ApiError> {
        let entry = self
            .sessions
            .remove(&id)
            .ok_or_else(|| ApiError::not_found(format!("no session {id}")))?;
        self.retire(entry);
        self.sessions_deleted += 1;
        let mut v = Value::table();
        v.set("deleted", Value::Int(id as i64));
        Ok(v)
    }

    /// Reaps every session whose TTL deadline has passed; returns how many
    /// were expired. Also drains scheduled element repairs that have come
    /// due. Called by the janitor thread.
    pub fn expire(&mut self, now: Instant) -> usize {
        for entry in self.sessions.values_mut() {
            if entry.repairs.iter().all(|(t, _)| *t > now) {
                continue;
            }
            let due: Vec<ElementRef> = entry
                .repairs
                .iter()
                .filter(|(t, _)| *t <= now)
                .map(|(_, e)| e.clone())
                .collect();
            entry.repairs.retain(|(t, _)| *t > now);
            for element in due {
                let domain = match &element {
                    ElementRef::Domain(name) => {
                        domain_nodes(&self.topologies, &entry.topology, name).ok()
                    }
                    _ => None,
                };
                // A client may have repaired (or re-failed) the element in
                // the meantime; a stale scheduled repair is not an error.
                let _ = repair_in_session(&mut entry.session, &element, domain);
            }
        }
        let dead: Vec<u64> = self
            .sessions
            .iter()
            .filter(|(_, e)| e.expired(now))
            .map(|(&id, _)| id)
            .collect();
        for id in &dead {
            let entry = self.sessions.remove(id).expect("listed above");
            self.retire(entry);
            self.sessions_expired += 1;
        }
        dead.len()
    }

    /// `GET /healthz` — liveness plus the two numbers a probe wants.
    pub fn healthz(&self) -> Value {
        let mut v = Value::table();
        v.set("ok", Value::Bool(true));
        v.set(
            "uptime_secs",
            Value::Float(self.started.elapsed().as_secs_f64()),
        );
        v.set("sessions", Value::Int(self.sessions.len() as i64));
        v
    }

    /// `GET /v1/stats` — request/error totals, session lifecycle counts,
    /// aggregated PathEngine counters (live + retired sessions), and a
    /// per-session cost/counter table.
    pub fn stats_value(&self) -> Value {
        let mut v = Value::table();
        v.set(
            "uptime_secs",
            Value::Float(self.started.elapsed().as_secs_f64()),
        );
        let st = self.stats();
        v.set("requests", Value::Int(st.requests as i64));
        v.set("errors", Value::Int(st.errors as i64));
        let mut s = Value::table();
        s.set("live", Value::Int(self.sessions.len() as i64));
        s.set("created", Value::Int(st.sessions_created as i64));
        s.set("expired", Value::Int(st.sessions_expired as i64));
        s.set("deleted", Value::Int(st.sessions_deleted as i64));
        v.set("sessions", s);
        v.set("topologies", Value::Int(self.topologies.len() as i64));
        let mut engine = self.retired_engine;
        for entry in self.sessions.values() {
            add_engine(
                &mut engine,
                entry.session.instance().network.paths().stats(),
            );
        }
        v.set("engine", engine_value(engine));
        v.set(
            "per_session",
            Value::Array(
                self.sessions
                    .iter()
                    .map(|(&id, e)| {
                        let stats = e.session.stats();
                        let mut p = Value::table();
                        p.set("id", Value::Int(id as i64));
                        p.set("topology", Value::Str(e.topology.clone()));
                        p.set("solver", Value::Str(e.session.solver_name().to_string()));
                        p.set("forest_cost", Value::Float(e.last_cost));
                        p.set(
                            "accumulated_cost",
                            Value::Float(e.session.accumulated_cost()),
                        );
                        p.set("arrivals", Value::Int(stats.arrivals as i64));
                        p.set("full_solves", Value::Int(stats.full_solves as i64));
                        p.set("incremental", Value::Int(stats.incremental_events as i64));
                        p
                    })
                    .collect(),
            ),
        );
        v
    }
}

//! Online-deployment workload generation (Fig. 12's request streams).

use sof_core::{Request, ServiceChain};
use sof_graph::{NodeId, Rng64};

/// Generator parameters for one network (§VIII-A online setup).
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WorkloadParams {
    /// Inclusive range of candidate-source counts per request.
    pub sources: (usize, usize),
    /// Inclusive range of destination counts per request.
    pub destinations: (usize, usize),
    /// Demanded chain length (paper: 3).
    pub chain_len: usize,
    /// Per-request demand (Mbps; paper: 5).
    pub demand_mbps: f64,
}

impl WorkloadParams {
    /// The paper's SoftLayer online setup: |D| ∈ [13,17], |S| ∈ [8,12].
    pub fn softlayer() -> WorkloadParams {
        WorkloadParams {
            sources: (8, 12),
            destinations: (13, 17),
            chain_len: 3,
            demand_mbps: 5.0,
        }
    }

    /// The paper's Cogent online setup: |D| ∈ [20,60], |S| ∈ [10,30].
    pub fn cogent() -> WorkloadParams {
        WorkloadParams {
            sources: (10, 30),
            destinations: (20, 60),
            chain_len: 3,
            demand_mbps: 5.0,
        }
    }
}

/// Streams random multicast requests over a pool of access nodes.
#[derive(Clone, Debug)]
pub struct RequestStream {
    params: WorkloadParams,
    pool: Vec<NodeId>,
    rng: Rng64,
}

impl RequestStream {
    /// Creates a stream over the access nodes `0..access_nodes`.
    ///
    /// # Panics
    ///
    /// Panics when `access_nodes < 2` (a request needs at least one source
    /// and one disjoint destination).
    pub fn new(params: WorkloadParams, access_nodes: usize, seed: u64) -> RequestStream {
        RequestStream::over_pool(params, (0..access_nodes).map(NodeId::new).collect(), seed)
    }

    /// Creates a stream drawing from an explicit node pool instead of
    /// `0..n` — e.g. the access nodes of one region of a
    /// multi-region topology. Draw sequences over the identity pool are
    /// identical to [`RequestStream::new`].
    ///
    /// # Panics
    ///
    /// Panics when the pool holds fewer than 2 nodes.
    pub fn over_pool(params: WorkloadParams, pool: Vec<NodeId>, seed: u64) -> RequestStream {
        assert!(
            pool.len() >= 2,
            "request stream needs at least 2 pool nodes, got {}",
            pool.len()
        );
        RequestStream {
            params,
            pool,
            rng: Rng64::seed_from(seed),
        }
    }

    /// Draws the next request. Destinations are drawn first; the source
    /// count is capped by the remaining pool (on SoftLayer the paper's
    /// ranges |S| ≤ 12, |D| ≤ 17 can exceed the 27 access nodes, so the
    /// sets would otherwise overlap). Both counts are clamped to at least
    /// one, so a `(0, k)` range can never produce a viewerless group or
    /// a sourceless request.
    pub fn next_request(&mut self) -> Request {
        let n = self.pool.len();
        let d = self
            .rng
            .range(self.params.destinations.0, self.params.destinations.1 + 1)
            .clamp(1, n - 1);
        let s = self
            .rng
            .range(self.params.sources.0, self.params.sources.1 + 1)
            .clamp(1, n - d);
        let picks = self.rng.sample_indices(n, s + d);
        Request::new(
            picks[..s].iter().map(|&i| self.pool[i]).collect(),
            picks[s..].iter().map(|&i| self.pool[i]).collect(),
            ServiceChain::with_len(self.params.chain_len),
        )
    }

    /// The configured per-request demand.
    pub fn demand(&self) -> f64 {
        self.params.demand_mbps
    }
}

impl Iterator for RequestStream {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        Some(self.next_request())
    }
}

/// Parameters for a viewer-churn stream: one long-lived multicast group
/// whose destination set mutates between arrivals (sources and chain stay
/// fixed). This is the workload the incremental `OnlineSession` engine is
/// built for — each event is a handful of §VII-C joins/leaves instead of a
/// fresh request.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChurnParams {
    /// Draws the initial request (and fixes demand/chain length).
    pub base: WorkloadParams,
    /// Inclusive range of destinations leaving per event.
    pub leaves: (usize, usize),
    /// Inclusive range of destinations joining per event.
    pub joins: (usize, usize),
}

impl ChurnParams {
    /// SoftLayer churn: the paper's group sizes with 1–3 viewers coming
    /// and going per arrival.
    pub fn softlayer() -> ChurnParams {
        ChurnParams {
            base: WorkloadParams::softlayer(),
            leaves: (1, 3),
            joins: (1, 3),
        }
    }

    /// Cogent churn: larger groups, 2–5 viewers of churn per arrival.
    pub fn cogent() -> ChurnParams {
        ChurnParams {
            base: WorkloadParams::cogent(),
            leaves: (2, 5),
            joins: (2, 5),
        }
    }
}

/// Streams successive snapshots of one multicast group under viewer churn.
///
/// Every [`ChurnStream::next_request`] returns the **full** request (same
/// sources, same chain, mutated destinations), so consumers diff
/// consecutive snapshots — exactly the contract of `OnlineSession::arrive`.
#[derive(Clone, Debug)]
pub struct ChurnStream {
    params: ChurnParams,
    current: Request,
    pool: Vec<NodeId>,
    rng: Rng64,
}

impl ChurnStream {
    /// Creates a stream over `access_nodes` access nodes; the initial
    /// group is drawn exactly like [`RequestStream`] would.
    pub fn new(params: ChurnParams, access_nodes: usize, seed: u64) -> ChurnStream {
        ChurnStream::over_pool(params, (0..access_nodes).map(NodeId::new).collect(), seed)
    }

    /// Creates a stream whose viewers come and go within an explicit node
    /// pool (e.g. one region plus a few roamed-in foreign nodes). Draw
    /// sequences over the identity pool are identical to
    /// [`ChurnStream::new`].
    pub fn over_pool(params: ChurnParams, pool: Vec<NodeId>, seed: u64) -> ChurnStream {
        let mut base = RequestStream::over_pool(params.base, pool, seed);
        let current = base.next_request();
        ChurnStream {
            params,
            current,
            pool: base.pool,
            rng: base.rng,
        }
    }

    /// The group snapshot most recently handed out.
    pub fn current(&self) -> &Request {
        &self.current
    }

    /// The configured per-request demand.
    pub fn demand(&self) -> f64 {
        self.params.base.demand_mbps
    }

    /// Applies one churn event and returns the new snapshot.
    ///
    /// Pinned semantics, in order:
    ///
    /// 1. **Departures first.** Leavers are removed before joiners are
    ///    drawn, and the leave count is capped at `len − 1` — the group
    ///    never empties, so every snapshot stays a valid request.
    /// 2. **Leavers can rejoin.** The free pool is computed *after* the
    ///    leaves, so a node that departed this event is immediately
    ///    eligible to join again (a viewer flapping between snapshots).
    /// 3. **Exhausted pool shrinks the join, never the stream.** When
    ///    fewer free nodes remain than the drawn join count, the join is
    ///    capped at the free count (down to zero) — the stream keeps
    ///    producing snapshots instead of panicking or ending.
    pub fn next_request(&mut self) -> Request {
        let mut dests = self.current.destinations.clone();
        let leave = self
            .rng
            .range(self.params.leaves.0, self.params.leaves.1 + 1)
            .min(dests.len().saturating_sub(1));
        for _ in 0..leave {
            let i = self.rng.range(0, dests.len());
            dests.swap_remove(i);
        }
        let free: Vec<NodeId> = self
            .pool
            .iter()
            .copied()
            .filter(|n| !dests.contains(n) && !self.current.sources.contains(n))
            .collect();
        let join = self
            .rng
            .range(self.params.joins.0, self.params.joins.1 + 1)
            .min(free.len());
        let picked = self.rng.sample_indices(free.len(), join);
        dests.extend(picked.into_iter().map(|i| free[i]));
        self.current = Request::new(
            self.current.sources.clone(),
            dests,
            self.current.chain.clone(),
        );
        self.current.clone()
    }
}

impl Iterator for ChurnStream {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        Some(self.next_request())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_within_ranges() {
        let mut stream = RequestStream::new(WorkloadParams::softlayer(), 27, 1);
        for _ in 0..50 {
            let r = stream.next_request();
            assert!(r.sources.len() <= 12 && r.sources.len() >= 8.min(27 - r.destinations.len()));
            assert!((13..=17).contains(&r.destinations.len()));
            assert_eq!(r.chain.len(), 3);
            // Sources and destinations must be disjoint.
            for s in &r.sources {
                assert!(!r.destinations.contains(s));
            }
        }
    }

    #[test]
    fn churn_keeps_sources_and_mutates_destinations() {
        let mut stream = ChurnStream::new(ChurnParams::softlayer(), 27, 3);
        let initial = stream.current().clone();
        let mut changed = false;
        let mut prev = initial.clone();
        for _ in 0..30 {
            let r = stream.next_request();
            assert_eq!(r.sources, initial.sources, "sources must stay fixed");
            assert_eq!(r.chain.len(), initial.chain.len());
            assert!(!r.destinations.is_empty());
            for d in &r.destinations {
                assert!(!r.sources.contains(d), "viewer on a source node");
            }
            let mut sorted = r.destinations.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), r.destinations.len(), "duplicate viewers");
            changed |= r.destinations != prev.destinations;
            prev = r;
        }
        assert!(changed, "thirty events never churned the group");
    }

    #[test]
    fn churn_is_deterministic_per_seed() {
        let a: Vec<Request> = ChurnStream::new(ChurnParams::cogent(), 190, 8)
            .take(6)
            .collect();
        let b: Vec<Request> = ChurnStream::new(ChurnParams::cogent(), 190, 8)
            .take(6)
            .collect();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.destinations, y.destinations);
        }
    }

    #[test]
    fn zero_ranges_never_produce_empty_sides() {
        // A (0, k) destination or source range used to produce viewerless
        // groups (rejected downstream by `SofInstance::new`) or trip the
        // "no room left for sources" assert; both counts now clamp to 1.
        let params = WorkloadParams {
            sources: (0, 2),
            destinations: (0, 3),
            chain_len: 1,
            demand_mbps: 1.0,
        };
        let mut stream = RequestStream::new(params, 6, 5);
        for _ in 0..200 {
            let r = stream.next_request();
            assert!(!r.sources.is_empty(), "sourceless request");
            assert!(!r.destinations.is_empty(), "viewerless request");
        }
        // Same guarantee at the tightest legal pool (1 source + 1 viewer).
        let mut tight = RequestStream::new(params, 2, 5);
        for _ in 0..50 {
            let r = tight.next_request();
            assert_eq!(r.sources.len(), 1);
            assert_eq!(r.destinations.len(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 pool nodes")]
    fn one_node_pool_is_rejected() {
        RequestStream::new(WorkloadParams::softlayer(), 1, 0);
    }

    #[test]
    fn churn_departs_before_arrivals_and_leavers_can_rejoin() {
        // 4-node pool: 1 source + all 3 remaining nodes are viewers, so
        // the free pool *before* departures is always empty. With 2
        // leaves + 2 joins per event the group only holds its size
        // because joiners are drawn after the leaves (the two leavers
        // immediately rejoin). If joins were drawn first the group would
        // shrink to 1 viewer and stay there.
        let params = ChurnParams {
            base: WorkloadParams {
                sources: (1, 1),
                destinations: (3, 3),
                chain_len: 1,
                demand_mbps: 1.0,
            },
            leaves: (2, 2),
            joins: (2, 2),
        };
        let mut stream = ChurnStream::new(params, 4, 11);
        let full: std::collections::BTreeSet<NodeId> =
            stream.current().destinations.iter().copied().collect();
        assert_eq!(full.len(), 3);
        for _ in 0..60 {
            let r = stream.next_request();
            let now: std::collections::BTreeSet<NodeId> = r.destinations.iter().copied().collect();
            assert_eq!(now, full, "leavers must be eligible to rejoin");
        }
    }

    #[test]
    fn churn_survives_exhausted_pool() {
        // Every non-source node is already a viewer, so the free pool is
        // empty whenever nobody leaves: the drawn join count caps at 0 and
        // the stream keeps producing full-size snapshots indefinitely.
        let params = ChurnParams {
            base: WorkloadParams {
                sources: (1, 1),
                destinations: (5, 5),
                chain_len: 1,
                demand_mbps: 1.0,
            },
            leaves: (0, 1),
            joins: (3, 3),
        };
        let mut stream = ChurnStream::new(params, 6, 2);
        assert_eq!(stream.current().destinations.len(), 5);
        for _ in 0..100 {
            let r = stream.next_request();
            // ≤ 1 leave and joins refill from whatever just freed up.
            assert!((4..=5).contains(&r.destinations.len()));
            for d in &r.destinations {
                assert!(!r.sources.contains(d));
            }
        }
    }

    #[test]
    fn pool_streams_match_identity_pool() {
        // `over_pool` with the identity pool must replay `new` exactly —
        // the existing figure presets depend on unchanged draw sequences.
        let identity: Vec<NodeId> = (0..27).map(NodeId::new).collect();
        let a: Vec<Request> = RequestStream::new(WorkloadParams::softlayer(), 27, 9)
            .take(5)
            .collect();
        let b: Vec<Request> =
            RequestStream::over_pool(WorkloadParams::softlayer(), identity.clone(), 9)
                .take(5)
                .collect();
        assert_eq!(a, b);
        let c: Vec<Request> = ChurnStream::new(ChurnParams::softlayer(), 27, 3)
            .take(5)
            .collect();
        let d: Vec<Request> = ChurnStream::over_pool(ChurnParams::softlayer(), identity, 3)
            .take(5)
            .collect();
        assert_eq!(c, d);
    }

    #[test]
    fn pool_streams_only_use_pool_nodes() {
        let pool: Vec<NodeId> = [40usize, 41, 42, 43, 77, 78, 79].map(NodeId::new).to_vec();
        let params = ChurnParams {
            base: WorkloadParams {
                sources: (1, 2),
                destinations: (2, 3),
                chain_len: 2,
                demand_mbps: 1.0,
            },
            leaves: (1, 2),
            joins: (1, 2),
        };
        let mut stream = ChurnStream::over_pool(params, pool.clone(), 4);
        for _ in 0..40 {
            let r = stream.next_request();
            for n in r.sources.iter().chain(r.destinations.iter()) {
                assert!(pool.contains(n), "{n:?} escaped the pool");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<Request> = RequestStream::new(WorkloadParams::softlayer(), 27, 9)
            .take(5)
            .collect();
        let b: Vec<Request> = RequestStream::new(WorkloadParams::softlayer(), 27, 9)
            .take(5)
            .collect();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.sources, y.sources);
            assert_eq!(x.destinations, y.destinations);
        }
    }
}

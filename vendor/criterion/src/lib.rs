//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the API surface `crates/bench/benches/algorithms.rs` uses —
//! `Criterion` with builder knobs, `bench_function`, `benchmark_group`,
//! and the `criterion_group!` / `criterion_main!` macros — backed by a
//! simple mean-over-samples timer printing one line per benchmark. No
//! statistics, outlier analysis, or HTML reports. Swap the path
//! dependency for the real crates.io package for those.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver; collects timing knobs and runs benchmark closures.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Target measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            config: self.clone(),
            name: name.to_string(),
        };
        f(&mut b);
        self
    }

    /// Opens a named group; benchmarks inside report as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` times the hot loop.
pub struct Bencher {
    config: Criterion,
    name: String,
}

impl Bencher {
    /// Times `f`, printing mean wall-clock time per iteration.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up, and discover a per-sample iteration count that keeps the
        // whole benchmark inside the measurement budget.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up_time {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let budget = self.config.measurement_time.as_secs_f64();
        let total_iters = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
        let iters_per_sample = (total_iters / self.config.sample_size as u64).max(1);

        let mut samples = Vec::with_capacity(self.config.sample_size);
        for _ in 0..self.config.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            samples.push(t.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let median = samples[samples.len() / 2];
        println!(
            "bench: {:<40} mean {:>12}  median {:>12}  ({} samples x {} iters)",
            self.name,
            format_time(mean),
            format_time(median),
            samples.len(),
            iters_per_sample
        );
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

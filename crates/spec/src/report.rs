//! The structured result of running a [`crate::ScenarioSpec`]: a
//! [`RunReport`] of per-point rows plus solver metadata, emitted either as
//! deterministic JSON lines ([`write_jsonl`]) or as the legacy markdown
//! the original fig/table binaries printed ([`render_markdown`]).
//!
//! Determinism contract: with `timings = false` (the default), the JSON
//! lines are identical for a fixed spec + seed across runs, machines and
//! thread counts — wall-clock measurements are tagged
//! [`Cell::timing`]/[`ExtraRow::timing`] and only emitted when explicitly
//! requested.

use crate::value::{json_f64, quote_string};

/// Run-level metadata (the JSONL header line).
#[derive(Clone, Debug, PartialEq)]
pub struct ReportMeta {
    /// The spec's name.
    pub spec: String,
    /// The markdown H1 text (no `# ` prefix).
    pub heading: String,
    /// Base RNG seed in effect.
    pub seed: u64,
    /// Averaging width in effect.
    pub seeds: u64,
    /// Solver display names involved, in run order.
    pub solvers: Vec<String>,
}

/// One table/figure cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Cell {
    /// The measured value (`None` renders as `-` / JSON `null`).
    pub value: Option<f64>,
    /// Decimal places in markdown.
    pub prec: usize,
    /// Unit suffix in markdown (e.g. `" s"`).
    pub suffix: &'static str,
    /// Wall-clock measurement: excluded from JSONL unless requested.
    pub timing: bool,
}

impl Cell {
    /// A deterministic numeric cell.
    pub fn num(value: Option<f64>, prec: usize) -> Cell {
        Cell {
            value,
            prec,
            suffix: "",
            timing: false,
        }
    }

    /// A wall-clock cell (markdown only, unless timings are requested).
    pub fn timing(value: f64, prec: usize) -> Cell {
        Cell {
            value: Some(value),
            prec,
            suffix: "",
            timing: true,
        }
    }

    fn markdown(&self) -> String {
        match self.value {
            None => "-".into(),
            Some(v) => format!("{v:.prec$}{}", self.suffix, prec = self.prec),
        }
    }
}

/// One table row.
#[derive(Clone, Debug, PartialEq)]
pub struct TableRow {
    /// First-column label, preformatted (`"2"`, `"1x"`, `"0.05"`, a solver
    /// name, …).
    pub label: String,
    /// Numeric form of the row position, when one exists (JSONL `x`).
    pub x: Option<f64>,
    /// One cell per column.
    pub cells: Vec<Cell>,
}

/// A rendered table: header plus rows.
#[derive(Clone, Debug, PartialEq)]
pub struct Table {
    /// First header cell (the axis label).
    pub col0: String,
    /// Remaining header cells.
    pub columns: Vec<String>,
    /// Rows, in output order.
    pub rows: Vec<TableRow>,
}

/// A structured record that has no cell in the markdown table but belongs
/// in the JSONL stream (e.g. Table I's deterministic costs next to its
/// wall-clock seconds).
#[derive(Clone, Debug, PartialEq)]
pub struct ExtraRow {
    /// Row position label.
    pub x: String,
    /// Column/series label.
    pub col: String,
    /// Metric name (e.g. `"cost"`).
    pub metric: String,
    /// The value.
    pub value: Option<f64>,
    /// Wall-clock measurement: excluded from JSONL unless requested.
    pub timing: bool,
}

/// Per-session statistics of one online run (Fig. 12's epilogue).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OnlineSolverStats {
    /// Session label (solver name, possibly `"SOFDA (scratch)"`).
    pub label: String,
    /// Milliseconds spent in full solves.
    pub solve_ms: f64,
    /// Arrivals served by a full solve.
    pub solve_n: usize,
    /// Milliseconds spent in incremental events.
    pub inc_ms: f64,
    /// Arrivals served incrementally.
    pub inc_n: usize,
    /// Lifetime counter: full solver runs.
    pub full_solves: usize,
    /// Lifetime counter: purely incremental arrivals.
    pub incremental_events: usize,
    /// Lifetime counter: destinations joined incrementally.
    pub joins: usize,
    /// Lifetime counter: destinations removed incrementally.
    pub leaves: usize,
    /// Lifetime counter: incremental attempts abandoned for a rebuild.
    pub fallbacks: usize,
    /// `PathEngine` counter: trees served straight from the cache.
    pub engine_hits: u64,
    /// `PathEngine` counter: trees built by a full Dijkstra.
    pub engine_misses: u64,
    /// `PathEngine` counter: misses whose source was cached under an older
    /// cost epoch.
    pub engine_stale: u64,
    /// `PathEngine` counter: stale trees revalidated in place without a
    /// Dijkstra (edge-scoped invalidation).
    pub engine_repairs: u64,
    /// `PathEngine` counter: stale misses answered by the dynamic-SSSP
    /// repair pass (affected region only) instead of a cold Dijkstra.
    pub engine_partial_repairs: u64,
}

impl OnlineSolverStats {
    /// Total embedding milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.solve_ms + self.inc_ms
    }
}

/// Epilogue data of a single-session online group.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OnlineDetail {
    /// Whether a from-scratch baseline ran first.
    pub scratch: bool,
    /// Arrivals that failed (any session).
    pub failures: usize,
    /// Injected VM failures across all sessions.
    pub vm_failures: usize,
    /// Per-session statistics, in session order.
    pub sessions: Vec<OnlineSolverStats>,
    /// Failure warnings collected during the run (stderr material).
    pub warnings: Vec<String>,
}

/// Epilogue data of a session-pool online group.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PoolDetail {
    /// Concurrent sessions in the pool.
    pub groups: usize,
    /// Arrivals each session processed.
    pub requests: usize,
    /// Wall-clock seconds for the whole group.
    pub secs: f64,
    /// Total full solves across sessions.
    pub solves: usize,
    /// Total incremental events across sessions.
    pub incremental: usize,
    /// Total failed arrivals across sessions.
    pub failures: usize,
    /// Injected VM failures across all sessions.
    pub vm_failures: usize,
}

/// Kind-specific epilogue attached to a section.
#[derive(Clone, Debug, PartialEq)]
pub enum Detail {
    /// Nothing beyond the table.
    None,
    /// Single-session online epilogue (timing summary, speedup lines).
    Online(OnlineDetail),
    /// Session-pool online epilogue (throughput summary).
    Pool(PoolDetail),
}

/// One report section: an optional H2 heading, an optional table, and an
/// optional kind-specific epilogue.
#[derive(Clone, Debug, PartialEq)]
pub struct Section {
    /// Stable identifier for JSONL rows (thread-count independent).
    pub id: String,
    /// Markdown H2 text (no `## ` prefix); `None` puts the table directly
    /// under the H1.
    pub heading: Option<String>,
    /// The data table, if the section has one.
    pub table: Option<Table>,
    /// JSONL-only records.
    pub extra_rows: Vec<ExtraRow>,
    /// Epilogue.
    pub detail: Detail,
}

/// The structured result of one spec run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Run-level metadata.
    pub meta: ReportMeta,
    /// Sections, in output order.
    pub sections: Vec<Section>,
}

impl RunReport {
    /// All failure warnings collected across sections (print these to
    /// stderr — the legacy binaries did).
    pub fn warnings(&self) -> Vec<&str> {
        self.sections
            .iter()
            .filter_map(|s| match &s.detail {
                Detail::Online(d) => Some(d.warnings.iter().map(String::as_str)),
                _ => None,
            })
            .flatten()
            .collect()
    }
}

/// Renders the report exactly as the legacy fig/table binaries printed it
/// (markdown headings + tables + the online epilogues), so the preset
/// shims preserve their historical output byte for byte.
pub fn render_markdown(report: &RunReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {}\n", report.meta.heading));
    for section in &report.sections {
        match &section.heading {
            Some(h) => {
                out.push_str(&format!("\n## {h}\n"));
                if section.table.is_some() {
                    out.push('\n');
                }
            }
            None => out.push('\n'),
        }
        if let Some(table) = &section.table {
            let mut hdr = vec![table.col0.clone()];
            hdr.extend(table.columns.iter().cloned());
            out.push_str(&format!("| {} |\n", hdr.join(" | ")));
            out.push_str(&format!(
                "|{}|\n",
                hdr.iter().map(|_| "---").collect::<Vec<_>>().join("|")
            ));
            for row in &table.rows {
                let mut cells = vec![row.label.clone()];
                cells.extend(row.cells.iter().map(Cell::markdown));
                out.push_str(&format!("| {} |\n", cells.join(" | ")));
            }
        }
        match &section.detail {
            Detail::None => {}
            Detail::Online(d) => render_online_detail(d, &mut out),
            Detail::Pool(d) => {
                out.push_str(&format!(
                    "\n{} sessions × {} arrivals in {:.2} s ({} full solves, {} incremental \
                     events, {} failures)\n",
                    d.groups, d.requests, d.secs, d.solves, d.incremental, d.failures
                ));
                if d.vm_failures > 0 {
                    out.push_str(&format!("{} VM failure(s) injected.\n", d.vm_failures));
                }
            }
        }
    }
    out
}

fn render_online_detail(d: &OnlineDetail, out: &mut String) {
    if d.sessions.is_empty() {
        return;
    }
    out.push_str("\nEmbedding time per session:\n");
    for s in &d.sessions {
        out.push_str(&format!(
            "- {}: {:.2} s ({} full solves, {} incremental events, {} joins, {} leaves, \
             {} fallbacks)\n",
            s.label,
            s.total_ms() / 1e3,
            s.full_solves,
            s.incremental_events,
            s.joins,
            s.leaves,
            s.fallbacks
        ));
    }
    // The incremental session right after the optional scratch baseline.
    if let Some(inc) = d.sessions.get(usize::from(d.scratch)) {
        if inc.solve_n > 0 && inc.inc_n > 0 {
            let per_solve = inc.solve_ms / inc.solve_n as f64;
            let per_inc = inc.inc_ms / inc.inc_n as f64;
            out.push_str(&format!(
                "\nPer-event embedding ({}): full solve ≈ {per_solve:.0} ms vs incremental \
                 ≈ {per_inc:.2} ms ({:.0}× per event)\n",
                inc.label,
                per_solve / per_inc.max(1e-9)
            ));
        }
    }
    if d.scratch {
        if d.failures == 0 && d.sessions.len() >= 2 {
            let speedup = d.sessions[0].total_ms() / d.sessions[1].total_ms().max(1e-9);
            out.push_str(&format!(
                "End-to-end incremental speedup (SOFDA, embedding time): {speedup:.1}×\n"
            ));
        } else {
            out.push_str(&format!(
                "End-to-end speedup not reported: {} arrival(s) failed (see warnings)\n",
                d.failures
            ));
        }
    }
    if d.vm_failures > 0 {
        out.push_str(&format!("\n{} VM failure(s) injected.\n", d.vm_failures));
    }
}

/// Emits the report as JSON lines: one `meta` line, then one `row` line
/// per table cell (and per [`ExtraRow`]), then one `stat` line per online
/// counter. With `timings = false` every wall-clock value is omitted and
/// the stream is deterministic for a fixed spec + seed, independent of
/// thread count.
pub fn write_jsonl(report: &RunReport, timings: bool) -> String {
    let mut out = String::new();
    let m = &report.meta;
    out.push_str(&format!(
        "{{\"type\":\"meta\",\"spec\":{},\"seed\":{},\"seeds\":{},\"solvers\":[{}]}}\n",
        quote_string(&m.spec),
        m.seed,
        m.seeds,
        m.solvers
            .iter()
            .map(|s| quote_string(s))
            .collect::<Vec<_>>()
            .join(",")
    ));
    for section in &report.sections {
        let sid = quote_string(&section.id);
        if let Some(table) = &section.table {
            for row in &table.rows {
                for (col, cell) in table.columns.iter().zip(&row.cells) {
                    if cell.timing && !timings {
                        continue;
                    }
                    let x = match row.x {
                        Some(x) => json_f64(x),
                        None => quote_string(&row.label),
                    };
                    out.push_str(&format!(
                        "{{\"type\":\"row\",\"section\":{sid},\"x\":{x},\"col\":{},\
                         \"value\":{}}}\n",
                        quote_string(col),
                        json_opt(cell.value)
                    ));
                }
            }
        }
        for extra in &section.extra_rows {
            if extra.timing && !timings {
                continue;
            }
            out.push_str(&format!(
                "{{\"type\":\"row\",\"section\":{sid},\"x\":{},\"col\":{},\"metric\":{},\
                 \"value\":{}}}\n",
                quote_string(&extra.x),
                quote_string(&extra.col),
                quote_string(&extra.metric),
                json_opt(extra.value)
            ));
        }
        match &section.detail {
            Detail::None => {}
            Detail::Online(d) => {
                for s in &d.sessions {
                    // Engine counters ride behind the timing gate: they are
                    // cache-effectiveness measurements (warmth-dependent, and
                    // sensitive to thread interleaving), not part of the
                    // deterministic golden stream.
                    let counters: [(&str, f64, bool); 14] = [
                        ("full_solves", s.full_solves as f64, false),
                        ("incremental_events", s.incremental_events as f64, false),
                        ("joins", s.joins as f64, false),
                        ("leaves", s.leaves as f64, false),
                        ("fallbacks", s.fallbacks as f64, false),
                        ("solve_ms", s.solve_ms, true),
                        ("inc_ms", s.inc_ms, true),
                        ("solve_n", s.solve_n as f64, false),
                        ("inc_n", s.inc_n as f64, false),
                        ("engine_hits", s.engine_hits as f64, true),
                        ("engine_misses", s.engine_misses as f64, true),
                        ("engine_stale", s.engine_stale as f64, true),
                        ("engine_repairs", s.engine_repairs as f64, true),
                        (
                            "engine_partial_repairs",
                            s.engine_partial_repairs as f64,
                            true,
                        ),
                    ];
                    for (name, value, timing) in counters {
                        if timing && !timings {
                            continue;
                        }
                        out.push_str(&format!(
                            "{{\"type\":\"stat\",\"section\":{sid},\"solver\":{},\"name\":{},\
                             \"value\":{}}}\n",
                            quote_string(&s.label),
                            quote_string(name),
                            json_f64(value)
                        ));
                    }
                }
                for (name, value) in [
                    ("failures", d.failures as f64),
                    ("vm_failures", d.vm_failures as f64),
                ] {
                    out.push_str(&format!(
                        "{{\"type\":\"stat\",\"section\":{sid},\"name\":{},\"value\":{}}}\n",
                        quote_string(name),
                        json_f64(value)
                    ));
                }
            }
            Detail::Pool(d) => {
                let counters: [(&str, f64, bool); 6] = [
                    ("sessions", d.groups as f64, false),
                    ("full_solves", d.solves as f64, false),
                    ("incremental_events", d.incremental as f64, false),
                    ("failures", d.failures as f64, false),
                    ("vm_failures", d.vm_failures as f64, false),
                    ("secs", d.secs, true),
                ];
                for (name, value, timing) in counters {
                    if timing && !timings {
                        continue;
                    }
                    out.push_str(&format!(
                        "{{\"type\":\"stat\",\"section\":{sid},\"name\":{},\"value\":{}}}\n",
                        quote_string(name),
                        json_f64(value)
                    ));
                }
            }
        }
    }
    out
}

fn json_opt(v: Option<f64>) -> String {
    match v {
        Some(v) if v.is_finite() => json_f64(v),
        _ => "null".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> RunReport {
        RunReport {
            meta: ReportMeta {
                spec: "t".into(),
                heading: "Fig. T — tiny (seeds = 1)".into(),
                seed: 1,
                seeds: 1,
                solvers: vec!["SOFDA".into()],
            },
            sections: vec![Section {
                id: "cost vs #destinations".into(),
                heading: Some("Fig. T — cost vs #destinations (SoftLayer)".into()),
                table: Some(Table {
                    col0: "#destinations".into(),
                    columns: vec!["SOFDA".into(), "CPLEX*".into()],
                    rows: vec![TableRow {
                        label: "2".into(),
                        x: Some(2.0),
                        cells: vec![Cell::num(Some(12.345), 1), Cell::num(None, 1)],
                    }],
                }),
                extra_rows: vec![ExtraRow {
                    x: "2".into(),
                    col: "SOFDA".into(),
                    metric: "millis".into(),
                    value: Some(3.25),
                    timing: true,
                }],
                detail: Detail::None,
            }],
        }
    }

    #[test]
    fn markdown_matches_the_legacy_shape() {
        let md = render_markdown(&tiny_report());
        assert_eq!(
            md,
            "# Fig. T — tiny (seeds = 1)\n\
             \n## Fig. T — cost vs #destinations (SoftLayer)\n\
             \n| #destinations | SOFDA | CPLEX* |\n\
             |---|---|---|\n\
             | 2 | 12.3 | - |\n"
        );
    }

    #[test]
    fn jsonl_is_valid_json_and_hides_timings_by_default() {
        let report = tiny_report();
        let jsonl = write_jsonl(&report, false);
        for line in jsonl.lines() {
            crate::value::parse_json(line).expect("every line parses as JSON");
        }
        assert!(jsonl.contains("\"value\":null"), "{jsonl}");
        assert!(!jsonl.contains("millis"), "timings hidden: {jsonl}");
        let with = write_jsonl(&report, true);
        assert!(with.contains("\"metric\":\"millis\""), "{with}");
        // Two runs of the same report serialize identically.
        assert_eq!(jsonl, write_jsonl(&report, false));
    }
}

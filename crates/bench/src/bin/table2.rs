//! Table II: testbed QoE — startup latency and rebuffering per algorithm.
use sof_bench::{print_header, print_row, Args};
use sof_core::{ServiceChain, SofdaConfig};
use sof_graph::{Cost, NodeId, Rng64};
use sof_sim::{simulate_sessions, EnvironmentProfile, PlayerConfig, Session};
use sof_topo::testbed;
use std::collections::HashMap;

fn main() {
    let args = Args::parse(
        "table2 — testbed QoE (startup latency / rebuffering) per algorithm",
        &[
            ("seeds", "averaging width (default 10)"),
            ("seed", "base RNG seed (default 7000)"),
        ],
    );
    let seeds: u64 = args.seeds(10);
    let base: u64 = args.get("seed", 7000);
    println!("# Table II — testbed QoE (2 sources, 4 destinations, transcoder→watermark)\n");
    print_header(&[
        "Algorithm",
        "Startup (ours)",
        "Startup (emulab)",
        "Rebuffer (ours)",
        "Rebuffer (emulab)",
    ]);
    let algos = ["SOFDA", "eNEMP", "eST"].map(|n| sof_solvers::by_name(n).expect("registered"));
    let player = PlayerConfig::default();
    for algo in &algos {
        let mut sums = [0.0f64; 4];
        let mut n = 0.0;
        for i in 0..seeds {
            let seed = base + i;
            let mut rng = Rng64::seed_from(seed);
            let topo = testbed();
            // Build the instance: every node may host one VNF (paper §VIII-D),
            // costs uniform; two random sources, four random destinations.
            let mut net = sof_core::Network::all_switches(topo.graph.clone());
            for v in 0..14 {
                let vm = net.add_node(sof_core::NodeKind::Vm, Cost::new(1.0));
                net.graph_mut().add_edge(vm, NodeId::new(v), Cost::ZERO);
            }
            let picks = rng.sample_indices(14, 6);
            let inst = sof_core::SofInstance::new(
                net,
                sof_core::Request::new(
                    vec![NodeId::new(picks[0]), NodeId::new(picks[1])],
                    picks[2..6].iter().map(|&i| NodeId::new(i)).collect(),
                    ServiceChain::from_names(["transcoder", "watermark"]),
                ),
            )
            .expect("valid instance");
            let Some(r) = sof_bench::run(
                algo.as_ref(),
                &inst,
                &SofdaConfig::default().with_seed(seed),
            ) else {
                continue;
            };
            let forest = r.outcome.expect("present").forest;
            // Available bandwidth 4.5–9 Mbps per link (congestion emulation);
            // VM stub links are uncongested.
            let mut caps: HashMap<sof_graph::EdgeId, f64> = HashMap::new();
            for (e, edge) in inst.network.graph().edges() {
                let stub = edge.u.index() >= 14 || edge.v.index() >= 14;
                caps.insert(
                    e,
                    if stub {
                        1000.0
                    } else {
                        rng.range_f64(4.5, 9.0)
                    },
                );
            }
            // Multicast: one download session per service tree (walks from
            // the same source share link bandwidth as a single stream copy).
            let mut by_tree: std::collections::BTreeMap<
                sof_graph::NodeId,
                std::collections::BTreeSet<sof_graph::EdgeId>,
            > = Default::default();
            for w in &forest.walks {
                let entry = by_tree.entry(w.source).or_default();
                for p in w.nodes.windows(2) {
                    if let Some(e) = inst.network.graph().edge_between(p[0], p[1]) {
                        entry.insert(e);
                    }
                }
            }
            let sessions: Vec<Session> = by_tree
                .values()
                .map(|links| Session {
                    links: links.iter().copied().collect(),
                })
                .collect();
            for (ei, env) in [
                EnvironmentProfile::hardware_testbed(),
                EnvironmentProfile::emulab(),
            ]
            .iter()
            .enumerate()
            {
                let qoe = simulate_sessions(&sessions, &caps, &player, env, 1.25);
                let fin: Vec<_> = qoe
                    .iter()
                    .filter(|q| q.startup_latency_s.is_finite())
                    .collect();
                if fin.is_empty() {
                    continue;
                }
                let su: f64 =
                    fin.iter().map(|q| q.startup_latency_s).sum::<f64>() / fin.len() as f64;
                let rb: f64 = fin.iter().map(|q| q.rebuffering_s).sum::<f64>() / fin.len() as f64;
                sums[ei] += su;
                sums[2 + ei] += rb;
            }
            n += 1.0;
        }
        print_row(&[
            algo.name().to_string(),
            format!("{:.1} s", sums[0] / n),
            format!("{:.1} s", sums[1] / n),
            format!("{:.1} s", sums[2] / n),
            format!("{:.1} s", sums[3] / n),
        ]);
    }
}

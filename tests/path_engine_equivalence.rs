//! PathEngine equivalence suite: the memoized shortest-path engine, the
//! shared exact-stroll workspace, the relaxation memo and the persistent
//! `sof_par` pool are pure performance layers — solver outputs must stay
//! **bit-identical** to the pre-engine path. The committed golden RunReport
//! JSONL files were generated before any of these layers existed, so
//! regenerating the miniature presets and comparing byte-for-byte — under
//! multiple thread counts — pins exactly that.

use sof::core::{
    solve_sofda, Network, OnlineConfig, OnlineSession, Request, ServiceChain, SofInstance, Sofda,
    SofdaConfig,
};
use sof::graph::{generators, Cost, CostRange, NodeId, Rng64, ShortestPaths};
use sof::spec::shim::{apply_overrides, Overrides};
use sof::spec::{presets, run_spec, write_jsonl, Detail, RunOptions};

fn golden(name: &str) -> String {
    std::fs::read_to_string(format!("crates/spec/specs/golden/{name}.jsonl"))
        .expect("committed golden file")
}

fn run_preset(name: &str, overrides: &Overrides, threads: usize) -> String {
    let mut spec = presets::preset(name).expect("bundled preset").unwrap();
    apply_overrides(&mut spec, overrides);
    spec.validate().unwrap();
    let report = run_spec(
        &spec,
        &RunOptions {
            threads,
            ..RunOptions::default()
        },
    )
    .unwrap();
    write_jsonl(&report, false)
}

/// The engine-backed comparison sweep (fig8: SOFDA + baselines sharing one
/// network's cache) reproduces the pre-engine golden bytes for both a
/// serial and a pooled thread count.
#[test]
fn fig8_sweep_matches_pre_engine_golden_across_thread_counts() {
    let overrides = Overrides {
        seeds: Some(1),
        limit: Some(2),
        solvers: Some(
            ["SOFDA", "eNEMP", "eST", "ST"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        ),
        ..Overrides::default()
    };
    let expect = golden("fig8");
    for threads in [1usize, 4] {
        assert_eq!(
            run_preset("fig8", &overrides, threads),
            expect,
            "threads={threads}"
        );
    }
}

/// The warm-engine online path (fig12: standing sessions joining/leaving
/// on cached trees, congestion epochs invalidating between arrivals)
/// reproduces the pre-engine golden bytes for both thread counts.
#[test]
fn fig12_online_matches_pre_engine_golden_across_thread_counts() {
    let overrides = Overrides {
        requests: Some(4),
        ..Overrides::default()
    };
    let expect = golden("fig12");
    for threads in [1usize, 4] {
        assert_eq!(
            run_preset("fig12", &overrides, threads),
            expect,
            "threads={threads}"
        );
    }
}

/// The exact-solver preset (relaxation memo + pooled child relaxations)
/// reproduces its golden bytes for both thread counts.
#[test]
fn table2_exact_matches_pre_engine_golden_across_thread_counts() {
    let overrides = Overrides {
        seeds: Some(2),
        ..Overrides::default()
    };
    let expect = golden("table2");
    for threads in [1usize, 4] {
        assert_eq!(
            run_preset("table2", &overrides, threads),
            expect,
            "threads={threads}"
        );
    }
}

/// The dynamic-SSSP middle tier actually fires on a miniature fig12 —
/// requests 6 is the smallest scale at which a congestion batch leaves an
/// affected region under the repair cap — and stays invisible in results:
/// serial and pooled runs emit byte-identical reports (partial repairs are
/// timing-gated, so the bytes match the no-repair world) with a nonzero
/// partial-repair count at both thread counts.
#[test]
fn fig12_partial_repairs_fire_and_stay_invisible() {
    let overrides = Overrides {
        requests: Some(6),
        ..Overrides::default()
    };
    let mut reports = Vec::new();
    for threads in [1usize, 4] {
        let mut spec = presets::preset("fig12").expect("bundled preset").unwrap();
        apply_overrides(&mut spec, &overrides);
        spec.validate().unwrap();
        let report = run_spec(
            &spec,
            &RunOptions {
                threads,
                ..RunOptions::default()
            },
        )
        .unwrap();
        let partials: u64 = report
            .sections
            .iter()
            .filter_map(|s| match &s.detail {
                Detail::Online(d) => Some(
                    d.sessions
                        .iter()
                        .map(|st| st.engine_partial_repairs)
                        .sum::<u64>(),
                ),
                _ => None,
            })
            .sum();
        assert!(
            partials > 0,
            "threads={threads}: expected the dynamic-SSSP repair tier to fire"
        );
        reports.push(write_jsonl(&report, false));
    }
    assert_eq!(
        reports[0], reports[1],
        "thread count leaked into the report"
    );
}

fn random_instance(seed: u64) -> SofInstance {
    let mut rng = Rng64::seed_from(seed);
    let g = generators::gnp_connected(28, 0.16, CostRange::new(1.0, 7.0), &mut rng);
    let mut net = Network::all_switches(g);
    let picks = rng.sample_indices(28, 12);
    for &v in &picks[..6] {
        net.make_vm(NodeId::new(v), Cost::new(rng.range_f64(0.5, 3.0)));
    }
    SofInstance::new(
        net,
        Request::new(
            vec![NodeId::new(picks[6]), NodeId::new(picks[7])],
            picks[8..12].iter().map(|&i| NodeId::new(i)).collect(),
            ServiceChain::with_len(2),
        ),
    )
    .unwrap()
}

/// A warm engine (trees cached by a previous solve) and a cold engine
/// produce structurally equal forests with bit-equal costs — cache reuse
/// can never leak into results.
#[test]
fn warm_and_cold_engines_agree_on_solves() {
    for seed in 0..6 {
        let warm_inst = random_instance(seed);
        // Warm up: solve once, discard, solve again on the now-warm cache.
        let first = solve_sofda(&warm_inst, &SofdaConfig::default()).unwrap();
        let warm = solve_sofda(&warm_inst, &SofdaConfig::default()).unwrap();
        assert!(
            warm_inst.network.paths().stats().hits > 0,
            "second solve must reuse cached trees"
        );
        // Cold: a freshly rebuilt, never-solved instance.
        let cold_inst = random_instance(seed);
        let cold = solve_sofda(&cold_inst, &SofdaConfig::default()).unwrap();
        assert_eq!(first.cost, warm.cost, "seed {seed}");
        assert_eq!(warm.cost, cold.cost, "seed {seed}");
        assert_eq!(warm.forest, cold.forest, "seed {seed}");
    }
}

/// An `OnlineSession` keeps one engine warm across arrivals; its results
/// must match a twin session rebuilt from scratch each arrival — and the
/// congestion refresh between arrivals must bump the graph's cost epoch so
/// no stale tree is ever served.
#[test]
fn online_session_warm_engine_is_invisible_in_results() {
    let make = || {
        OnlineSession::new(
            random_instance(42),
            Box::new(Sofda),
            SofdaConfig::default(),
            OnlineConfig::default(),
        )
    };
    let mut a = make();
    let mut b = make();
    let base = a.instance().request.clone();
    let mut grown = base.clone();
    let extra = a
        .instance()
        .network
        .graph()
        .nodes()
        .find(|n| !base.destinations.contains(n) && !base.sources.contains(n))
        .unwrap();
    grown.destinations.push(extra);
    for req in [base.clone(), grown, base] {
        let ra = a.arrive(req.clone()).unwrap();
        let rb = b.arrive(req).unwrap();
        assert_eq!(ra.forest_cost.to_bits(), rb.forest_cost.to_bits());
        assert_eq!(ra.accumulated_cost.to_bits(), rb.accumulated_cost.to_bits());
        assert_eq!(ra.rebuilt, rb.rebuilt);
    }
    assert_eq!(a.forest(), b.forest());
}

/// Invalidation end to end: reprice an edge **on** a cached tree through
/// the network and the engine must refuse the stale tree. (Repricing an
/// edge the tree does not traverse is instead repaired in place — covered
/// by the scoped-invalidation tests in `sof_graph`.)
#[test]
fn cost_mutation_invalidates_network_cache() {
    let inst = random_instance(7);
    let g = inst.network.graph();
    let src = inst.request.sources[0];
    let before = inst.network.paths().from_source(g, src);
    let mut inst2 = inst.clone();
    let e = g
        .nodes()
        .find_map(|v| before.parent(v).map(|(_, e)| e))
        .expect("source tree has at least one edge");
    let bumped = inst2.network.graph().edge_cost(e) * 10.0;
    inst2.network.graph_mut().set_edge_cost(e, bumped);
    let after = inst2
        .network
        .paths()
        .from_source(inst2.network.graph(), src);
    // The stale Arc still holds the old snapshot; the engine recomputed.
    let stats = inst2.network.paths().stats();
    assert!(
        stats.misses >= 2,
        "mutation must force a recompute: {stats:?}"
    );
    let reference = ShortestPaths::from_source(inst2.network.graph(), src);
    for v in inst2.network.graph().nodes() {
        assert_eq!(after.dist(v), reference.dist(v));
    }
    drop(before);
}

/// The pooled and the legacy scoped `par_map` paths cannot be toggled in
/// one process (the pool flag is latched at first use), but the pooled
/// path must match the serial path — which is the legacy path's own
/// invariant — on real solver workloads.
#[test]
fn pooled_solves_match_serial_solves() {
    let inst = random_instance(3);
    let serial = sof::exact::solve_exact_with(&inst, 300, 1).unwrap();
    let pooled = sof::exact::solve_exact_with(&inst, 300, 4).unwrap();
    assert_eq!(serial.cost, pooled.cost);
    assert_eq!(serial.nodes_explored, pooled.nodes_explored);
    assert_eq!(serial.forest, pooled.forest);
}

/// PathEngine sharing semantics: clones of a network share one cache.
#[test]
fn network_clones_share_their_engine() {
    let inst = random_instance(9);
    let clone = inst.clone();
    let src = inst.request.sources[0];
    let a = inst.network.paths().from_source(inst.network.graph(), src);
    let b = clone
        .network
        .paths()
        .from_source(clone.network.graph(), src);
    assert!(
        std::sync::Arc::ptr_eq(&a, &b),
        "clone must hit the shared cache"
    );
    assert_eq!(clone.network.paths().stats().hits, 1);
}

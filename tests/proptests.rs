//! Property-based tests over randomized instances (proptest).

use proptest::prelude::*;
use sof::core::{solve_sofda, Network, Request, ServiceChain, SofInstance, SofdaConfig};
use sof::graph::{generators, Cost, CostRange, NodeId, Rng64};
use sof::kstroll::{exact_stroll, greedy_stroll, DenseMetric, LazyMetric, Metric};

fn random_instance(
    seed: u64,
    n: usize,
    vms: usize,
    srcs: usize,
    dsts: usize,
    chain: usize,
) -> SofInstance {
    let mut rng = Rng64::seed_from(seed);
    let g = generators::gnp_connected(n, 0.2, CostRange::new(1.0, 9.0), &mut rng);
    let mut net = Network::all_switches(g);
    let picks = rng.sample_indices(n, vms + srcs + dsts);
    for &v in &picks[..vms] {
        net.make_vm(NodeId::new(v), Cost::new(rng.range_f64(0.2, 4.0)));
    }
    SofInstance::new(
        net,
        Request::new(
            picks[vms..vms + srcs]
                .iter()
                .map(|&i| NodeId::new(i))
                .collect(),
            picks[vms + srcs..]
                .iter()
                .map(|&i| NodeId::new(i))
                .collect(),
            ServiceChain::with_len(chain),
        ),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every SOFDA output on a random instance is validator-feasible and its
    /// stored cost is consistent with recomputation.
    #[test]
    fn sofda_always_feasible(seed in 0u64..5000, chain in 0usize..4, dsts in 1usize..5) {
        let inst = random_instance(seed, 20, 6, 2, dsts, chain);
        let out = solve_sofda(&inst, &SofdaConfig::default().with_seed(seed)).unwrap();
        out.forest.validate(&inst).unwrap();
        let recomputed = out.forest.cost(&inst.network);
        prop_assert!(recomputed.total().approx_eq(out.cost.total()));
        // Conflict-free by construction.
        prop_assert!(out.forest.enabled_vms().is_ok());
    }

    /// The Procedure-1 metric always satisfies the triangle inequality
    /// (Lemma 1), for arbitrary node potentials.
    #[test]
    fn chain_metric_is_metric(seed in 0u64..5000) {
        let inst = random_instance(seed, 16, 6, 1, 1, 2);
        let cm = sof::core::ChainMetric::build(
            &inst.network,
            inst.request.sources[0],
            &inst.network.vms(),
            Cost::ZERO,
        )
        .unwrap();
        let m = cm.metric();
        let dense = DenseMetric::from_fn(m.len(), |i, j| m.cost(i, j));
        prop_assert!(dense.respects_triangle_inequality(1e-6));
    }

    /// A `LazyMetric` answers bit-identically to the `DenseMetric` built
    /// from the same oracle — including through solver calls — even with a
    /// row cap small enough to force constant eviction and rebuild.
    #[test]
    fn lazy_metric_bit_identical_to_dense(seed in 0u64..5000, cap in 1usize..6, k in 2usize..6) {
        let mut rng = Rng64::seed_from(seed);
        let n = 12usize;
        let g = generators::gnp_connected(n, 0.3, CostRange::new(1.0, 9.0), &mut rng);
        let trees: Vec<sof::graph::ShortestPaths> = (0..n)
            .map(|v| sof::graph::ShortestPaths::from_source(&g, NodeId::new(v)))
            .collect();
        let dense = DenseMetric::from_fn(n, |i, j| trees[i].dist(NodeId::new(j)));
        let lazy = LazyMetric::with_row_cap(n, cap, move |i, j| trees[i].dist(NodeId::new(j)));
        // Probe in a scattered order so rows churn through the tiny cache.
        for step in 0..3 * n {
            let i = (step * 7 + seed as usize) % n;
            let j = (step * 5 + 3) % n;
            prop_assert_eq!(dense.cost(i, j), Metric::cost(&lazy, i, j));
        }
        prop_assert_eq!(exact_stroll(&dense, 0, n - 1, k), exact_stroll(&lazy, 0, n - 1, k));
        prop_assert_eq!(greedy_stroll(&dense, 0, n - 1, k), greedy_stroll(&lazy, 0, n - 1, k));
    }

    /// After an arbitrary mix of edge repricings (including no-op rewrites),
    /// a persistent `PathEngine` — hitting, repairing, or recomputing its
    /// cached trees — always serves trees identical to a from-scratch
    /// Dijkstra, for serial and parallel (4-thread) querying alike.
    #[test]
    fn scoped_invalidation_matches_scratch_engine(
        seed in 0u64..3000,
        parallel in 0usize..2,
    ) {
        let threads = [1usize, 4][parallel];
        let mut rng = Rng64::seed_from(seed);
        let n = 14usize;
        let mut g = generators::gnp_connected(n, 0.25, CostRange::new(1.0, 9.0), &mut rng);
        let engine = sof::graph::PathEngine::new();
        for _ in 0..5 {
            let sources: Vec<NodeId> =
                rng.sample_indices(n, 3).into_iter().map(NodeId::new).collect();
            let trees =
                sof::par::par_map_indexed(&sources, threads, |_, &s| engine.from_source(&g, s))
                    .unwrap();
            for (s, tree) in sources.iter().zip(&trees) {
                let fresh = sof::graph::ShortestPaths::from_source(&g, *s);
                for v in (0..n).map(NodeId::new) {
                    prop_assert_eq!(tree.dist(v), fresh.dist(v));
                    prop_assert_eq!(tree.parent(v), fresh.parent(v));
                }
            }
            for _ in 0..2 {
                let e = sof::graph::EdgeId::new(rng.below(g.edge_count()));
                if rng.below(3) == 0 {
                    let same = g.edge_cost(e);
                    g.set_edge_cost(e, same); // must not disturb the cache
                } else {
                    g.set_edge_cost(e, Cost::new(rng.range_f64(1.0, 9.0)));
                }
            }
        }
    }

    /// A dynamic-SSSP repair of a cached tree after an arbitrary batch of
    /// cost changes — downward and upward repricings, journal no-op
    /// rewrites, and occasional structural edge additions that sever the
    /// journal — is bit-identical to a from-scratch Dijkstra whenever the
    /// pass accepts the job: distances, parent hops, and Voronoi sites,
    /// every tie-break included.
    #[test]
    fn dynsssp_repair_bit_identical_to_fresh(
        seed in 0u64..4000,
        rounds in 1usize..6,
        batch in 1usize..6,
    ) {
        let mut rng = Rng64::seed_from(seed);
        let n = 16usize;
        let mut g = generators::gnp_connected(n, 0.25, CostRange::new(1.0, 9.0), &mut rng);
        let sources: Vec<NodeId> =
            rng.sample_indices(n, 2).into_iter().map(NodeId::new).collect();
        let mut ws = sof::graph::DijkstraWorkspace::new();
        let mut old = sof::graph::ShortestPaths::from_sources(&g, sources.iter().copied());
        let mut epoch = g.cost_epoch();
        for _ in 0..rounds {
            for _ in 0..batch {
                let e = sof::graph::EdgeId::new(rng.below(g.edge_count()));
                match rng.below(6) {
                    0 => {
                        let same = g.edge_cost(e);
                        g.set_edge_cost(e, same); // equal-value write: journal no-op
                    }
                    1 => {
                        // Structural change: severs the journal lineage.
                        let a = NodeId::new(rng.below(n));
                        let b = NodeId::new((a.index() + 1 + rng.below(n - 1)) % n);
                        g.add_edge(a, b, Cost::new(rng.range_f64(1.0, 9.0)));
                    }
                    2 => {
                        // Cheapen sharply: downward (insert-like) repair work.
                        let c = (g.edge_cost(e).value() * 0.3).max(0.25);
                        g.set_edge_cost(e, Cost::new(c));
                    }
                    3 => {
                        // Zero-cost plateau: VM attachment edges are
                        // zero-cost in this codebase, so this is a
                        // realistic shape. The repair must either bail on
                        // the ambiguous tie contests plateaus create or
                        // still match fresh bit for bit.
                        g.set_edge_cost(e, Cost::ZERO);
                    }
                    _ => g.set_edge_cost(e, Cost::new(rng.range_f64(1.0, 9.0))),
                }
            }
            let fresh = sof::graph::ShortestPaths::from_sources(&g, sources.iter().copied());
            match g.cost_changes_since(epoch) {
                Some(changes) => {
                    if let Some(repaired) = ws.repair(&g, &old, &sources, changes) {
                        for v in (0..n).map(NodeId::new) {
                            prop_assert_eq!(repaired.dist(v), fresh.dist(v));
                            prop_assert_eq!(repaired.parent(v), fresh.parent(v));
                            prop_assert_eq!(repaired.site(v), fresh.site(v));
                        }
                        old = repaired;
                    } else {
                        old = fresh; // region too large: caller goes cold
                    }
                }
                // Journal severed (structural change) or overflowed: the
                // engine's middle tier would skip repair entirely.
                None => old = fresh,
            }
            epoch = g.cost_epoch();
        }
    }

    /// Greedy k-stroll never beats exact, and both validate.
    #[test]
    fn kstroll_orders(seed in 0u64..5000, k in 2usize..6) {
        let mut rng = Rng64::seed_from(seed);
        let pts: Vec<(f64, f64)> = (0..10).map(|_| (rng.next_f64(), rng.next_f64())).collect();
        let m = DenseMetric::symmetric_from_fn(10, |i, j| {
            let (dx, dy) = (pts[i].0 - pts[j].0, pts[i].1 - pts[j].1);
            Cost::new((dx * dx + dy * dy).sqrt())
        });
        let e = exact_stroll(&m, 0, 9, k).unwrap();
        let g = greedy_stroll(&m, 0, 9, k).unwrap();
        e.validate(&m, 0, 9, k).unwrap();
        g.validate(&m, 0, 9, k).unwrap();
        prop_assert!(g.cost >= e.cost - Cost::new(1e-9));
    }

    /// Steiner solvers always produce spanning trees within 2× of exact.
    #[test]
    fn steiner_two_approx(seed in 0u64..5000, k in 2usize..6) {
        let mut rng = Rng64::seed_from(seed);
        let g = generators::gnp_connected(14, 0.3, CostRange::new(1.0, 9.0), &mut rng);
        let ts: Vec<NodeId> = rng.sample_indices(14, k).into_iter().map(NodeId::new).collect();
        let exact = sof::steiner::dreyfus_wagner(&g, &ts).unwrap();
        for solver in [sof::steiner::SteinerSolver::Mehlhorn, sof::steiner::SteinerSolver::Kmb] {
            let t = solver.solve(&g, &ts).unwrap();
            t.validate(&g, &ts).unwrap();
            prop_assert!(t.cost <= exact.cost * 2.0 + Cost::new(1e-9));
        }
    }

    /// Dynamic leave never increases cost; join keeps feasibility.
    #[test]
    fn dynamics_preserve_feasibility(seed in 0u64..2000) {
        let mut inst = random_instance(seed, 20, 6, 2, 3, 2);
        let out = solve_sofda(&inst, &SofdaConfig::default()).unwrap();
        let mut forest = out.forest;
        let before = forest.cost(&inst.network).total();
        let d = inst.request.destinations[0];
        sof::core::dynamics::destination_leave(&mut inst, &mut forest, d).unwrap();
        forest.validate(&inst).unwrap();
        prop_assert!(forest.cost(&inst.network).total() <= before + Cost::new(1e-9));
        // Rejoin.
        sof::core::dynamics::destination_join(&mut inst, &mut forest, d).unwrap();
        forest.validate(&inst).unwrap();
    }

    /// Every registered solver on random feasible instances returns a
    /// validator-feasible forest and never beats the exact solver when both
    /// succeed (budget 300 proves optimality at these sizes, making
    /// `exact.cost` a true floor).
    #[test]
    fn registered_solvers_feasible_and_never_beat_exact(
        seed in 0u64..4000,
        srcs in 1usize..3,
        chain in 1usize..3,
    ) {
        let inst = random_instance(seed, 16, 5, srcs, 2, chain);
        let exact = sof::exact::solve_exact(&inst, 300).unwrap();
        for solver in sof::solvers::all() {
            if !solver.supports(&inst) {
                continue; // e.g. SOFDA-SS on multi-source draws
            }
            let out = solver
                .solve(&inst, &SofdaConfig::default().with_seed(seed))
                .unwrap_or_else(|e| panic!("{} failed on seed {seed}: {e}", solver.name()));
            out.forest
                .validate(&inst)
                .unwrap_or_else(|e| panic!("{} invalid on seed {seed}: {e}", solver.name()));
            if exact.optimal {
                prop_assert!(
                    out.cost.total() >= exact.cost - Cost::new(1e-9),
                    "{} beat the exact optimum on seed {seed}",
                    solver.name()
                );
            }
        }
    }

    /// The exact solver's relaxation really is a lower bound.
    #[test]
    fn exact_bound_sandwich(seed in 0u64..800) {
        let inst = random_instance(seed, 14, 5, 2, 2, 2);
        let exact = sof::exact::solve_exact(&inst, 200).unwrap();
        prop_assert!(exact.lower_bound <= exact.cost + Cost::new(1e-9));
        let sofda = solve_sofda(&inst, &SofdaConfig::default()).unwrap();
        prop_assert!(sofda.cost.total() >= exact.cost - Cost::new(1e-9));
    }
}

// Properties of the `sof_par` worker pool itself: index-addressed output
// identical to a serial `map` for arbitrary lengths and thread counts, and
// a panicking task poisons the pool into an error instead of deadlocking.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `par_map_indexed` slot `i` always holds `f(i, &items[i])`, matching
    /// serial `Vec` mapping for any input length and thread count.
    #[test]
    fn par_map_matches_serial_map_ordering(
        len in 0usize..80,
        threads in 1usize..10,
        salt in 0u64..10_000,
    ) {
        let items: Vec<u64> = (0..len as u64).map(|i| i.wrapping_mul(salt | 1)).collect();
        let expect: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| x.rotate_left((i % 63) as u32) ^ salt)
            .collect();
        let got = sof::par::par_map_indexed(&items, threads, |i, &x| {
            x.rotate_left((i % 63) as u32) ^ salt
        })
        .unwrap();
        prop_assert_eq!(got, expect);
    }

    /// The mutable variant visits each slot exactly once, in index order
    /// per slot, for any thread count.
    #[test]
    fn par_map_mut_matches_serial(len in 0usize..80, threads in 1usize..10) {
        let mut items: Vec<u64> = (0..len as u64).collect();
        let returned = sof::par::par_map_mut(&mut items, threads, |i, x| {
            *x = x.wrapping_add(7);
            (i as u64) * 2
        })
        .unwrap();
        prop_assert_eq!(returned, (0..len as u64).map(|i| i * 2).collect::<Vec<u64>>());
        prop_assert_eq!(items, (0..len as u64).map(|i| i + 7).collect::<Vec<u64>>());
    }

    /// A panic in one task never deadlocks the pool: the call drains and
    /// reports `WorkerPanicked` for every thread count.
    #[test]
    fn par_map_panics_poison_not_deadlock(len in 1usize..40, threads in 1usize..10) {
        let bad = len / 2;
        let items: Vec<usize> = (0..len).collect();
        let result = sof::par::par_map_indexed(&items, threads, |i, &x| {
            if i == bad {
                panic!("injected task failure");
            }
            x
        });
        prop_assert!(
            matches!(result, Err(sof::par::ParError::WorkerPanicked { .. })),
            "expected poisoned-worker error, got {result:?}"
        );
        // The serial path pinpoints the exact index and keeps the message.
        let serial = sof::par::par_map_indexed(&items, 1, |i, &x| {
            if i == bad {
                panic!("injected task failure");
            }
            x
        });
        prop_assert_eq!(
            serial,
            Err(sof::par::ParError::WorkerPanicked {
                index: bad,
                message: "injected task failure".into()
            })
        );
    }
}

//! # sof-par — deterministic parallelism on a persistent worker pool
//!
//! A small `std::thread`-based worker pool for the embarrassingly parallel
//! layers of the workspace: per-seed sweeps in `sof_bench`, independent
//! `OnlineSession`s in `sof_core::SessionPool`, and the child relaxations of
//! `sof_exact`'s branch-and-bound.
//!
//! Work runs on **long-lived, channel-fed workers** (the `pool` module): a
//! `par_map` call enqueues one job, up to `threads − 1` pool workers join
//! in, and the calling thread claims indices alongside them — so
//! millisecond-scale calls (the exact solver forks 4–5 child relaxations
//! per branch-and-bound expansion) no longer pay per-call thread spawn and
//! join costs. Workers are spawned lazily up to the largest requested
//! count and parked on a condvar between jobs. Set `SOF_PAR_POOL=0` to
//! fall back to the previous spawn-scoped-threads-per-call behavior (the
//! `path_engine` example benches one against the other).
//!
//! **Determinism guarantee:** every primitive here produces output that is
//! a pure function of its input, *independent of the thread count*. Work is
//! addressed by index — slot `i` of the result always holds `f(i, &items[i])`
//! — and reductions downstream fold results in input order, so costs stay
//! bit-identical whether a computation ran on 1 thread or 64. The
//! `tests/parallel_determinism.rs` suite pins this across the workspace.
//!
//! Thread-count resolution, from highest to lowest priority:
//!
//! 1. an explicit `threads` argument (`0` falls through to the rest),
//! 2. the process-wide override installed by [`set_threads`] (the bench
//!    binaries' `--threads` flag),
//! 3. the `SOF_THREADS` environment variable (`0` or unset = auto; an
//!    unparsable value warns once and falls back to auto),
//! 4. auto: [`std::thread::available_parallelism`].
//!
//! Workers run nested `par_map` calls serially (no recursive thread
//! explosion), and a panic in one task poisons the pool: remaining workers
//! stop picking up work and the call returns [`ParError::WorkerPanicked`]
//! — carrying the panicking index and its payload message — instead of
//! deadlocking or aborting the process. (When *several* tasks would panic,
//! which one is observed first can vary with the thread count; the
//! determinism guarantee above covers `Ok` results.)
//!
//! # Examples
//!
//! ```
//! let items: Vec<u64> = (0..100).collect();
//! let doubled = sof_par::par_map_indexed(&items, 4, |i, &x| x * 2 + i as u64)
//!     .expect("no worker panicked");
//! // Slot i holds f(i, &items[i]) regardless of the thread count.
//! assert_eq!(doubled[10], 30);
//! assert_eq!(doubled, sof_par::par_map_indexed(&items, 1, |i, &x| x * 2 + i as u64).unwrap());
//! ```

// `deny` rather than `forbid`: the `pool` module opts in for the one
// documented lifetime-erasure its persistent workers require.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod pool;

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Errors from the worker pool.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParError {
    /// A task panicked; the pool was poisoned and drained without deadlock.
    ///
    /// `index` is the smallest input index observed to panic and `message`
    /// the panic payload at that index (when it was a string). With more
    /// than one panicking task, which one is observed first may vary with
    /// the thread count — the determinism guarantee covers `Ok` results.
    WorkerPanicked {
        /// Input index of the panicking task.
        index: usize,
        /// The panic payload, for string payloads (`panic!`/`assert!`
        /// messages); a placeholder otherwise.
        message: String,
    },
}

impl std::fmt::Display for ParError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParError::WorkerPanicked { index, message } => {
                write!(
                    f,
                    "worker panicked while processing item {index}: {message}"
                )
            }
        }
    }
}

impl std::error::Error for ParError {}

/// Extracts the human-readable message from a caught panic payload.
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// First-observed panic shared between workers: the smallest index seen so
/// far plus its payload message.
struct Poison(Mutex<Option<(usize, String)>>);

impl Poison {
    fn new() -> Poison {
        Poison(Mutex::new(None))
    }

    fn is_set(&self) -> bool {
        self.0.lock().expect("poison lock").is_some()
    }

    fn record(&self, index: usize, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = self.0.lock().expect("poison lock");
        if slot.as_ref().is_none_or(|(i, _)| index < *i) {
            *slot = Some((index, payload_message(payload.as_ref())));
        }
    }

    fn into_error(self) -> Option<ParError> {
        self.0
            .into_inner()
            .expect("poison lock")
            .map(|(index, message)| ParError::WorkerPanicked { index, message })
    }
}

/// Process-wide thread-count override; `usize::MAX` = unset.
static OVERRIDE: AtomicUsize = AtomicUsize::new(usize::MAX);

thread_local! {
    /// Set inside pool workers so nested `par_map` calls degrade to serial
    /// execution instead of spawning threads quadratically.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Marks the current thread as pool context; returns the previous flag.
pub(crate) fn enter_pool_scope() -> bool {
    IN_POOL.with(|c| c.replace(true))
}

/// Restores the pool-context flag saved by [`enter_pool_scope`].
pub(crate) fn exit_pool_scope(previous: bool) {
    IN_POOL.with(|c| c.set(previous));
}

/// Installs a process-wide thread-count override (`0` = auto-detect). The
/// bench binaries call this for `--threads`; it beats `SOF_THREADS`.
pub fn set_threads(threads: usize) {
    OVERRIDE.store(threads, Ordering::SeqCst);
}

/// Clears the [`set_threads`] override, restoring `SOF_THREADS`/auto.
pub fn clear_threads() {
    OVERRIDE.store(usize::MAX, Ordering::SeqCst);
}

/// The machine's available parallelism (at least 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Reads `SOF_THREADS`.
///
/// Returns `Ok(None)` when unset, `Ok(Some(n))` when it parses (`0` =
/// auto-detect).
///
/// # Errors
///
/// A message naming the unparsable value.
pub fn env_threads() -> Result<Option<usize>, String> {
    match std::env::var("SOF_THREADS") {
        Err(_) => Ok(None),
        Ok(s) => s.trim().parse::<usize>().map(Some).map_err(|_| {
            format!("invalid SOF_THREADS value '{s}': expected a thread count (0 = all cores)")
        }),
    }
}

/// Resolves a requested thread count: `0` means auto-detect
/// ([`available_threads`]), anything else is taken literally.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        available_threads()
    } else {
        requested
    }
}

/// The thread count parallel layers use when no explicit count is passed:
/// the [`set_threads`] override if installed, else `SOF_THREADS` (an
/// unparsable value warns to stderr once and falls back to auto), else
/// [`available_threads`].
pub fn current_threads() -> usize {
    let over = OVERRIDE.load(Ordering::SeqCst);
    let requested = if over != usize::MAX {
        over
    } else {
        match env_threads() {
            Ok(n) => n.unwrap_or(0),
            Err(e) => {
                static WARN_ONCE: std::sync::Once = std::sync::Once::new();
                WARN_ONCE.call_once(|| eprintln!("warning: {e}; falling back to auto-detect"));
                0
            }
        }
    };
    resolve_threads(requested)
}

/// Worker count for one `par_map` call: an explicit count is taken
/// literally, `0` defers to the configured default ([`current_threads`]).
fn requested_workers(threads: usize) -> usize {
    if threads == 0 {
        current_threads()
    } else {
        threads
    }
}

/// Maps `f` over `items` on up to `threads` workers (`0` = the configured
/// default, [`current_threads`]: the `--threads` override, then
/// `SOF_THREADS`, then all cores), preserving input order: slot `i` of the
/// result is `f(i, &items[i])`.
///
/// Work runs on the persistent pool — up to `threads − 1` long-lived
/// workers join the calling thread, which always participates — so
/// frequent small calls pay no thread spawn/join cost. Scheduling is
/// work-stealing (an atomic next-index counter), but because every output
/// slot is addressed by input index the result is identical for every
/// thread count. Nested calls from inside a worker run serially.
///
/// # Errors
///
/// [`ParError::WorkerPanicked`] when any task panics. The job is poisoned
/// (remaining participants stop pulling work, pool workers survive) and
/// drained — never deadlocked — and all partial results are discarded.
pub fn par_map_indexed<T, R, F>(items: &[T], threads: usize, f: F) -> Result<Vec<R>, ParError>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = requested_workers(threads).min(items.len());
    if workers <= 1 || IN_POOL.with(Cell::get) {
        return serial_map(items, &f);
    }
    let poison = Poison::new();
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    if pool::enabled() {
        let run_one = |i: usize| -> bool {
            match catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))) {
                Ok(r) => {
                    collected
                        .lock()
                        .expect("no panic holds the lock")
                        .push((i, r));
                    true
                }
                Err(payload) => {
                    poison.record(i, payload);
                    false
                }
            }
        };
        pool::run(items.len(), workers - 1, &run_one);
    } else {
        scoped_map(items, workers, &f, &poison, &collected);
    }
    if let Some(err) = poison.into_error() {
        return Err(err);
    }
    let mut pairs = collected.into_inner().expect("participants drained");
    pairs.sort_unstable_by_key(|&(i, _)| i);
    Ok(pairs.into_iter().map(|(_, r)| r).collect())
}

/// The pre-pool implementation: scoped threads spawned per call. Kept
/// behind `SOF_PAR_POOL=0` as a debugging fallback and as the baseline leg
/// of the spawn-vs-pool microbench.
fn scoped_map<T, R, F>(
    items: &[T],
    workers: usize,
    f: &F,
    poison: &Poison,
    collected: &Mutex<Vec<(usize, R)>>,
) where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                IN_POOL.with(|c| c.set(true));
                loop {
                    if poison.is_set() {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= items.len() {
                        break;
                    }
                    match catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))) {
                        Ok(r) => collected
                            .lock()
                            .expect("no panic holds the lock")
                            .push((i, r)),
                        Err(payload) => poison.record(i, payload),
                    }
                }
            });
        }
    });
}

/// Like [`par_map_indexed`] but with mutable access: each item is visited
/// exactly once as `f(i, &mut items[i])`, on up to `threads` workers
/// (`0` = the configured default, [`current_threads`]). Each index is
/// claimed exactly once off the shared counter, so accesses are disjoint
/// and results are identical for every thread count.
///
/// # Errors
///
/// [`ParError::WorkerPanicked`] when any task panics; results are
/// discarded, and items may be left partially updated (each item was
/// visited at most once).
pub fn par_map_mut<T, R, F>(items: &mut [T], threads: usize, f: F) -> Result<Vec<R>, ParError>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let len = items.len();
    let workers = requested_workers(threads).min(len);
    if workers <= 1 || IN_POOL.with(Cell::get) {
        return serial_map_mut(items, &f);
    }
    let poison = Poison::new();
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(len));
    let base = pool::SliceMutPtr(items.as_mut_ptr());
    let run_one = |i: usize| -> bool {
        // SAFETY: `i` comes off the job's claim counter exactly once, so
        // no other participant touches `items[i]`, and the `&mut items`
        // borrow outlives the job (we only return once it is drained).
        #[allow(unsafe_code)]
        let item = unsafe { base.get_mut(i) };
        match catch_unwind(AssertUnwindSafe(|| f(i, item))) {
            Ok(r) => {
                collected
                    .lock()
                    .expect("no panic holds the lock")
                    .push((i, r));
                true
            }
            Err(payload) => {
                poison.record(i, payload);
                false
            }
        }
    };
    if pool::enabled() {
        pool::run(len, workers - 1, &run_one);
    } else {
        // Fallback without persistent workers: same claim protocol on
        // scoped threads.
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    IN_POOL.with(|c| c.set(true));
                    loop {
                        if poison.is_set() {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::SeqCst);
                        if i >= len {
                            break;
                        }
                        if !run_one(i) {
                            break;
                        }
                    }
                });
            }
        });
    }
    if let Some(err) = poison.into_error() {
        return Err(err);
    }
    let mut pairs = collected.into_inner().expect("participants drained");
    pairs.sort_unstable_by_key(|&(i, _)| i);
    Ok(pairs.into_iter().map(|(_, r)| r).collect())
}

/// In-place serial fallback with the same poisoned-worker contract.
fn serial_map<T, R, F>(items: &[T], f: &F) -> Result<Vec<R>, ParError>
where
    F: Fn(usize, &T) -> R,
{
    let mut out = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        match catch_unwind(AssertUnwindSafe(|| f(i, item))) {
            Ok(r) => out.push(r),
            Err(payload) => {
                return Err(ParError::WorkerPanicked {
                    index: i,
                    message: payload_message(payload.as_ref()),
                })
            }
        }
    }
    Ok(out)
}

/// In-place serial fallback for [`par_map_mut`].
fn serial_map_mut<T, R, F>(items: &mut [T], f: &F) -> Result<Vec<R>, ParError>
where
    F: Fn(usize, &mut T) -> R,
{
    let mut out = Vec::with_capacity(items.len());
    for (i, item) in items.iter_mut().enumerate() {
        match catch_unwind(AssertUnwindSafe(|| f(i, item))) {
            Ok(r) => out.push(r),
            Err(payload) => {
                return Err(ParError::WorkerPanicked {
                    index: i,
                    message: payload_message(payload.as_ref()),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_order_across_thread_counts() {
        let items: Vec<u64> = (0..257).map(|i| i * 3 + 1).collect();
        let expect: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| x.wrapping_mul(7) ^ i as u64)
            .collect();
        for threads in [1, 2, 3, 8, 64] {
            let got =
                par_map_indexed(&items, threads, |i, &x| x.wrapping_mul(7) ^ i as u64).unwrap();
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let none: Vec<u32> = vec![];
        assert_eq!(par_map_indexed(&none, 8, |_, &x| x).unwrap(), vec![]);
        assert_eq!(
            par_map_indexed(&[9u32], 8, |i, &x| x + i as u32).unwrap(),
            vec![9]
        );
        let mut one = [5u32];
        assert_eq!(par_map_mut(&mut one, 8, |_, x| *x * 2).unwrap(), vec![10]);
    }

    #[test]
    fn panics_poison_instead_of_deadlocking() {
        let items: Vec<usize> = (0..50).collect();
        for threads in [1, 2, 8] {
            let err = par_map_indexed(&items, threads, |i, _| {
                if i == 17 {
                    panic!("boom");
                }
                i
            })
            .unwrap_err();
            assert!(
                matches!(err, ParError::WorkerPanicked { .. }),
                "threads={threads}"
            );
        }
        // Serial path reports the exact index and the panic message.
        let err = par_map_indexed(&items, 1, |i, _| {
            if i == 17 {
                panic!("boom {i}");
            }
            i
        })
        .unwrap_err();
        assert_eq!(
            err,
            ParError::WorkerPanicked {
                index: 17,
                message: "boom 17".into()
            }
        );
        assert!(err.to_string().contains("boom 17"));
    }

    #[test]
    fn map_mut_visits_each_item_once() {
        for threads in [1, 2, 5, 16] {
            let mut items: Vec<u64> = (0..101).collect();
            let returned = par_map_mut(&mut items, threads, |i, x| {
                *x += 1000;
                i as u64
            })
            .unwrap();
            assert_eq!(
                returned,
                (0..101).collect::<Vec<u64>>(),
                "threads={threads}"
            );
            assert!(items.iter().enumerate().all(|(i, &x)| x == i as u64 + 1000));
        }
    }

    #[test]
    fn nested_calls_run_serially_without_exploding() {
        let outer: Vec<u64> = (0..8).collect();
        let spawned = AtomicU64::new(0);
        let got = par_map_indexed(&outer, 4, |_, &x| {
            spawned.fetch_add(1, Ordering::SeqCst);
            let inner: Vec<u64> = (0..16).collect();
            // Inside a worker this must degrade to the serial path.
            par_map_indexed(&inner, 8, |i, &y| y * x + i as u64)
                .unwrap()
                .iter()
                .sum::<u64>()
        })
        .unwrap();
        let expect: Vec<u64> = outer
            .iter()
            .map(|&x| (0..16).map(|y| y * x + y).sum())
            .collect();
        assert_eq!(got, expect);
        assert_eq!(spawned.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn many_small_calls_reuse_persistent_workers() {
        // The exact solver's usage profile: thousands of tiny calls. Each
        // must produce ordered results; the pool's long-lived workers (not
        // fresh spawns) serve them.
        let items: Vec<u64> = (0..5).collect();
        for round in 0..500u64 {
            let got = par_map_indexed(&items, 4, |i, &x| x * 31 + i as u64 + round).unwrap();
            let expect: Vec<u64> = items
                .iter()
                .enumerate()
                .map(|(i, &x)| x * 31 + i as u64 + round)
                .collect();
            assert_eq!(got, expect, "round {round}");
        }
    }

    #[test]
    fn concurrent_top_level_calls_share_the_pool() {
        // Several caller threads enqueue jobs at once; every job drains
        // with its own ordered results and its own poisoning.
        std::thread::scope(|scope| {
            for caller in 0..4u64 {
                scope.spawn(move || {
                    let items: Vec<u64> = (0..97).collect();
                    for _ in 0..20 {
                        let got = par_map_indexed(&items, 3, |i, &x| x + caller * 1000 + i as u64)
                            .unwrap();
                        assert_eq!(got[96], 96 + caller * 1000 + 96);
                    }
                    let err = par_map_indexed(&items, 3, |i, &x| {
                        if i == 42 {
                            panic!("caller {caller}");
                        }
                        x
                    })
                    .unwrap_err();
                    assert!(matches!(err, ParError::WorkerPanicked { .. }));
                });
            }
        });
    }

    #[test]
    fn thread_count_resolution() {
        assert!(available_threads() >= 1);
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
        // The override round-trips; other tests never read the global.
        set_threads(5);
        assert_eq!(current_threads(), 5);
        set_threads(0);
        assert!(current_threads() >= 1);
        clear_threads();
        assert!(current_threads() >= 1);
    }
}

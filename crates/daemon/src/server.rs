//! The serving loop: a [`std::net::TcpListener`] accept thread spawning
//! one connection thread per client (keep-alive honored), plus the
//! janitor thread that expires TTL'd sessions.
//!
//! Shutdown is graceful by construction: [`ServerHandle::stop`] raises the
//! stop flag, pokes the accept loop awake, and then *joins* it — and the
//! accept loop in turn joins every connection thread, so in-flight
//! requests finish and get their responses before `stop` returns.

use crate::http::{self, ReadError};
use crate::registry::Registry;
use crate::router;
use crate::wire::ApiError;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Tuning for one daemon instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port `0` picks an ephemeral port (the bound address
    /// is on [`ServerHandle::addr`]).
    pub addr: String,
    /// TTL for sessions that pin no `ttl_secs` of their own
    /// (`None` = never expire).
    pub default_ttl: Option<Duration>,
    /// Per-request socket timeout: reading a request and writing its
    /// response must each make progress within this budget.
    pub read_timeout: Duration,
    /// Hard request-body cap in bytes (larger bodies get a 413).
    pub max_body: usize,
    /// How often the janitor sweeps for expired sessions.
    pub janitor_period: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            default_ttl: None,
            read_timeout: Duration::from_secs(10),
            max_body: 1 << 20,
            janitor_period: Duration::from_millis(200),
        }
    }
}

/// The daemon entry point; see [`Server::start`].
pub struct Server;

/// A running daemon: the bound address plus the handles needed to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    janitor: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the accept and janitor threads, and returns
    /// immediately.
    ///
    /// # Errors
    ///
    /// The bind failure, verbatim.
    pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let registry = Arc::new(RwLock::new(Registry::new(config.default_ttl)));

        let accept = {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            let config = config.clone();
            thread::spawn(move || accept_loop(listener, registry, stop, config))
        };
        let janitor = {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            let period = config.janitor_period;
            thread::spawn(move || janitor_loop(registry, stop, period))
        };
        Ok(ServerHandle {
            addr,
            stop,
            accept: Some(accept),
            janitor: Some(janitor),
        })
    }
}

impl ServerHandle {
    /// The bound address (resolves port `0` binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `http://host:port` for this daemon.
    pub fn base_url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Whether a stop has been requested (via [`ServerHandle::stop`],
    /// [`request_stop`](ServerHandle::request_stop), or a client's
    /// `POST /v1/shutdown`).
    pub fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Raises the stop flag without waiting — the serving loop winds down
    /// in the background; call [`stop`](ServerHandle::stop) (or drop the
    /// handle) to drain and join.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// A clone of the stop flag, for wiring external stop sources (e.g. a
    /// stdin watcher) to this daemon.
    pub fn stop_signal(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Graceful shutdown: raises the stop flag, wakes the accept loop,
    /// and joins every thread — in-flight requests have completed (and
    /// been answered) by the time this returns.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        // The accept loop sits in a blocking accept; a throwaway
        // connection wakes it so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.janitor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    registry: Arc<RwLock<Registry>>,
    stop: Arc<AtomicBool>,
    config: ServerConfig,
) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    let serve = |stream: TcpStream, workers: &mut Vec<JoinHandle<()>>| {
        workers.retain(|h| !h.is_finished());
        let registry = Arc::clone(&registry);
        let stop = Arc::clone(&stop);
        let config = config.clone();
        workers.push(thread::spawn(move || {
            handle_connection(stream, &registry, &stop, &config);
        }));
    };
    for conn in listener.incoming() {
        let stopping = stop.load(Ordering::Acquire);
        if let Ok(stream) = conn {
            // Serve even the connection that delivered the stop signal: it
            // may be a real client that raced the shutdown wake-up, and a
            // throwaway wake connection just reads EOF and closes.
            serve(stream, &mut workers);
        }
        if stopping {
            break;
        }
    }
    // Drain the backlog: a connection whose request was already written
    // when stop was raised is still accepted and answered. `WouldBlock`
    // means the queue is empty and shutdown can proceed.
    let _ = listener.set_nonblocking(true);
    while let Ok((stream, _)) = listener.accept() {
        let _ = stream.set_nonblocking(false);
        serve(stream, &mut workers);
    }
    // Drain: every in-flight connection finishes its current request and
    // closes before shutdown completes.
    for h in workers {
        let _ = h.join();
    }
}

fn janitor_loop(registry: Arc<RwLock<Registry>>, stop: Arc<AtomicBool>, period: Duration) {
    let nap = period.min(Duration::from_millis(25));
    let mut slept = Duration::ZERO;
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        thread::sleep(nap);
        slept += nap;
        if slept >= period {
            slept = Duration::ZERO;
            router::write(&registry).expire(std::time::Instant::now());
        }
    }
}

fn handle_connection(
    mut stream: TcpStream,
    registry: &RwLock<Registry>,
    stop: &AtomicBool,
    config: &ServerConfig,
) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.read_timeout));
    let _ = stream.set_nodelay(true);
    loop {
        match http::read_request(&mut stream, config.max_body) {
            Ok(req) => {
                let (status, body) = router::route(registry, stop, &req);
                let keep = req.keep_alive && !stop.load(Ordering::Acquire);
                if http::write_response(&mut stream, status, &body, keep).is_err() || !keep {
                    return;
                }
            }
            Err(ReadError::Closed) | Err(ReadError::Io(_)) => return,
            Err(ReadError::TimedOut) => {
                let e = ApiError {
                    status: 408,
                    message: format!(
                        "no complete request within {:.1}s",
                        config.read_timeout.as_secs_f64()
                    ),
                };
                router::read(registry).count(true);
                let _ = http::write_response(&mut stream, e.status, &e.to_json(), false);
                return;
            }
            Err(ReadError::Bad { status, message }) => {
                let e = ApiError { status, message };
                router::read(registry).count(true);
                let _ = http::write_response(&mut stream, e.status, &e.to_json(), false);
                return;
            }
        }
    }
}

//! # sof-baselines — the comparison algorithms of the SOF evaluation
//!
//! The ICDCS'17 paper compares SOFDA against three constructions (§VIII-A);
//! the paper describes them informally, so DESIGN.md §6 records the exact
//! reading implemented here. All three produce **feasible**, validator-
//! checked forests, which keeps cost comparisons fair:
//!
//! * [`solve_st`] — **ST**: the best single Steiner tree over candidate
//!   sources, with the cheapest service chain bolted on afterwards.
//! * [`solve_est`] — **eST**: ST plus the paper's iterative multi-source
//!   extension (add a tree from an unused source while total cost drops).
//! * [`solve_enemp`] — **eNEMP**: NEMP-style — the tree must span a chosen
//!   VM which terminates the chain — with the same iterative extension.
//!
//! The structural handicap shared by all three (and demonstrated by the
//! evaluation): the tree is chosen **before** VM placement, so they miss
//! cheap-VM/short-tree trade-offs that SOFDA optimizes jointly.
//!
//! # Examples
//!
//! ```
//! use sof_baselines::solve_st;
//! use sof_core::{Network, Request, ServiceChain, SofInstance, SofdaConfig};
//! use sof_graph::{Graph, Cost, NodeId};
//!
//! let mut g = Graph::with_nodes(4);
//! for i in 0..3 {
//!     g.add_edge(NodeId::new(i), NodeId::new(i + 1), Cost::new(1.0));
//! }
//! let mut net = Network::all_switches(g);
//! net.make_vm(NodeId::new(1), Cost::new(2.0));
//! let inst = SofInstance::new(
//!     net,
//!     Request::new(vec![NodeId::new(0)], vec![NodeId::new(3)], ServiceChain::with_len(1)),
//! )?;
//! let out = solve_st(&inst, &SofdaConfig::default())?;
//! out.forest.validate(&inst)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod common;

use common::{assemble, assign_and_price, cheapest_chain_to_tree, grow_forest, CandidateTree};
use sof_core::{SofInstance, SofdaConfig, SolveError, SolveOutcome, SolveStats};
use sof_graph::{Cost, NodeId, Rng64};
use sof_steiner::SteinerTree;

/// Picks the source whose Steiner tree over `{s} ∪ D` is cheapest.
fn best_root(
    instance: &SofInstance,
    config: &SofdaConfig,
) -> Result<(NodeId, SteinerTree), SolveError> {
    let network = &instance.network;
    let mut best: Option<(NodeId, SteinerTree)> = None;
    for &s in &instance.request.sources {
        let mut terminals = vec![s];
        terminals.extend_from_slice(&instance.request.destinations);
        match config.steiner.solve(network.graph(), &terminals) {
            Ok(tree) => {
                if best.as_ref().is_none_or(|(_, b)| tree.cost < b.cost) {
                    best = Some((s, tree));
                }
            }
            Err(_) => continue,
        }
    }
    best.ok_or_else(|| SolveError::Infeasible("no source reaches all destinations".into()))
}

/// **ST** baseline: one Steiner tree + one bolted-on service chain.
///
/// # Errors
///
/// [`SolveError::Infeasible`] when no source reaches every destination or
/// the VM pool is smaller than the chain.
pub fn solve_st(instance: &SofInstance, config: &SofdaConfig) -> Result<SolveOutcome, SolveError> {
    let mut rng = Rng64::seed_from(config.seed ^ 0x57);
    let (root, tree) = best_root(instance, config)?;
    let tree_nodes: Vec<NodeId> = if tree.edges.is_empty() {
        vec![root]
    } else {
        tree.nodes(instance.network.graph()).into_iter().collect()
    };
    let cand = cheapest_chain_to_tree(
        instance,
        root,
        &instance.network.vms(),
        &tree_nodes,
        config,
        &mut rng,
    )
    .ok_or_else(|| SolveError::Infeasible("no service chain fits the VM pool".into()))?;
    let trees = vec![cand];
    let (_, buckets) = assign_and_price(instance, &trees, config)?;
    let forest = assemble(instance, &trees, &buckets, config)?;
    let stats = SolveStats {
        candidate_chains: 1,
        steiner_cost: tree.cost,
        ..SolveStats::default()
    };
    finish(instance, forest, stats)
}

/// **eST** baseline: ST plus iterative tree addition from unused sources.
///
/// # Errors
///
/// Same conditions as [`solve_st`].
pub fn solve_est(instance: &SofInstance, config: &SofdaConfig) -> Result<SolveOutcome, SolveError> {
    let mut rng = Rng64::seed_from(config.seed ^ 0xE57);
    let (root, tree) = best_root(instance, config)?;
    let tree_nodes: Vec<NodeId> = if tree.edges.is_empty() {
        vec![root]
    } else {
        tree.nodes(instance.network.graph()).into_iter().collect()
    };
    let first = cheapest_chain_to_tree(
        instance,
        root,
        &instance.network.vms(),
        &tree_nodes,
        config,
        &mut rng,
    )
    .ok_or_else(|| SolveError::Infeasible("no service chain fits the VM pool".into()))?;
    let cfg = *config;
    let (_, trees, buckets) = grow_forest(
        instance,
        vec![first],
        config,
        move |inst, s, free_vms, rng| {
            // A fresh tree from s: span {s} ∪ D, chain on free VMs.
            let mut terminals = vec![s];
            terminals.extend_from_slice(&inst.request.destinations);
            let tree = cfg.steiner.solve(inst.network.graph(), &terminals).ok()?;
            let nodes: Vec<NodeId> = if tree.edges.is_empty() {
                vec![s]
            } else {
                tree.nodes(inst.network.graph()).into_iter().collect()
            };
            cheapest_chain_to_tree(inst, s, free_vms, &nodes, &cfg, rng)
        },
    )?;
    let forest = assemble(instance, &trees, &buckets, config)?;
    let stats = SolveStats {
        candidate_chains: trees.len(),
        ..SolveStats::default()
    };
    finish(instance, forest, stats)
}

/// Builds an eNEMP-style candidate from `s`: for each candidate last VM `m`,
/// span `{s, m} ∪ D` and chain `s → m`; keep the cheapest.
fn enemp_candidate(
    instance: &SofInstance,
    s: NodeId,
    vms: &[NodeId],
    config: &SofdaConfig,
    rng: &mut Rng64,
) -> Option<CandidateTree> {
    let network = &instance.network;
    let chain_len = instance.chain_len();
    if chain_len == 0 {
        return Some(CandidateTree::bare(s));
    }
    if vms.len() < chain_len {
        return None;
    }
    let cm = sof_core::ChainMetric::build(network, s, vms, config.source_cost())?;
    let chains = cm.chains_to_all_vms(chain_len, config.stroll, rng);
    let mut best: Option<(Cost, CandidateTree)> = None;
    for (target, stroll, chain_cost) in chains {
        let m = cm.node(target);
        // The NEMP tree must span the chosen VM.
        let mut terminals = vec![s, m];
        terminals.extend_from_slice(&instance.request.destinations);
        let Ok(tree) = config.steiner.solve(network.graph(), &terminals) else {
            continue;
        };
        let total = chain_cost + tree.cost;
        if best.as_ref().is_none_or(|(b, _)| total < *b) {
            let (nodes, positions) = cm.expand(&stroll);
            best = Some((
                total,
                CandidateTree {
                    source: s,
                    chain_nodes: nodes,
                    chain_positions: positions,
                    chain_cost,
                    attach: m,
                },
            ));
        }
    }
    best.map(|(_, t)| t)
}

/// **eNEMP** baseline: NEMP-style trees (chain terminates at a VM the tree
/// spans) with the iterative multi-source extension.
///
/// # Errors
///
/// Same conditions as [`solve_st`].
pub fn solve_enemp(
    instance: &SofInstance,
    config: &SofdaConfig,
) -> Result<SolveOutcome, SolveError> {
    let mut rng = Rng64::seed_from(config.seed ^ 0xEE);
    // First tree: best source by plain Steiner cost, then NEMP candidate.
    let (root, _) = best_root(instance, config)?;
    let first = enemp_candidate(instance, root, &instance.network.vms(), config, &mut rng)
        .ok_or_else(|| SolveError::Infeasible("no service chain fits the VM pool".into()))?;
    let cfg = *config;
    let (_, trees, buckets) = grow_forest(
        instance,
        vec![first],
        config,
        move |inst, s, free_vms, rng| enemp_candidate(inst, s, free_vms, &cfg, rng),
    )?;
    let forest = assemble(instance, &trees, &buckets, config)?;
    let stats = SolveStats {
        candidate_chains: trees.len(),
        ..SolveStats::default()
    };
    finish(instance, forest, stats)
}

/// **ST** behind the [`sof_core::Solver`] trait.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct St;

impl sof_core::Solver for St {
    fn name(&self) -> &'static str {
        "ST"
    }

    fn solve(
        &self,
        instance: &SofInstance,
        config: &SofdaConfig,
    ) -> Result<SolveOutcome, SolveError> {
        solve_st(instance, config)
    }
}

/// **eST** behind the [`sof_core::Solver`] trait.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Est;

impl sof_core::Solver for Est {
    fn name(&self) -> &'static str {
        "eST"
    }

    fn solve(
        &self,
        instance: &SofInstance,
        config: &SofdaConfig,
    ) -> Result<SolveOutcome, SolveError> {
        solve_est(instance, config)
    }
}

/// **eNEMP** behind the [`sof_core::Solver`] trait.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Enemp;

impl sof_core::Solver for Enemp {
    fn name(&self) -> &'static str {
        "eNEMP"
    }

    fn solve(
        &self,
        instance: &SofInstance,
        config: &SofdaConfig,
    ) -> Result<SolveOutcome, SolveError> {
        solve_enemp(instance, config)
    }
}

fn finish(
    instance: &SofInstance,
    mut forest: sof_core::ServiceForest,
    stats: SolveStats,
) -> Result<SolveOutcome, SolveError> {
    forest.shorten(&instance.network);
    forest.validate(instance).map_err(SolveError::Internal)?;
    let cost = forest.cost(&instance.network);
    Ok(SolveOutcome {
        forest,
        cost,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sof_core::{solve_sofda, Network, Request, ServiceChain};
    use sof_graph::{generators, CostRange};

    fn random_instance(seed: u64, chain: usize) -> SofInstance {
        let mut rng = Rng64::seed_from(seed);
        let g = generators::gnp_connected(26, 0.15, CostRange::new(1.0, 8.0), &mut rng);
        let mut net = Network::all_switches(g);
        let picks = rng.sample_indices(26, 15);
        for &v in &picks[..7] {
            net.make_vm(NodeId::new(v), Cost::new(rng.range_f64(0.5, 5.0)));
        }
        SofInstance::new(
            net,
            Request::new(
                picks[7..10].iter().map(|&i| NodeId::new(i)).collect(),
                picks[10..14].iter().map(|&i| NodeId::new(i)).collect(),
                ServiceChain::with_len(chain),
            ),
        )
        .unwrap()
    }

    #[test]
    fn all_baselines_feasible() {
        for seed in 0..10 {
            let inst = random_instance(seed, 2);
            for (name, out) in [
                ("st", solve_st(&inst, &SofdaConfig::default())),
                ("est", solve_est(&inst, &SofdaConfig::default())),
                ("enemp", solve_enemp(&inst, &SofdaConfig::default())),
            ] {
                let out = out.unwrap_or_else(|e| panic!("{name} failed on seed {seed}: {e}"));
                out.forest
                    .validate(&inst)
                    .unwrap_or_else(|e| panic!("{name} invalid on seed {seed}: {e}"));
            }
        }
    }

    #[test]
    fn est_no_worse_than_st() {
        for seed in 0..8 {
            let inst = random_instance(seed + 20, 2);
            let st = solve_st(&inst, &SofdaConfig::default()).unwrap();
            let est = solve_est(&inst, &SofdaConfig::default()).unwrap();
            // eST starts from the ST solution and only accepts improvements
            // on the pricing model; the final assembled cost tracks closely.
            assert!(
                est.cost.total() <= st.cost.total() * 1.2 + Cost::new(1e-6),
                "seed {seed}: eST {} way above ST {}",
                est.cost.total(),
                st.cost.total()
            );
        }
    }

    #[test]
    fn sofda_usually_wins() {
        let mut sofda_total = 0.0;
        let mut best_baseline_total = 0.0;
        for seed in 0..10 {
            let inst = random_instance(seed + 40, 3);
            let sofda = solve_sofda(&inst, &SofdaConfig::default()).unwrap();
            let st = solve_st(&inst, &SofdaConfig::default()).unwrap();
            let est = solve_est(&inst, &SofdaConfig::default()).unwrap();
            let enemp = solve_enemp(&inst, &SofdaConfig::default()).unwrap();
            sofda_total += sofda.cost.total().value();
            best_baseline_total += st
                .cost
                .total()
                .min(est.cost.total())
                .min(enemp.cost.total())
                .value();
        }
        assert!(
            sofda_total <= best_baseline_total * 1.05,
            "SOFDA aggregate {sofda_total} vs best baseline {best_baseline_total}"
        );
    }

    #[test]
    fn zero_chain_baselines() {
        let inst = random_instance(3, 0);
        for out in [
            solve_st(&inst, &SofdaConfig::default()).unwrap(),
            solve_est(&inst, &SofdaConfig::default()).unwrap(),
            solve_enemp(&inst, &SofdaConfig::default()).unwrap(),
        ] {
            out.forest.validate(&inst).unwrap();
            assert_eq!(out.cost.setup, Cost::ZERO);
        }
    }
}

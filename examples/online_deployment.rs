//! Online deployment (Fig. 12): one long-lived multicast group churns as
//! viewers come and go. The incremental `OnlineSession` engine serves each
//! event with §VII-C join/leave dynamics on a standing forest — re-running
//! the solver only when accumulated churn drifts past its threshold —
//! while link and VM costs follow the convex Fortz–Thorup model so
//! congested resources get expensive.
//!
//! Run with `cargo run --release --example online_deployment`.

use sof::core::{OnlineConfig, OnlineSession, SofdaConfig};
use sof::sim::{ChurnParams, ChurnStream};
use sof::topo::{build_instance, softlayer, ScenarioParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = softlayer();
    let mut p = ScenarioParams::paper_defaults().with_seed(7);
    p.vm_count = topo.dc_nodes.len() * 5; // 5 VMs per data center
    p.chain_len = 3;
    let inst = build_instance(&topo, &p);
    let mut session = OnlineSession::new(
        inst,
        sof::solvers::by_name("SOFDA").expect("registered"),
        SofdaConfig::default().with_seed(7),
        OnlineConfig::default(),
    );
    let mut churn = ChurnStream::new(ChurnParams::softlayer(), 27, 7);
    println!("arrival  |D|  mode         Δ(join/leave)  cost      accumulated");
    for arrival in 1..=20 {
        let request = if arrival == 1 {
            churn.current().clone()
        } else {
            churn.next_request()
        };
        let dests = request.destinations.len();
        let report = session.arrive(request)?;
        session
            .forest()
            .expect("standing forest")
            .validate(session.instance())?;
        println!(
            "{arrival:>7}  {dests:>3}  {:<11}  (+{},-{})        {:>8.1}  {:>11.1}",
            if report.rebuilt {
                "full solve"
            } else {
                "incremental"
            },
            report.joined,
            report.left,
            report.forest_cost,
            report.accumulated_cost,
        );
    }
    let st = session.stats();
    println!(
        "\n{} arrivals: {} full solves, {} incremental events ({} joins, {} leaves, {} reroutes)",
        st.arrivals, st.full_solves, st.incremental_events, st.joins, st.leaves, st.reroutes
    );
    Ok(())
}

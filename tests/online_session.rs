//! Acceptance tests for the incremental `OnlineSession` engine: on a seeded
//! small instance the incremental path must stay validator-feasible after
//! every event, actually use the incremental operations, and keep its
//! accumulated cost within a bounded factor of the from-scratch path.

use sof::core::{EmbedMode, OnlineConfig, OnlineSession, Request, SofdaConfig};
use sof::sim::{ChurnParams, ChurnStream, WorkloadParams};
use sof::topo::{build_instance, softlayer, ScenarioParams};

fn churn_events(count: usize, seed: u64) -> Vec<Request> {
    let params = ChurnParams {
        base: WorkloadParams {
            sources: (4, 6),
            destinations: (6, 9),
            chain_len: 3,
            demand_mbps: 5.0,
        },
        leaves: (1, 2),
        joins: (1, 2),
    };
    let mut stream = ChurnStream::new(params, 27, seed);
    let mut events = vec![stream.current().clone()];
    while events.len() < count {
        events.push(stream.next_request());
    }
    events
}

fn session(mode: EmbedMode, seed: u64) -> OnlineSession {
    let topo = softlayer();
    let mut p = ScenarioParams::paper_defaults().with_seed(seed);
    p.vm_count = topo.dc_nodes.len() * 5;
    p.chain_len = 3;
    OnlineSession::new(
        build_instance(&topo, &p),
        sof::solvers::by_name("SOFDA").expect("registered"),
        SofdaConfig::default().with_seed(seed),
        OnlineConfig::default().with_mode(mode),
    )
}

#[test]
fn incremental_stays_feasible_and_tracks_from_scratch_cost() {
    let events = churn_events(14, 41);
    let mut scratch = session(EmbedMode::FromScratch, 41);
    let mut incremental = session(EmbedMode::Incremental, 41);
    for request in &events {
        scratch.arrive(request.clone()).unwrap();
        incremental.arrive(request.clone()).unwrap();
        // The incremental path's standing forest validates after every event…
        incremental
            .forest()
            .expect("standing forest")
            .validate(incremental.instance())
            .unwrap();
        // …and serves exactly the requested group.
        let mut served: Vec<_> = incremental
            .forest()
            .unwrap()
            .walks
            .iter()
            .map(|w| w.destination)
            .collect();
        served.sort_unstable();
        served.dedup();
        let mut wanted = request.destinations.clone();
        wanted.sort_unstable();
        assert_eq!(served, wanted);
    }
    // The engine really took the incremental path, not rebuild-every-time.
    let st = incremental.stats();
    assert_eq!(st.arrivals, events.len());
    assert!(
        st.incremental_events > st.full_solves,
        "incremental path unused: {st:?}"
    );
    assert_eq!(scratch.stats().full_solves, events.len());
    // Accumulated cost stays within a bounded factor of from-scratch.
    let (inc, scr) = (incremental.accumulated_cost(), scratch.accumulated_cost());
    assert!(inc > 0.0 && scr > 0.0);
    assert!(
        inc <= scr * 2.5 + 1e-6,
        "incremental accumulated {inc} way above from-scratch {scr}"
    );
    assert!(
        scr <= inc * 2.5 + 1e-6,
        "from-scratch accumulated {scr} way above incremental {inc}"
    );
}

#[test]
fn online_session_is_deterministic() {
    let run = || {
        let events = churn_events(8, 17);
        let mut s = session(EmbedMode::Incremental, 17);
        for request in &events {
            s.arrive(request.clone()).unwrap();
        }
        (s.accumulated_cost(), s.stats().full_solves)
    };
    assert_eq!(run(), run());
}

/// Coverage for the drift-triggered full-rebuild fallback: a seeded
/// high-churn stream (3–5 viewers in and out per event against a 6–9
/// viewer group) with a tight drift threshold of 0.5·|D| **provably**
/// crosses the threshold. The test mirrors the engine's drift arithmetic
/// event by event — whenever accumulated churn since the last solve
/// reaches the threshold the engine *must* rebuild — and checks the
/// standing forest stays feasible after every rebuild.
#[test]
fn high_churn_crosses_drift_threshold_and_rebuilds() {
    let drift = 0.5;
    let params = ChurnParams {
        base: WorkloadParams {
            sources: (4, 6),
            destinations: (6, 9),
            chain_len: 3,
            demand_mbps: 5.0,
        },
        leaves: (3, 5),
        joins: (3, 5),
    };
    let mut stream = ChurnStream::new(params, 27, 97);
    let topo = softlayer();
    let mut p = ScenarioParams::paper_defaults().with_seed(97);
    p.vm_count = topo.dc_nodes.len() * 5;
    p.chain_len = 3;
    let mut session = OnlineSession::new(
        build_instance(&topo, &p),
        sof::solvers::by_name("SOFDA").expect("registered"),
        SofdaConfig::default().with_seed(97),
        OnlineConfig::default().with_rebuild_drift(drift),
    );

    let mut prev: Vec<_> = Vec::new();
    let mut churn_since_solve = 0usize;
    let mut predicted_rebuilds = 0usize;
    for step in 0..12 {
        let request = if step == 0 {
            stream.current().clone()
        } else {
            stream.next_request()
        };
        // Mirror the engine's drift bookkeeping: symmetric-difference churn
        // of this event plus churn accumulated since the last full solve.
        let old: std::collections::BTreeSet<_> = prev.iter().copied().collect();
        let new: std::collections::BTreeSet<_> = request.destinations.iter().copied().collect();
        let event_churn = old.symmetric_difference(&new).count();
        let threshold = drift * new.len().max(1) as f64;
        let must_rebuild = step == 0 || (churn_since_solve + event_churn) as f64 >= threshold;

        let report = session.arrive(request.clone()).unwrap();
        if must_rebuild {
            predicted_rebuilds += 1;
            assert!(
                report.rebuilt,
                "step {step}: churn {churn_since_solve}+{event_churn} crossed \
                 {threshold} but the engine did not rebuild"
            );
        }
        churn_since_solve = if report.rebuilt {
            0
        } else {
            churn_since_solve + event_churn
        };
        // Post-rebuild (and post-join/leave) costs stay feasible.
        assert!(report.forest_cost.is_finite() && report.forest_cost > 0.0);
        session
            .forest()
            .expect("standing forest")
            .validate(session.instance())
            .unwrap();
        prev = request.destinations;
    }
    // The stream provably crossed the threshold after the initial embed…
    assert!(
        predicted_rebuilds > 1,
        "high-churn stream never crossed the drift threshold; weaken the scenario"
    );
    // …and the engine's counters agree: every predicted rebuild ran a full
    // solve, and churn-heavy events still left room for incremental work.
    assert!(session.stats().full_solves >= predicted_rebuilds);
    assert!(session.stats().arrivals == 12);
}

//! The [`Solver`] abstraction: every SOF embedding algorithm — SOFDA, the
//! baselines, the exact branch-and-bound, distributed SOFDA — behind one
//! object-safe trait, so harnesses, registries and the online engine can
//! treat them uniformly.

use crate::{solve_sofda, solve_sofda_ss, SofInstance, SofdaConfig, SolveError, SolveOutcome};

/// An SOF embedding algorithm.
///
/// Implementations must be deterministic for a fixed [`SofdaConfig::seed`]
/// and must return forests that pass
/// [`ServiceForest::validate`](crate::ServiceForest::validate) on success.
///
/// The trait is object-safe: registries hand out `Box<dyn Solver>` and the
/// online engine owns one without knowing which algorithm it drives.
///
/// # Examples
///
/// ```
/// use sof_core::{Solver, Sofda, SofdaConfig, Network, Request, ServiceChain, SofInstance};
/// use sof_graph::{Cost, Graph, NodeId};
///
/// let mut g = Graph::with_nodes(3);
/// g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(1.0));
/// g.add_edge(NodeId::new(1), NodeId::new(2), Cost::new(1.0));
/// let mut net = Network::all_switches(g);
/// net.make_vm(NodeId::new(1), Cost::new(1.0));
/// let inst = SofInstance::new(
///     net,
///     Request::new(vec![NodeId::new(0)], vec![NodeId::new(2)], ServiceChain::with_len(1)),
/// )?;
/// let solver: Box<dyn Solver> = Box::new(Sofda);
/// assert_eq!(solver.name(), "SOFDA");
/// let out = solver.solve(&inst, &SofdaConfig::default())?;
/// out.forest.validate(&inst)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub trait Solver: Send + Sync {
    /// Display name matching the paper's legends (e.g. `"SOFDA"`, `"eST"`).
    fn name(&self) -> &'static str;

    /// Embeds a service overlay forest for `instance`.
    fn solve(
        &self,
        instance: &SofInstance,
        config: &SofdaConfig,
    ) -> Result<SolveOutcome, SolveError>;

    /// Capability hint: the largest destination count this solver handles at
    /// practical cost (`None` = unbounded). Harnesses skip oversized
    /// instances instead of calling [`Solver::solve`].
    fn max_destinations(&self) -> Option<usize> {
        None
    }

    /// Capability hint: the largest source count supported (`None` =
    /// unbounded; the single-source SOFDA-SS returns `Some(1)`).
    fn max_sources(&self) -> Option<usize> {
        None
    }

    /// Whether `instance` falls within this solver's capability hints.
    fn supports(&self, instance: &SofInstance) -> bool {
        self.max_destinations()
            .is_none_or(|m| instance.request.destinations.len() <= m)
            && self
                .max_sources()
                .is_none_or(|m| instance.request.sources.len() <= m)
    }
}

/// Algorithm 2 — the paper's `3ρST`-approximation for the general
/// multi-source case ([`solve_sofda`] behind the [`Solver`] trait).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Sofda;

impl Solver for Sofda {
    fn name(&self) -> &'static str {
        "SOFDA"
    }

    fn solve(
        &self,
        instance: &SofInstance,
        config: &SofdaConfig,
    ) -> Result<SolveOutcome, SolveError> {
        solve_sofda(instance, config)
    }
}

/// Algorithm 1 — the `(2+ρST)`-approximation for a single source
/// ([`solve_sofda_ss`] behind the [`Solver`] trait).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SofdaSs;

impl Solver for SofdaSs {
    fn name(&self) -> &'static str {
        "SOFDA-SS"
    }

    fn solve(
        &self,
        instance: &SofInstance,
        config: &SofdaConfig,
    ) -> Result<SolveOutcome, SolveError> {
        solve_sofda_ss(instance, config)
    }

    fn max_sources(&self) -> Option<usize> {
        Some(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Network, Request, ServiceChain};
    use sof_graph::{Cost, Graph, NodeId};

    fn line_instance(sources: usize) -> SofInstance {
        let mut g = Graph::with_nodes(6);
        for i in 0..5 {
            g.add_edge(NodeId::new(i), NodeId::new(i + 1), Cost::new(1.0));
        }
        let mut net = Network::all_switches(g);
        net.make_vm(NodeId::new(2), Cost::new(1.0));
        net.make_vm(NodeId::new(3), Cost::new(1.0));
        SofInstance::new(
            net,
            Request::new(
                (0..sources).map(NodeId::new).collect(),
                vec![NodeId::new(5)],
                ServiceChain::with_len(1),
            ),
        )
        .unwrap()
    }

    #[test]
    fn trait_objects_solve() {
        let inst = line_instance(1);
        for solver in [&Sofda as &dyn Solver, &SofdaSs as &dyn Solver] {
            assert!(solver.supports(&inst), "{}", solver.name());
            let out = solver.solve(&inst, &SofdaConfig::default()).unwrap();
            out.forest.validate(&inst).unwrap();
        }
    }

    #[test]
    fn capability_hints_gate_instances() {
        let multi = line_instance(2);
        assert!(Sofda.supports(&multi));
        assert!(!SofdaSs.supports(&multi));
        assert_eq!(SofdaSs.max_sources(), Some(1));
        assert_eq!(Sofda.max_destinations(), None);
        // SOFDA-SS really does reject what its hint predicts.
        assert!(matches!(
            SofdaSs.solve(&multi, &SofdaConfig::default()),
            Err(SolveError::SingleSourceOnly { sources: 2 })
        ));
    }
}

//! Branch-and-bound closing the one-VNF-per-VM constraint (IP constraint
//! (6)) over the exact relaxation of [`crate::directed_steiner`].

use crate::dw::{Arborescence, Restrictions, SteinerRelaxation};
use crate::layered::LayeredGraph;
use sof_core::{DestWalk, ServiceForest, SofInstance};
use sof_graph::{Cost, NodeId};
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared upper bound on the optimum: the incumbent's cost as `f64` bits
/// (`f64::INFINITY` before any incumbent exists). Workers evaluating
/// sibling branches read it to drop children that cannot improve on the
/// best known forest. It is re-synced from the incumbent **once per branch
/// batch** (the search loop itself is sequential) and never written
/// elsewhere, so every sibling in a batch observes the same bound and the
/// search stays bit-deterministic for any thread count.
struct IncumbentBound(AtomicU64);

impl IncumbentBound {
    fn new() -> IncumbentBound {
        IncumbentBound(AtomicU64::new(f64::INFINITY.to_bits()))
    }

    /// Mirrors the current incumbent (`None` = no bound yet).
    fn sync<T>(&self, incumbent: &Option<(Cost, T)>) {
        let cost = incumbent.as_ref().map_or(f64::INFINITY, |(c, _)| c.value());
        self.0.store(cost.to_bits(), Ordering::SeqCst);
    }

    fn beats(&self, cost: Cost) -> bool {
        cost.value() < f64::from_bits(self.0.load(Ordering::SeqCst))
    }
}

/// Exact solver outcome.
#[derive(Clone, Debug)]
pub struct ExactOutcome {
    /// The optimal (or best found, see `optimal`) feasible forest.
    pub forest: ServiceForest,
    /// Its total cost.
    pub cost: Cost,
    /// Valid lower bound on the optimum (root relaxation).
    pub lower_bound: Cost,
    /// `true` when the search proved optimality within the node budget.
    pub optimal: bool,
    /// Branch-and-bound nodes explored.
    pub nodes_explored: usize,
}

/// Errors from the exact solver.
#[derive(Clone, Debug, PartialEq)]
pub enum ExactError {
    /// No feasible forest exists (unreachable destinations or VM shortage).
    Infeasible,
    /// The search exhausted its node budget without any incumbent.
    BudgetExhausted,
}

impl std::fmt::Display for ExactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExactError::Infeasible => write!(f, "no feasible service overlay forest exists"),
            ExactError::BudgetExhausted => {
                write!(f, "node budget exhausted before finding a feasible forest")
            }
        }
    }
}

impl std::error::Error for ExactError {}

/// VMs processing more than one VNF in a relaxed solution, with the layers
/// they process.
fn violations(lg: &LayeredGraph, arb: &Arborescence) -> HashMap<usize, Vec<usize>> {
    let mut used: HashMap<usize, Vec<usize>> = HashMap::new();
    for &aid in &arb.arcs {
        if let Some((vm, layer)) = lg.arcs[aid].process {
            used.entry(vm.index()).or_default().push(layer);
        }
    }
    used.retain(|_, layers| layers.len() > 1);
    used
}

/// Solves SOF **exactly** via best-first branch-and-bound on the layered
/// relaxation; `node_budget` bounds the number of relaxations solved.
/// Branches are evaluated on [`sof_par::current_threads`] workers — see
/// [`solve_exact_with`] for an explicit thread count and the determinism
/// contract.
///
/// # Errors
///
/// [`ExactError::Infeasible`] when the instance has no feasible forest;
/// [`ExactError::BudgetExhausted`] when the budget ends before a feasible
/// incumbent exists (the bound is still reported through the error path in
/// practice — budget ≥ a few hundred suffices for the paper's instances).
pub fn solve_exact(instance: &SofInstance, node_budget: usize) -> Result<ExactOutcome, ExactError> {
    solve_exact_with(instance, node_budget, 0)
}

/// [`solve_exact`] with an explicit worker count (`0` = the configured
/// default, [`sof_par::current_threads`]).
///
/// When a branch-and-bound node is expanded, its child branches (one
/// Dreyfus–Wagner relaxation per VNF-placement restriction) are forked
/// across `threads` workers sharing an atomic incumbent bound that prunes
/// children which cannot beat the best known forest. The bound only moves
/// between batches, so the node expansion order, explored-node count, and
/// the returned forest/cost are **bit-identical for every thread count** —
/// `tests/parallel_determinism.rs` pins this.
///
/// # Errors
///
/// As for [`solve_exact`].
pub fn solve_exact_with(
    instance: &SofInstance,
    node_budget: usize,
    threads: usize,
) -> Result<ExactOutcome, ExactError> {
    let lg = LayeredGraph::build(instance, Cost::ZERO);
    let memo = SteinerRelaxation::new();
    let root_rel = memo
        .solve(&lg, &Restrictions::default())
        .ok_or(ExactError::Infeasible)?;
    let lower_bound = root_rel.cost;

    // Best-first queue ordered by relaxation cost.
    struct Node {
        bound: Cost,
        restrictions: Restrictions,
        arb: Arborescence,
    }
    impl PartialEq for Node {
        fn eq(&self, other: &Self) -> bool {
            self.bound == other.bound
        }
    }
    impl Eq for Node {}
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            other.bound.cmp(&self.bound) // min-heap
        }
    }

    let mut heap = BinaryHeap::new();
    heap.push(Node {
        bound: root_rel.cost,
        restrictions: Restrictions::default(),
        arb: root_rel.clone(),
    });
    // Incumbent sources: the B&B may terminate on budget with the best
    // found so far, which we seed from (a) a diving heuristic and (b) the
    // SOFDA approximation — making `cost ≤ SOFDA` structural.
    enum Incumbent {
        Arb(Arborescence),
        Forest(ServiceForest),
    }
    let mut incumbent: Option<(Cost, Incumbent)> = None;
    let bound = IncumbentBound::new();
    if let Ok(sofda) = sof_core::solve_sofda(instance, &sof_core::SofdaConfig::default()) {
        incumbent = Some((sofda.cost.total(), Incumbent::Forest(sofda.forest)));
    }
    {
        let mut r = Restrictions::default();
        let mut arb = root_rel;
        for _ in 0..instance.network.vms().len() + 1 {
            let viol = violations(&lg, &arb);
            if viol.is_empty() {
                if incumbent.as_ref().is_none_or(|(c, _)| arb.cost < *c) {
                    incumbent = Some((arb.cost, Incumbent::Arb(arb)));
                }
                break;
            }
            let (&vm, layers) = viol
                .iter()
                .max_by_key(|(_, layers)| layers.len())
                .expect("non-empty");
            let keep = *layers.iter().min().expect("non-empty");
            r.restrict(vm, 1u32 << keep);
            match memo.solve(&lg, &r) {
                Some(next) => arb = next,
                None => break,
            }
        }
    }
    let mut explored = 0usize;
    let mut budget_cut = false;
    let chain_len = lg.chain_len;

    while let Some(node) = heap.pop() {
        if explored >= node_budget {
            budget_cut = true;
            break;
        }
        explored += 1;
        if let Some((inc, _)) = &incumbent {
            if node.bound >= *inc {
                continue; // pruned; heap is ordered so all the rest prune too
            }
        }
        let viol = violations(&lg, &node.arb);
        if viol.is_empty() {
            // Feasible — candidate incumbent.
            if incumbent
                .as_ref()
                .is_none_or(|(inc, _)| node.arb.cost < *inc)
            {
                incumbent = Some((node.arb.cost, Incumbent::Arb(node.arb)));
            }
            continue;
        }
        // Branch on the most-violated VM: one child per single allowed
        // layer, plus a "banned entirely" child. The children's relaxations
        // are independent, so they fork across the worker pool; each worker
        // checks the shared incumbent bound before handing its child back.
        let (&vm, layers) = viol
            .iter()
            .max_by_key(|(_, layers)| layers.len())
            .expect("non-empty violations");
        let _ = layers;
        let mut masks: Vec<u32> = (0..chain_len).map(|i| 1u32 << i).collect();
        masks.push(0);
        bound.sync(&incumbent);
        let children = sof_par::par_map_indexed(&masks, threads, |_, &mask| {
            let mut r = node.restrictions.clone();
            r.restrict(vm, mask);
            memo.solve(&lg, &r)
                .and_then(|arb| bound.beats(arb.cost).then_some((r, arb)))
        })
        .unwrap_or_else(|e| panic!("exact branch evaluation: {e}"));
        for (r, arb) in children.into_iter().flatten() {
            heap.push(Node {
                bound: arb.cost,
                restrictions: r,
                arb,
            });
        }
    }

    let optimal = heap.is_empty()
        || incumbent
            .as_ref()
            .is_some_and(|(inc, _)| heap.peek().is_none_or(|n| n.bound >= *inc));
    // Exhausting the whole tree without an incumbent is a proof of
    // infeasibility; running out of budget is not.
    let (cost, winner) = incumbent.ok_or(if budget_cut {
        ExactError::BudgetExhausted
    } else {
        ExactError::Infeasible
    })?;
    let forest = match winner {
        Incumbent::Arb(arb) => extract_forest(instance, &lg, &arb)?,
        Incumbent::Forest(f) => f,
    };
    debug_assert!(forest.cost(&instance.network).total().approx_eq(cost));
    Ok(ExactOutcome {
        forest,
        cost,
        lower_bound,
        optimal,
        nodes_explored: explored,
    })
}

/// Converts a feasible arborescence into per-destination walks.
fn extract_forest(
    instance: &SofInstance,
    lg: &LayeredGraph,
    arb: &Arborescence,
) -> Result<ServiceForest, ExactError> {
    // Child adjacency over chosen arcs.
    let mut out: HashMap<usize, Vec<usize>> = HashMap::new();
    for &aid in &arb.arcs {
        out.entry(lg.arcs[aid].from).or_default().push(aid);
    }
    // Parent pointers via DFS from the root (the arc set is an arborescence,
    // but dedup may have merged branches — a DFS tree is still well-defined).
    let mut parent_arc: HashMap<usize, usize> = HashMap::new();
    let mut stack = vec![lg.root];
    let mut seen: HashSet<usize> = HashSet::from([lg.root]);
    while let Some(x) = stack.pop() {
        for &aid in out.get(&x).into_iter().flatten() {
            let to = lg.arcs[aid].to;
            if seen.insert(to) {
                parent_arc.insert(to, aid);
                stack.push(to);
            }
        }
    }
    let mut walks = Vec::with_capacity(lg.terminals.len());
    for (di, &t) in lg.terminals.iter().enumerate() {
        let dest = instance.request.destinations[di];
        if !seen.contains(&t) {
            return Err(ExactError::Infeasible);
        }
        // Climb to the root collecting arcs.
        let mut arcs_rev = Vec::new();
        let mut cur = t;
        while cur != lg.root {
            let aid = parent_arc[&cur];
            arcs_rev.push(aid);
            cur = lg.arcs[aid].from;
        }
        arcs_rev.reverse();
        // First arc is root→(s,0).
        let mut nodes: Vec<NodeId> = Vec::new();
        let mut vnf_positions = Vec::new();
        for (i, &aid) in arcs_rev.iter().enumerate() {
            let arc = &lg.arcs[aid];
            if i == 0 {
                let (s, layer) = lg.decode(arc.to).expect("root arc targets a source");
                debug_assert_eq!(layer, 0);
                nodes.push(s);
                continue;
            }
            match arc.process {
                None => {
                    let (v, _) = lg.decode(arc.to).expect("transport target");
                    nodes.push(v);
                }
                Some((_vm, _layer)) => {
                    vnf_positions.push(nodes.len() - 1);
                }
            }
        }
        walks.push(DestWalk {
            destination: dest,
            source: nodes[0],
            nodes,
            vnf_positions,
        });
    }
    Ok(ServiceForest::new(lg.chain_len, walks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sof_core::{solve_sofda, Network, Request, ServiceChain, SofdaConfig};
    use sof_graph::{generators, CostRange, Graph, Rng64};

    fn random_instance(seed: u64, chain: usize, dests: usize) -> SofInstance {
        let mut rng = Rng64::seed_from(seed);
        let g = generators::gnp_connected(14, 0.25, CostRange::new(1.0, 6.0), &mut rng);
        let mut net = Network::all_switches(g);
        let picks = rng.sample_indices(14, 6 + 2 + dests);
        for &v in &picks[..6] {
            net.make_vm(NodeId::new(v), Cost::new(rng.range_f64(0.5, 4.0)));
        }
        SofInstance::new(
            net,
            Request::new(
                vec![NodeId::new(picks[6]), NodeId::new(picks[7])],
                picks[8..8 + dests]
                    .iter()
                    .map(|&i| NodeId::new(i))
                    .collect(),
                ServiceChain::with_len(chain),
            ),
        )
        .unwrap()
    }

    #[test]
    fn exact_is_feasible_and_below_sofda() {
        for seed in 0..10 {
            let inst = random_instance(seed, 2, 3);
            let exact = solve_exact(&inst, 500).unwrap();
            exact.forest.validate(&inst).unwrap();
            assert!(exact.optimal, "seed {seed} did not prove optimality");
            let sofda = solve_sofda(&inst, &SofdaConfig::default()).unwrap();
            assert!(
                exact.cost <= sofda.cost.total() + Cost::new(1e-9),
                "seed {seed}: exact {} > SOFDA {}",
                exact.cost,
                sofda.cost.total()
            );
            // ρST = 2 ⇒ SOFDA ≤ 6·OPT (Theorem 3); in practice much closer.
            assert!(
                sofda.cost.total() <= exact.cost * 6.0 + Cost::new(1e-9),
                "seed {seed}: SOFDA violated the 3ρST bound"
            );
            assert!(exact.lower_bound <= exact.cost + Cost::new(1e-9));
        }
    }

    #[test]
    fn uniqueness_enforced() {
        // Line where reusing one cheap VM for both VNFs would be optimal in
        // the relaxation; the exact solver must separate them.
        let mut g = Graph::with_nodes(4);
        for i in 0..3 {
            g.add_edge(NodeId::new(i), NodeId::new(i + 1), Cost::new(1.0));
        }
        let mut net = Network::all_switches(g);
        net.make_vm(NodeId::new(1), Cost::new(5.0));
        net.make_vm(NodeId::new(2), Cost::new(1.0));
        let inst = SofInstance::new(
            net,
            Request::new(
                vec![NodeId::new(0)],
                vec![NodeId::new(3)],
                ServiceChain::with_len(2),
            ),
        )
        .unwrap();
        let out = solve_exact(&inst, 200).unwrap();
        out.forest.validate(&inst).unwrap();
        // Relaxation: 5 (VM 2 twice); feasible optimum: 3 links + 5 + 1 = 9.
        assert_eq!(out.lower_bound, Cost::new(5.0));
        assert_eq!(out.cost, Cost::new(9.0));
        assert!(out.optimal);
    }

    #[test]
    fn infeasible_when_no_vms() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(1.0));
        let inst = SofInstance::new(
            Network::all_switches(g),
            Request::new(
                vec![NodeId::new(0)],
                vec![NodeId::new(1)],
                ServiceChain::with_len(1),
            ),
        )
        .unwrap();
        assert_eq!(solve_exact(&inst, 10).unwrap_err(), ExactError::Infeasible);
    }

    #[test]
    fn memoized_relaxations_are_reproducible() {
        // The restriction memo must not leak state across calls or alter
        // the search: two full solves of the same instance agree exactly,
        // including the explored-node count and the forest structure.
        let inst = random_instance(11, 2, 3);
        let a = solve_exact(&inst, 500).unwrap();
        let b = solve_exact(&inst, 500).unwrap();
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.nodes_explored, b.nodes_explored);
        assert_eq!(a.optimal, b.optimal);
        assert_eq!(a.forest, b.forest);
    }

    #[test]
    fn zero_chain_is_pure_steiner() {
        let inst = random_instance(3, 0, 3);
        let out = solve_exact(&inst, 100).unwrap();
        out.forest.validate(&inst).unwrap();
        assert_eq!(out.forest.cost(&inst.network).setup, Cost::ZERO);
        assert!(out.optimal);
    }
}

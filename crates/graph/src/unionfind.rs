//! Disjoint-set union (union-find) with path compression and union by rank.

/// A disjoint-set forest over dense indices `0..n`.
///
/// # Examples
///
/// ```
/// use sof_graph::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(!uf.union(1, 0)); // already joined
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(0, 2));
/// assert_eq!(uf.set_count(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Finds the representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] as usize != cur {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi as u32;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.sets -= 1;
        true
    }

    /// Returns `true` when `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets remaining.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` when the structure tracks no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merging_reduces_set_count() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.set_count(), 5);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.union(0, 3);
        assert_eq!(uf.set_count(), 2);
        assert!(uf.connected(1, 2));
        assert!(!uf.connected(1, 4));
    }

    #[test]
    fn union_everything() {
        let mut uf = UnionFind::new(100);
        for i in 1..100 {
            uf.union(0, i);
        }
        assert_eq!(uf.set_count(), 1);
        assert!(uf.connected(17, 83));
    }

    #[test]
    fn path_compression_keeps_results_consistent() {
        let mut uf = UnionFind::new(8);
        for i in 0..7 {
            uf.union(i, i + 1);
        }
        let root = uf.find(0);
        for i in 0..8 {
            assert_eq!(uf.find(i), root);
        }
    }
}

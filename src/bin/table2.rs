//! Legacy shim: `table2` now delegates to the bundled `table2` preset spec
//! (see `crates/spec/specs/table2.toml`); same flags, same output.
fn main() {
    sof_spec::shim::legacy_main("table2");
}

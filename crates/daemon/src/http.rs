//! A hand-rolled HTTP/1.1 subset over [`std::net::TcpStream`] — request
//! parsing with hard header/body bounds, response writing, keep-alive.
//!
//! The daemon carries its own wire layer for the same reason `sof_spec`
//! carries its own TOML/JSON: the build vendors no real third-party crates.
//! The subset is exactly what a JSON control plane needs — request line,
//! `Content-Length`-framed bodies, `Connection` negotiation — and every
//! violation maps to a status code, never a panic.

use std::io::{self, ErrorKind, Read, Write};
use std::net::TcpStream;

/// Hard cap on the request line plus all headers (bytes).
pub const MAX_HEAD: usize = 16 * 1024;

/// A parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// The path component, query string stripped.
    pub path: String,
    /// Body bytes (`Content-Length`-framed; empty when absent).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

/// Why [`read_request`] produced no request.
#[derive(Debug)]
pub enum ReadError {
    /// Clean end of stream before any request bytes — the peer hung up
    /// between requests; not an error.
    Closed,
    /// The read timed out mid-request (maps to 408).
    TimedOut,
    /// An I/O failure; the connection is unusable.
    Io(io::Error),
    /// A protocol violation with the status code to answer before closing.
    Bad {
        /// HTTP status to answer with (400 / 413 / 431 / 501).
        status: u16,
        /// Human-readable reason, returned verbatim in the error body.
        message: String,
    },
}

fn bad(status: u16, message: impl Into<String>) -> ReadError {
    ReadError::Bad {
        status,
        message: message.into(),
    }
}

fn map_io(e: io::Error) -> ReadError {
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => ReadError::TimedOut,
        _ => ReadError::Io(e),
    }
}

/// Reads one request from the stream, honoring the socket's read timeout
/// and the `max_body` bound.
///
/// # Errors
///
/// [`ReadError::Closed`] on clean EOF before the first byte,
/// [`ReadError::TimedOut`] when the socket timeout expires mid-request,
/// [`ReadError::Bad`] for protocol violations (the caller answers with the
/// embedded status and closes), [`ReadError::Io`] otherwise.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, ReadError> {
    // Head: byte-at-a-time until the blank line, hard-capped. Requests are
    // small and the OS buffers the socket, so simplicity beats throughput
    // here; bodies below are read in bulk.
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD {
            return Err(bad(431, "request head exceeds 16 KiB"));
        }
        match stream.read(&mut byte) {
            Ok(0) => {
                if head.is_empty() {
                    return Err(ReadError::Closed);
                }
                return Err(bad(400, "connection closed mid-request"));
            }
            Ok(_) => head.push(byte[0]),
            Err(e) if head.is_empty() && e.kind() == ErrorKind::ConnectionReset => {
                return Err(ReadError::Closed)
            }
            Err(e) => return Err(map_io(e)),
        }
    }
    let head = String::from_utf8_lossy(&head);
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m.to_ascii_uppercase(), t, v),
        _ => return Err(bad(400, format!("malformed request line '{request_line}'"))),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(bad(501, format!("unsupported protocol '{version}'")));
    }
    let path = target.split('?').next().unwrap_or("").to_string();

    let mut content_length = 0usize;
    let mut keep_alive = version == "HTTP/1.1";
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        match name.to_ascii_lowercase().as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| bad(400, format!("bad Content-Length '{value}'")))?;
            }
            "connection" => keep_alive = !value.eq_ignore_ascii_case("close"),
            "transfer-encoding" => {
                return Err(bad(
                    501,
                    "Transfer-Encoding is not supported; frame bodies with Content-Length",
                ));
            }
            _ => {}
        }
    }
    if content_length > max_body {
        return Err(bad(
            413,
            format!("request body of {content_length} bytes exceeds the {max_body}-byte limit"),
        ));
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).map_err(map_io)?;
    Ok(Request {
        method,
        path,
        body,
        keep_alive,
    })
}

/// The canonical reason phrase for the status codes the daemon uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        _ => "Unknown",
    }
}

/// Writes one JSON response. A trailing newline after the body keeps
/// `curl` output readable without changing any parser's view.
///
/// # Errors
///
/// Propagates socket write failures; the caller drops the connection.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    json_body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let body = format!("{json_body}\n");
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        reason(status),
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

//! Solver configuration and outcome types shared by SOFDA / SOFDA-SS.

use crate::{ConflictStats, ForestCost, ForestError, ServiceForest};
use sof_graph::{Cost, NodeId};
use sof_kstroll::StrollSolver;
use sof_steiner::{SteinerError, SteinerSolver};
use std::fmt;

/// Configuration for the SOF solvers.
///
/// # Examples
///
/// ```
/// use sof_core::SofdaConfig;
/// use sof_steiner::SteinerSolver;
///
/// let config = SofdaConfig::default().with_seed(7);
/// assert_eq!(config.seed, 7);
/// assert_eq!(config.steiner, SteinerSolver::Mehlhorn);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SofdaConfig {
    /// Steiner solver used for the distribution trees / auxiliary graph
    /// (`ρST = 2` for the approximations).
    pub steiner: SteinerSolver,
    /// k-stroll solver used for service chains.
    pub stroll: StrollSolver,
    /// Seed for the randomized components (color coding).
    pub seed: u64,
    /// Appendix D: per-source setup cost (`None` = §III's free sources).
    pub source_setup_cost: Option<Cost>,
    /// Run the final walk-shortening pass (Example 7's optimization).
    pub shorten: bool,
}

impl Default for SofdaConfig {
    fn default() -> SofdaConfig {
        SofdaConfig {
            steiner: SteinerSolver::Mehlhorn,
            stroll: StrollSolver::Auto,
            seed: 0x50FDA,
            source_setup_cost: None,
            shorten: true,
        }
    }
}

impl SofdaConfig {
    /// Replaces the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> SofdaConfig {
        self.seed = seed;
        self
    }

    /// Replaces the Steiner solver.
    pub fn with_steiner(mut self, steiner: SteinerSolver) -> SofdaConfig {
        self.steiner = steiner;
        self
    }

    /// Replaces the k-stroll solver.
    pub fn with_stroll(mut self, stroll: StrollSolver) -> SofdaConfig {
        self.stroll = stroll;
        self
    }

    /// Enables Appendix D source setup costs.
    pub fn with_source_setup_cost(mut self, cost: Cost) -> SofdaConfig {
        self.source_setup_cost = Some(cost);
        self
    }

    /// The source setup cost in effect (zero by default).
    pub fn source_cost(&self) -> Cost {
        self.source_setup_cost.unwrap_or(Cost::ZERO)
    }
}

/// Statistics gathered during a solve.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SolveStats {
    /// Candidate service chains evaluated.
    pub candidate_chains: usize,
    /// Conflict-resolution counters (SOFDA only).
    pub conflicts: ConflictStats,
    /// Cost of the intermediate Steiner tree (auxiliary graph for SOFDA,
    /// best distribution tree for SOFDA-SS).
    pub steiner_cost: Cost,
}

/// Result of a successful solve.
#[derive(Clone, Debug)]
pub struct SolveOutcome {
    /// The feasible forest.
    pub forest: ServiceForest,
    /// Its cost (consistent with `forest.cost(&network)`).
    pub cost: ForestCost,
    /// Solve statistics.
    pub stats: SolveStats,
}

/// Errors produced by the solvers.
#[derive(Clone, Debug)]
pub enum SolveError {
    /// The instance has no feasible forest with the given VM set (e.g. not
    /// enough VMs for the chain).
    Infeasible(String),
    /// SOFDA-SS was invoked with more than one source.
    SingleSourceOnly {
        /// Number of sources supplied.
        sources: usize,
    },
    /// The Steiner stage failed (disconnected terminals).
    Steiner(SteinerError),
    /// Internal invariant violated; carries the validator's complaint.
    Internal(ForestError),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible(why) => write!(f, "infeasible instance: {why}"),
            SolveError::SingleSourceOnly { sources } => {
                write!(f, "SOFDA-SS requires exactly one source, got {sources}")
            }
            SolveError::Steiner(e) => write!(f, "steiner stage failed: {e}"),
            SolveError::Internal(e) => write!(f, "internal invariant violated: {e}"),
        }
    }
}

impl std::error::Error for SolveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SolveError::Steiner(e) => Some(e),
            SolveError::Internal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SteinerError> for SolveError {
    fn from(e: SteinerError) -> SolveError {
        SolveError::Steiner(e)
    }
}

/// Identifies a destination's serving chain when reporting outcomes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChainAssignment {
    /// The destination.
    pub destination: NodeId,
    /// Its selected source.
    pub source: NodeId,
    /// The anchor VM its tail hangs from.
    pub anchor: NodeId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let c = SofdaConfig::default()
            .with_seed(1)
            .with_steiner(SteinerSolver::Kmb)
            .with_stroll(StrollSolver::Greedy)
            .with_source_setup_cost(Cost::new(3.0));
        assert_eq!(c.seed, 1);
        assert_eq!(c.steiner, SteinerSolver::Kmb);
        assert_eq!(c.stroll, StrollSolver::Greedy);
        assert_eq!(c.source_cost(), Cost::new(3.0));
        assert_eq!(SofdaConfig::default().source_cost(), Cost::ZERO);
    }

    #[test]
    fn error_display() {
        let e = SolveError::SingleSourceOnly { sources: 3 };
        assert!(e.to_string().contains("exactly one source"));
    }
}

//! Fig. 8: SoftLayer one-time deployment sweeps (incl. the exact column).
use sof_bench::{run_comparison_sweeps, Args};
use sof_topo::softlayer;

fn main() {
    let args = Args::parse(
        "fig8 — SoftLayer one-time deployment sweeps (incl. the exact \"CPLEX\" column)",
        &[
            ("seeds", "averaging width (default 5)"),
            ("seed", "base RNG seed (default 1000)"),
            (
                "exact",
                "1 = include the exact column, 0 = skip it (default 1)",
            ),
            (
                "limit",
                "truncate every sweep to its first N values (default 0 = all)",
            ),
        ],
    );
    let seeds: u64 = args.seeds(5);
    let base: u64 = args.get("seed", 1000);
    let exact: usize = args.get("exact", 1);
    let limit: usize = args.get("limit", 0);
    println!("# Fig. 8 — SoftLayer one-time deployment (seeds = {seeds})");
    let algos = sof_solvers::comparison_set(exact == 1);
    run_comparison_sweeps(
        "Fig. 8",
        &softlayer(),
        "SoftLayer",
        &algos,
        seeds,
        base,
        limit,
    );
}

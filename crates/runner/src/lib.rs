//! Streaming churn-at-scale simulation: 10k+ concurrent multicast groups,
//! millions of viewer events, bounded memory.
//!
//! The paper's §VII-C dynamics (fig12) step a handful of
//! [`sof_core::OnlineSession`]s over a few hundred pre-drawn events. This
//! crate is the production-scale counterpart: a [`Runner`] drives a
//! [`sof_core::SessionPool`] over a **lazily generated** event timeline —
//! the event list is never materialized, and no end-of-run report is
//! accumulated. Three pieces compose:
//!
//! * **Lazy per-group event streams** ([`GroupProcess`]): every group's
//!   history (home region, roamed viewer pool, initial snapshot, churn
//!   snapshots, lifetime) is a pure function of `(run_seed, group_id)`,
//!   drawn on demand from [`sof_sim::ChurnStream`] over a region-local
//!   node pool. Retired groups are replaced in their pool slot by fresh
//!   ones, so concurrency stays constant forever.
//! * **Wards** ([`Ward`]): pluggable stop conditions — a deterministic
//!   event budget, a wall-clock safety net, or convergence of the
//!   windowed mean forest cost — checked between lockstep rounds.
//! * **Sinks** ([`Sink`]): a subscriber layer that receives every
//!   [`Record`] (meta, per-event samples, windowed aggregates, summary)
//!   the moment it is produced. [`JsonlSink`] streams the stable golden
//!   line format; [`Runner::subscribe`] hands out an `mpsc` channel.
//!
//! Stepping is lockstep: each round, every live slot pulls one event from
//! its group's stream and the pool arrives them via order-preserving
//! `sof_par` workers — results and record streams are bit-identical for
//! any `SOF_THREADS`. Memory is O(groups + open window), independent of
//! the event count.
//!
//! # Examples
//!
//! ```
//! use sof_runner::{CollectSink, Record, Runner, RunnerConfig, Ward};
//!
//! let mut cfg = RunnerConfig::new("doc");
//! cfg.groups = 4;
//! cfg.window = 8;
//! cfg.wards = vec![Ward::MaxEvents(16)];
//! let mut runner = Runner::new(cfg).unwrap();
//! let (sink, records) = CollectSink::new();
//! runner.add_sink(Box::new(sink));
//! let summary = runner.run().unwrap();
//! assert_eq!(summary.events, 16);
//! let records = records.lock().unwrap();
//! assert!(matches!(records.first(), Some(Record::Meta { .. })));
//! assert!(matches!(records.last(), Some(Record::Summary(_))));
//! ```
//!
//! For long runs, move the runner to a background thread and keep the
//! handle: [`Runner::spawn`] → [`RunnerHandle::stop`] /
//! [`RunnerHandle::join`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod events;
mod runner;
mod sink;
mod ward;

pub use events::{GroupChurnConfig, GroupEvent, GroupProcess};
pub use runner::{Runner, RunnerConfig, RunnerHandle, Summary};
pub use sink::{
    CollectSink, EngineTotals, EventRecord, FailureRecord, FailureTotals, JsonlSink, Record,
    RecoveryRecord, RecoverySummary, Sink, SummaryRecord, WindowRecord,
};
pub use ward::{StopReason, Ward};

//! Cross-crate integration tests: the full pipeline from topology through
//! embedding, exactness checks, rule compilation, distribution and QoE.

use sof::core::{solve_sofda, solve_sofda_ss, SofdaConfig};
use sof::exact::{solve_exact, IpFormulation};
use sof::graph::{Cost, NodeId, Rng64};
use sof::sdn::{distributed_sofda, RuleTable};
use sof::topo::{build_instance, cogent, softlayer, testbed, ScenarioParams};

fn small_params(seed: u64) -> ScenarioParams {
    let mut p = ScenarioParams::paper_defaults().with_seed(seed);
    p.destinations = 4;
    p.sources = 5;
    p.vm_count = 12;
    p
}

#[test]
fn sofda_within_theorem3_bound_of_exact() {
    // Theorem 3 with ρST = 2: SOFDA ≤ 6·OPT. Empirically it is far closer
    // (the paper reports near-optimal); we assert both the hard bound and a
    // loose practical envelope.
    let topo = softlayer();
    let mut worst: f64 = 0.0;
    for seed in 0..6 {
        let inst = build_instance(&topo, &small_params(seed));
        let sofda = solve_sofda(&inst, &SofdaConfig::default()).unwrap();
        let exact = solve_exact(&inst, 600).unwrap();
        // `exact.cost` is OPT when proven, otherwise an upper bound on OPT;
        // either way OPT ≥ lower_bound and SOFDA ≤ 6·OPT ⇒ SOFDA ≤ 6·cost.
        let sofda_cost = sofda.cost.total().value();
        assert!(
            sofda_cost >= exact.lower_bound.value() - 1e-9,
            "seed {seed}: SOFDA beat the relaxation bound"
        );
        assert!(
            sofda_cost <= 6.0 * exact.cost.value() + 1e-9,
            "seed {seed}: 3ρST bound violated"
        );
        if exact.optimal {
            assert!(sofda_cost >= exact.cost.value() - 1e-9);
            worst = worst.max(sofda_cost / exact.cost.value());
        }
    }
    assert!(worst < 2.0, "empirical ratio unexpectedly bad: {worst}");
}

#[test]
fn sofda_ss_within_theorem2_bound() {
    let topo = softlayer();
    for seed in 10..14 {
        let mut p = small_params(seed);
        p.sources = 1;
        let inst = build_instance(&topo, &p);
        let ss = solve_sofda_ss(&inst, &SofdaConfig::default()).unwrap();
        let exact = solve_exact(&inst, 600).unwrap();
        let ratio = ss.cost.total().value() / exact.cost.value();
        // Theorem 2: (2 + ρST) = 4 with ρST = 2. When optimality is not
        // proven, `exact.cost` still upper-bounds OPT, so the ≤ 4 check is
        // valid; the ≥ 1 check only applies to proven optima.
        assert!(ratio <= 4.0 + 1e-9, "seed {seed}: {ratio}");
        if exact.optimal {
            assert!(ratio >= 1.0 - 1e-9, "seed {seed}: {ratio}");
        }
    }
}

#[test]
fn every_solver_satisfies_the_paper_ip() {
    let topo = softlayer();
    for seed in 20..24 {
        let inst = build_instance(&topo, &small_params(seed));
        let ip = IpFormulation::build(&inst);
        for (name, forest, cost) in [
            {
                let o = solve_sofda(&inst, &SofdaConfig::default()).unwrap();
                ("sofda", o.forest, o.cost.total())
            },
            {
                let o = sof::baselines::solve_est(&inst, &SofdaConfig::default()).unwrap();
                ("est", o.forest, o.cost.total())
            },
            {
                let o = sof::baselines::solve_enemp(&inst, &SofdaConfig::default()).unwrap();
                ("enemp", o.forest, o.cost.total())
            },
            {
                let o = sof::baselines::solve_st(&inst, &SofdaConfig::default()).unwrap();
                ("st", o.forest, o.cost.total())
            },
        ] {
            let obj = ip
                .check_forest(&forest)
                .unwrap_or_else(|e| panic!("{name} violates IP on seed {seed}: {e}"));
            assert!(obj.approx_eq(cost), "{name} objective mismatch on {seed}");
        }
    }
}

#[test]
fn compiled_rules_deliver_on_real_topologies() {
    for (topo, seeds) in [(softlayer(), 30..33u64), (cogent(), 33..35)] {
        for seed in seeds {
            let inst = build_instance(&topo, &small_params(seed));
            let out = solve_sofda(&inst, &SofdaConfig::default()).unwrap();
            let rules = RuleTable::compile(&out.forest);
            assert!(
                rules.delivers(&inst.network, &out.forest),
                "{} seed {seed}",
                topo.name
            );
        }
    }
}

#[test]
fn distributed_controllers_agree_with_centralized() {
    let topo = cogent();
    let mut p = small_params(40);
    p.destinations = 5;
    let inst = build_instance(&topo, &p);
    let central = solve_sofda(&inst, &SofdaConfig::default()).unwrap();
    let dist = distributed_sofda(&inst, 4, &SofdaConfig::default()).unwrap();
    dist.outcome.forest.validate(&inst).unwrap();
    let (c, d) = (
        central.cost.total().value(),
        dist.outcome.cost.total().value(),
    );
    assert!(
        d <= c * 1.6 + 1e-9 && c <= d * 1.6 + 1e-9,
        "centralized {c} vs distributed {d}"
    );
}

#[test]
fn qoe_pipeline_prefers_better_embeddings() {
    // Aggregate over seeds: SOFDA's rebuffering must not exceed eST's
    // (Table II's ordering), because it picks less congested paths.
    use sof::sim::{simulate_sessions, EnvironmentProfile, PlayerConfig, Session};
    use std::collections::HashMap;
    let mut totals = [0.0f64; 2]; // [sofda, est]
    for seed in 0..8u64 {
        let mut rng = Rng64::seed_from(9000 + seed);
        let topo = testbed();
        let mut net = sof::core::Network::all_switches(topo.graph.clone());
        for v in 0..14 {
            let vm = net.add_node(sof::core::NodeKind::Vm, Cost::new(1.0));
            net.graph_mut().add_edge(vm, NodeId::new(v), Cost::ZERO);
        }
        let picks = rng.sample_indices(14, 6);
        let inst = sof::core::SofInstance::new(
            net,
            sof::core::Request::new(
                vec![NodeId::new(picks[0]), NodeId::new(picks[1])],
                picks[2..6].iter().map(|&i| NodeId::new(i)).collect(),
                sof::core::ServiceChain::from_names(["transcoder", "watermark"]),
            ),
        )
        .unwrap();
        let mut caps: HashMap<sof::graph::EdgeId, f64> = HashMap::new();
        for (e, edge) in inst.network.graph().edges() {
            let stub = edge.u.index() >= 14 || edge.v.index() >= 14;
            caps.insert(
                e,
                if stub {
                    1000.0
                } else {
                    rng.range_f64(4.5, 9.0)
                },
            );
        }
        for (slot, out) in [
            solve_sofda(&inst, &SofdaConfig::default()).unwrap(),
            sof::baselines::solve_est(&inst, &SofdaConfig::default()).unwrap(),
        ]
        .into_iter()
        .enumerate()
        {
            // Multicast: one session per service tree.
            let mut by_tree: std::collections::BTreeMap<
                NodeId,
                std::collections::BTreeSet<sof::graph::EdgeId>,
            > = Default::default();
            for w in &out.forest.walks {
                let entry = by_tree.entry(w.source).or_default();
                for p in w.nodes.windows(2) {
                    if let Some(e) = inst.network.graph().edge_between(p[0], p[1]) {
                        entry.insert(e);
                    }
                }
            }
            let sessions: Vec<Session> = by_tree
                .values()
                .map(|links| Session {
                    links: links.iter().copied().collect(),
                })
                .collect();
            let qoe = simulate_sessions(
                &sessions,
                &caps,
                &PlayerConfig::default(),
                &EnvironmentProfile::hardware_testbed(),
                1.25,
            );
            totals[slot] += qoe
                .iter()
                .filter(|q| q.rebuffering_s.is_finite())
                .map(|q| q.rebuffering_s)
                .sum::<f64>();
        }
    }
    assert!(
        totals[0] <= totals[1] * 1.1,
        "SOFDA rebuffering {} vs eST {}",
        totals[0],
        totals[1]
    );
}

#[test]
fn replicated_vms_support_repeated_functions() {
    // One physical VM hosting two VNFs via replication (§III's device).
    let mut g = sof::graph::Graph::with_nodes(3);
    g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(1.0));
    g.add_edge(NodeId::new(1), NodeId::new(2), Cost::new(1.0));
    let mut net = sof::core::Network::all_switches(g);
    net.make_vm(NodeId::new(1), Cost::new(2.0));
    net.replicate_vm(NodeId::new(1), 1);
    let inst = sof::core::SofInstance::new(
        net,
        sof::core::Request::new(
            vec![NodeId::new(0)],
            vec![NodeId::new(2)],
            sof::core::ServiceChain::with_len(2),
        ),
    )
    .unwrap();
    let out = solve_sofda(&inst, &SofdaConfig::default()).unwrap();
    out.forest.validate(&inst).unwrap();
    assert_eq!(out.forest.stats().used_vms, 2);
}

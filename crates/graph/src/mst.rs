//! Minimum spanning tree / forest via Kruskal's algorithm.

use crate::{Cost, EdgeId, Graph, UnionFind};

/// Computes a minimum spanning forest of `graph` with Kruskal's algorithm.
///
/// Returns the selected edge ids. If the graph is connected the result is a
/// spanning tree with `node_count - 1` edges; otherwise one tree per
/// component.
///
/// Ties are broken by edge id, so the result is deterministic.
///
/// # Examples
///
/// ```
/// use sof_graph::{Graph, Cost, NodeId, minimum_spanning_forest};
///
/// let mut g = Graph::with_nodes(3);
/// g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(1.0));
/// g.add_edge(NodeId::new(1), NodeId::new(2), Cost::new(2.0));
/// g.add_edge(NodeId::new(0), NodeId::new(2), Cost::new(9.0));
/// let mst = minimum_spanning_forest(&g);
/// let total: Cost = mst.iter().map(|&e| g.edge_cost(e)).sum();
/// assert_eq!(total, Cost::new(3.0));
/// ```
pub fn minimum_spanning_forest(graph: &Graph) -> Vec<EdgeId> {
    let mut order: Vec<EdgeId> = graph.edges().map(|(id, _)| id).collect();
    order.sort_by_key(|&e| (graph.edge_cost(e), e));
    let mut uf = UnionFind::new(graph.node_count());
    let mut picked = Vec::with_capacity(graph.node_count().saturating_sub(1));
    for e in order {
        let edge = graph.edge(e);
        if uf.union(edge.u.index(), edge.v.index()) {
            picked.push(e);
            if picked.len() + 1 == graph.node_count() {
                break;
            }
        }
    }
    picked
}

/// Total cost of a set of edges in `graph`.
pub fn edge_set_cost(graph: &Graph, edges: &[EdgeId]) -> Cost {
    edges.iter().map(|&e| graph.edge_cost(e)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    #[test]
    fn spanning_tree_of_connected_graph() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(1.0));
        g.add_edge(NodeId::new(1), NodeId::new(2), Cost::new(2.0));
        g.add_edge(NodeId::new(2), NodeId::new(3), Cost::new(3.0));
        g.add_edge(NodeId::new(3), NodeId::new(0), Cost::new(4.0));
        g.add_edge(NodeId::new(0), NodeId::new(2), Cost::new(10.0));
        let mst = minimum_spanning_forest(&g);
        assert_eq!(mst.len(), 3);
        assert_eq!(edge_set_cost(&g, &mst), Cost::new(6.0));
    }

    #[test]
    fn forest_of_disconnected_graph() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(1.0));
        g.add_edge(NodeId::new(2), NodeId::new(3), Cost::new(2.0));
        let mst = minimum_spanning_forest(&g);
        assert_eq!(mst.len(), 2);
    }

    #[test]
    fn prefers_cheap_parallel_edge() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(7.0));
        let cheap = g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(1.0));
        let mst = minimum_spanning_forest(&g);
        assert_eq!(mst, vec![cheap]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new();
        assert!(minimum_spanning_forest(&g).is_empty());
    }
}

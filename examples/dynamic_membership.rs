//! Dynamic group membership (§VII-C): viewers join and leave, VNFs are
//! inserted and removed, all without re-running SOFDA from scratch.
//!
//! Run with `cargo run --release --example dynamic_membership`.

use sof::core::dynamics;
use sof::core::SofdaConfig;
use sof::topo::{build_instance, softlayer, ScenarioParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = softlayer();
    let mut p = ScenarioParams::paper_defaults().with_seed(3);
    p.destinations = 4;
    let mut inst = build_instance(&topo, &p);
    let out = sof::core::solve_sofda(&inst, &SofdaConfig::default())?;
    let mut forest = out.forest;
    let report = |label: &str, inst: &sof::core::SofInstance, f: &sof::core::ServiceForest| {
        println!(
            "{label:<28} cost {:>8.2}  dests {}  VMs {}",
            f.cost(&inst.network).total().value(),
            f.stats().destinations,
            f.stats().used_vms
        );
    };
    report("initial SOFDA forest", &inst, &forest);

    // A new viewer joins.
    let newcomer = inst
        .network
        .graph()
        .nodes()
        .find(|n| {
            n.index() < 27
                && !inst.request.destinations.contains(n)
                && !inst.request.sources.contains(n)
        })
        .expect("free access node");
    dynamics::destination_join(&mut inst, &mut forest, newcomer)?;
    forest.validate(&inst)?;
    report("after join", &inst, &forest);

    // One viewer leaves.
    let leaver = inst.request.destinations[0];
    dynamics::destination_leave(&mut inst, &mut forest, leaver)?;
    forest.validate(&inst)?;
    report("after leave", &inst, &forest);

    // The operator inserts a firewall after f1...
    dynamics::vnf_insert(&mut inst, &mut forest, 1, "firewall")?;
    forest.validate(&inst)?;
    report("after VNF insert", &inst, &forest);

    // ...and later drops the original f2.
    dynamics::vnf_delete(&mut inst, &mut forest, 2)?;
    forest.validate(&inst)?;
    report("after VNF delete", &inst, &forest);

    // Congestion: all link costs spike; reroute the forest.
    let ids: Vec<_> = inst.network.graph().edges().map(|(e, _)| e).collect();
    for e in ids {
        let c = inst.network.graph().edge_cost(e);
        inst.network.graph_mut().set_edge_cost(e, c * 3.0);
    }
    dynamics::reroute_all(&inst, &mut forest);
    forest.validate(&inst)?;
    report("after congestion reroute", &inst, &forest);
    Ok(())
}

//! Offline stand-in for the real `serde` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the minimal surface the sources use: the
//! `Serialize` / `Deserialize` marker traits (blanket-implemented) and
//! the derive macros (which accept `#[serde(...)]` helper attributes and
//! expand to nothing). Swap the `serde` path dependency for the real
//! crates.io package to get actual serialization support; no source
//! changes are needed.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

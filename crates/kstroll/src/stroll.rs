//! The k-stroll result type.

use crate::Metric;
use sof_graph::Cost;

/// A solution of the k-stroll problem: a simple path in the metric instance
/// visiting exactly `k` distinct nodes from the source to the target.
///
/// (In a metric graph the shortest walk visiting at least `k` distinct nodes
/// can always be shortcut into a simple path on exactly `k` nodes, which is
/// how Procedure 2 of the paper consumes it.)
#[derive(Clone, Debug, PartialEq)]
pub struct Stroll {
    /// Visited nodes in order; `nodes[0]` is the source, last is the target.
    pub nodes: Vec<usize>,
    /// Total metric cost of the path.
    pub cost: Cost,
}

impl Stroll {
    /// Builds a stroll from a node sequence, computing its cost.
    pub fn from_nodes<M: Metric + ?Sized>(metric: &M, nodes: Vec<usize>) -> Stroll {
        let cost = metric.path_cost(&nodes);
        Stroll { nodes, cost }
    }

    /// Number of visited nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` for an empty stroll.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Validates the structural invariants of a k-stroll solution.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated invariant.
    pub fn validate<M: Metric + ?Sized>(
        &self,
        metric: &M,
        source: usize,
        target: usize,
        k: usize,
    ) -> Result<(), String> {
        if self.nodes.len() != k {
            return Err(format!("expected {k} nodes, found {}", self.nodes.len()));
        }
        if self.nodes.first() != Some(&source) {
            return Err(format!("stroll must start at {source}"));
        }
        if self.nodes.last() != Some(&target) {
            return Err(format!("stroll must end at {target}"));
        }
        let mut sorted = self.nodes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != self.nodes.len() {
            return Err("stroll revisits a node".into());
        }
        if let Some(&bad) = self.nodes.iter().find(|&&v| v >= metric.len()) {
            return Err(format!("node {bad} out of range"));
        }
        let recomputed = metric.path_cost(&self.nodes);
        if !recomputed.approx_eq(self.cost) {
            return Err(format!("cost mismatch: {} vs {}", self.cost, recomputed));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DenseMetric;

    fn line_metric(n: usize) -> DenseMetric {
        DenseMetric::from_fn(n, |i, j| Cost::new((i as f64 - j as f64).abs()))
    }

    #[test]
    fn from_nodes_computes_cost() {
        let m = line_metric(5);
        let s = Stroll::from_nodes(&m, vec![0, 2, 4]);
        assert_eq!(s.cost, Cost::new(4.0));
        s.validate(&m, 0, 4, 3).unwrap();
    }

    #[test]
    fn validation_catches_errors() {
        let m = line_metric(5);
        let dup = Stroll::from_nodes(&m, vec![0, 2, 2, 4]);
        assert!(dup.validate(&m, 0, 4, 4).is_err());
        let wrong_end = Stroll::from_nodes(&m, vec![0, 2, 3]);
        assert!(wrong_end.validate(&m, 0, 4, 3).is_err());
        let wrong_k = Stroll::from_nodes(&m, vec![0, 4]);
        assert!(wrong_k.validate(&m, 0, 4, 3).is_err());
    }
}

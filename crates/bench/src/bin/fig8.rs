//! Fig. 8: SoftLayer one-time deployment sweeps (incl. the exact column).
use sof_bench::{average, print_header, print_row, Algo, Args};
use sof_core::SofdaConfig;
use sof_topo::{build_instance, softlayer, ScenarioParams};

fn sweep(
    name: &str,
    values: &[usize],
    seeds: u64,
    base: u64,
    with_exact: bool,
    apply: impl Fn(&mut ScenarioParams, usize),
) {
    println!("\n## Fig. 8 — cost vs {name} (SoftLayer)\n");
    let algos = Algo::comparison_set(with_exact);
    let mut hdr = vec![name];
    hdr.extend(algos.iter().map(|a| a.name()));
    print_header(&hdr);
    let topo = softlayer();
    for &v in values {
        let mut cells = vec![v.to_string()];
        for &algo in &algos {
            let make = |seed: u64| {
                let mut p = ScenarioParams::paper_defaults().with_seed(seed);
                apply(&mut p, v);
                build_instance(&topo, &p)
            };
            match average(algo, seeds, base, &SofdaConfig::default(), make) {
                Some((c, _, _)) => cells.push(format!("{c:.1}")),
                None => cells.push("-".into()),
            }
        }
        print_row(&cells);
    }
}

fn main() {
    let args = Args::capture();
    let seeds: u64 = args.seeds(5);
    let base: u64 = args.get("seed", 1000);
    let exact: usize = args.get("exact", 1);
    println!("# Fig. 8 — SoftLayer one-time deployment (seeds = {seeds})");
    sweep(
        "#sources",
        &[2, 8, 14, 20, 26],
        seeds,
        base,
        exact == 1,
        |p, v| p.sources = v,
    );
    sweep(
        "#destinations",
        &[2, 4, 6, 8, 10],
        seeds,
        base,
        exact == 1,
        |p, v| p.destinations = v,
    );
    sweep(
        "#VMs",
        &[5, 15, 25, 35, 45],
        seeds,
        base,
        exact == 1,
        |p, v| p.vm_count = v,
    );
    sweep(
        "chain length",
        &[3, 4, 5, 6, 7],
        seeds,
        base,
        exact == 1,
        |p, v| p.chain_len = v,
    );
}

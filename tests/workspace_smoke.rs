//! Workspace-wiring smoke test: drive the full pipeline through the `sof::`
//! facade re-exports only, and pin down determinism of the seeded path.

use sof::core::{solve_sofda, SofdaConfig};
use sof::topo::{build_instance, softlayer, ScenarioParams};

fn small_params(seed: u64) -> ScenarioParams {
    let mut p = ScenarioParams::paper_defaults().with_seed(seed);
    p.destinations = 4;
    p.sources = 5;
    p.vm_count = 12;
    p
}

/// `topo::build_instance` → `core::solve_sofda` → `forest.validate`, all via
/// the facade, twice with the same `Rng64` seed: byte-identical outcomes.
#[test]
fn facade_pipeline_is_deterministic() {
    let topo = softlayer();
    let run = |seed: u64| {
        let inst = build_instance(&topo, &small_params(seed));
        let out = solve_sofda(&inst, &SofdaConfig::default().with_seed(seed)).unwrap();
        out.forest.validate(&inst).unwrap();
        (inst, out)
    };
    let (inst_a, out_a) = run(42);
    let (inst_b, out_b) = run(42);
    // Same seed → same generated instance…
    assert_eq!(inst_a.request.sources, inst_b.request.sources);
    assert_eq!(inst_a.request.destinations, inst_b.request.destinations);
    assert_eq!(inst_a.network.vms(), inst_b.network.vms());
    // …and the same embedded forest at the same cost.
    assert_eq!(out_a.forest, out_b.forest);
    assert!(out_a.cost.total().approx_eq(out_b.cost.total()));

    // A different seed exercises a genuinely different instance (guards
    // against the generator ignoring its seed).
    let (inst_c, _) = run(43);
    assert!(
        inst_a.request.sources != inst_c.request.sources
            || inst_a.request.destinations != inst_c.request.destinations
            || inst_a.network.vms() != inst_c.network.vms(),
        "seed 43 reproduced seed 42's instance exactly"
    );
}

/// The distributed solver is also deterministic for a fixed seed, even
/// though controllers run as real threads (matrices are applied in domain
/// order, not arrival order).
#[test]
fn distributed_pipeline_is_deterministic() {
    let topo = softlayer();
    let inst = build_instance(&topo, &small_params(7));
    let run = || {
        sof::sdn::distributed_sofda(&inst, 3, &SofdaConfig::default().with_seed(7))
            .unwrap()
            .outcome
    };
    let (a, b) = (run(), run());
    assert_eq!(a.forest, b.forest);
    assert!(a.cost.total().approx_eq(b.cost.total()));
}

/// Every re-exported member crate is reachable through the facade.
#[test]
fn facade_reexports_are_wired() {
    use sof::graph::{Cost, Graph, NodeId};

    // graph
    let mut g = Graph::with_nodes(3);
    g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(1.0));
    g.add_edge(NodeId::new(1), NodeId::new(2), Cost::new(1.0));
    // steiner
    let tree = sof::steiner::mehlhorn(&g, &[NodeId::new(0), NodeId::new(2)]).unwrap();
    assert_eq!(tree.cost, Cost::new(2.0));
    // kstroll
    let m = sof::kstroll::DenseMetric::from_fn(3, |i, j| Cost::new((i as f64 - j as f64).abs()));
    assert_eq!(
        sof::kstroll::greedy_stroll(&m, 0, 2, 3).unwrap().cost,
        Cost::new(2.0)
    );
    // core + exact + baselines + sdn on one tiny shared instance
    let mut net = sof::core::Network::all_switches(g);
    net.make_vm(NodeId::new(1), Cost::new(1.0));
    let inst = sof::core::SofInstance::new(
        net,
        sof::core::Request::new(
            vec![NodeId::new(0)],
            vec![NodeId::new(2)],
            sof::core::ServiceChain::with_len(1),
        ),
    )
    .unwrap();
    let out = solve_sofda(&inst, &SofdaConfig::default()).unwrap();
    let exact = sof::exact::solve_exact(&inst, 100).unwrap();
    assert!(out.cost.total().value() >= exact.cost.value() - 1e-9);
    let st = sof::baselines::solve_st(&inst, &SofdaConfig::default()).unwrap();
    assert!(st.cost.total().value() >= exact.cost.value() - 1e-9);
    let rules = sof::sdn::RuleTable::compile(&out.forest);
    assert!(rules.delivers(&inst.network, &out.forest));
    // sim
    let q: sof::sim::EventQueue<u32> = sof::sim::EventQueue::new();
    assert!(q.is_empty());
}

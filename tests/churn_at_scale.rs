//! Acceptance tests for the streaming churn-at-scale subsystem: the JSONL
//! record stream is byte-identical across worker-thread counts and across
//! repeated runs, the committed miniature golden stays in lockstep with
//! the engine, record streams are ordered and bounded by the live pool,
//! and wards / the stop handle end runs for the stated reasons.

use sof::runner::{CollectSink, Record, Runner, RunnerConfig, StopReason, Ward};
use sof::spec::{presets, run_churn_stream, RunOptions, ScenarioSpec, Workload};
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A `Write` that can be handed to [`run_churn_stream`] (which takes the
/// writer by value) while the test keeps a handle to the bytes.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn into_string(self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The bundled full-scale preset, scaled down for the test suite.
fn mini_spec(groups: usize, events: u64, window: u64, emit_events: bool) -> ScenarioSpec {
    let mut spec = presets::preset("churn-at-scale").unwrap().unwrap();
    let Workload::ChurnAtScale(s) = &mut spec.workload else {
        panic!("churn-at-scale preset lost its workload kind");
    };
    s.groups = groups;
    s.events = events;
    s.window = window;
    s.emit_events = emit_events;
    spec
}

fn stream(spec: &ScenarioSpec, threads: usize) -> String {
    let buf = SharedBuf::default();
    let opts = RunOptions {
        threads,
        ..RunOptions::default()
    };
    run_churn_stream(spec, &opts, buf.clone()).unwrap();
    buf.into_string()
}

/// Event-mode JSONL is byte-identical for 1 and 4 worker threads, and for
/// repeated runs of the same spec (lockstep rounds + order-preserving
/// `sof_par` workers + per-`(seed, group)` lazy streams).
#[test]
fn jsonl_stream_is_thread_count_independent() {
    let spec = mini_spec(24, 240, 48, true);
    let one = stream(&spec, 1);
    let four = stream(&spec, 4);
    assert!(one.contains("\"type\":\"event\""), "emit=events honoured");
    assert_eq!(one, four, "thread count changed the record bytes");
    assert_eq!(one, stream(&spec, 1), "rerun changed the record bytes");
}

/// The committed miniature golden (the exact bytes CI diffs against
/// `sof run churn-at-scale --groups 40 --events 400 --window 80`) stays in
/// lockstep with the library path.
#[test]
fn churn_at_scale_matches_its_committed_golden_stream() {
    let spec = mini_spec(40, 400, 80, false);
    let golden = std::fs::read_to_string("crates/spec/specs/golden/churn-at-scale.jsonl")
        .expect("committed golden file");
    assert_eq!(stream(&spec, 0), golden);
}

/// The record stream is ordered (one `Meta`, then events/windows, then one
/// `Summary`), complete (every budgeted event sampled, `ceil(events /
/// window)` windows), and bounded: no window ever reports more live groups
/// than the pool has slots — the run's memory is the pool plus the open
/// window, independent of the event count.
#[test]
fn record_stream_is_ordered_and_bounded() {
    let (groups, events, window) = (10usize, 130u64, 40u64);
    let spec = mini_spec(groups, events, window, true);
    let cfg = sof::spec::runner_config(&spec, &RunOptions::default()).unwrap();
    let mut runner = Runner::new(cfg).unwrap();
    let (sink, records) = CollectSink::new();
    runner.add_sink(Box::new(sink));
    let summary = runner.run().unwrap();
    assert_eq!(summary.events, events);
    assert_eq!(summary.stop, StopReason::MaxEvents);

    let records = records.lock().unwrap();
    assert!(matches!(records.first(), Some(Record::Meta { .. })));
    assert!(matches!(records.last(), Some(Record::Summary(_))));
    let n_events = records
        .iter()
        .filter(|r| matches!(r, Record::Event(_)))
        .count() as u64;
    assert_eq!(n_events, events, "one event record per budgeted event");
    let windows: Vec<_> = records
        .iter()
        .filter_map(|r| match r {
            Record::Window(w) => Some(w),
            _ => None,
        })
        .collect();
    assert_eq!(windows.len() as u64, events.div_ceil(window));
    for w in &windows {
        assert!(w.active <= groups, "window {} overflows the pool", w.index);
    }
    assert_eq!(windows.last().unwrap().total_events, events);
}

/// A huge convergence epsilon trips the `ConvergedCost` ward after
/// `patience` windows, well before the event budget.
#[test]
fn converged_cost_ward_stops_early() {
    let spec = mini_spec(8, 10_000, 16, false);
    let mut cfg = sof::spec::runner_config(&spec, &RunOptions::default()).unwrap();
    cfg.wards.push(Ward::ConvergedCost {
        epsilon: 1e12,
        patience: 2,
    });
    let runner = Runner::new(cfg).unwrap();
    let summary = runner.run().unwrap();
    assert_eq!(summary.stop, StopReason::Converged);
    assert!(
        summary.events < 10_000,
        "ward should fire before the budget ({} events)",
        summary.events
    );
}

/// Regression: the spec layer has always rejected `converge.patience = 0`,
/// but the library path through `Runner::new` accepted it — and the old
/// `WardSet` then stopped the run on its very first window, before two
/// windows had ever been compared. The library now rejects it too.
#[test]
fn runner_config_rejects_zero_patience_convergence_ward() {
    let mut cfg = RunnerConfig::new("patience-zero");
    cfg.wards.push(Ward::ConvergedCost {
        epsilon: 0.01,
        patience: 0,
    });
    let err = Runner::new(cfg).err().expect("patience 0 must be rejected");
    assert!(err.contains("patience"), "{err}");

    let mut cfg = RunnerConfig::new("bad-epsilon");
    cfg.wards.push(Ward::ConvergedCost {
        epsilon: 0.0,
        patience: 2,
    });
    let err = Runner::new(cfg).err().expect("epsilon 0 must be rejected");
    assert!(err.contains("epsilon"), "{err}");
}

/// A wardless runner on a background thread streams records until
/// [`sof::runner::RunnerHandle::stop`] ends it at a round boundary.
#[test]
fn runner_handle_stops_a_wardless_run() {
    let mut cfg = RunnerConfig::new("handle-test");
    cfg.groups = 4;
    cfg.window = 8;
    cfg.wards = Vec::new(); // only `stop` can end this run
    let mut runner = Runner::new(cfg).unwrap();
    let records = runner.subscribe();
    let handle = runner.spawn();
    // The stream starts with the run header; records keep flowing while
    // the runner is live.
    assert!(matches!(records.recv(), Ok(Record::Meta { .. })));
    handle.stop();
    let summary = handle.join().unwrap();
    assert_eq!(summary.stop, StopReason::Stopped);
    // The subscriber's channel drains to the final summary record.
    let last = std::iter::from_fn(|| records.recv().ok()).last();
    assert!(matches!(last, Some(Record::Summary(_))));
}

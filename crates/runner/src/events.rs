//! Lazy per-group churn processes: seeded, deterministic, generated on
//! demand.
//!
//! A churn-at-scale run never materializes its event timeline. Each live
//! multicast group owns a [`GroupProcess`] — a finite, seeded stream of
//! viewer-churn snapshots built on [`sof_sim::ChurnStream`] — and the
//! runner pulls one event per group per round. A group's whole history
//! (home region, viewer pool, every snapshot, its lifetime) is a pure
//! function of `(run_seed, group_id)`, so timelines replay bit-identically
//! at any thread count without storing anything but the stream cursors.

use serde::{Deserialize, Serialize};
use sof_core::Request;
use sof_graph::{NodeId, Rng64};
use sof_sim::{ChurnParams, ChurnStream, WorkloadParams};
use sof_topo::RegionTopology;

/// Churn-process shape shared by every group of a run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GroupChurnConfig {
    /// Inclusive range of initial viewer counts.
    pub viewers: (usize, usize),
    /// Inclusive range of candidate-source counts.
    pub sources: (usize, usize),
    /// Demanded chain length.
    pub chain_len: usize,
    /// Per-group demand (Mbps).
    pub demand_mbps: f64,
    /// Inclusive range of viewers leaving per event.
    pub leaves: (usize, usize),
    /// Inclusive range of viewers joining per event.
    pub joins: (usize, usize),
    /// Inclusive range of churn events a group lives through before it
    /// retires (its initial embed is not counted).
    pub lifetime: (u64, u64),
    /// Roaming factor: the group's viewer pool is its home region plus
    /// `round(roam × home_size)` foreign nodes sampled at creation, so
    /// most viewers are regional but some cross region boundaries.
    pub roam: f64,
}

impl Default for GroupChurnConfig {
    fn default() -> GroupChurnConfig {
        GroupChurnConfig {
            viewers: (3, 6),
            sources: (1, 2),
            chain_len: 2,
            demand_mbps: 5.0,
            leaves: (1, 2),
            joins: (1, 2),
            lifetime: (40, 90),
            roam: 0.25,
        }
    }
}

impl GroupChurnConfig {
    /// Checks the configuration without building anything.
    ///
    /// # Errors
    ///
    /// A message naming the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        for (name, (lo, hi)) in [
            ("viewers", self.viewers),
            ("sources", self.sources),
            ("leaves", self.leaves),
            ("joins", self.joins),
        ] {
            if lo > hi {
                return Err(format!("churn.{name} range is inverted: ({lo}, {hi})"));
            }
        }
        if self.lifetime.0 > self.lifetime.1 {
            return Err(format!(
                "churn.lifetime range is inverted: ({}, {})",
                self.lifetime.0, self.lifetime.1
            ));
        }
        if self.chain_len == 0 {
            return Err("churn.chain_len must be at least 1".into());
        }
        if !self.demand_mbps.is_finite() || self.demand_mbps <= 0.0 {
            return Err(format!(
                "churn.demand_mbps must be positive, got {}",
                self.demand_mbps
            ));
        }
        if !self.roam.is_finite() || !(0.0..=1.0).contains(&self.roam) {
            return Err(format!("churn.roam must be in [0, 1], got {}", self.roam));
        }
        Ok(())
    }

    fn churn_params(&self) -> ChurnParams {
        ChurnParams {
            base: WorkloadParams {
                sources: self.sources,
                destinations: self.viewers,
                chain_len: self.chain_len,
                demand_mbps: self.demand_mbps,
            },
            leaves: self.leaves,
            joins: self.joins,
        }
    }
}

/// Mixes a run seed and a group id into the group's private seed
/// (SplitMix64 finalizer, so consecutive ids land far apart).
fn group_seed(run_seed: u64, id: u64) -> u64 {
    let mut z = run_seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One event pulled from a [`GroupProcess`].
#[derive(Clone, Debug, PartialEq)]
pub enum GroupEvent {
    /// The group's first snapshot: a full embed of the initial request.
    Initial(Request),
    /// A viewer-churn snapshot to diff against the previous one.
    Churn(Request),
}

impl GroupEvent {
    /// The snapshot carried by the event.
    pub fn request(&self) -> &Request {
        match self {
            GroupEvent::Initial(r) | GroupEvent::Churn(r) => r,
        }
    }

    /// Whether this is the group's initial embed.
    pub fn is_initial(&self) -> bool {
        matches!(self, GroupEvent::Initial(_))
    }
}

/// The lazy event stream of one multicast group: home region, roamed
/// viewer pool, initial snapshot, churn snapshots, retirement — all drawn
/// on demand from the group's private seed.
#[derive(Clone, Debug)]
pub struct GroupProcess {
    id: u64,
    home: usize,
    inst_seed: u64,
    started: bool,
    remaining: u64,
    stream: ChurnStream,
}

impl GroupProcess {
    /// Creates group `id`'s process for a run seeded with `run_seed`.
    pub fn new(
        id: u64,
        rt: &RegionTopology,
        cfg: &GroupChurnConfig,
        run_seed: u64,
    ) -> GroupProcess {
        let mut rng = Rng64::seed_from(group_seed(run_seed, id));
        let home = rng.below(rt.region_count());
        let mut pool: Vec<NodeId> = rt.region_nodes(home).to_vec();
        let foreign: Vec<NodeId> = (0..rt.region_count())
            .filter(|&r| r != home)
            .flat_map(|r| rt.region_nodes(r).iter().copied())
            .collect();
        let roamed = ((pool.len() as f64 * cfg.roam).round() as usize).min(foreign.len());
        let picked = rng.sample_indices(foreign.len(), roamed);
        pool.extend(picked.into_iter().map(|i| foreign[i]));
        let remaining = rng.range(
            usize::try_from(cfg.lifetime.0).unwrap_or(usize::MAX),
            usize::try_from(cfg.lifetime.1)
                .unwrap_or(usize::MAX)
                .saturating_add(1),
        ) as u64;
        let inst_seed = rng.next_u64();
        let stream = ChurnStream::over_pool(cfg.churn_params(), pool, rng.next_u64());
        GroupProcess {
            id,
            home,
            inst_seed,
            started: false,
            remaining,
            stream,
        }
    }

    /// The group's global id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The group's home region index.
    pub fn home(&self) -> usize {
        self.home
    }

    /// Seed for the group's network instance (cost draws, VM setup).
    pub fn instance_seed(&self) -> u64 {
        self.inst_seed
    }

    /// The snapshot most recently handed out.
    pub fn current(&self) -> &Request {
        self.stream.current()
    }

    /// Churn events left before the group retires.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Forces the group to retire at its next event (used when a group's
    /// embed fails and the slot must be recycled).
    pub fn retire(&mut self) {
        self.remaining = 0;
    }

    /// Pulls the next event: the initial snapshot first, then one churn
    /// snapshot per call, then `None` forever once the lifetime is spent.
    pub fn next_event(&mut self) -> Option<GroupEvent> {
        if !self.started {
            self.started = true;
            return Some(GroupEvent::Initial(self.stream.current().clone()));
        }
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(GroupEvent::Churn(self.stream.next_request()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sof_topo::{build_regions, RegionDef, RegionsParams};

    fn topo() -> RegionTopology {
        build_regions(
            &RegionsParams::new(vec![
                RegionDef::new("a", 8, 2),
                RegionDef::new("b", 8, 2),
                RegionDef::new("c", 8, 2),
            ]),
            5,
        )
        .unwrap()
    }

    fn cfg() -> GroupChurnConfig {
        GroupChurnConfig {
            lifetime: (3, 6),
            ..GroupChurnConfig::default()
        }
    }

    fn drain(mut p: GroupProcess) -> Vec<GroupEvent> {
        std::iter::from_fn(move || p.next_event()).collect()
    }

    #[test]
    fn replays_bit_identically_per_id() {
        let rt = topo();
        for id in [0u64, 1, 17] {
            let a = drain(GroupProcess::new(id, &rt, &cfg(), 42));
            let b = drain(GroupProcess::new(id, &rt, &cfg(), 42));
            assert_eq!(a, b, "group {id} did not replay");
            assert!(a[0].is_initial());
            assert!(a[1..].iter().all(|e| !e.is_initial()));
            // lifetime churn events + the initial embed
            assert!((4..=7).contains(&a.len()), "lifetime out of range");
        }
        // Different ids (and different run seeds) diverge.
        let a = drain(GroupProcess::new(0, &rt, &cfg(), 42));
        let b = drain(GroupProcess::new(1, &rt, &cfg(), 42));
        let c = drain(GroupProcess::new(0, &rt, &cfg(), 43));
        assert_ne!(a[0].request(), b[0].request());
        assert_ne!(a[0].request(), c[0].request());
    }

    #[test]
    fn viewers_stay_in_home_plus_roam_pool() {
        let rt = topo();
        let mut zero_roam = cfg();
        zero_roam.roam = 0.0;
        for id in 0..12u64 {
            let p = GroupProcess::new(id, &rt, &zero_roam, 7);
            let home = p.home();
            for ev in drain(p) {
                let r = ev.request();
                for n in r.sources.iter().chain(r.destinations.iter()) {
                    assert_eq!(rt.region_of(*n), home, "roam = 0 node escaped its region");
                }
            }
        }
        // With roam > 0, some group eventually uses a foreign viewer.
        let roamy = GroupChurnConfig { roam: 0.5, ..cfg() };
        let crossed = (0..12u64).any(|id| {
            let p = GroupProcess::new(id, &rt, &roamy, 7);
            let home = p.home();
            drain(p).iter().any(|ev| {
                ev.request()
                    .destinations
                    .iter()
                    .any(|n| rt.region_of(*n) != home)
            })
        });
        assert!(crossed, "roam = 0.5 never placed a foreign viewer");
    }

    #[test]
    fn retire_ends_the_stream() {
        let rt = topo();
        let mut p = GroupProcess::new(3, &rt, &cfg(), 1);
        assert!(p.next_event().unwrap().is_initial());
        p.retire();
        assert_eq!(p.next_event(), None);
        assert_eq!(p.next_event(), None, "retirement is permanent");
    }

    #[test]
    fn validation_rejects_bad_config() {
        let mut c = cfg();
        c.viewers = (5, 2);
        assert!(c.validate().unwrap_err().contains("viewers"));
        let mut c = cfg();
        c.lifetime = (9, 2);
        assert!(c.validate().unwrap_err().contains("lifetime"));
        let mut c = cfg();
        c.chain_len = 0;
        assert!(c.validate().unwrap_err().contains("chain_len"));
        let mut c = cfg();
        c.roam = 1.5;
        assert!(c.validate().unwrap_err().contains("roam"));
        let mut c = cfg();
        c.demand_mbps = 0.0;
        assert!(c.validate().unwrap_err().contains("demand"));
        assert!(cfg().validate().is_ok());
    }
}

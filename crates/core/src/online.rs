//! The incremental online embedding engine behind Fig. 12.
//!
//! An [`OnlineSession`] owns a [`SofInstance`], a [`LoadTracker`] and one
//! standing [`ServiceForest`] driven by a single [`Solver`]. Requests
//! [`arrive`](OnlineSession::arrive) as successive snapshots of the served
//! group; instead of re-running the solver from scratch per arrival, the
//! session diffs the destination sets and re-embeds **incrementally** with
//! the §VII-C dynamics ([`dynamics::destination_join_with`],
//! [`dynamics::destination_leave`], [`dynamics::reroute_all`]), falling back
//! to a full rebuild when accumulated churn drifts past a configurable
//! threshold — or whenever an incremental step fails or invalidates the
//! forest.
//!
//! # Examples
//!
//! ```
//! use sof_core::{
//!     Network, OnlineConfig, OnlineSession, Request, ServiceChain, Sofda, SofInstance,
//!     SofdaConfig,
//! };
//! use sof_graph::{Cost, Graph, NodeId};
//!
//! let mut g = Graph::with_nodes(8);
//! for i in 0..8 {
//!     g.add_edge(NodeId::new(i), NodeId::new((i + 1) % 8), Cost::new(1.0));
//! }
//! let mut net = Network::all_switches(g);
//! net.make_vm(NodeId::new(2), Cost::new(1.0));
//! let chain = ServiceChain::with_len(1);
//! let inst = SofInstance::new(
//!     net,
//!     Request::new(vec![NodeId::new(0)], vec![NodeId::new(4)], chain.clone()),
//! )?;
//! let mut session =
//!     OnlineSession::new(inst, Box::new(Sofda), SofdaConfig::default(), OnlineConfig::default());
//! // First arrival embeds from scratch…
//! let first = session.arrive(Request::new(
//!     vec![NodeId::new(0)],
//!     vec![NodeId::new(4)],
//!     chain.clone(),
//! ))?;
//! assert!(first.rebuilt);
//! // …the next one joins the extra viewer incrementally.
//! let second = session.arrive(Request::new(
//!     vec![NodeId::new(0)],
//!     vec![NodeId::new(4), NodeId::new(6)],
//!     chain,
//! ))?;
//! assert!(!second.rebuilt && second.joined == 1);
//! session.forest().expect("standing forest").validate(session.instance())?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::dynamics::{self, JoinStrategy};
use crate::{
    fortz_thorup, LoadTracker, Request, ServiceForest, SofInstance, SofdaConfig, SolveError, Solver,
};
use serde::{Deserialize, Serialize};
use sof_graph::{Cost, EdgeId, NodeId};
use std::collections::BTreeSet;
use std::time::Instant;

/// How the session re-embeds when the served group changes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum EmbedMode {
    /// Re-run the solver from scratch on every arrival (the seed behavior
    /// of Fig. 12; the comparison baseline).
    FromScratch,
    /// Diff destination sets and apply §VII-C join/leave operations,
    /// rebuilding only on drift, source/chain changes, or failures.
    #[default]
    Incremental,
}

/// What "drift" means for the full-rebuild fallback.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DriftPolicy {
    /// Rebuild once the destinations churned since the last full solve
    /// reach `rebuild_drift × |D|` — cheap bookkeeping, but blind to how
    /// much quality the incremental operations actually gave up.
    #[default]
    ChurnCount,
    /// Rebuild once the standing forest's congestion-aware cost diverges
    /// to `rebuild_drift ×` the cost measured right after the last full
    /// solve. Tracks solution quality directly: a run of cheap joins never
    /// triggers a pointless rebuild, while a few expensive attachments do.
    CostDrift,
}

impl DriftPolicy {
    /// The spec-file name of this policy (`"churn"` / `"cost"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            DriftPolicy::ChurnCount => "churn",
            DriftPolicy::CostDrift => "cost",
        }
    }

    /// Parses a spec-file name (case-insensitive).
    ///
    /// # Errors
    ///
    /// A message naming the unknown policy and the valid names.
    pub fn from_name(name: &str) -> Result<DriftPolicy, String> {
        match name.to_ascii_lowercase().as_str() {
            "churn" | "churn-count" => Ok(DriftPolicy::ChurnCount),
            "cost" | "cost-drift" => Ok(DriftPolicy::CostDrift),
            other => Err(format!(
                "unknown drift policy '{other}' (expected 'churn' or 'cost')"
            )),
        }
    }
}

/// Tuning knobs for an [`OnlineSession`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OnlineConfig {
    /// Re-embedding strategy.
    pub mode: EmbedMode,
    /// Full-rebuild fallback: rebuild once the accumulated drift (measured
    /// per [`DriftPolicy`]) reaches this multiple — of `|D|` for
    /// [`DriftPolicy::ChurnCount`], of the last full solve's cost for
    /// [`DriftPolicy::CostDrift`]. Lower values track the solver's quality
    /// more closely; higher values are faster.
    pub rebuild_drift: f64,
    /// Which drift metric arms the rebuild fallback.
    pub drift_policy: DriftPolicy,
    /// Run [`dynamics::reroute_all`] every this many arrivals, repairing
    /// routes that congestion made expensive (`0` = never).
    pub reroute_every: usize,
    /// Attach-point search for incremental joins.
    pub join: JoinStrategy,
    /// Uniform link capacity handed to the [`LoadTracker`] (Mbps).
    pub link_capacity: f64,
    /// Uniform VM capacity handed to the [`LoadTracker`] (concurrent VNFs).
    pub vm_capacity: f64,
    /// Per-request bandwidth demand (Mbps) charged to the standing forest.
    pub demand_mbps: f64,
}

impl Default for OnlineConfig {
    fn default() -> OnlineConfig {
        OnlineConfig {
            mode: EmbedMode::Incremental,
            rebuild_drift: 2.0,
            drift_policy: DriftPolicy::ChurnCount,
            reroute_every: 6,
            join: JoinStrategy::TailAttach,
            link_capacity: 100.0,
            vm_capacity: 5.0,
            demand_mbps: 5.0,
        }
    }
}

impl OnlineConfig {
    /// Switches the re-embedding mode.
    pub fn with_mode(mut self, mode: EmbedMode) -> OnlineConfig {
        self.mode = mode;
        self
    }

    /// Replaces the drift threshold.
    pub fn with_rebuild_drift(mut self, drift: f64) -> OnlineConfig {
        self.rebuild_drift = drift;
        self
    }

    /// Replaces the drift policy.
    pub fn with_drift_policy(mut self, policy: DriftPolicy) -> OnlineConfig {
        self.drift_policy = policy;
        self
    }
}

/// Counters accumulated over a session's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OnlineStats {
    /// Arrivals processed.
    pub arrivals: usize,
    /// Full solver runs (initial embeds, drift rebuilds, fallbacks).
    pub full_solves: usize,
    /// Arrivals served purely by incremental operations.
    pub incremental_events: usize,
    /// Destinations joined incrementally.
    pub joins: usize,
    /// Destinations removed incrementally.
    pub leaves: usize,
    /// [`dynamics::reroute_all`] passes.
    pub reroutes: usize,
    /// Incremental attempts abandoned for a rebuild (dynamics error or
    /// validation failure).
    pub fallbacks: usize,
    /// VMs marked failed via [`OnlineSession::fail_vm`].
    pub vm_failures: usize,
}

/// What one [`OnlineSession::arrive`] did.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ArrivalReport {
    /// Standing forest cost after this arrival (congestion-aware units).
    pub forest_cost: f64,
    /// Session-accumulated cost including this arrival.
    pub accumulated_cost: f64,
    /// Whether the solver ran from scratch.
    pub rebuilt: bool,
    /// Destinations joined incrementally.
    pub joined: usize,
    /// Destinations removed incrementally.
    pub left: usize,
    /// Wall-clock milliseconds spent embedding (excludes load accounting).
    pub millis: f64,
}

/// Setup cost assigned to failed VMs: finite (so the convex congestion
/// arithmetic stays well-behaved) but far beyond any real setup cost, so
/// every solver routes around the failure when any alternative exists.
fn failed_vm_cost() -> Cost {
    Cost::new(1e9)
}

/// A failed switch's restoration record: the node, its incident edges'
/// pristine base costs, and the node's pristine VM setup cost when it is
/// also a VM.
type FailedNode = (NodeId, Vec<(EdgeId, Cost)>, Option<Cost>);

/// An incremental online embedding session: one solver, one standing
/// forest, congestion-aware costs. See the [module docs](self) for the
/// lifecycle and an example.
pub struct OnlineSession {
    solver: Box<dyn Solver>,
    config: SofdaConfig,
    opts: OnlineConfig,
    instance: SofInstance,
    tracker: LoadTracker,
    /// Static topology link costs captured at construction; congestion is
    /// charged **on top** so unloaded links never become free.
    base_edge_costs: Vec<Cost>,
    /// Static VM setup costs captured at construction.
    base_vm_costs: Vec<(NodeId, Cost)>,
    forest: Option<ServiceForest>,
    /// Failed links: normalized endpoints, edge id, pristine base cost.
    failed_links: Vec<((NodeId, NodeId), EdgeId, Cost)>,
    /// Failed switches: node, incident-edge pristine base costs, and the
    /// node's pristine VM setup cost when it is also a VM.
    failed_nodes: Vec<FailedNode>,
    /// Failed VMs and their pristine setup costs (for repair).
    failed_vms: Vec<(NodeId, Cost)>,
    accumulated: f64,
    churn_since_solve: usize,
    /// Standing forest cost measured right after the last full solve
    /// (the [`DriftPolicy::CostDrift`] baseline; 0 until first solve).
    cost_at_solve: f64,
    /// Standing forest cost at the latest recharge.
    last_cost: f64,
    stats: OnlineStats,
}

impl OnlineSession {
    /// Creates a session over `instance`'s network. The instance's initial
    /// request is only a placeholder: nothing is embedded until the first
    /// [`arrive`](OnlineSession::arrive).
    pub fn new(
        instance: SofInstance,
        solver: Box<dyn Solver>,
        config: SofdaConfig,
        opts: OnlineConfig,
    ) -> OnlineSession {
        let tracker = LoadTracker::new(&instance.network, opts.link_capacity, opts.vm_capacity);
        let base_edge_costs = (0..instance.network.graph().edge_count())
            .map(|i| instance.network.graph().edge_cost(EdgeId::new(i)))
            .collect();
        let base_vm_costs = instance
            .network
            .vms()
            .into_iter()
            .map(|v| (v, instance.network.node_cost(v)))
            .collect();
        OnlineSession {
            solver,
            config,
            opts,
            instance,
            tracker,
            base_edge_costs,
            base_vm_costs,
            forest: None,
            failed_links: Vec::new(),
            failed_nodes: Vec::new(),
            failed_vms: Vec::new(),
            accumulated: 0.0,
            churn_since_solve: 0,
            cost_at_solve: 0.0,
            last_cost: 0.0,
            stats: OnlineStats::default(),
        }
    }

    /// Congestion-aware cost refresh: static base cost **plus** the convex
    /// Fortz–Thorup surcharge for the current load. (Pure
    /// [`LoadTracker::refresh_costs`] would price unloaded resources at
    /// zero, which lets a from-scratch solver dodge all standing load for
    /// free and makes mode comparisons meaningless.)
    fn refresh_costs(&mut self) {
        let net = &mut self.instance.network;
        for (i, &base) in self.base_edge_costs.iter().enumerate() {
            let e = EdgeId::new(i);
            let congestion = fortz_thorup(self.tracker.edge_load(e), self.tracker.edge_capacity(e));
            net.graph_mut()
                .set_edge_cost(e, base + congestion * self.tracker.edge_cost_scale);
        }
        for &(v, base) in &self.base_vm_costs {
            let congestion = fortz_thorup(self.tracker.node_load(v), self.tracker.node_capacity(v));
            net.set_node_cost(v, base + congestion * self.tracker.node_cost_scale);
        }
    }

    /// The driving solver's display name.
    pub fn solver_name(&self) -> &'static str {
        self.solver.name()
    }

    /// The current instance (network costs reflect the latest refresh).
    pub fn instance(&self) -> &SofInstance {
        &self.instance
    }

    /// The standing forest, if anything is embedded.
    pub fn forest(&self) -> Option<&ServiceForest> {
        self.forest.as_ref()
    }

    /// Accumulated forest cost over all arrivals (Fig. 12's y-axis).
    pub fn accumulated_cost(&self) -> f64 {
        self.accumulated
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &OnlineStats {
        &self.stats
    }

    /// The load tracker (e.g. to seed initial loads or inspect
    /// utilization).
    pub fn tracker(&self) -> &LoadTracker {
        &self.tracker
    }

    /// Processes the next group snapshot: re-embeds on the current
    /// congestion-aware costs (incrementally when possible), charges the
    /// standing forest's footprint to the tracker, refreshes costs and
    /// accumulates the forest's cost **including its own congestion
    /// surcharge** — the same accounting for both modes, so a from-scratch
    /// solver cannot "dodge" load it itself creates.
    ///
    /// # Errors
    ///
    /// [`SolveError`] when a required full solve fails; the standing forest
    /// is dropped so the next arrival starts clean.
    pub fn arrive(&mut self, request: Request) -> Result<ArrivalReport, SolveError> {
        self.stats.arrivals += 1;
        let t0 = Instant::now();
        let mut joined = 0;
        let mut left = 0;
        let mut rebuilt = false;
        if !self.try_incremental(&request, &mut joined, &mut left) {
            self.rebuild(request)?;
            rebuilt = true;
        }
        let millis = t0.elapsed().as_secs_f64() * 1e3;
        let forest_cost = self.recharge();
        if rebuilt {
            self.cost_at_solve = forest_cost;
        }
        self.last_cost = forest_cost;
        self.accumulated += forest_cost;
        Ok(ArrivalReport {
            forest_cost,
            accumulated_cost: self.accumulated,
            rebuilt,
            joined,
            left,
            millis,
        })
    }

    /// Removes one destination from the served group incrementally (a
    /// viewer departing between arrivals). Does not touch the accumulated
    /// cost; returns the standing forest's cost after the removal.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] when the destination is not served or
    /// nothing is embedded yet.
    pub fn depart(&mut self, destination: NodeId) -> Result<f64, SolveError> {
        let forest = self
            .forest
            .as_mut()
            .ok_or_else(|| SolveError::Infeasible("nothing embedded yet".into()))?;
        dynamics::destination_leave(&mut self.instance, forest, destination)
            .map_err(|e| SolveError::Infeasible(e.to_string()))?;
        self.stats.leaves += 1;
        self.churn_since_solve += 1;
        let cost = self.recharge();
        self.last_cost = cost;
        Ok(cost)
    }

    /// Injects a VM failure: `vm`'s setup cost is raised to a prohibitive
    /// level so no future embedding selects it, and if the standing forest
    /// currently runs a VNF on it the forest is dropped — the next
    /// [`arrive`](OnlineSession::arrive) then rebuilds around the failure.
    ///
    /// Returns `true` when the standing forest was using the VM (i.e. the
    /// failure actually disrupted service).
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] when `vm` is not a VM of this network.
    pub fn fail_vm(&mut self, vm: NodeId) -> Result<bool, SolveError> {
        let slot = self
            .base_vm_costs
            .iter()
            .position(|(v, _)| *v == vm)
            .ok_or_else(|| SolveError::Infeasible(format!("{vm} is not a VM")))?;
        if !self.failed_vms.iter().any(|(v, _)| *v == vm) {
            self.failed_vms.push((vm, self.base_vm_costs[slot].1));
        }
        self.base_vm_costs[slot].1 = failed_vm_cost();
        self.stats.vm_failures += 1;
        let disrupted = self
            .forest
            .as_ref()
            .and_then(|f| f.enabled_vms().ok())
            .is_some_and(|used| used.contains_key(&vm));
        if disrupted {
            self.forest = None;
        }
        self.refresh_costs();
        Ok(disrupted)
    }

    /// Protection-aware VM failure: prices `vm` out like
    /// [`fail_vm`](OnlineSession::fail_vm) but **leaves the standing forest
    /// up**, returning the destinations whose walks run a VNF on the failed
    /// VM so a protection policy can decide how to recover them.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] when `vm` is not a VM of this network.
    pub fn fail_vm_soft(&mut self, vm: NodeId) -> Result<Vec<NodeId>, SolveError> {
        let slot = self
            .base_vm_costs
            .iter()
            .position(|(v, _)| *v == vm)
            .ok_or_else(|| SolveError::Infeasible(format!("{vm} is not a VM")))?;
        if !self.failed_vms.iter().any(|(v, _)| *v == vm) {
            self.failed_vms.push((vm, self.base_vm_costs[slot].1));
        }
        self.base_vm_costs[slot].1 = failed_vm_cost();
        self.stats.vm_failures += 1;
        self.refresh_costs();
        Ok(self
            .forest
            .as_ref()
            .map(|f| {
                f.walks
                    .iter()
                    .filter(|w| (0..w.vnf_positions.len()).any(|i| w.vnf_node(i) == vm))
                    .map(|w| w.destination)
                    .collect()
            })
            .unwrap_or_default())
    }

    /// Repairs a VM failed via [`fail_vm`](OnlineSession::fail_vm) or
    /// [`fail_vm_soft`](OnlineSession::fail_vm_soft): its pristine setup
    /// cost is restored so future embeddings select it again.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] when `vm` is not currently failed.
    pub fn repair_vm(&mut self, vm: NodeId) -> Result<(), SolveError> {
        let i = self
            .failed_vms
            .iter()
            .position(|(v, _)| *v == vm)
            .ok_or_else(|| SolveError::Infeasible(format!("{vm} is not a failed VM")))?;
        let (_, pristine) = self.failed_vms.remove(i);
        if let Some(slot) = self.base_vm_costs.iter_mut().find(|(v, _)| *v == vm) {
            slot.1 = pristine;
        }
        self.refresh_costs();
        Ok(())
    }

    /// Injects a link failure: the link's base cost is raised to a
    /// prohibitive level so nothing routes over it, and the destinations
    /// whose standing walks traverse it are returned. The forest is **not**
    /// dropped — the protection layer decides how those destinations
    /// recover (reactive drop, backup switchover, or standby swap).
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] when no link connects `u` and `v`.
    pub fn fail_link(&mut self, u: NodeId, v: NodeId) -> Result<Vec<NodeId>, SolveError> {
        let e = self
            .instance
            .network
            .graph()
            .edge_between(u, v)
            .ok_or_else(|| SolveError::Infeasible(format!("no link between {u} and {v}")))?;
        let key = (u.min(v), u.max(v));
        if !self.failed_links.iter().any(|(k, ..)| *k == key) {
            // If a failed switch already priced this edge out, carry ITS
            // recorded pristine value so repairs compose in any order.
            let pristine = self
                .failed_nodes
                .iter()
                .flat_map(|(_, edges, _)| edges)
                .find(|(fe, _)| *fe == e)
                .map(|&(_, c)| c)
                .unwrap_or(self.base_edge_costs[e.index()]);
            self.failed_links.push((key, e, pristine));
            self.base_edge_costs[e.index()] = failed_vm_cost();
            self.refresh_costs();
        }
        Ok(self
            .forest
            .as_ref()
            .map(|f| f.destinations_via_edge(u, v))
            .unwrap_or_default())
    }

    /// Repairs a link failed via [`fail_link`](OnlineSession::fail_link):
    /// its pristine base cost is restored so routes use it again.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] when the link is not currently failed.
    pub fn repair_link(&mut self, u: NodeId, v: NodeId) -> Result<(), SolveError> {
        let key = (u.min(v), u.max(v));
        let i = self
            .failed_links
            .iter()
            .position(|(k, ..)| *k == key)
            .ok_or_else(|| SolveError::Infeasible(format!("link {u}-{v} is not failed")))?;
        let (_, e, pristine) = self.failed_links.remove(i);
        self.base_edge_costs[e.index()] = pristine;
        self.refresh_costs();
        Ok(())
    }

    /// Injects a switch (transit node) failure: every incident link is
    /// priced out and the destinations whose walks visit the node are
    /// returned; the forest is left standing for the protection layer.
    /// Idempotent — failing an already-failed node just re-reports the
    /// affected destinations.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] when the node is out of range, or is a
    /// source/destination of the current request — endpoint failures are
    /// a different event (the group member leaving), not a transit fault.
    pub fn fail_node(&mut self, n: NodeId) -> Result<Vec<NodeId>, SolveError> {
        if n.index() >= self.instance.network.node_count() {
            return Err(SolveError::Infeasible(format!("{n} out of range")));
        }
        if self.instance.request.sources.contains(&n)
            || self.instance.request.destinations.contains(&n)
        {
            return Err(SolveError::Infeasible(format!(
                "{n} is a source or destination of the current request; \
                 node failures model transit elements only"
            )));
        }
        let affected = self
            .forest
            .as_ref()
            .map(|f| f.destinations_via_node(n))
            .unwrap_or_default();
        if self.failed_nodes.iter().any(|(m, ..)| *m == n) {
            return Ok(affected);
        }
        let incident: Vec<(EdgeId, Cost)> = {
            let g = self.instance.network.graph();
            let mut seen = BTreeSet::new();
            g.neighbors(n)
                .filter(|&(_, e)| seen.insert(e))
                .map(|(_, e)| {
                    // Carry the link-failure pristine when one is on file.
                    let pristine = self
                        .failed_links
                        .iter()
                        .find(|(_, fe, _)| *fe == e)
                        .map(|&(_, _, c)| c)
                        .unwrap_or(self.base_edge_costs[e.index()]);
                    (e, pristine)
                })
                .collect()
        };
        for &(e, _) in &incident {
            self.base_edge_costs[e.index()] = failed_vm_cost();
        }
        let vm_pristine = self
            .base_vm_costs
            .iter()
            .position(|(v, _)| *v == n)
            .map(|i| {
                let pristine = self.base_vm_costs[i].1;
                self.base_vm_costs[i].1 = failed_vm_cost();
                pristine
            });
        self.failed_nodes.push((n, incident, vm_pristine));
        self.refresh_costs();
        Ok(affected)
    }

    /// Repairs a switch failed via [`fail_node`](OnlineSession::fail_node):
    /// incident links (except ones independently failed) and the node's VM
    /// pricing are restored.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] when the node is not currently failed.
    pub fn repair_node(&mut self, n: NodeId) -> Result<(), SolveError> {
        let i = self
            .failed_nodes
            .iter()
            .position(|(m, ..)| *m == n)
            .ok_or_else(|| SolveError::Infeasible(format!("{n} is not a failed node")))?;
        let (_, incident, vm_pristine) = self.failed_nodes.remove(i);
        for (e, pristine) in incident {
            if self.failed_links.iter().any(|(_, fe, _)| *fe == e) {
                continue; // still link-failed; repair_link restores it
            }
            self.base_edge_costs[e.index()] = pristine;
        }
        if let Some(pristine) = vm_pristine {
            if let Some(slot) = self.base_vm_costs.iter_mut().find(|(v, _)| *v == n) {
                slot.1 = pristine;
            }
        }
        self.refresh_costs();
        Ok(())
    }

    /// Normalized endpoint pairs of currently failed links.
    pub fn failed_edges(&self) -> BTreeSet<(NodeId, NodeId)> {
        self.failed_links.iter().map(|&(k, ..)| k).collect()
    }

    /// Nodes a recovery route must avoid: failed switches plus failed VMs.
    /// (Transit through a failed VM's switch may be physically fine, but
    /// banning it keeps "never traverses a failed element" a hard
    /// guarantee rather than a pricing tendency.)
    pub fn failed_switches(&self) -> BTreeSet<NodeId> {
        self.failed_nodes
            .iter()
            .map(|&(n, ..)| n)
            .chain(self.failed_vms.iter().map(|&(v, _)| v))
            .collect()
    }

    /// The SOFDA configuration driving this session's solves, so protection
    /// layers can run standby solves with identical knobs.
    pub fn sofda_config(&self) -> &SofdaConfig {
        &self.config
    }

    /// Drops the standing forest without touching failure pricing: the
    /// reactive recovery path. The next
    /// [`arrive`](OnlineSession::arrive) rebuilds from scratch around
    /// whatever is currently failed.
    pub fn clear_forest(&mut self) {
        self.forest = None;
    }

    /// Swaps in a pre-solved replacement forest (the standby-forest
    /// switchover). Validates first, then recharges load accounting and
    /// resets the drift baselines as a full solve would — the swapped
    /// forest *is* a full solution, just one paid for earlier.
    ///
    /// # Errors
    ///
    /// [`SolveError::Internal`] when the candidate is not feasible for the
    /// current instance; the standing forest is left untouched.
    pub fn replace_forest(&mut self, forest: ServiceForest) -> Result<f64, SolveError> {
        forest
            .validate(&self.instance)
            .map_err(SolveError::Internal)?;
        self.forest = Some(forest);
        let cost = self.recharge();
        self.churn_since_solve = 0;
        self.cost_at_solve = cost;
        self.last_cost = cost;
        Ok(cost)
    }

    /// Plans (without applying) a replacement walk for destination `d`
    /// that avoids every currently-failed element. With
    /// `disjoint_from_primary`, `d`'s **current** walk's links are banned
    /// too — the backup-path pre-planning mode, which guarantees the
    /// backup survives any single failure on the primary attachment.
    /// Returns the walk and its attachment cost.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] when nothing is embedded or no surviving
    /// attachment exists.
    pub fn plan_reattach(
        &self,
        d: NodeId,
        disjoint_from_primary: bool,
    ) -> Result<(crate::DestWalk, f64), SolveError> {
        let forest = self
            .forest
            .as_ref()
            .ok_or_else(|| SolveError::Infeasible("nothing embedded yet".into()))?;
        let mut banned_edges = self.failed_edges();
        let banned_nodes = self.failed_switches();
        if disjoint_from_primary {
            if let Some(w) = forest.walks.iter().find(|w| w.destination == d) {
                for pair in w.nodes.windows(2) {
                    banned_edges.insert((pair[0].min(pair[1]), pair[0].max(pair[1])));
                }
            }
        }
        let (walk, cost) =
            dynamics::plan_attach_avoiding(&self.instance, forest, d, &banned_edges, &banned_nodes)
                .map_err(|e| SolveError::Infeasible(e.to_string()))?;
        Ok((walk, cost.value()))
    }

    /// Applies a planned replacement walk: `walk.destination`'s standing
    /// walk is swapped for `walk`, the result validated, and load
    /// accounting recharged. Returns the forest cost after the switch.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] when nothing is embedded or the
    /// destination is not served; [`SolveError::Internal`] when the
    /// switched forest fails validation (the old walk is restored).
    pub fn switch_walk(&mut self, walk: crate::DestWalk) -> Result<f64, SolveError> {
        let d = walk.destination;
        let i = {
            let forest = self
                .forest
                .as_ref()
                .ok_or_else(|| SolveError::Infeasible("nothing embedded yet".into()))?;
            forest
                .walks
                .iter()
                .position(|w| w.destination == d)
                .ok_or_else(|| SolveError::Infeasible(format!("destination {d} is not served")))?
        };
        let old = std::mem::replace(&mut self.forest.as_mut().expect("checked").walks[i], walk);
        if let Err(e) = self
            .forest
            .as_ref()
            .expect("checked")
            .validate(&self.instance)
        {
            self.forest.as_mut().expect("checked").walks[i] = old;
            return Err(SolveError::Internal(e));
        }
        self.churn_since_solve += 1;
        let cost = self.recharge();
        self.last_cost = cost;
        Ok(cost)
    }

    /// Attempts the incremental path; `false` means the caller must do a
    /// full rebuild (mode, drift, structural change, or a failed dynamic
    /// operation).
    fn try_incremental(&mut self, request: &Request, joined: &mut usize, left: &mut usize) -> bool {
        if self.opts.mode != EmbedMode::Incremental || self.forest.is_none() {
            return false;
        }
        let same_shape = {
            let old = &self.instance.request;
            old.sources.iter().collect::<BTreeSet<_>>()
                == request.sources.iter().collect::<BTreeSet<_>>()
                && old.chain.iter().eq(request.chain.iter())
        };
        if !same_shape {
            return false;
        }
        let old: BTreeSet<NodeId> = self.instance.request.destinations.iter().copied().collect();
        let new: BTreeSet<NodeId> = request.destinations.iter().copied().collect();
        let to_leave: Vec<NodeId> = old.difference(&new).copied().collect();
        let to_join: Vec<NodeId> = new.difference(&old).copied().collect();
        let churn = to_leave.len() + to_join.len();
        let drifted = match self.opts.drift_policy {
            DriftPolicy::ChurnCount => {
                let drift_limit = self.opts.rebuild_drift * new.len().max(1) as f64;
                (self.churn_since_solve + churn) as f64 >= drift_limit
            }
            DriftPolicy::CostDrift => {
                self.cost_at_solve > 0.0
                    && self.last_cost >= self.opts.rebuild_drift * self.cost_at_solve
            }
        };
        if drifted {
            return false;
        }
        let mut forest = self.forest.clone().expect("checked above");
        let instance = &mut self.instance;
        let applied = (|| -> Result<(), dynamics::DynamicsError> {
            for &d in &to_leave {
                dynamics::destination_leave(instance, &mut forest, d)?;
            }
            for &d in &to_join {
                let first =
                    dynamics::destination_join_with(instance, &mut forest, d, self.opts.join);
                if first.is_err() && self.opts.join != JoinStrategy::FullSearch {
                    dynamics::destination_join_with(
                        instance,
                        &mut forest,
                        d,
                        JoinStrategy::FullSearch,
                    )?;
                } else {
                    first?;
                }
            }
            Ok(())
        })();
        let reroute_due = self.opts.reroute_every > 0
            && self.stats.arrivals.is_multiple_of(self.opts.reroute_every);
        match applied {
            Ok(()) => {
                if reroute_due {
                    dynamics::reroute_all(&self.instance, &mut forest);
                }
                if forest.validate(&self.instance).is_ok() {
                    self.forest = Some(forest);
                    self.churn_since_solve += churn;
                    self.stats.incremental_events += 1;
                    self.stats.joins += to_join.len();
                    self.stats.leaves += to_leave.len();
                    if reroute_due {
                        self.stats.reroutes += 1;
                    }
                    *joined = to_join.len();
                    *left = to_leave.len();
                    true
                } else {
                    self.stats.fallbacks += 1;
                    false
                }
            }
            Err(_) => {
                self.stats.fallbacks += 1;
                false
            }
        }
    }

    /// Runs the solver from scratch on `request`.
    fn rebuild(&mut self, request: Request) -> Result<(), SolveError> {
        self.instance.request = request;
        if !self.solver.supports(&self.instance) {
            self.forest = None;
            return Err(SolveError::Infeasible(format!(
                "instance exceeds {}'s capability hints",
                self.solver.name()
            )));
        }
        match self.solver.solve(&self.instance, &self.config) {
            Ok(out) => {
                // The trait contract says solvers return feasible forests;
                // enforce it here the way the old bench loop did, so a
                // registry regression cannot silently enter the accounting.
                if let Err(e) = out.forest.validate(&self.instance) {
                    self.forest = None;
                    return Err(SolveError::Internal(e));
                }
                self.forest = Some(out.forest);
                self.churn_since_solve = 0;
                self.stats.full_solves += 1;
                Ok(())
            }
            Err(e) => {
                self.forest = None;
                Err(e)
            }
        }
    }

    /// Re-derives the standing forest's load footprint, refreshes
    /// congestion-aware costs, and returns the forest's cost under them.
    fn recharge(&mut self) -> f64 {
        let forest = self.forest.take().expect("caller ensured a forest");
        self.tracker.clear_loads();
        self.tracker
            .apply_forest(&self.instance.network, &forest, self.opts.demand_mbps);
        self.refresh_costs();
        let cost = forest.cost(&self.instance.network).total().value();
        self.forest = Some(forest);
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Network, ServiceChain, Sofda};
    use sof_graph::{generators, Cost, CostRange, Rng64};

    fn grid_instance() -> SofInstance {
        let mut rng = Rng64::seed_from(11);
        let g = generators::gnp_connected(30, 0.15, CostRange::new(1.0, 5.0), &mut rng);
        let mut net = Network::all_switches(g);
        let picks = rng.sample_indices(30, 10);
        for &v in &picks[..6] {
            net.make_vm(NodeId::new(v), Cost::new(1.0));
        }
        SofInstance::new(
            net,
            Request::new(
                vec![NodeId::new(picks[6]), NodeId::new(picks[7])],
                vec![NodeId::new(picks[8]), NodeId::new(picks[9])],
                ServiceChain::with_len(2),
            ),
        )
        .unwrap()
    }

    fn session(mode: EmbedMode) -> OnlineSession {
        let inst = grid_instance();
        let opts = OnlineConfig::default().with_mode(mode);
        OnlineSession::new(inst, Box::new(Sofda), SofdaConfig::default(), opts)
    }

    fn snapshot(inst: &SofInstance, dests: Vec<NodeId>) -> Request {
        Request::new(
            inst.request.sources.clone(),
            dests,
            inst.request.chain.clone(),
        )
    }

    #[test]
    fn first_arrival_rebuilds_then_join_and_leave_are_incremental() {
        let mut s = session(EmbedMode::Incremental);
        let base = s.instance().request.destinations.clone();
        let extra = s
            .instance()
            .network
            .graph()
            .nodes()
            .find(|n| !base.contains(n) && !s.instance().request.sources.contains(n))
            .unwrap();

        let r1 = s.arrive(snapshot(s.instance(), base.clone())).unwrap();
        assert!(r1.rebuilt);
        let mut grown = base.clone();
        grown.push(extra);
        let r2 = s.arrive(snapshot(s.instance(), grown)).unwrap();
        assert!(!r2.rebuilt && r2.joined == 1 && r2.left == 0);
        let r3 = s.arrive(snapshot(s.instance(), base)).unwrap();
        assert!(!r3.rebuilt && r3.left == 1);
        s.forest().unwrap().validate(s.instance()).unwrap();
        assert_eq!(s.stats().full_solves, 1);
        assert_eq!(s.stats().incremental_events, 2);
        assert!(r3.accumulated_cost > r2.forest_cost);
    }

    #[test]
    fn zero_load_refresh_keeps_engine_trees_warm() {
        let mut s = session(EmbedMode::Incremental);
        let src = s.instance().request.sources[0];
        let epoch = s.instance().network.graph().cost_epoch();
        {
            let net = &s.instance().network;
            let _ = net.paths().from_source(net.graph(), src);
        }
        let before = s.instance().network.paths().stats();
        // With no standing load every recomputed cost equals its base value;
        // the equality guards must turn the refresh into a complete no-op so
        // the epoch — and with it every cached engine tree — stays warm.
        s.refresh_costs();
        assert_eq!(s.instance().network.graph().cost_epoch(), epoch);
        let net = &s.instance().network;
        let _ = net.paths().from_source(net.graph(), src);
        let after = net.paths().stats();
        assert_eq!(after.hits, before.hits + 1);
        assert_eq!(after.misses, before.misses);
        assert_eq!(after.stale, before.stale);
    }

    #[test]
    fn from_scratch_mode_always_rebuilds() {
        let mut s = session(EmbedMode::FromScratch);
        let base = s.instance().request.destinations.clone();
        for _ in 0..3 {
            let r = s.arrive(snapshot(s.instance(), base.clone())).unwrap();
            assert!(r.rebuilt);
        }
        assert_eq!(s.stats().full_solves, 3);
        assert_eq!(s.stats().incremental_events, 0);
    }

    #[test]
    fn drift_threshold_forces_rebuild() {
        let inst = grid_instance();
        let opts = OnlineConfig::default().with_rebuild_drift(0.0);
        let mut s = OnlineSession::new(inst, Box::new(Sofda), SofdaConfig::default(), opts);
        let base = s.instance().request.destinations.clone();
        s.arrive(snapshot(s.instance(), base.clone())).unwrap();
        // Zero drift tolerance: even a no-op churn (0 < 0 is false… so use a
        // real change) rebuilds.
        let shrunk = vec![base[0]];
        let r = s.arrive(snapshot(s.instance(), shrunk)).unwrap();
        assert!(r.rebuilt);
        assert_eq!(s.stats().full_solves, 2);
    }

    #[test]
    fn source_change_forces_rebuild() {
        let mut s = session(EmbedMode::Incremental);
        let base = s.instance().request.destinations.clone();
        s.arrive(snapshot(s.instance(), base.clone())).unwrap();
        let mut req = snapshot(s.instance(), base);
        req.sources.truncate(1);
        let r = s.arrive(req).unwrap();
        assert!(r.rebuilt);
    }

    #[test]
    fn cost_drift_policy_rebuilds_on_divergence_not_churn() {
        let inst = grid_instance();
        // Threshold 1.0 with the CostDrift policy: any arrival whose
        // standing cost is at or above the last full solve's cost rebuilds.
        // Congestion pricing guarantees that immediately (the forest's own
        // load surcharges its links), so the second arrival must rebuild
        // even though its churn (1 join) is far below the churn-count
        // default of 2 × |D|.
        let opts = OnlineConfig::default()
            .with_drift_policy(DriftPolicy::CostDrift)
            .with_rebuild_drift(1.0);
        let mut s = OnlineSession::new(inst, Box::new(Sofda), SofdaConfig::default(), opts);
        let base = s.instance().request.destinations.clone();
        let extra = s
            .instance()
            .network
            .graph()
            .nodes()
            .find(|n| !base.contains(n) && !s.instance().request.sources.contains(n))
            .unwrap();
        let r1 = s.arrive(snapshot(s.instance(), base.clone())).unwrap();
        assert!(r1.rebuilt);
        let mut grown = base.clone();
        grown.push(extra);
        let r2 = s.arrive(snapshot(s.instance(), grown.clone())).unwrap();
        assert!(r2.rebuilt, "cost at threshold 1.0 must force a rebuild");

        // A generous threshold keeps the same arrival incremental: the
        // policy reacts to cost divergence, not to the churn count.
        let opts = OnlineConfig::default()
            .with_drift_policy(DriftPolicy::CostDrift)
            .with_rebuild_drift(1e6);
        let mut s = OnlineSession::new(
            grid_instance(),
            Box::new(Sofda),
            SofdaConfig::default(),
            opts,
        );
        s.arrive(snapshot(s.instance(), base.clone())).unwrap();
        let r2 = s.arrive(snapshot(s.instance(), grown)).unwrap();
        assert!(!r2.rebuilt, "far-from-divergence arrivals stay incremental");
    }

    #[test]
    fn drift_policy_names_round_trip() {
        for policy in [DriftPolicy::ChurnCount, DriftPolicy::CostDrift] {
            assert_eq!(DriftPolicy::from_name(policy.as_str()).unwrap(), policy);
        }
        let err = DriftPolicy::from_name("entropy").unwrap_err();
        assert!(err.contains("'entropy'") && err.contains("churn"), "{err}");
    }

    #[test]
    fn failed_vm_disrupts_service_and_is_avoided_afterwards() {
        let mut s = session(EmbedMode::Incremental);
        let base = s.instance().request.destinations.clone();
        s.arrive(snapshot(s.instance(), base.clone())).unwrap();
        let used: Vec<NodeId> = s
            .forest()
            .unwrap()
            .enabled_vms()
            .unwrap()
            .keys()
            .copied()
            .collect();
        assert!(!used.is_empty());
        let disrupted = s.fail_vm(used[0]).unwrap();
        assert!(disrupted, "forest was using the VM");
        assert!(s.forest().is_none(), "standing forest dropped");
        assert_eq!(s.stats().vm_failures, 1);
        // The next arrival rebuilds and routes around the failed VM.
        let r = s.arrive(snapshot(s.instance(), base)).unwrap();
        assert!(r.rebuilt);
        let rebuilt_vms = s.forest().unwrap().enabled_vms().unwrap();
        assert!(
            !rebuilt_vms.contains_key(&used[0]),
            "failed VM re-selected despite its prohibitive cost"
        );
        // Failing a non-VM errors cleanly.
        let not_vm = s.instance().request.sources[0];
        assert!(s.fail_vm(not_vm).is_err());
    }

    #[test]
    fn fail_link_reattach_and_repair_cycle() {
        let mut s = session(EmbedMode::Incremental);
        let base = s.instance().request.destinations.clone();
        s.arrive(snapshot(s.instance(), base.clone())).unwrap();
        // Fail the last hop of the first walk: its destination must be
        // reported disrupted, with the forest left standing.
        let (d, u, v) = {
            let w = &s.forest().unwrap().walks[0];
            let n = w.nodes.len();
            (w.destination, w.nodes[n - 2], w.nodes[n - 1])
        };
        let affected = s.fail_link(u, v).unwrap();
        assert!(affected.contains(&d));
        assert!(s.forest().is_some(), "policy decides; forest stands");
        let key = (u.min(v), u.max(v));
        assert!(s.failed_edges().contains(&key));
        match s.plan_reattach(d, false) {
            Ok((walk, cost)) => {
                assert!(walk
                    .nodes
                    .windows(2)
                    .all(|p| (p[0].min(p[1]), p[0].max(p[1])) != key));
                assert!(cost >= 0.0);
                s.switch_walk(walk).unwrap();
                s.forest().unwrap().validate(s.instance()).unwrap();
            }
            Err(SolveError::Infeasible(_)) => {} // d genuinely cut off
            Err(e) => panic!("unexpected error: {e}"),
        }
        s.repair_link(u, v).unwrap();
        assert!(s.failed_edges().is_empty());
        // The repaired link is priced normally again, so future embeddings
        // reuse it.
        let e = s.instance().network.graph().edge_between(u, v).unwrap();
        assert!(s.instance().network.graph().edge_cost(e).value() < 1e8);
        assert!(s.repair_link(u, v).is_err(), "double repair rejected");
        assert!(s.fail_link(u, NodeId::new(u.index())).is_err());
    }

    #[test]
    fn node_failure_is_transit_only_and_repairable() {
        let mut s = session(EmbedMode::Incremental);
        let base = s.instance().request.destinations.clone();
        s.arrive(snapshot(s.instance(), base.clone())).unwrap();
        let src = s.instance().request.sources[0];
        let err = s.fail_node(src).unwrap_err();
        assert!(err.to_string().contains("transit"), "{err}");
        let n = s
            .instance()
            .network
            .graph()
            .nodes()
            .find(|n| {
                !s.instance().request.sources.contains(n)
                    && !s.instance().request.destinations.contains(n)
            })
            .unwrap();
        let _ = s.fail_node(n).unwrap();
        assert!(s.failed_switches().contains(&n));
        // Idempotent re-failure, then a clean repair.
        let _ = s.fail_node(n).unwrap();
        s.repair_node(n).unwrap();
        assert!(s.failed_switches().is_empty());
        assert!(s.repair_node(n).is_err());
    }

    #[test]
    fn soft_vm_failure_keeps_forest_and_repair_restores_pricing() {
        let mut s = session(EmbedMode::Incremental);
        let base = s.instance().request.destinations.clone();
        s.arrive(snapshot(s.instance(), base.clone())).unwrap();
        let vm = *s
            .forest()
            .unwrap()
            .enabled_vms()
            .unwrap()
            .keys()
            .next()
            .unwrap();
        let pristine = s.instance().network.node_cost(vm);
        let affected = s.fail_vm_soft(vm).unwrap();
        assert!(!affected.is_empty(), "an enabled VM disrupts its walks");
        assert!(s.forest().is_some(), "soft failure leaves the forest up");
        assert!(s.failed_switches().contains(&vm));
        s.repair_vm(vm).unwrap();
        assert_eq!(s.instance().network.node_cost(vm), pristine);
        assert!(s.repair_vm(vm).is_err());
    }

    #[test]
    fn replace_forest_swaps_and_resets_drift_baselines() {
        let mut s = session(EmbedMode::Incremental);
        let base = s.instance().request.destinations.clone();
        s.arrive(snapshot(s.instance(), base.clone())).unwrap();
        let standby = s.forest().unwrap().clone();
        s.clear_forest();
        assert!(s.forest().is_none());
        let cost = s.replace_forest(standby).unwrap();
        assert!(cost > 0.0);
        s.forest().unwrap().validate(s.instance()).unwrap();
    }

    #[test]
    fn depart_removes_destination_and_keeps_feasibility() {
        let mut s = session(EmbedMode::Incremental);
        let base = s.instance().request.destinations.clone();
        s.arrive(snapshot(s.instance(), base.clone())).unwrap();
        let cost = s.depart(base[0]).unwrap();
        assert!(cost >= 0.0);
        s.forest().unwrap().validate(s.instance()).unwrap();
        assert!(!s.instance().request.destinations.contains(&base[0]));
        // Departing twice errors.
        assert!(s.depart(base[0]).is_err());
    }
}

//! # sof-survive — the survivability subsystem
//!
//! Failure as a first-class, deterministic citizen of the stack: seeded
//! **failure processes** produce timed link/node/VM/domain failure events
//! with repair times; **protection policies** decide how a standing
//! [`sof_core::OnlineSession`] recovers; **recovery metrics** price each
//! recovery and summarize availability.
//!
//! The design invariants:
//!
//! * **Determinism.** A failure trace is a pure function of
//!   `(seed, plan, universe)`. The [`FailureDriver`] consumes its RNG
//!   stream in a fixed order regardless of simulation state, and repair
//!   times are drawn by the process — never by the policy — so comparing
//!   policies on "the same failure trace" is exact, not approximate.
//! * **Symbolic elements.** An [`ElementRef`] names base-topology
//!   elements (`link:3-7`, `domain:us-east`), so one trace applies
//!   identically to every group instance built from that base.
//! * **Honest pricing.** Recovery cost counts the reconfiguration a
//!   policy installs *at recovery time*: a full rebuild for
//!   [`ProtectionPolicy::Reactive`], the attachment walks for
//!   [`ProtectionPolicy::BackupPaths`], and zero for a
//!   [`ProtectionPolicy::StandbyForest`] pointer swap — whose solve cost
//!   is paid in advance as maintenance, which is the whole point of
//!   pre-provisioned protection.
//!
//! ```
//! use sof_survive::{ElementRef, FailureDriver, FailurePlan, ProcessKind, ProtectionPolicy};
//!
//! let plan = FailurePlan {
//!     process: ProcessKind::Poisson { rate: 0.05 },
//!     scope: vec!["link".into()],
//!     repair: (2, 6),
//!     policy: ProtectionPolicy::StandbyForest,
//!     seed: 97,
//! };
//! plan.validate()?;
//! let universe: Vec<ElementRef> = (0..10).map(|i| ElementRef::link(i, i + 1)).collect();
//! let mut driver = FailureDriver::new(&plan, universe);
//! for round in 0..50 {
//!     let events = driver.advance(round);
//!     for (element, repair_at) in &events.failures {
//!         println!("round {round}: {element} fails (repair {repair_at:?})");
//!     }
//! }
//! # Ok::<(), String>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod element;
mod metrics;
mod policy;
mod process;

pub use element::ElementRef;
pub use metrics::RecoveryMetrics;
pub use policy::{
    forest_avoids, universe_for_scopes, walk_avoids, ProtectionPolicy, Protector, RecoveryOutcome,
};
pub use process::{FailureDriver, FailurePlan, ProcessKind, RoundEvents, ScriptedEvent};

//! Fig. 10: synthetic Inet network sweeps (5000 nodes / 10000 links).
use sof_bench::{run_comparison_sweeps, Args};
use sof_topo::{inet_sized, inet_synthetic};

fn main() {
    let args = Args::parse(
        "fig10 — synthetic Inet network sweeps",
        &[
            ("seeds", "averaging width (default 2)"),
            ("seed", "base RNG seed (default 3000)"),
            (
                "nodes",
                "network size (default 5000; links = 2×, DCs = 2/5×)",
            ),
            (
                "limit",
                "truncate every sweep to its first N values (default 0 = all)",
            ),
        ],
    );
    let seeds: u64 = args.seeds(2);
    let base: u64 = args.get("seed", 3000);
    let nodes: usize = args.get("nodes", 5000);
    let limit: usize = args.get("limit", 0);
    println!("# Fig. 10 — Inet synthetic network ({nodes} nodes, seeds = {seeds})");
    let topo = if nodes == 5000 {
        inet_synthetic(base) // the paper's exact 5000/10000/2000 network
    } else {
        inet_sized(nodes, nodes * 2, (nodes * 2) / 5, base)
    };
    let algos = sof_solvers::comparison_set(false);
    run_comparison_sweeps("Fig. 10", &topo, "Inet", &algos, seeds, base, limit);
}

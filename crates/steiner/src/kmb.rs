//! The Kou–Markowsky–Berman (KMB) 2-approximation.
//!
//! Classic metric-closure construction: MST over terminal pairwise
//! distances, expanded into real shortest paths, re-MSTed and pruned.
//! Slower than Mehlhorn (`k` Dijkstras) but kept as an ablation reference —
//! it can produce slightly different (occasionally better) trees.

use crate::tree::{check_terminals, mst_and_prune, SteinerError, SteinerTree};
use sof_graph::{Cost, EdgeId, Graph, MetricClosure, NodeId, PathEngine, UnionFind};

/// Computes a Steiner tree spanning `terminals` with the KMB algorithm.
///
/// # Errors
///
/// Same contract as [`crate::mehlhorn`].
///
/// # Examples
///
/// ```
/// use sof_graph::{Graph, Cost, NodeId};
/// use sof_steiner::kmb;
///
/// let mut g = Graph::with_nodes(3);
/// g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(1.0));
/// g.add_edge(NodeId::new(1), NodeId::new(2), Cost::new(1.0));
/// let tree = kmb(&g, &[NodeId::new(0), NodeId::new(2)])?;
/// assert_eq!(tree.cost, Cost::new(2.0));
/// # Ok::<(), sof_steiner::SteinerError>(())
/// ```
pub fn kmb(graph: &Graph, terminals: &[NodeId]) -> Result<SteinerTree, SteinerError> {
    check_terminals(graph, terminals)?;
    let mc = MetricClosure::new(graph, terminals.to_vec());
    kmb_over(graph, mc)
}

/// [`kmb`] with its metric closure served by a [`PathEngine`]: terminal
/// trees already cached for the graph's current cost epoch are reused
/// instead of re-running `k` Dijkstras per call. Bit-identical to [`kmb`].
///
/// # Errors
///
/// Same contract as [`kmb`].
pub fn kmb_with_engine(
    graph: &Graph,
    terminals: &[NodeId],
    engine: &PathEngine,
) -> Result<SteinerTree, SteinerError> {
    check_terminals(graph, terminals)?;
    let mc = MetricClosure::with_engine(graph, terminals.to_vec(), engine);
    kmb_over(graph, mc)
}

fn kmb_over(graph: &Graph, mc: MetricClosure) -> Result<SteinerTree, SteinerError> {
    let ts = mc.terminals();
    if ts.len() <= 1 {
        return Ok(SteinerTree::default());
    }
    // Kruskal over the closure.
    let mut pairs: Vec<(Cost, usize, usize)> = Vec::new();
    for i in 0..ts.len() {
        for j in i + 1..ts.len() {
            let d = mc.dist_between(ts[i], ts[j]);
            if d.is_finite() {
                pairs.push((d, i, j));
            }
        }
    }
    pairs.sort();
    let mut uf = UnionFind::new(ts.len());
    let mut real_edges: Vec<EdgeId> = Vec::new();
    let mut joined = 0usize;
    for (_, i, j) in pairs {
        if uf.union(i, j) {
            joined += 1;
            let tree = mc.tree(ts[i]);
            real_edges.extend(
                tree.edges_to(ts[j])
                    .expect("finite distance implies a path"),
            );
        }
    }
    if joined + 1 != ts.len() {
        let root = uf.find(0);
        let t = (0..ts.len())
            .find(|&i| uf.find(i) != root)
            .map(|i| ts[i])
            .unwrap_or(ts[0]);
        return Err(SteinerError::Unreachable { terminal: t });
    }
    let distinct = ts.to_vec();
    let kept = mst_and_prune(graph, real_edges, &distinct);
    Ok(SteinerTree::from_edges(graph, kept))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmb_is_within_factor_two_on_classic_bad_case() {
        // Classic KMB worst-case shape: the metric closure hides the hub, so
        // KMB returns the 3.8 pairwise tree while the optimum (via hub 4) is
        // 3.0 — still within the 2-approximation guarantee.
        let mut g = Graph::with_nodes(5);
        g.add_edge(NodeId::new(0), NodeId::new(4), Cost::new(1.0));
        g.add_edge(NodeId::new(1), NodeId::new(4), Cost::new(1.0));
        g.add_edge(NodeId::new(2), NodeId::new(4), Cost::new(1.0));
        g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(1.9));
        g.add_edge(NodeId::new(1), NodeId::new(2), Cost::new(1.9));
        let ts = vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)];
        let tree = kmb(&g, &ts).unwrap();
        tree.validate(&g, &ts).unwrap();
        assert_eq!(tree.cost, Cost::new(3.8));
        let exact = crate::dreyfus_wagner(&g, &ts).unwrap();
        assert_eq!(exact.cost, Cost::new(3.0));
        assert!(tree.cost <= exact.cost * 2.0);
    }

    #[test]
    fn unreachable_reported() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(1.0));
        g.add_edge(NodeId::new(2), NodeId::new(3), Cost::new(1.0));
        let err = kmb(&g, &[NodeId::new(0), NodeId::new(3)]).unwrap_err();
        assert!(matches!(err, SteinerError::Unreachable { .. }));
    }

    #[test]
    fn empty_terminals_ok() {
        let g = Graph::with_nodes(2);
        assert!(kmb(&g, &[]).unwrap().edges.is_empty());
    }

    #[test]
    fn engine_backed_kmb_is_bit_identical() {
        use sof_graph::{generators, CostRange, Rng64};
        let engine = PathEngine::new();
        for seed in 0..5u64 {
            let mut rng = Rng64::seed_from(seed);
            let g = generators::gnp_connected(35, 0.12, CostRange::new(1.0, 8.0), &mut rng);
            let ts: Vec<NodeId> = rng
                .sample_indices(35, 6)
                .into_iter()
                .map(NodeId::new)
                .collect();
            let plain = kmb(&g, &ts).unwrap();
            let cached = kmb_with_engine(&g, &ts, &engine).unwrap();
            assert_eq!(plain.edges, cached.edges, "seed {seed}");
            assert_eq!(plain.cost, cached.cost, "seed {seed}");
            // Second call over the same graph is served from the cache.
            let misses = engine.stats().misses;
            let again = kmb_with_engine(&g, &ts, &engine).unwrap();
            assert_eq!(again.cost, plain.cost);
            assert_eq!(engine.stats().misses, misses);
        }
    }
}

//! # sof-bench — experiment harness regenerating the paper's evaluation
//!
//! One binary per table/figure (see DESIGN.md §4):
//!
//! | target | reproduces |
//! |--------|------------|
//! | `fig7` | the convex cost function curve |
//! | `fig8` | SoftLayer sweeps incl. the exact ("CPLEX") column |
//! | `fig9` | Cogent sweeps |
//! | `fig10` | Inet-synthetic sweeps |
//! | `fig11` | setup-cost multiple × chain length |
//! | `fig12` | online deployment accumulative cost |
//! | `table1` | SOFDA running time vs network size and source count |
//! | `table2` | testbed QoE (startup latency / rebuffering) |
//!
//! Every binary accepts `--seeds N` (averaging width) and `--seed S`
//! (base seed) and prints markdown tables; all runs are deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sof_baselines::{solve_enemp, solve_est, solve_st};
use sof_core::{SofInstance, SofdaConfig, SolveOutcome};
use std::time::Instant;

/// A parameter sweep: axis label, swept values, and the setter applying a
/// value to [`sof_topo::ScenarioParams`].
pub type Sweep = (
    &'static str,
    Vec<usize>,
    Box<dyn Fn(&mut sof_topo::ScenarioParams, usize)>,
);

/// The standard one-time-deployment sweep grid shared by Figs. 9-10:
/// #sources / #destinations / #VMs / chain length over the paper's ranges.
pub fn standard_sweeps() -> Vec<Sweep> {
    vec![
        (
            "#sources",
            vec![2, 8, 14, 20, 26],
            Box::new(|p: &mut sof_topo::ScenarioParams, v| p.sources = v),
        ),
        (
            "#destinations",
            vec![2, 4, 6, 8, 10],
            Box::new(|p, v| p.destinations = v),
        ),
        (
            "#VMs",
            vec![5, 15, 25, 35, 45],
            Box::new(|p, v| p.vm_count = v),
        ),
        (
            "chain length",
            vec![3, 4, 5, 6, 7],
            Box::new(|p, v| p.chain_len = v),
        ),
    ]
}

/// Which algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algo {
    /// The paper's contribution (Algorithm 2).
    Sofda,
    /// eNEMP baseline.
    Enemp,
    /// eST baseline.
    Est,
    /// ST baseline.
    St,
    /// Exact solver ("CPLEX" column).
    Exact,
}

impl Algo {
    /// Display name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            Algo::Sofda => "SOFDA",
            Algo::Enemp => "eNEMP",
            Algo::Est => "eST",
            Algo::St => "ST",
            Algo::Exact => "CPLEX*",
        }
    }

    /// The standard comparison set (Figs. 8–10).
    pub fn comparison_set(with_exact: bool) -> Vec<Algo> {
        let mut v = vec![Algo::Sofda, Algo::Enemp, Algo::Est, Algo::St];
        if with_exact {
            v.push(Algo::Exact);
        }
        v
    }
}

/// One algorithm run's outcome.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Total forest cost.
    pub cost: f64,
    /// Enabled VMs.
    pub used_vms: usize,
    /// Wall-clock milliseconds.
    pub millis: f64,
    /// The full outcome (for QoE / rule compilation downstream).
    pub outcome: Option<SolveOutcome>,
}

/// Runs one algorithm on an instance, validating the result.
///
/// Returns `None` when the algorithm reports infeasibility (e.g. the exact
/// solver on an oversized instance).
pub fn run(algo: Algo, instance: &SofInstance, config: &SofdaConfig) -> Option<RunResult> {
    let t0 = Instant::now();
    let outcome = match algo {
        Algo::Sofda => sof_core::solve_sofda(instance, config).ok()?,
        Algo::Enemp => solve_enemp(instance, config).ok()?,
        Algo::Est => solve_est(instance, config).ok()?,
        Algo::St => solve_st(instance, config).ok()?,
        Algo::Exact => {
            // The DP is 3^|D|; scale the branch-and-bound budget down as
            // |D| grows to keep the CPLEX substitute at paper-scale cost
            // (the incumbent is SOFDA-seeded, so cost <= SOFDA still holds).
            let d = instance.request.destinations.len();
            if d > 10 {
                return None;
            }
            let budget = match d {
                0..=6 => 400,
                7..=8 => 120,
                _ => 30,
            };
            let out = sof_exact::solve_exact(instance, budget).ok()?;
            let cost = out.forest.cost(&instance.network);
            SolveOutcome {
                forest: out.forest,
                cost,
                stats: Default::default(),
            }
        }
    };
    let millis = t0.elapsed().as_secs_f64() * 1e3;
    outcome.forest.validate(instance).expect("validated output");
    Some(RunResult {
        cost: outcome.cost.total().value(),
        used_vms: outcome.forest.stats().used_vms,
        millis,
        outcome: Some(outcome),
    })
}

/// Averages an algorithm over `seeds` instance draws produced by `make`.
///
/// Returns `(mean cost, mean used VMs, mean milliseconds)`.
pub fn average<F>(
    algo: Algo,
    seeds: u64,
    base_seed: u64,
    config: &SofdaConfig,
    make: F,
) -> Option<(f64, f64, f64)>
where
    F: Fn(u64) -> SofInstance,
{
    let mut cost = 0.0;
    let mut vms = 0.0;
    let mut ms = 0.0;
    let mut n = 0.0;
    for i in 0..seeds {
        let inst = make(base_seed + i);
        if let Some(r) = run(algo, &inst, &config.with_seed(base_seed + i)) {
            cost += r.cost;
            vms += r.used_vms as f64;
            ms += r.millis;
            n += 1.0;
        }
    }
    (n > 0.0).then(|| (cost / n, vms / n, ms / n))
}

/// Tiny `--flag value` parser for the experiment binaries.
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Captures the process arguments.
    pub fn capture() -> Args {
        Args {
            raw: std::env::args().collect(),
        }
    }

    /// Reads `--seeds` (averaging width), clamped to at least 1 because
    /// averaging over zero seeds is a `None` from [`average`].
    pub fn seeds(&self, default: u64) -> u64 {
        self.get("seeds", default).max(1)
    }

    /// Reads `--name <value>` with a default.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        let flag = format!("--{name}");
        self.raw
            .iter()
            .position(|a| a == &flag)
            .and_then(|i| self.raw.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

/// Prints a markdown table row.
pub fn print_row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a markdown header + separator.
pub fn print_header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use sof_topo::{build_instance, softlayer, ScenarioParams};

    #[test]
    fn run_all_algorithms_once() {
        let topo = softlayer();
        let mut p = ScenarioParams::paper_defaults().with_seed(5);
        p.destinations = 4;
        p.sources = 6;
        p.vm_count = 12;
        let inst = build_instance(&topo, &p);
        for algo in Algo::comparison_set(true) {
            let r = run(algo, &inst, &SofdaConfig::default()).expect("feasible");
            assert!(r.cost > 0.0, "{}", algo.name());
        }
    }

    #[test]
    fn averaging_is_deterministic() {
        let topo = softlayer();
        let make = |seed: u64| {
            let mut p = ScenarioParams::paper_defaults().with_seed(seed);
            p.destinations = 3;
            p.sources = 4;
            p.vm_count = 10;
            build_instance(&topo, &p)
        };
        let a = average(Algo::Sofda, 3, 100, &SofdaConfig::default(), make).unwrap();
        let b = average(Algo::Sofda, 3, 100, &SofdaConfig::default(), make).unwrap();
        assert_eq!(a.0, b.0);
    }
}

//! Color-coding DP for k-stroll (Alon–Yuster–Zwick style).
//!
//! Each trial randomly k-colors the nodes and finds the cheapest *colorful*
//! path (distinct colors ⇒ distinct nodes) from the source to every node via
//! a subset DP. A fixed optimal k-node path survives a trial with
//! probability `k!/k^k`, so enough trials find it with high probability.
//! One DP run covers **all** targets simultaneously, which is what makes it
//! attractive inside SOFDA (Procedure 3 needs a stroll from every source to
//! every candidate last VM).

use crate::{Metric, Stroll};
use sof_graph::{Cost, Rng64};

/// Cheapest colorful-path table for one source: per target the best stroll
/// found across trials.
#[derive(Clone, Debug)]
pub struct ColorCodingResult {
    /// Best stroll per target node index (`None` = none found / infeasible).
    pub best: Vec<Option<Stroll>>,
    /// Trials actually executed.
    pub trials_run: usize,
}

/// Early-stop window: after this many consecutive non-improving trials
/// (once every reachable target has a solution) the search stops. Scaled to
/// `~3 / (k!/k^k)` so the expected number of missed optimal colorings is
/// negligible.
fn stall_window(k: usize) -> usize {
    let mut p = 1.0f64;
    for i in 1..=k {
        p *= i as f64 / k as f64;
    }
    ((3.0 / p).ceil() as usize).clamp(32, 2000)
}

/// Runs color-coding from `source` for paths on exactly `k` distinct nodes,
/// returning the best stroll to **every** target.
///
/// `trials` bounds the number of random colorings; the search stops early
/// after a `k`-dependent window of consecutive non-improving trials once
/// every reachable target has a solution.
///
/// # Panics
///
/// Panics if `k == 0` or `k > 63`.
pub fn color_coding_all_targets<M: Metric + ?Sized>(
    metric: &M,
    source: usize,
    k: usize,
    trials: usize,
    rng: &mut Rng64,
) -> ColorCodingResult {
    assert!((1..=63).contains(&k), "k out of range: {k}");
    let n = metric.len();
    let mut best: Vec<Option<Stroll>> = vec![None; n];
    if source >= n || k > n {
        return ColorCodingResult {
            best,
            trials_run: 0,
        };
    }
    if k == 1 {
        best[source] = Some(Stroll::from_nodes(metric, vec![source]));
        return ColorCodingResult {
            best,
            trials_run: 0,
        };
    }

    let full: u64 = (1u64 << k) - 1;
    let masks = 1usize << k;
    let mut color = vec![0u8; n];
    // dp[mask][v] plus predecessor for reconstruction.
    let mut dp = vec![Cost::INFINITY; masks * n];
    let mut pred = vec![usize::MAX; masks * n];
    let mut found_all = false;
    let mut stall = 0usize;
    let mut trials_run = 0usize;

    for _ in 0..trials {
        trials_run += 1;
        for c in color.iter_mut() {
            *c = rng.below(k) as u8;
        }
        dp.iter_mut().for_each(|d| *d = Cost::INFINITY);
        let smask = 1usize << color[source];
        dp[smask * n + source] = Cost::ZERO;

        // Iterate masks in increasing popcount order implicitly: a mask is
        // always larger than its submask, so plain increasing order works.
        for mask in 1..masks {
            if mask & smask == 0 {
                continue; // every path contains the source's color
            }
            if (mask as u64).count_ones() as usize == k {
                continue; // complete; no extension needed
            }
            for v in 0..n {
                let cur = dp[mask * n + v];
                if !cur.is_finite() {
                    continue;
                }
                // One row fetch per extended state: the DP relaxation below
                // is by far the hottest metric reader in the crate, so dense
                // and pinned-lazy metrics hand out a borrowed slice and every
                // hop read becomes a plain indexed load.
                let vrow = metric.row(v);
                for w in 0..n {
                    let cbit = 1usize << color[w];
                    if mask & cbit != 0 {
                        continue;
                    }
                    let nm = mask | cbit;
                    let hop = match vrow {
                        Some(r) => r[w],
                        None => metric.cost(v, w),
                    };
                    let nc = cur + hop;
                    if nc < dp[nm * n + w] {
                        dp[nm * n + w] = nc;
                        pred[nm * n + w] = mask * n + v;
                    }
                }
            }
        }

        // Harvest all targets whose full-mask entry improved.
        let mut improved = false;
        for t in 0..n {
            if t == source {
                continue;
            }
            // Any mask with k colors ending at t is a candidate; the only
            // k-color mask is `full` when all k colors are used.
            let cand = dp[(full as usize) * n + t];
            if cand.is_finite() && best[t].as_ref().is_none_or(|b| cand < b.cost) {
                // Reconstruct.
                let mut nodes = vec![t];
                let mut cell = (full as usize) * n + t;
                while pred[cell] != usize::MAX {
                    cell = pred[cell];
                    nodes.push(cell % n);
                }
                nodes.reverse();
                debug_assert_eq!(nodes.len(), k);
                best[t] = Some(Stroll::from_nodes(metric, nodes));
                improved = true;
            }
        }
        if !found_all {
            found_all = (0..n).all(|t| t == source || best[t].is_some() || k > n);
        }
        if improved {
            stall = 0;
        } else {
            stall += 1;
            if found_all && stall >= stall_window(k) {
                break;
            }
        }
    }
    ColorCodingResult { best, trials_run }
}

/// Single-target convenience wrapper around [`color_coding_all_targets`].
pub fn color_coding_stroll<M: Metric + ?Sized>(
    metric: &M,
    source: usize,
    target: usize,
    k: usize,
    trials: usize,
    rng: &mut Rng64,
) -> Option<Stroll> {
    if source == target {
        return (k == 1).then(|| Stroll::from_nodes(metric, vec![source]));
    }
    if k < 2 {
        return None;
    }
    let res = color_coding_all_targets(metric, source, k, trials, rng);
    res.best.into_iter().nth(target).flatten()
}

/// A sensible default trial budget for a given `k` (covers ≥99% success for
/// the worst target in expectation, capped to stay fast for large `k`).
pub fn default_trials(k: usize) -> usize {
    // ~ ln(100) / (k!/k^k), capped.
    let mut p = 1.0f64;
    for i in 1..=k {
        p *= i as f64 / k as f64;
    }
    let t = (4.7 / p).ceil() as usize;
    t.clamp(16, 2500)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exact_stroll, DenseMetric};

    fn euclid(n: usize, seed: u64) -> DenseMetric {
        let mut rng = Rng64::seed_from(seed);
        let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.next_f64(), rng.next_f64())).collect();
        DenseMetric::symmetric_from_fn(n, |i, j| {
            let dx = pts[i].0 - pts[j].0;
            let dy = pts[i].1 - pts[j].1;
            Cost::new((dx * dx + dy * dy).sqrt())
        })
    }

    #[test]
    fn matches_exact_with_enough_trials() {
        let m = euclid(10, 42);
        let mut rng = Rng64::seed_from(1);
        for k in 2..=6 {
            let cc = color_coding_stroll(&m, 0, 9, k, default_trials(k), &mut rng).unwrap();
            cc.validate(&m, 0, 9, k).unwrap();
            let ex = exact_stroll(&m, 0, 9, k).unwrap();
            assert!(
                cc.cost.value() <= ex.cost.value() * 1.02 + 1e-9,
                "k={k}: cc {} vs exact {}",
                cc.cost,
                ex.cost
            );
        }
    }

    #[test]
    fn all_targets_covered() {
        let m = euclid(8, 7);
        let mut rng = Rng64::seed_from(2);
        let res = color_coding_all_targets(&m, 0, 4, default_trials(4), &mut rng);
        for t in 1..8 {
            let s = res.best[t].as_ref().expect("target must be reachable");
            s.validate(&m, 0, t, 4).unwrap();
        }
        assert!(res.best[0].is_none());
    }

    #[test]
    fn degenerate_k() {
        let m = euclid(5, 3);
        let mut rng = Rng64::seed_from(4);
        assert_eq!(
            color_coding_stroll(&m, 2, 2, 1, 10, &mut rng)
                .unwrap()
                .nodes,
            vec![2]
        );
        assert!(color_coding_stroll(&m, 0, 1, 1, 10, &mut rng).is_none());
        // k > n: no solution possible.
        assert!(color_coding_stroll(&m, 0, 1, 6, 10, &mut rng).is_none());
    }

    #[test]
    fn default_trials_reasonable() {
        assert!(default_trials(2) >= 16);
        assert!(default_trials(8) <= 2500);
        assert!(default_trials(4) < default_trials(6));
    }
}

//! # sof-sdn — SDN control plane for service overlay forests
//!
//! Two pieces of the paper's system story:
//!
//! * [`RuleTable`] — compiles a [`sof_core::ServiceForest`] into
//!   OpenFlow-style per-switch multicast rules with segment tags and VNF
//!   processing actions, plus TCAM accounting and a data-plane delivery
//!   check (the packets really reach every destination fully processed).
//! * [`distributed_sofda`] — §VI's multi-controller deployment: controllers
//!   own domains, exchange border distance matrices east-west over real
//!   channels, the leader solves SOFDA on the assembled abstract graph, and
//!   selected virtual links are expanded back by their owning controllers.
//!
//! # Examples
//!
//! ```
//! use sof_core::{Network, Request, ServiceChain, SofInstance, SofdaConfig, solve_sofda};
//! use sof_graph::{Graph, Cost, NodeId};
//! use sof_sdn::RuleTable;
//!
//! let mut g = Graph::with_nodes(4);
//! for i in 0..3 {
//!     g.add_edge(NodeId::new(i), NodeId::new(i + 1), Cost::new(1.0));
//! }
//! let mut net = Network::all_switches(g);
//! net.make_vm(NodeId::new(1), Cost::new(1.0));
//! let inst = SofInstance::new(
//!     net,
//!     Request::new(vec![NodeId::new(0)], vec![NodeId::new(3)], ServiceChain::with_len(1)),
//! )?;
//! let out = solve_sofda(&inst, &SofdaConfig::default())?;
//! let table = RuleTable::compile(&out.forest);
//! assert!(table.delivers(&inst.network, &out.forest));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod distributed;
mod rules;

pub use distributed::{distributed_sofda, DistributedOutcome, DistributedSofda, DomainPartition};
pub use rules::{FlowRule, RuleTable};

//! Algorithm 2: SOFDA, the `3ρST`-approximation for the general SOF problem.
//!
//! Procedure 3 builds an auxiliary graph `𝐆`: the real network, plus a
//! virtual super-source `ŝ`, a duplicate `v̂` per source, a duplicate `û`
//! per VM, zero-cost edges `ŝ–v̂` and `û–u`, and a *virtual edge* `v̂–û`
//! per candidate service chain (cost = cheapest `|C|`-VM walk from `v` to
//! `u`, via k-stroll). A Steiner tree spanning `ŝ` and all destinations in
//! `𝐆` then simultaneously selects sources, chains and distribution trees;
//! Lemma 2 bounds its cost by `3·OPT`. The selected chains are deployed
//! through [`WalkSet`] (Procedure 4), which resolves VNF conflicts without
//! adding links or VMs, preserving Theorem 3's `3ρST` bound.

use crate::{
    ChainMetric, ChainWalk, DestWalk, ServiceForest, SofInstance, SofdaConfig, SolveError,
    SolveOutcome, SolveStats, WalkSet,
};
use sof_graph::{Cost, Graph, NodeId, Rng64};
use sof_steiner::SteinerTree;
use std::collections::{BTreeMap, HashMap};

/// Chain tails grouped by `(source index, anchor VM)`: each entry lists the
/// destinations anchored there with the real anchor-to-destination path.
type ChainTails = BTreeMap<(usize, NodeId), Vec<(NodeId, Vec<NodeId>)>>;

/// Solves the general multi-source SOF problem (Algorithm 2).
///
/// # Errors
///
/// * [`SolveError::Infeasible`] when the chain cannot be realized.
/// * [`SolveError::Steiner`] when destinations are unreachable.
///
/// # Examples
///
/// ```
/// use sof_core::{Network, Request, ServiceChain, SofInstance, SofdaConfig, solve_sofda};
/// use sof_graph::{Graph, Cost, NodeId};
///
/// let mut g = Graph::with_nodes(6);
/// for i in 0..5 {
///     g.add_edge(NodeId::new(i), NodeId::new(i + 1), Cost::new(1.0));
/// }
/// let mut net = Network::all_switches(g);
/// net.make_vm(NodeId::new(2), Cost::new(1.0));
/// net.make_vm(NodeId::new(3), Cost::new(1.0));
/// let inst = SofInstance::new(
///     net,
///     Request::new(
///         vec![NodeId::new(0), NodeId::new(5)],
///         vec![NodeId::new(4)],
///         ServiceChain::with_len(1),
///     ),
/// )?;
/// let out = solve_sofda(&inst, &SofdaConfig::default())?;
/// assert!(out.forest.walks.len() == 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn solve_sofda(
    instance: &SofInstance,
    config: &SofdaConfig,
) -> Result<SolveOutcome, SolveError> {
    let network = &instance.network;
    let sources = &instance.request.sources;
    let dests = &instance.request.destinations;
    let chain_len = instance.chain_len();
    let mut rng = Rng64::seed_from(config.seed);
    let mut stats = SolveStats::default();

    let n = network.node_count();
    let vms = network.vms();
    if vms.len() < chain_len {
        return Err(SolveError::Infeasible(format!(
            "chain needs {chain_len} VMs, network has {}",
            vms.len()
        )));
    }

    // --- Build the auxiliary graph (Procedure 3). -------------------------
    let mut aux = Graph::with_nodes(n);
    for (_, e) in network.graph().edges() {
        aux.add_edge(e.u, e.v, e.cost);
    }
    let shat = aux.add_node();
    let src_dup: Vec<NodeId> = sources.iter().map(|_| aux.add_node()).collect();
    for &d in &src_dup {
        aux.add_edge(shat, d, Cost::ZERO);
    }

    // Candidate chains + walk storage. Key: (source index, vm node).
    let mut chain_walks: HashMap<(usize, NodeId), (Vec<NodeId>, Vec<usize>)> = HashMap::new();

    if chain_len == 0 {
        // Degenerate: no VNFs — connect ŝ straight to the sources and let a
        // plain Steiner tree pick the forest.
        for (si, &s) in sources.iter().enumerate() {
            aux.add_edge(src_dup[si], s, Cost::ZERO);
        }
        let tree = steiner_over(&aux, shat, dests, config)?;
        stats.steiner_cost = tree.cost;
        let parent = root_tree(&aux, &tree, shat);
        let mut walks = Vec::with_capacity(dests.len());
        for &d in dests {
            let mut nodes = vec![d];
            let mut cur = d;
            loop {
                let p = *parent
                    .get(&cur)
                    .ok_or_else(|| SolveError::Infeasible(format!("{d} not in tree")))?;
                if p.index() > n {
                    // Reached a source duplicate: the walk starts at `cur`,
                    // which must be the duplicated source itself.
                    break;
                }
                if p == shat {
                    return Err(SolveError::Infeasible(format!(
                        "{d} attached to ŝ directly"
                    )));
                }
                nodes.push(p);
                cur = p;
            }
            nodes.reverse();
            walks.push(DestWalk {
                destination: d,
                source: nodes[0],
                nodes,
                vnf_positions: vec![],
            });
        }
        return crate::sofda_ss::finish(instance, config, ServiceForest::new(0, walks), stats);
    }

    let vm_dup_base = aux.node_count();
    let mut vm_dup: BTreeMap<NodeId, NodeId> = BTreeMap::new();
    for &v in &vms {
        let d = aux.add_node();
        aux.add_edge(d, v, Cost::ZERO);
        vm_dup.insert(v, d);
    }

    for (si, &s) in sources.iter().enumerate() {
        let Some(cm) = ChainMetric::build(network, s, &vms, config.source_cost()) else {
            continue;
        };
        for (target, stroll, chain_cost) in cm.chains_to_all_vms(chain_len, config.stroll, &mut rng)
        {
            let u = cm.node(target);
            let (walk, positions) = cm.expand(&stroll);
            aux.add_edge(src_dup[si], vm_dup[&u], chain_cost);
            chain_walks.insert((si, u), (walk, positions));
            stats.candidate_chains += 1;
        }
    }
    if chain_walks.is_empty() {
        return Err(SolveError::Infeasible(
            "no candidate service chain exists".into(),
        ));
    }

    // --- Steiner tree spanning ŝ ∪ D (Lemma 2 bounds its cost). ----------
    let tree = steiner_over(&aux, shat, dests, config)?;
    stats.steiner_cost = tree.cost;
    let parent = root_tree(&aux, &tree, shat);

    // --- Per destination: find the first virtual edge above it. ----------
    // tails[d] = (source index, anchor VM, real path anchor→d).
    let mut needed_chains: ChainTails = BTreeMap::new();
    for &d in dests {
        let mut tail_rev = vec![d];
        let mut cur = d;
        let (si, anchor) = loop {
            let p = *parent
                .get(&cur)
                .ok_or_else(|| SolveError::Infeasible(format!("{d} not spanned by tree")))?;
            if p.index() >= vm_dup_base {
                // `cur` is the anchor VM; p is its duplicate. One more hop
                // up is the source duplicate of the chain's virtual edge.
                let q = *parent
                    .get(&p)
                    .ok_or_else(|| SolveError::Infeasible("dangling VM duplicate".into()))?;
                let si = q.index().checked_sub(n + 1).filter(|&i| i < src_dup.len());
                let si = si.ok_or_else(|| {
                    SolveError::Infeasible("VM duplicate not fed by a chain".into())
                })?;
                break (si, cur);
            }
            if p == shat || p.index() > n {
                return Err(SolveError::Infeasible(format!(
                    "{d} reached ŝ without passing a service chain"
                )));
            }
            tail_rev.push(p);
            cur = p;
        };
        let tail: Vec<NodeId> = tail_rev.into_iter().rev().collect();
        needed_chains
            .entry((si, anchor))
            .or_default()
            .push((d, tail));
    }

    // --- Deploy chains with conflict resolution (Procedure 4). -----------
    let mut set = WalkSet::new(chain_len);
    let mut slot_of: BTreeMap<(usize, NodeId), usize> = BTreeMap::new();
    for key in needed_chains.keys() {
        let (walk, positions) = chain_walks
            .get(key)
            .cloned()
            .ok_or_else(|| SolveError::Infeasible("tree used a non-candidate chain".into()))?;
        let cw = ChainWalk {
            source: sources[key.0],
            nodes: walk,
            vnf_positions: positions,
        };
        let slot = set
            .add_walk(cw, network)
            .map_err(|e| SolveError::Infeasible(e.to_string()))?;
        slot_of.insert(*key, slot);
    }
    // Note: walk shortening happens at forest level inside `finish`, where
    // it is only kept if the *total* cost improves — per-walk shortening
    // here could break cross-walk sharing and regress the union cost.
    stats.conflicts = set.stats;

    // --- Assemble per-destination walks. ----------------------------------
    // Each chain is taken out of the walk set once; all but the last tail
    // borrow it (single exact-sized allocation per walk), the last one
    // takes ownership of its buffers.
    let mut by_slot: BTreeMap<usize, ChainWalk> = set.into_walks().into_iter().collect();
    let mut walks = Vec::with_capacity(dests.len());
    for (key, tails) in &needed_chains {
        let chain = by_slot
            .remove(&slot_of[key])
            .ok_or_else(|| SolveError::Infeasible("deployed chain lost its slot".into()))?;
        let (last_tail, rest) = tails.split_last().expect("every needed chain has a tail");
        for (d, tail) in rest {
            let mut nodes = Vec::with_capacity(chain.nodes.len() + tail.len() - 1);
            nodes.extend_from_slice(&chain.nodes);
            nodes.extend_from_slice(&tail[1..]);
            walks.push(DestWalk {
                destination: *d,
                source: chain.source,
                nodes,
                vnf_positions: chain.vnf_positions.clone(),
            });
        }
        let (d, tail) = last_tail;
        let source = chain.source;
        let mut nodes = chain.nodes;
        nodes.extend_from_slice(&tail[1..]);
        walks.push(DestWalk {
            destination: *d,
            source,
            nodes,
            vnf_positions: chain.vnf_positions,
        });
    }
    crate::sofda_ss::finish(
        instance,
        config,
        ServiceForest::new(chain_len, walks),
        stats,
    )
}

/// Runs the configured Steiner solver over `ŝ ∪ D`.
fn steiner_over(
    aux: &Graph,
    shat: NodeId,
    dests: &[NodeId],
    config: &SofdaConfig,
) -> Result<SteinerTree, SolveError> {
    let mut terminals = vec![shat];
    terminals.extend_from_slice(dests);
    Ok(config.steiner.solve(aux, &terminals)?)
}

/// Parent map of the tree rooted at `root`.
fn root_tree(aux: &Graph, tree: &SteinerTree, root: NodeId) -> HashMap<NodeId, NodeId> {
    let mut adj: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for &e in &tree.edges {
        let edge = aux.edge(e);
        adj.entry(edge.u).or_default().push(edge.v);
        adj.entry(edge.v).or_default().push(edge.u);
    }
    let mut parent = HashMap::new();
    let mut stack = vec![root];
    parent.insert(root, root);
    while let Some(u) = stack.pop() {
        for &v in adj.get(&u).into_iter().flatten() {
            if let std::collections::hash_map::Entry::Vacant(slot) = parent.entry(v) {
                slot.insert(u);
                stack.push(v);
            }
        }
    }
    parent.remove(&root);
    parent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve_sofda_ss, Network, Request, ServiceChain};
    use sof_graph::{generators, CostRange};

    fn random_instance(
        seed: u64,
        nodes: usize,
        vm_count: usize,
        sources: usize,
        dests: usize,
        chain: usize,
    ) -> SofInstance {
        let mut rng = Rng64::seed_from(seed);
        let g = generators::gnp_connected(nodes, 0.15, CostRange::new(1.0, 8.0), &mut rng);
        let mut net = Network::all_switches(g);
        let picks = rng.sample_indices(nodes, vm_count + sources + dests);
        let (vm_ids, rest) = picks.split_at(vm_count);
        let (src_ids, dst_ids) = rest.split_at(sources);
        for &v in vm_ids {
            net.make_vm(NodeId::new(v), Cost::new(rng.range_f64(0.5, 4.0)));
        }
        SofInstance::new(
            net,
            Request::new(
                src_ids.iter().map(|&i| NodeId::new(i)).collect(),
                dst_ids.iter().map(|&i| NodeId::new(i)).collect(),
                ServiceChain::with_len(chain),
            ),
        )
        .unwrap()
    }

    #[test]
    fn random_instances_solve_and_validate() {
        for seed in 0..15 {
            let inst = random_instance(seed, 24, 6, 3, 4, 2);
            let out = solve_sofda(&inst, &SofdaConfig::default().with_seed(seed)).unwrap();
            out.forest.validate(&inst).unwrap();
            assert_eq!(out.forest.walks.len(), 4);
        }
    }

    #[test]
    fn multi_source_no_worse_than_single_source_often() {
        // With one source, SOFDA and SOFDA-SS attack the same problem.
        let mut wins = 0;
        let mut total = 0;
        for seed in 0..10 {
            let inst = random_instance(seed + 100, 20, 5, 1, 3, 2);
            let general = solve_sofda(&inst, &SofdaConfig::default()).unwrap();
            let single = solve_sofda_ss(&inst, &SofdaConfig::default()).unwrap();
            general.forest.validate(&inst).unwrap();
            single.forest.validate(&inst).unwrap();
            total += 1;
            if general.cost.total() <= single.cost.total() * 1.5 {
                wins += 1;
            }
        }
        assert!(
            wins * 2 >= total,
            "SOFDA wildly worse than SOFDA-SS: {wins}/{total}"
        );
    }

    #[test]
    fn zero_chain_reduces_to_steiner_forest() {
        let inst = random_instance(7, 18, 3, 2, 4, 0);
        let out = solve_sofda(&inst, &SofdaConfig::default()).unwrap();
        out.forest.validate(&inst).unwrap();
        assert_eq!(out.cost.setup, Cost::ZERO);
    }

    #[test]
    fn longer_chains_cost_more() {
        let mut last = Cost::ZERO;
        for chain in 1..=3 {
            let inst = random_instance(42, 26, 8, 3, 4, chain);
            let out = solve_sofda(&inst, &SofdaConfig::default()).unwrap();
            assert!(out.cost.total() >= last);
            last = out.cost.total();
        }
    }

    #[test]
    fn conflict_stats_are_exposed() {
        // Dense demand on a tiny VM pool provokes conflicts.
        let inst = random_instance(3, 22, 4, 4, 6, 3);
        let out = solve_sofda(&inst, &SofdaConfig::default()).unwrap();
        out.forest.validate(&inst).unwrap();
        // No assertion on counts (instance-dependent) — just consistency.
        let _ = out.stats.conflicts.total();
    }
}

//! # sof-topo — evaluation topologies for the SOF reproduction
//!
//! The paper evaluates on two inter-datacenter networks and one synthetic
//! topology (§VIII-A), plus a 14-node SDN testbed (Fig. 13):
//!
//! | name | access nodes | links | data centers |
//! |------|--------------|-------|--------------|
//! | IBM SoftLayer | 27 | 49 | 17 |
//! | Cogent        | 190 | 260 | 40 |
//! | Inet synthetic| 5000 | 10000 | 2000 |
//! | testbed (Fig. 13) | 14 | 20 | — |
//!
//! The public maps referenced by the paper are not machine-readable, so the
//! adjacency here is **synthesized deterministically with the paper's exact
//! node/link/DC counts** (DESIGN.md §5.4): a backbone-flavoured construction
//! for SoftLayer/testbed, power-law growth for Cogent/Inet.
//!
//! [`ScenarioParams`] + [`build_instance`] reproduce the experiment setup:
//! VMs attached to random data centers, link costs drawn from utilization
//! `U(0,1)` through the Fortz–Thorup function, VM setup costs from host
//! utilization, uniformly random sources/destinations.
//!
//! # Examples
//!
//! ```
//! use sof_topo::{softlayer, ScenarioParams, build_instance};
//!
//! let topo = softlayer();
//! assert_eq!(topo.graph.node_count(), 27);
//! assert_eq!(topo.graph.edge_count(), 49);
//! assert_eq!(topo.dc_nodes.len(), 17);
//! let inst = build_instance(&topo, &ScenarioParams::paper_defaults().with_seed(1));
//! assert_eq!(inst.network.vms().len(), 25);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sof_core::{fortz_thorup, Network, NodeKind, Request, ServiceChain, SofInstance};
use sof_graph::{Cost, Graph, NodeId, Rng64};

/// A base topology: access-level graph plus its data-center nodes.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Human-readable name.
    pub name: &'static str,
    /// The access-level graph (unit link costs; scenarios re-cost).
    pub graph: Graph,
    /// Access nodes hosting a data center (VM attachment points).
    pub dc_nodes: Vec<NodeId>,
}

fn ring_with_chords(n: usize, chords: &[(usize, usize)]) -> Graph {
    let mut g = Graph::with_nodes(n);
    for i in 0..n {
        g.add_edge(NodeId::new(i), NodeId::new((i + 1) % n), Cost::new(1.0));
    }
    for &(a, b) in chords {
        g.add_edge(NodeId::new(a), NodeId::new(b), Cost::new(1.0));
    }
    g
}

/// IBM SoftLayer inter-DC network: 27 access nodes, 49 links, 17 DCs.
///
/// Deterministic ring-plus-chords construction matching the paper's counts.
pub fn softlayer() -> Topology {
    // 27 ring links + 22 chords = 49 links.
    let chords = [
        (0, 7),
        (0, 13),
        (1, 9),
        (2, 15),
        (3, 11),
        (3, 20),
        (4, 17),
        (5, 12),
        (5, 23),
        (6, 19),
        (8, 16),
        (8, 25),
        (9, 22),
        (10, 18),
        (11, 26),
        (12, 21),
        (14, 24),
        (15, 23),
        (16, 26),
        (17, 25),
        (2, 10),
        (7, 20),
    ];
    let graph = ring_with_chords(27, &chords);
    debug_assert_eq!(graph.edge_count(), 49);
    let dc_nodes = (0..27)
        .filter(|i| i % 3 != 2)
        .take(17)
        .map(NodeId::new)
        .collect();
    Topology {
        name: "softlayer",
        graph,
        dc_nodes,
    }
}

/// Cogent backbone: 190 access nodes, 260 links, 40 DCs.
///
/// Power-law synthesized with a fixed seed (the real map is a web page).
pub fn cogent() -> Topology {
    let mut rng = Rng64::seed_from(0xC0_6E07);
    let graph = sof_graph::generators::inet_like(190, 260, sof_graph::CostRange::UNIT, &mut rng);
    let mut dc_nodes: Vec<NodeId> = rng
        .sample_indices(190, 40)
        .into_iter()
        .map(NodeId::new)
        .collect();
    dc_nodes.sort();
    Topology {
        name: "cogent",
        graph,
        dc_nodes,
    }
}

/// The paper's Inet-generated synthetic network: 5000 access nodes, 10000
/// links, 2000 data centers.
pub fn inet_synthetic(seed: u64) -> Topology {
    let mut rng = Rng64::seed_from(seed ^ 0x17E7);
    let graph = sof_graph::generators::inet_like(5000, 10000, sof_graph::CostRange::UNIT, &mut rng);
    let mut dc_nodes: Vec<NodeId> = rng
        .sample_indices(5000, 2000)
        .into_iter()
        .map(NodeId::new)
        .collect();
    dc_nodes.sort();
    Topology {
        name: "inet",
        graph,
        dc_nodes,
    }
}

/// A scaled-down Inet-style topology (for Table I's |V| sweep).
pub fn inet_sized(nodes: usize, links: usize, dcs: usize, seed: u64) -> Topology {
    let mut rng = Rng64::seed_from(seed.wrapping_mul(0x9E3779B97F4A7C15));
    let graph =
        sof_graph::generators::inet_like(nodes, links, sof_graph::CostRange::UNIT, &mut rng);
    let mut dc_nodes: Vec<NodeId> = rng
        .sample_indices(nodes, dcs)
        .into_iter()
        .map(NodeId::new)
        .collect();
    dc_nodes.sort();
    Topology {
        name: "inet-sized",
        graph,
        dc_nodes,
    }
}

/// The experimental SDN of Fig. 13: 14 nodes, 20 links.
pub fn testbed() -> Topology {
    // 14 ring links + 6 chords = 20.
    let chords = [(0, 5), (1, 8), (2, 11), (4, 10), (6, 13), (3, 9)];
    let graph = ring_with_chords(14, &chords);
    debug_assert_eq!(graph.edge_count(), 20);
    Topology {
        name: "testbed",
        graph,
        dc_nodes: (0..14).map(NodeId::new).collect(),
    }
}

/// Parameters of one evaluation scenario (Figs. 8–11 defaults: §VIII-A).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScenarioParams {
    /// Total VMs attached to data centers.
    pub vm_count: usize,
    /// Candidate sources |S|.
    pub sources: usize,
    /// Destinations |D|.
    pub destinations: usize,
    /// Chain length |C|.
    pub chain_len: usize,
    /// Multiplier on VM setup costs (Fig. 11's 1x…9x sweep).
    pub setup_scale: f64,
    /// RNG seed (controls placement, costs, endpoints).
    pub seed: u64,
}

impl ScenarioParams {
    /// The paper's defaults: 14 sources, 6 destinations, 25 VMs, |C| = 3.
    pub fn paper_defaults() -> ScenarioParams {
        ScenarioParams {
            vm_count: 25,
            sources: 14,
            destinations: 6,
            chain_len: 3,
            setup_scale: 1.0,
            seed: 0x50F,
        }
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> ScenarioParams {
        self.seed = seed;
        self
    }
}

/// Builds a full SOF instance on a topology per the paper's setup:
///
/// * every access link gets cost `fortz_thorup(u, 1)` for utilization
///   `u ~ U(0,1)` (the "link usage randomly chosen in (0,1)" rule),
/// * `vm_count` VMs are attached to uniformly chosen DCs by zero-cost stub
///   links, with setup cost `fortz_thorup(h, 1) · setup_scale` for host
///   utilization `h ~ U(0,1)` (the [48]-based VM cost),
/// * sources and destinations are distinct uniform access nodes.
///
/// # Panics
///
/// Panics if the topology has fewer access nodes than
/// `sources + destinations`.
pub fn build_instance(topo: &Topology, p: &ScenarioParams) -> SofInstance {
    let mut rng = Rng64::seed_from(p.seed);
    let base_n = topo.graph.node_count();
    let mut graph = topo.graph.clone();
    // Link costs from utilization.
    let edge_ids: Vec<_> = graph.edges().map(|(e, _)| e).collect();
    for e in edge_ids {
        let u = rng.next_f64().max(1e-6);
        graph.set_edge_cost(e, fortz_thorup(u, 1.0));
    }
    let mut net = Network::all_switches(graph);
    // Attach VMs to DCs.
    for _ in 0..p.vm_count {
        let dc = *rng.pick(&topo.dc_nodes);
        let h = rng.next_f64().max(1e-6);
        let vm = net.add_node(NodeKind::Vm, fortz_thorup(h, 1.0) * p.setup_scale);
        net.graph_mut().add_edge(vm, dc, Cost::ZERO);
    }
    // Endpoints: disjoint when the pool allows it (the paper's sweeps go up
    // to |S|=26 on the 27-node SoftLayer, where overlap with D is
    // unavoidable — sources and destinations are then drawn independently).
    let (sources, destinations): (Vec<NodeId>, Vec<NodeId>) =
        if base_n >= p.sources + p.destinations {
            let picks = rng.sample_indices(base_n, p.sources + p.destinations);
            (
                picks[..p.sources].iter().map(|&i| NodeId::new(i)).collect(),
                picks[p.sources..].iter().map(|&i| NodeId::new(i)).collect(),
            )
        } else {
            let d = rng.sample_indices(base_n, p.destinations.min(base_n));
            let s = rng.sample_indices(base_n, p.sources.min(base_n));
            (
                s.into_iter().map(NodeId::new).collect(),
                d.into_iter().map(NodeId::new).collect(),
            )
        };
    SofInstance::new(
        net,
        Request::new(sources, destinations, ServiceChain::with_len(p.chain_len)),
    )
    .expect("constructed instance is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_paper() {
        let s = softlayer();
        assert_eq!(
            (s.graph.node_count(), s.graph.edge_count(), s.dc_nodes.len()),
            (27, 49, 17)
        );
        assert!(s.graph.is_connected());
        let c = cogent();
        assert_eq!(
            (c.graph.node_count(), c.graph.edge_count(), c.dc_nodes.len()),
            (190, 260, 40)
        );
        assert!(c.graph.is_connected());
        let t = testbed();
        assert_eq!((t.graph.node_count(), t.graph.edge_count()), (14, 20));
        assert!(t.graph.is_connected());
    }

    #[test]
    #[ignore = "builds the full 5000-node topology; run with --ignored"]
    fn inet_counts() {
        let i = inet_synthetic(1);
        assert_eq!(i.graph.node_count(), 5000);
        assert_eq!(i.graph.edge_count(), 10000);
        assert_eq!(i.dc_nodes.len(), 2000);
        assert!(i.graph.is_connected());
    }

    #[test]
    fn instances_are_deterministic_per_seed() {
        let topo = softlayer();
        let p = ScenarioParams::paper_defaults().with_seed(7);
        let a = build_instance(&topo, &p);
        let b = build_instance(&topo, &p);
        assert_eq!(a.request.sources, b.request.sources);
        assert_eq!(a.network.vms(), b.network.vms());
        assert_eq!(
            a.network.graph().total_edge_cost(),
            b.network.graph().total_edge_cost()
        );
    }

    #[test]
    fn instance_solvable_end_to_end() {
        let topo = softlayer();
        let mut p = ScenarioParams::paper_defaults().with_seed(3);
        p.destinations = 4;
        p.sources = 5;
        let inst = build_instance(&topo, &p);
        let out = sof_core::solve_sofda(&inst, &sof_core::SofdaConfig::default()).unwrap();
        out.forest.validate(&inst).unwrap();
    }

    #[test]
    fn setup_scale_raises_vm_costs() {
        let topo = softlayer();
        let p1 = ScenarioParams::paper_defaults().with_seed(9);
        let mut p9 = p1;
        p9.setup_scale = 9.0;
        let a = build_instance(&topo, &p1);
        let b = build_instance(&topo, &p9);
        let sum = |inst: &SofInstance| -> f64 {
            inst.network
                .vms()
                .iter()
                .map(|&v| inst.network.node_cost(v).value())
                .sum()
        };
        assert!((sum(&b) / sum(&a) - 9.0).abs() < 1e-6);
    }
}

//! Steiner tree result type and shared post-processing.

use sof_graph::{Cost, EdgeId, Graph, NodeId, UnionFind};
use std::collections::{BTreeSet, HashMap};

/// Errors produced by the Steiner solvers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SteinerError {
    /// Two terminals lie in different connected components.
    Unreachable {
        /// A terminal that could not be connected.
        terminal: NodeId,
    },
    /// A terminal id is outside the graph.
    InvalidTerminal {
        /// The offending id.
        terminal: NodeId,
    },
}

impl std::fmt::Display for SteinerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SteinerError::Unreachable { terminal } => {
                write!(f, "terminal {terminal} is unreachable from the others")
            }
            SteinerError::InvalidTerminal { terminal } => {
                write!(f, "terminal {terminal} is not a node of the graph")
            }
        }
    }
}

impl std::error::Error for SteinerError {}

/// A tree (edge set) spanning a terminal set.
///
/// Produced by every algorithm in this crate; [`SteinerTree::validate`]
/// checks the structural invariants (acyclic, connected, spans terminals).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SteinerTree {
    /// The selected edges.
    pub edges: Vec<EdgeId>,
    /// Total edge cost.
    pub cost: Cost,
}

impl SteinerTree {
    /// Builds a tree record from an edge set, computing the cost.
    pub fn from_edges(graph: &Graph, mut edges: Vec<EdgeId>) -> SteinerTree {
        edges.sort();
        edges.dedup();
        let cost = edges.iter().map(|&e| graph.edge_cost(e)).sum();
        SteinerTree { edges, cost }
    }

    /// All nodes incident to a tree edge.
    pub fn nodes(&self, graph: &Graph) -> BTreeSet<NodeId> {
        let mut out = BTreeSet::new();
        for &e in &self.edges {
            let edge = graph.edge(e);
            out.insert(edge.u);
            out.insert(edge.v);
        }
        out
    }

    /// Returns `true` when `v` is touched by the tree.
    pub fn contains_node(&self, graph: &Graph, v: NodeId) -> bool {
        self.edges.iter().any(|&e| {
            let edge = graph.edge(e);
            edge.u == v || edge.v == v
        })
    }

    /// Checks that the edge set is a tree spanning all `terminals`.
    ///
    /// A single-terminal (or empty) instance is spanned by the empty tree.
    pub fn validate(&self, graph: &Graph, terminals: &[NodeId]) -> Result<(), String> {
        let mut distinct: Vec<NodeId> = terminals.to_vec();
        distinct.sort();
        distinct.dedup();
        if distinct.len() <= 1 && self.edges.is_empty() {
            return Ok(());
        }
        // Acyclicity + connectivity over the touched nodes.
        let mut uf = UnionFind::new(graph.node_count());
        for &e in &self.edges {
            let edge = graph.edge(e);
            if !uf.union(edge.u.index(), edge.v.index()) {
                return Err(format!("edge {e} closes a cycle"));
            }
        }
        let Some(&first) = distinct.first() else {
            return Ok(());
        };
        for &t in &distinct {
            if !uf.connected(first.index(), t.index()) {
                return Err(format!("terminal {t} not connected to {first}"));
            }
        }
        let recomputed: Cost = self.edges.iter().map(|&e| graph.edge_cost(e)).sum();
        if !recomputed.approx_eq(self.cost) {
            return Err(format!(
                "cost mismatch: stored {} vs {}",
                self.cost, recomputed
            ));
        }
        Ok(())
    }

    /// Walks from `from` to `to` along tree edges; `None` if not connected
    /// within the tree.
    pub fn path_between(&self, graph: &Graph, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        let mut adj: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for &e in &self.edges {
            let edge = graph.edge(e);
            adj.entry(edge.u).or_default().push(edge.v);
            adj.entry(edge.v).or_default().push(edge.u);
        }
        if from == to {
            return Some(vec![from]);
        }
        let mut parent: HashMap<NodeId, NodeId> = HashMap::new();
        let mut stack = vec![from];
        parent.insert(from, from);
        while let Some(u) = stack.pop() {
            if u == to {
                break;
            }
            for &v in adj.get(&u).into_iter().flatten() {
                if let std::collections::hash_map::Entry::Vacant(slot) = parent.entry(v) {
                    slot.insert(u);
                    stack.push(v);
                }
            }
        }
        if !parent.contains_key(&to) {
            return None;
        }
        let mut path = vec![to];
        let mut cur = to;
        while cur != from {
            cur = parent[&cur];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }
}

/// Removes cycles (via MST restricted to `edges`) and then repeatedly strips
/// non-terminal leaves. Shared post-processing for the approximation
/// algorithms.
pub(crate) fn mst_and_prune(
    graph: &Graph,
    edges: Vec<EdgeId>,
    terminals: &[NodeId],
) -> Vec<EdgeId> {
    // MST restricted to the candidate edge set (Kruskal).
    let mut cand = edges;
    cand.sort();
    cand.dedup();
    cand.sort_by_key(|&e| (graph.edge_cost(e), e));
    let mut uf = UnionFind::new(graph.node_count());
    let mut picked = Vec::new();
    for e in cand {
        let edge = graph.edge(e);
        if uf.union(edge.u.index(), edge.v.index()) {
            picked.push(e);
        }
    }
    prune_non_terminal_leaves(graph, picked, terminals)
}

/// Repeatedly removes leaf edges whose leaf endpoint is not a terminal.
pub(crate) fn prune_non_terminal_leaves(
    graph: &Graph,
    mut edges: Vec<EdgeId>,
    terminals: &[NodeId],
) -> Vec<EdgeId> {
    let is_terminal: BTreeSet<NodeId> = terminals.iter().copied().collect();
    loop {
        let mut degree: HashMap<NodeId, usize> = HashMap::new();
        for &e in &edges {
            let edge = graph.edge(e);
            *degree.entry(edge.u).or_insert(0) += 1;
            *degree.entry(edge.v).or_insert(0) += 1;
        }
        let before = edges.len();
        edges.retain(|&e| {
            let edge = graph.edge(e);
            let u_leaf = degree[&edge.u] == 1 && !is_terminal.contains(&edge.u);
            let v_leaf = degree[&edge.v] == 1 && !is_terminal.contains(&edge.v);
            !(u_leaf || v_leaf)
        });
        if edges.len() == before {
            return edges;
        }
    }
}

/// Validates terminal ids against the graph.
pub(crate) fn check_terminals(graph: &Graph, terminals: &[NodeId]) -> Result<(), SteinerError> {
    for &t in terminals {
        if t.index() >= graph.node_count() {
            return Err(SteinerError::InvalidTerminal { terminal: t });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sof_graph::Cost;

    fn line(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 0..n - 1 {
            g.add_edge(NodeId::new(i), NodeId::new(i + 1), Cost::new(1.0));
        }
        g
    }

    #[test]
    fn prune_strips_dangling_branches() {
        // 0-1-2 with a dangle 1-3; terminals {0, 2}.
        let mut g = line(3);
        let d = g.add_node();
        let dangle = g.add_edge(NodeId::new(1), d, Cost::new(1.0));
        let all: Vec<EdgeId> = g.edges().map(|(e, _)| e).collect();
        let pruned = prune_non_terminal_leaves(&g, all, &[NodeId::new(0), NodeId::new(2)]);
        assert!(!pruned.contains(&dangle));
        assert_eq!(pruned.len(), 2);
    }

    #[test]
    fn mst_and_prune_breaks_cycles() {
        let mut g = line(3);
        let back = g.add_edge(NodeId::new(2), NodeId::new(0), Cost::new(10.0));
        let all: Vec<EdgeId> = g.edges().map(|(e, _)| e).collect();
        let kept = mst_and_prune(&g, all, &[NodeId::new(0), NodeId::new(2)]);
        assert!(!kept.contains(&back));
        let tree = SteinerTree::from_edges(&g, kept);
        tree.validate(&g, &[NodeId::new(0), NodeId::new(2)])
            .unwrap();
    }

    #[test]
    fn validate_rejects_cycle_and_disconnection() {
        let mut g = line(4);
        let extra = g.add_edge(NodeId::new(0), NodeId::new(2), Cost::new(1.0));
        let cyclic = SteinerTree::from_edges(&g, vec![EdgeId::new(0), EdgeId::new(1), extra]);
        assert!(cyclic.validate(&g, &[NodeId::new(0)]).is_err());

        let partial = SteinerTree::from_edges(&g, vec![EdgeId::new(0)]);
        assert!(partial
            .validate(&g, &[NodeId::new(0), NodeId::new(3)])
            .is_err());
    }

    #[test]
    fn path_between_follows_tree() {
        let g = line(5);
        let tree = SteinerTree::from_edges(&g, g.edges().map(|(e, _)| e).collect());
        let p = tree
            .path_between(&g, NodeId::new(0), NodeId::new(4))
            .unwrap();
        assert_eq!(p.len(), 5);
        assert_eq!(
            tree.path_between(&g, NodeId::new(2), NodeId::new(2)),
            Some(vec![NodeId::new(2)])
        );
    }

    #[test]
    fn empty_tree_spans_single_terminal() {
        let g = line(2);
        let t = SteinerTree::default();
        t.validate(&g, &[NodeId::new(1)]).unwrap();
        t.validate(&g, &[]).unwrap();
    }
}

//! The runner: lockstep stepping of a [`SessionPool`] over lazily
//! generated group timelines, with wards, sinks and a background handle.

use crate::events::{GroupChurnConfig, GroupProcess};
use crate::sink::{
    ChannelSink, EngineTotals, EventRecord, FailureRecord, FailureTotals, Record, RecoveryRecord,
    RecoverySummary, Sink, SummaryRecord, WindowRecord,
};
use crate::ward::{StopReason, Ward, WardSet};
use sof_core::{OnlineConfig, OnlineSession, Request, SessionPool, SofdaConfig};
use sof_graph::NodeId;
use sof_survive::{
    universe_for_scopes, ElementRef, FailureDriver, FailurePlan, ProtectionPolicy, Protector,
    RecoveryMetrics,
};
use sof_topo::{
    build_region_instance, build_regions, RegionScenario, RegionTopology, RegionsParams,
};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::Arc;
use std::time::Instant;

/// Full configuration of one churn-at-scale run.
#[derive(Clone, Debug)]
pub struct RunnerConfig {
    /// Run name (echoed in the meta record).
    pub name: String,
    /// The multi-region network every group lives on.
    pub regions: RegionsParams,
    /// Concurrent groups: the pool holds exactly this many slots; retired
    /// groups are replaced in place so concurrency stays constant.
    pub groups: usize,
    /// VMs attached to every DC node of each group's instance.
    pub vms_per_dc: usize,
    /// Multiplier on VM setup costs.
    pub setup_scale: f64,
    /// Per-group churn process shape.
    pub churn: GroupChurnConfig,
    /// Solver registry name (see `sof_solvers::by_name`).
    pub solver: String,
    /// SOFDA tuning (per-group seeds are mixed in on top).
    pub sofda: SofdaConfig,
    /// Online-session tuning shared by every group.
    pub online: OnlineConfig,
    /// Run seed: topology, per-group processes and instances all derive
    /// from it.
    pub seed: u64,
    /// Events per window record (≥ 1; windows close at the first round
    /// boundary at or past this many events).
    pub window: u64,
    /// Also emit one [`Record::Event`] per event (the full-scale stream;
    /// off by default).
    pub emit_events: bool,
    /// Include wall-clock `millis` fields in records. Leave off for
    /// deterministic output.
    pub timings: bool,
    /// Worker threads (`0` = auto via `SOF_THREADS`).
    pub threads: usize,
    /// Stop conditions; the first to trip ends the run. With no wards the
    /// run only ends via [`RunnerHandle::stop`].
    pub wards: Vec<Ward>,
    /// Optional failure plan: when set, a [`sof_survive::FailureDriver`]
    /// interleaves deterministic element failures (and repairs) between
    /// rounds, and the plan's protection policy answers each disruption.
    pub failures: Option<FailurePlan>,
}

impl RunnerConfig {
    /// A config with library defaults: 3-region network, SOFDA, windows
    /// of 1000 events, a 100k-event budget.
    pub fn new(name: impl Into<String>) -> RunnerConfig {
        RunnerConfig {
            name: name.into(),
            regions: RegionsParams::new(vec![
                sof_topo::RegionDef::new("us-east", 8, 2),
                sof_topo::RegionDef::new("eu-west", 8, 2),
                sof_topo::RegionDef::new("ap-south", 8, 2),
            ]),
            groups: 100,
            vms_per_dc: 1,
            setup_scale: 1.0,
            churn: GroupChurnConfig::default(),
            solver: "SOFDA".into(),
            sofda: SofdaConfig::default(),
            online: OnlineConfig::default(),
            seed: 42,
            window: 1000,
            emit_events: false,
            timings: false,
            threads: 0,
            wards: vec![Ward::MaxEvents(100_000)],
            failures: None,
        }
    }

    /// Checks the configuration without building anything.
    ///
    /// # Errors
    ///
    /// A message naming the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        self.regions.validate()?;
        self.churn.validate()?;
        if self.groups == 0 {
            return Err("groups must be at least 1".into());
        }
        if self.vms_per_dc == 0 {
            return Err("vms_per_dc must be at least 1".into());
        }
        if self.window == 0 {
            return Err("window must be at least 1".into());
        }
        if sof_solvers::by_name(&self.solver).is_none() {
            return Err(format!(
                "unknown solver '{}' (see sof_solvers::all)",
                self.solver
            ));
        }
        for ward in &self.wards {
            if let Ward::ConvergedCost { epsilon, patience } = ward {
                // Mirrors the spec layer's 'workload.converge' rules: the
                // library path through `Runner::new` must reject the same
                // configurations `ScenarioSpec::validate` does.
                if !(epsilon.is_finite() && *epsilon > 0.0) {
                    return Err(format!(
                        "ConvergedCost ward needs a positive epsilon, got {epsilon}"
                    ));
                }
                if *patience == 0 {
                    return Err("ConvergedCost ward needs patience of at least 1 \
                         (patience 0 would stop before two windows were ever compared)"
                        .into());
                }
            }
        }
        let smallest = self
            .regions
            .regions
            .iter()
            .map(|r| r.nodes)
            .min()
            .unwrap_or(0);
        if smallest < 2 {
            return Err("every region needs at least 2 nodes for a group to live on".into());
        }
        if let Some(plan) = &self.failures {
            // The survivability layer owns the rules (finite rates in
            // [0, 1], ordered repair ranges, known scopes, …); the library
            // path through `Runner::new` rejects exactly what it does.
            plan.validate()?;
        }
        Ok(())
    }
}

/// End-of-run totals returned by [`Runner::run`] (the same numbers the
/// final [`Record::Summary`] carries).
#[derive(Clone, Debug, PartialEq)]
pub struct Summary {
    /// Total events processed.
    pub events: u64,
    /// Windows emitted.
    pub windows: u64,
    /// Distinct groups created over the run.
    pub groups_seen: u64,
    /// Groups retired over the run.
    pub retired: u64,
    /// Failed embeds over the run.
    pub errors: u64,
    /// Total accumulated embedding cost (retired groups included).
    pub accumulated_cost: f64,
    /// Why the run stopped.
    pub stop: StopReason,
    /// Recovery/availability totals (runs with a failure plan only).
    pub recovery: Option<RecoverySummary>,
}

/// Open-window accumulators — the only per-event state the runner keeps,
/// reset at every window boundary (O(1) in the event count).
#[derive(Clone, Copy, Debug, Default)]
struct WindowAccum {
    events: u64,
    full_solves: u64,
    incremental: u64,
    joins: u64,
    leaves: u64,
    errors: u64,
    cost_sum: f64,
    millis: f64,
}

/// Per-run survivability state: the failure-event generator, one
/// [`Protector`] per pool slot, the recovery metrics, and the slots
/// currently dark waiting on a deferred rebuild.
struct FailureState {
    driver: FailureDriver,
    policy: ProtectionPolicy,
    protectors: Vec<Protector>,
    metrics: RecoveryMetrics,
    /// Slot → (round of the disruption, destinations it darkened).
    pending: Vec<Option<(usize, usize)>>,
    round: usize,
}

impl FailureState {
    fn new(plan: &FailurePlan, rt: &RegionTopology, cfg: &RunnerConfig) -> FailureState {
        // The symbolic element universe lives on the shared base topology,
        // so one failure trace applies identically to every group instance
        // (all instances clone the base graph; VM ids are appended after
        // the access nodes in the same order for every group).
        let graph = &rt.topo.graph;
        let links: Vec<(usize, usize)> = graph
            .edges()
            .map(|(_, e)| {
                let (u, v) = (e.u.index(), e.v.index());
                (u.min(v), u.max(v))
            })
            .collect();
        let nodes: Vec<usize> = (0..graph.node_count()).collect();
        let first_vm = graph.node_count();
        let vms: Vec<usize> =
            (first_vm..first_vm + rt.topo.dc_nodes.len() * cfg.vms_per_dc).collect();
        let domains: Vec<String> = (0..rt.region_count())
            .map(|r| rt.region_name(r).to_string())
            .collect();
        let universe = universe_for_scopes(&plan.scope, &links, &nodes, &vms, &domains);
        let protectors = (0..cfg.groups)
            .map(|_| Protector::new(plan.policy, sof_solvers::by_name(&cfg.solver)))
            .collect();
        FailureState {
            driver: FailureDriver::new(plan, universe),
            policy: plan.policy,
            protectors,
            metrics: RecoveryMetrics::default(),
            pending: vec![None; cfg.groups],
            round: 0,
        }
    }

    fn totals(&self) -> FailureTotals {
        FailureTotals {
            fail_events: self.metrics.fail_events as u64,
            repair_events: self.metrics.repair_events as u64,
            disruptions: self.metrics.disruptions as u64,
            pending: self.pending.iter().flatten().count() as u64,
        }
    }

    fn summary(&self) -> RecoverySummary {
        RecoverySummary {
            fail_events: self.metrics.fail_events as u64,
            repair_events: self.metrics.repair_events as u64,
            disruptions: self.metrics.disruptions as u64,
            immediate: self.metrics.immediate as u64,
            recoveries: self.metrics.recoveries as u64,
            mean_recovery_cost: self.metrics.mean_recovery_cost(),
            mean_events_to_restore: self.metrics.mean_events_to_restore(),
            availability: self.metrics.availability(),
        }
    }
}

/// A streaming churn-at-scale simulation over one [`SessionPool`].
///
/// See the [crate docs](crate) for the stepping model and an example.
pub struct Runner {
    cfg: RunnerConfig,
    rt: RegionTopology,
    pool: SessionPool,
    procs: Vec<GroupProcess>,
    sinks: Vec<Box<dyn Sink>>,
    stop: Arc<AtomicBool>,
    next_id: u64,
    seq: u64,
    retired: u64,
    errors: u64,
    windows: u64,
    /// Stats carried over from retired sessions.
    retired_cost: f64,
    retired_engine: EngineTotals,
    failure: Option<FailureState>,
}

impl Runner {
    /// Builds the region topology and the initial pool of `cfg.groups`
    /// sessions (group ids `0..groups`).
    ///
    /// # Errors
    ///
    /// Everything [`RunnerConfig::validate`] rejects.
    pub fn new(cfg: RunnerConfig) -> Result<Runner, String> {
        cfg.validate()?;
        let rt = build_regions(&cfg.regions, cfg.seed)?;
        let mut procs = Vec::with_capacity(cfg.groups);
        let mut sessions = Vec::with_capacity(cfg.groups);
        for id in 0..cfg.groups as u64 {
            let proc = GroupProcess::new(id, &rt, &cfg.churn, cfg.seed);
            sessions.push(make_session(&rt, &cfg, &proc));
            procs.push(proc);
        }
        let pool = SessionPool::new(sessions).with_threads(cfg.threads);
        let failure = cfg
            .failures
            .as_ref()
            .map(|p| FailureState::new(p, &rt, &cfg));
        Ok(Runner {
            next_id: cfg.groups as u64,
            cfg,
            rt,
            pool,
            procs,
            sinks: Vec::new(),
            stop: Arc::new(AtomicBool::new(false)),
            seq: 0,
            retired: 0,
            errors: 0,
            windows: 0,
            retired_cost: 0.0,
            retired_engine: EngineTotals::default(),
            failure,
        })
    }

    /// Attaches a sink; every record is pushed to all sinks in attach
    /// order.
    pub fn add_sink(&mut self, sink: Box<dyn Sink>) {
        self.sinks.push(sink);
    }

    /// Subscribes a channel to the record stream. The receiver sees
    /// clones of every record; dropping it never aborts the run.
    pub fn subscribe(&mut self) -> Receiver<Record> {
        let (tx, rx) = channel();
        self.sinks.push(Box::new(ChannelSink { tx }));
        rx
    }

    /// The shared stop flag (set by [`RunnerHandle::stop`]); setting it
    /// ends the run at the next round boundary.
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Runs synchronously until a ward trips or the stop flag is set,
    /// returning the end-of-run totals.
    ///
    /// # Errors
    ///
    /// Propagates the first sink I/O error or session solve panic-free
    /// failure that is not recoverable by retiring the group.
    pub fn run(mut self) -> Result<Summary, String> {
        let started = Instant::now();
        let mut wards = WardSet::new(self.cfg.wards.clone());
        self.emit(Record::Meta {
            name: self.cfg.name.clone(),
            groups: self.cfg.groups,
            regions: (0..self.rt.region_count())
                .map(|r| self.rt.region_name(r).to_string())
                .collect(),
            seed: self.cfg.seed,
            solver: self.cfg.solver.clone(),
            window: self.cfg.window,
            events_target: wards.events_left(0),
            policy: self
                .cfg
                .failures
                .as_ref()
                .map(|p| p.policy.as_str().to_string()),
        })?;
        let mut win = WindowAccum::default();
        let stop = loop {
            if self.stop.load(Ordering::Relaxed) {
                break StopReason::Stopped;
            }
            // Trim the final round so MaxEvents lands exactly on budget.
            let budget = wards
                .events_left(self.seq)
                .map(|left| (left.min(self.cfg.groups as u64)) as usize)
                .unwrap_or(self.cfg.groups);
            if budget == 0 {
                break StopReason::MaxEvents;
            }
            let round = self.step_round(budget, &mut win)?;
            debug_assert_eq!(round, budget as u64);
            self.apply_failures()?;
            if let Some(reason) = wards.after_round(self.seq, started.elapsed()) {
                // Flush the open window before stopping so no events are
                // silently dropped from the stream.
                if win.events > 0 {
                    let mean = self.close_window(&mut win)?;
                    wards.after_window(mean);
                }
                break reason;
            }
            if win.events >= self.cfg.window {
                let mean = self.close_window(&mut win)?;
                if let Some(reason) = wards.after_window(mean) {
                    break reason;
                }
            }
        };
        if win.events > 0 {
            self.close_window(&mut win)?;
        }
        let summary = Summary {
            events: self.seq,
            windows: self.windows,
            groups_seen: self.next_id,
            retired: self.retired,
            errors: self.errors,
            accumulated_cost: self.accumulated_cost(),
            stop,
            recovery: self.failure.as_ref().map(FailureState::summary),
        };
        self.emit(Record::Summary(SummaryRecord {
            events: summary.events,
            windows: summary.windows,
            groups_seen: summary.groups_seen,
            retired: summary.retired,
            errors: summary.errors,
            accumulated_cost: summary.accumulated_cost,
            stop,
            recovery: summary.recovery,
            millis: self
                .cfg
                .timings
                .then(|| started.elapsed().as_secs_f64() * 1e3),
        }))?;
        for sink in &mut self.sinks {
            sink.flush().map_err(|e| format!("sink flush: {e}"))?;
        }
        Ok(summary)
    }

    /// Moves the runner onto a background thread, returning a handle to
    /// stop and join it.
    pub fn spawn(self) -> RunnerHandle {
        let stop = self.stop_flag();
        let thread = std::thread::Builder::new()
            .name("sof-runner".into())
            .spawn(move || self.run())
            .expect("spawn runner thread");
        RunnerHandle { stop, thread }
    }

    /// Steps the first `budget` slots once: retires expired groups in
    /// place, pulls one event per live slot, arrives them through the
    /// pool, and folds the reports into the open window.
    fn step_round(&mut self, budget: usize, win: &mut WindowAccum) -> Result<u64, String> {
        let mut requests: Vec<Option<Request>> = vec![None; self.procs.len()];
        let mut initial: Vec<bool> = vec![false; self.procs.len()];
        for slot in 0..budget.min(self.procs.len()) {
            let event = match self.procs[slot].next_event() {
                Some(ev) => ev,
                None => {
                    // Group lifetime spent: retire it, fold its cost and
                    // cache counters into the run baselines, and start a
                    // fresh group in the same slot — its initial embed is
                    // this round's event.
                    let fresh =
                        GroupProcess::new(self.next_id, &self.rt, &self.cfg.churn, self.cfg.seed);
                    self.next_id += 1;
                    let session = make_session(&self.rt, &self.cfg, &fresh);
                    let old = self.pool.replace(slot, session);
                    self.retired += 1;
                    self.retired_cost += old.accumulated_cost();
                    add_engine(&mut self.retired_engine, &old);
                    self.procs[slot] = fresh;
                    self.procs[slot]
                        .next_event()
                        .expect("fresh group emits its initial event")
                }
            };
            initial[slot] = event.is_initial();
            requests[slot] = Some(event.request().clone());
        }
        let reports = self.pool.arrive_opt(&requests);
        let mut stepped = 0u64;
        for (slot, report) in reports.into_iter().enumerate() {
            let Some(report) = report else { continue };
            let seq = self.seq;
            self.seq += 1;
            stepped += 1;
            win.events += 1;
            match report {
                Ok(rep) => {
                    if rep.rebuilt {
                        win.full_solves += 1;
                        // A full solve restores service for a slot darkened
                        // by a deferred (reactive) recovery; the rebuild's
                        // forest cost is that recovery's price.
                        if let Some(fs) = self.failure.as_mut() {
                            if let Some((r0, _)) = fs.pending[slot].take() {
                                fs.metrics
                                    .record_restore(fs.round - r0 + 1, rep.forest_cost);
                            }
                        }
                    } else {
                        win.incremental += 1;
                    }
                    win.joins += rep.joined as u64;
                    win.leaves += rep.left as u64;
                    win.cost_sum += rep.forest_cost;
                    win.millis += rep.millis;
                    if self.cfg.emit_events {
                        let record = Record::Event(EventRecord {
                            seq,
                            slot,
                            group: self.procs[slot].id(),
                            initial: initial[slot],
                            viewers: self.procs[slot].current().destinations.len(),
                            joined: rep.joined,
                            left: rep.left,
                            rebuilt: rep.rebuilt,
                            cost: rep.forest_cost,
                            millis: self.cfg.timings.then_some(rep.millis),
                        });
                        self.emit(record)?;
                    }
                }
                Err(_) => {
                    // Infeasible embed: count it and recycle the slot at
                    // the next round (deterministic — the error is a
                    // property of the group's instance, not of timing).
                    win.errors += 1;
                    self.errors += 1;
                    self.procs[slot].retire();
                }
            }
        }
        Ok(stepped)
    }

    /// Advances the failure process by one round and applies its events to
    /// every live session: repairs first, then (after pre-provisioning
    /// protection against the still-healthy forests) the new failures, then
    /// one recovery pass per disrupted session. Everything here is serial,
    /// so the record stream stays byte-identical at any thread count.
    fn apply_failures(&mut self) -> Result<(), String> {
        let Some(mut fs) = self.failure.take() else {
            return Ok(());
        };
        fs.round += 1;
        let events = fs.driver.advance(fs.round);

        // Availability sampling: every destination of every live group is
        // one destination×round sample; slots darkened by a deferred
        // recovery contribute their disrupted destinations as dark samples.
        for proc in &self.procs {
            fs.metrics.dest_rounds += proc.current().destinations.len();
        }
        fs.metrics.disconnected_dest_rounds += fs
            .pending
            .iter()
            .flatten()
            .map(|&(_, dark)| dark)
            .sum::<usize>();

        for element in &events.repairs {
            fs.metrics.repair_events += 1;
            for session in self.pool.sessions_mut() {
                repair_element(session, element, &self.rt);
            }
            self.emit(Record::Failure(FailureRecord {
                seq: self.seq,
                round: fs.round as u64,
                action: "repair",
                element: element.to_string(),
                disrupted: 0,
                repair_at: None,
            }))?;
        }

        if !events.failures.is_empty() {
            // Backups and standbys must be planned against the pre-failure
            // state — protection provisioned after the cut is just repair.
            for (slot, protector) in fs.protectors.iter_mut().enumerate() {
                protector.prewarm(&mut self.pool.sessions_mut()[slot]);
            }
            let mut affected: Vec<BTreeSet<NodeId>> = vec![BTreeSet::new(); self.procs.len()];
            for (element, repair_at) in &events.failures {
                fs.metrics.fail_events += 1;
                let mut disrupted = 0u64;
                for (slot, session) in self.pool.sessions_mut().iter_mut().enumerate() {
                    let broken = fail_element(session, element, &self.rt);
                    disrupted += broken.len() as u64;
                    affected[slot].extend(broken);
                }
                self.emit(Record::Failure(FailureRecord {
                    seq: self.seq,
                    round: fs.round as u64,
                    action: "fail",
                    element: element.to_string(),
                    disrupted,
                    repair_at: repair_at.map(|r| r as u64),
                }))?;
            }
            let (mut disrupted, mut recovered, mut cost, mut pending) = (0u64, 0u64, 0.0, 0u64);
            for (slot, dests) in affected.iter().enumerate() {
                if dests.is_empty() {
                    continue;
                }
                let dests: Vec<NodeId> = dests.iter().copied().collect();
                let outcome =
                    fs.protectors[slot].recover(&mut self.pool.sessions_mut()[slot], &dests);
                disrupted += outcome.affected as u64;
                recovered += outcome.recovered as u64;
                cost += outcome.cost;
                if outcome.pending {
                    fs.metrics.record_deferred();
                    fs.pending[slot] = Some((fs.round, outcome.affected));
                    pending += 1;
                } else {
                    fs.metrics.record_immediate(outcome.cost);
                }
            }
            if disrupted > 0 {
                self.emit(Record::Recovery(RecoveryRecord {
                    seq: self.seq,
                    round: fs.round as u64,
                    policy: fs.policy.as_str(),
                    disrupted,
                    recovered,
                    cost,
                    pending,
                }))?;
            }
        }
        self.failure = Some(fs);
        Ok(())
    }

    /// Emits the open window as a record and resets the accumulators,
    /// returning the window's mean cost (for the convergence ward).
    fn close_window(&mut self, win: &mut WindowAccum) -> Result<f64, String> {
        let mean = if win.events > 0 {
            win.cost_sum / win.events as f64
        } else {
            0.0
        };
        let record = Record::Window(WindowRecord {
            index: self.windows,
            events: win.events,
            total_events: self.seq,
            active: self.pool.len(),
            retired: self.retired,
            errors: self.errors,
            full_solves: win.full_solves,
            incremental: win.incremental,
            joins: win.joins,
            leaves: win.leaves,
            mean_cost: mean,
            accumulated_cost: self.accumulated_cost(),
            engine: self.engine_totals(),
            failures: self.failure.as_ref().map(FailureState::totals),
            millis: self.cfg.timings.then_some(win.millis),
        });
        self.windows += 1;
        *win = WindowAccum::default();
        self.emit(record)?;
        for sink in &mut self.sinks {
            sink.flush().map_err(|e| format!("sink flush: {e}"))?;
        }
        Ok(mean)
    }

    fn accumulated_cost(&self) -> f64 {
        self.retired_cost + self.pool.total_accumulated_cost()
    }

    /// Path-cache counters summed over every session ever stepped. Each
    /// session owns its private engine, so the totals are deterministic
    /// for any thread count.
    fn engine_totals(&self) -> EngineTotals {
        let mut totals = self.retired_engine;
        for session in self.pool.sessions() {
            add_engine(&mut totals, session);
        }
        totals
    }

    fn emit(&mut self, record: Record) -> Result<(), String> {
        for sink in &mut self.sinks {
            sink.record(&record).map_err(|e| format!("sink: {e}"))?;
        }
        Ok(())
    }
}

fn make_session(rt: &RegionTopology, cfg: &RunnerConfig, proc: &GroupProcess) -> OnlineSession {
    let initial = proc.current();
    let instance = build_region_instance(
        rt,
        &RegionScenario {
            vms_per_dc: cfg.vms_per_dc,
            setup_scale: cfg.setup_scale,
            seed: proc.instance_seed(),
        },
        initial.sources.clone(),
        initial.destinations.clone(),
        cfg.churn.chain_len,
    );
    let solver = sof_solvers::by_name(&cfg.solver).expect("solver validated in RunnerConfig");
    let mut sofda = cfg.sofda;
    sofda.seed ^= proc.instance_seed();
    let mut online = cfg.online;
    online.demand_mbps = cfg.churn.demand_mbps;
    OnlineSession::new(instance, solver, sofda, online)
}

/// Applies one failed element to one session, returning the destinations it
/// disconnected. Failures of elements the session's forest does not use (or
/// that are already down) disrupt nothing and are silently absorbed.
fn fail_element(
    session: &mut OnlineSession,
    element: &ElementRef,
    rt: &RegionTopology,
) -> Vec<NodeId> {
    match element {
        ElementRef::Vm(v) => session.fail_vm_soft(NodeId::new(*v)).unwrap_or_default(),
        ElementRef::Link(u, v) => session
            .fail_link(NodeId::new(*u), NodeId::new(*v))
            .unwrap_or_default(),
        ElementRef::Node(n) => session.fail_node(NodeId::new(*n)).unwrap_or_default(),
        ElementRef::Domain(name) => {
            let mut out = Vec::new();
            if let Some(r) = (0..rt.region_count()).find(|&r| rt.region_name(r) == name) {
                for &n in rt.region_nodes(r) {
                    out.extend(session.fail_node(n).unwrap_or_default());
                }
            }
            out
        }
    }
}

/// Undoes [`fail_element`]: restores the element for future embeddings.
/// Elements that were never down in this session are ignored.
fn repair_element(session: &mut OnlineSession, element: &ElementRef, rt: &RegionTopology) {
    match element {
        ElementRef::Vm(v) => {
            let _ = session.repair_vm(NodeId::new(*v));
        }
        ElementRef::Link(u, v) => {
            let _ = session.repair_link(NodeId::new(*u), NodeId::new(*v));
        }
        ElementRef::Node(n) => {
            let _ = session.repair_node(NodeId::new(*n));
        }
        ElementRef::Domain(name) => {
            if let Some(r) = (0..rt.region_count()).find(|&r| rt.region_name(r) == name) {
                for &n in rt.region_nodes(r) {
                    let _ = session.repair_node(n);
                }
            }
        }
    }
}

fn add_engine(totals: &mut EngineTotals, session: &OnlineSession) {
    let stats = session.instance().network.paths().stats();
    totals.hits += stats.hits;
    totals.misses += stats.misses;
    totals.stale += stats.stale;
    totals.repairs += stats.repairs;
}

/// Handle to a runner on a background thread.
pub struct RunnerHandle {
    stop: Arc<AtomicBool>,
    thread: std::thread::JoinHandle<Result<Summary, String>>,
}

impl RunnerHandle {
    /// Requests a stop; the run ends at the next round boundary with
    /// [`StopReason::Stopped`].
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Whether the background run has finished.
    pub fn is_finished(&self) -> bool {
        self.thread.is_finished()
    }

    /// Waits for the run and returns its totals.
    ///
    /// # Errors
    ///
    /// The runner's own error, or a message if its thread panicked.
    pub fn join(self) -> Result<Summary, String> {
        self.thread
            .join()
            .map_err(|_| "runner thread panicked".to_string())?
    }
}

//! The JSON wire vocabulary: strict request-body readers over
//! [`sof_spec::value::Value`] and the error type every handler returns.
//!
//! Bodies are read the way spec files are: every field is taken by name,
//! type mismatches name the offending path, and unknown keys are rejected
//! — a misspelled field fails loudly instead of silently defaulting.

use sof_spec::value::{parse_json, quote_string, Value};

/// A handler failure: the HTTP status plus a human-actionable message,
/// serialized as `{"error": …}`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status code (4xx/5xx).
    pub status: u16,
    /// What went wrong, phrased for the client.
    pub message: String,
}

impl ApiError {
    /// A 400 with a message.
    pub fn bad_request(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 400,
            message: message.into(),
        }
    }

    /// A 404 with a message.
    pub fn not_found(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 404,
            message: message.into(),
        }
    }

    /// A 409 for semantically-valid requests the engine cannot satisfy
    /// (infeasible embeddings, duplicate names).
    pub fn conflict(message: impl Into<String>) -> ApiError {
        ApiError {
            status: 409,
            message: message.into(),
        }
    }

    /// The `{"error": …}` body for this failure.
    pub fn to_json(&self) -> String {
        format!("{{\"error\":{}}}", quote_string(&self.message))
    }
}

/// One `{name, nodes, dcs}` row from a `regions` array, in field order.
pub type RegionRow = (String, usize, usize);

/// A strict reader over a parsed JSON body.
#[derive(Debug)]
pub struct Body {
    entries: Vec<(String, Value)>,
}

impl Body {
    /// Parses the request body as a JSON object. An empty body reads as an
    /// empty object, so bodyless POSTs to endpoints with all-optional
    /// fields work.
    ///
    /// # Errors
    ///
    /// 400 naming the parse failure or the non-object top level.
    pub fn parse(bytes: &[u8]) -> Result<Body, ApiError> {
        let trimmed = std::str::from_utf8(bytes)
            .map_err(|_| ApiError::bad_request("request body is not UTF-8"))?
            .trim();
        if trimmed.is_empty() {
            return Ok(Body {
                entries: Vec::new(),
            });
        }
        let value = parse_json(trimmed)
            .map_err(|e| ApiError::bad_request(format!("request body is not JSON: {e}")))?;
        match value {
            Value::Table(entries) => Ok(Body { entries }),
            other => Err(ApiError::bad_request(format!(
                "request body must be a JSON object, found {}",
                other.type_name()
            ))),
        }
    }

    fn take(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// A required string field.
    ///
    /// # Errors
    ///
    /// 400 when absent or not a string.
    pub fn str(&mut self, key: &str) -> Result<String, ApiError> {
        match self.take(key) {
            Some(Value::Str(s)) => Ok(s),
            Some(other) => Err(ApiError::bad_request(format!(
                "'{key}' must be a string, found {}",
                other.type_name()
            ))),
            None => Err(ApiError::bad_request(format!(
                "missing required field '{key}'"
            ))),
        }
    }

    /// An optional string field.
    ///
    /// # Errors
    ///
    /// 400 when present but not a string.
    pub fn opt_str(&mut self, key: &str) -> Result<Option<String>, ApiError> {
        match self.take(key) {
            None => Ok(None),
            Some(Value::Str(s)) => Ok(Some(s)),
            Some(other) => Err(ApiError::bad_request(format!(
                "'{key}' must be a string, found {}",
                other.type_name()
            ))),
        }
    }

    /// An optional non-negative integer field.
    ///
    /// # Errors
    ///
    /// 400 when present but not a non-negative integer.
    pub fn opt_u64(&mut self, key: &str) -> Result<Option<u64>, ApiError> {
        match self.take(key) {
            None => Ok(None),
            Some(Value::Int(i)) if i >= 0 => Ok(Some(i as u64)),
            Some(other) => Err(ApiError::bad_request(format!(
                "'{key}' must be a non-negative integer, found {}",
                match other {
                    Value::Int(i) => i.to_string(),
                    v => v.type_name().to_string(),
                }
            ))),
        }
    }

    /// A required non-negative integer field.
    ///
    /// # Errors
    ///
    /// 400 when absent or not a non-negative integer.
    pub fn u64(&mut self, key: &str) -> Result<u64, ApiError> {
        self.opt_u64(key)?
            .ok_or_else(|| ApiError::bad_request(format!("missing required field '{key}'")))
    }

    /// A required array of non-negative integers (node indices).
    ///
    /// # Errors
    ///
    /// 400 when absent, not an array, or any element is not a
    /// non-negative integer.
    pub fn node_list(&mut self, key: &str) -> Result<Vec<usize>, ApiError> {
        match self.take(key) {
            Some(Value::Array(items)) => items
                .iter()
                .enumerate()
                .map(|(i, v)| match v {
                    Value::Int(n) if *n >= 0 => Ok(*n as usize),
                    other => Err(ApiError::bad_request(format!(
                        "'{key}[{i}]' must be a non-negative node index, found {}",
                        other.type_name()
                    ))),
                })
                .collect(),
            Some(other) => Err(ApiError::bad_request(format!(
                "'{key}' must be an array of node indices, found {}",
                other.type_name()
            ))),
            None => Err(ApiError::bad_request(format!(
                "missing required field '{key}'"
            ))),
        }
    }

    /// An optional array of non-negative integers (node indices).
    ///
    /// # Errors
    ///
    /// 400 when present but not an array of non-negative integers.
    pub fn opt_node_list(&mut self, key: &str) -> Result<Option<Vec<usize>>, ApiError> {
        match self.take(key) {
            None => Ok(None),
            Some(Value::Array(items)) => items
                .iter()
                .enumerate()
                .map(|(i, v)| match v {
                    Value::Int(n) if *n >= 0 => Ok(*n as usize),
                    other => Err(ApiError::bad_request(format!(
                        "'{key}[{i}]' must be a non-negative node index, found {}",
                        other.type_name()
                    ))),
                })
                .collect::<Result<Vec<usize>, ApiError>>()
                .map(Some),
            Some(other) => Err(ApiError::bad_request(format!(
                "'{key}' must be an array of node indices, found {}",
                other.type_name()
            ))),
        }
    }

    /// An optional matrix of numbers (e.g. a region pair-cost matrix).
    ///
    /// # Errors
    ///
    /// 400 naming the offending row or cell.
    pub fn opt_matrix(&mut self, key: &str) -> Result<Option<Vec<Vec<f64>>>, ApiError> {
        match self.take(key) {
            None => Ok(None),
            Some(Value::Array(rows)) => {
                let mut matrix = Vec::with_capacity(rows.len());
                for (i, row) in rows.iter().enumerate() {
                    let Value::Array(cells) = row else {
                        return Err(ApiError::bad_request(format!(
                            "'{key}[{i}]' must be an array of numbers, found {}",
                            row.type_name()
                        )));
                    };
                    let mut out = Vec::with_capacity(cells.len());
                    for (j, cell) in cells.iter().enumerate() {
                        match cell.as_f64() {
                            Some(f) => out.push(f),
                            None => {
                                return Err(ApiError::bad_request(format!(
                                    "'{key}[{i}][{j}]' must be a number, found {}",
                                    cell.type_name()
                                )))
                            }
                        }
                    }
                    matrix.push(out);
                }
                Ok(Some(matrix))
            }
            Some(other) => Err(ApiError::bad_request(format!(
                "'{key}' must be an array of number rows, found {}",
                other.type_name()
            ))),
        }
    }

    /// An optional array of `{name, nodes, dcs}` region tables.
    ///
    /// # Errors
    ///
    /// 400 naming the offending region or field.
    pub fn opt_regions(&mut self, key: &str) -> Result<Option<Vec<RegionRow>>, ApiError> {
        match self.take(key) {
            None => Ok(None),
            Some(Value::Array(items)) => {
                let mut regions = Vec::with_capacity(items.len());
                for (i, item) in items.into_iter().enumerate() {
                    let Value::Table(entries) = item else {
                        return Err(ApiError::bad_request(format!(
                            "'{key}[{i}]' must be an object with name/nodes/dcs, found {}",
                            item.type_name()
                        )));
                    };
                    let mut sub = Body { entries };
                    let name = sub.str("name").map_err(|e| {
                        ApiError::bad_request(format!("'{key}[{i}]': {}", e.message))
                    })?;
                    let nodes = sub.u64("nodes").map_err(|e| {
                        ApiError::bad_request(format!("'{key}[{i}]': {}", e.message))
                    })?;
                    let dcs = sub.u64("dcs").map_err(|e| {
                        ApiError::bad_request(format!("'{key}[{i}]': {}", e.message))
                    })?;
                    sub.finish().map_err(|e| {
                        ApiError::bad_request(format!("'{key}[{i}]': {}", e.message))
                    })?;
                    regions.push((name, nodes as usize, dcs as usize));
                }
                Ok(Some(regions))
            }
            Some(other) => Err(ApiError::bad_request(format!(
                "'{key}' must be an array of region objects, found {}",
                other.type_name()
            ))),
        }
    }

    /// Rejects any field not taken by an earlier accessor.
    ///
    /// # Errors
    ///
    /// 400 naming the first unknown field.
    pub fn finish(self) -> Result<(), ApiError> {
        match self.entries.first() {
            None => Ok(()),
            Some((key, _)) => Err(ApiError::bad_request(format!("unknown field '{key}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_body_reading() {
        let mut b = Body::parse(br#"{"name":"t","seed":7,"dests":[1,2]}"#).unwrap();
        assert_eq!(b.str("name").unwrap(), "t");
        assert_eq!(b.opt_u64("seed").unwrap(), Some(7));
        assert_eq!(b.node_list("dests").unwrap(), vec![1, 2]);
        b.finish().unwrap();

        let mut b = Body::parse(br#"{"typo":1}"#).unwrap();
        assert!(b.opt_u64("seed").unwrap().is_none());
        let err = b.finish().unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("'typo'"), "{}", err.message);

        let err = Body::parse(b"[1,2]").unwrap_err();
        assert!(err.message.contains("object"), "{}", err.message);
        let err = Body::parse(b"{nope").unwrap_err();
        assert!(err.message.contains("not JSON"), "{}", err.message);
        assert!(Body::parse(b"  ").unwrap().finish().is_ok());

        let mut b = Body::parse(br#"{"m":[[1,2],[2,"x"]]}"#).unwrap();
        let err = b.opt_matrix("m").unwrap_err();
        assert!(err.message.contains("'m[1][1]'"), "{}", err.message);

        let mut b = Body::parse(br#"{"regions":[{"name":"r","nodes":4,"dcs":1,"x":0}]}"#).unwrap();
        let err = b.opt_regions("regions").unwrap_err();
        assert!(err.message.contains("'regions[0]'"), "{}", err.message);
    }
}

//! # sof — Service Overlay Forest embedding for software-defined cloud networks
//!
//! A full reproduction of *"Service Overlay Forest Embedding for
//! Software-Defined Cloud Networks"* (ICDCS 2017) as a Rust workspace. This
//! facade crate re-exports the member crates:
//!
//! * [`graph`] — weighted-graph substrate (Dijkstra, MST, metric closure,
//!   deterministic topology generators, seedable RNG),
//! * [`steiner`] — Steiner tree portfolio (Mehlhorn/KMB/Takahashi 2-approx,
//!   exact Dreyfus–Wagner),
//! * [`kstroll`] — k-stroll solvers (exact, color coding, greedy),
//! * [`core`] — the SOF problem model, SOFDA / SOFDA-SS approximation
//!   algorithms, VNF conflict resolution, cost model, dynamic operations,
//! * [`baselines`] — the paper's comparison algorithms (ST, eST, eNEMP),
//! * [`exact`] — the optimal "CPLEX-column" solver and the IP formulation,
//! * [`topo`] — SoftLayer / Cogent / Inet / testbed topologies,
//! * [`sim`] — flow-level DES with max-min fairness and video QoE,
//! * [`sdn`] — flow-rule compilation and distributed multi-controller SOFDA.
//!
//! # Quick start
//!
//! ```
//! use sof::core::{solve_sofda, SofdaConfig};
//! use sof::topo::{build_instance, softlayer, ScenarioParams};
//!
//! let inst = build_instance(&softlayer(), &ScenarioParams::paper_defaults());
//! let out = solve_sofda(&inst, &SofdaConfig::default())?;
//! out.forest.validate(&inst)?;
//! println!("forest cost {}", out.cost);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sof_baselines as baselines;
pub use sof_core as core;
pub use sof_exact as exact;
pub use sof_graph as graph;
pub use sof_kstroll as kstroll;
pub use sof_sdn as sdn;
pub use sof_sim as sim;
pub use sof_steiner as steiner;
pub use sof_topo as topo;

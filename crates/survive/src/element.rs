//! The failure-element vocabulary: what can break.
//!
//! An [`ElementRef`] names one failable thing symbolically — a VM, a base
//! link, a base node, or a whole domain (region) — independent of any
//! concrete session instance, so one failure trace applies identically to
//! every group in a run. The string form (`"link:3-7"`, `"domain:us-east"`)
//! is the wire/spec syntax used by scripted event lists and the record
//! stream.

use std::fmt;
use std::str::FromStr;

/// One failable element, named symbolically against the base topology.
///
/// Links are stored with normalized endpoints (`u < v`), so the same
/// physical link always parses and prints identically.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ElementRef {
    /// A VM by node index (base node count + VM offset, identical across
    /// group instances built from the same base topology).
    Vm(usize),
    /// An undirected base-topology link by its endpoint node indices.
    Link(usize, usize),
    /// A base-topology node (switch) by index.
    Node(usize),
    /// A whole domain (region) by name; consumers resolve it to the
    /// region's node set.
    Domain(String),
}

impl ElementRef {
    /// A link with normalized endpoint order.
    pub fn link(u: usize, v: usize) -> ElementRef {
        ElementRef::Link(u.min(v), u.max(v))
    }

    /// The scope this element belongs to (`"vm"` / `"link"` / `"node"` /
    /// `"domain"`).
    pub fn scope(&self) -> &'static str {
        match self {
            ElementRef::Vm(_) => "vm",
            ElementRef::Link(..) => "link",
            ElementRef::Node(_) => "node",
            ElementRef::Domain(_) => "domain",
        }
    }
}

impl fmt::Display for ElementRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElementRef::Vm(n) => write!(f, "vm:{n}"),
            ElementRef::Link(u, v) => write!(f, "link:{u}-{v}"),
            ElementRef::Node(n) => write!(f, "node:{n}"),
            ElementRef::Domain(name) => write!(f, "domain:{name}"),
        }
    }
}

impl FromStr for ElementRef {
    type Err = String;

    /// Parses the spec syntax: `vm:12`, `link:3-7`, `node:5`,
    /// `domain:us-east`.
    fn from_str(s: &str) -> Result<ElementRef, String> {
        let bad = || {
            format!(
                "invalid failure element '{s}' \
                 (expected 'vm:N', 'link:U-V', 'node:N', or 'domain:NAME')"
            )
        };
        let (kind, rest) = s.split_once(':').ok_or_else(bad)?;
        match kind {
            "vm" => rest.parse().map(ElementRef::Vm).map_err(|_| bad()),
            "node" => rest.parse().map(ElementRef::Node).map_err(|_| bad()),
            "link" => {
                let (u, v) = rest.split_once('-').ok_or_else(bad)?;
                let u: usize = u.parse().map_err(|_| bad())?;
                let v: usize = v.parse().map_err(|_| bad())?;
                if u == v {
                    return Err(format!("invalid failure element '{s}' (self-loop link)"));
                }
                Ok(ElementRef::link(u, v))
            }
            "domain" => {
                if rest.is_empty() {
                    return Err(bad());
                }
                Ok(ElementRef::Domain(rest.to_string()))
            }
            _ => Err(bad()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_strings_round_trip() {
        for text in ["vm:12", "link:3-7", "node:5", "domain:us-east"] {
            let e: ElementRef = text.parse().unwrap();
            assert_eq!(e.to_string(), text);
        }
        // Links normalize endpoint order.
        let e: ElementRef = "link:7-3".parse().unwrap();
        assert_eq!(e, ElementRef::link(3, 7));
        assert_eq!(e.to_string(), "link:3-7");
    }

    #[test]
    fn bad_element_strings_are_actionable() {
        for text in [
            "", "link", "link:3", "link:3-3", "edge:1-2", "vm:x", "domain:",
        ] {
            let err = text.parse::<ElementRef>().unwrap_err();
            assert!(err.contains("failure element"), "{text}: {err}");
        }
    }

    #[test]
    fn scopes_match_variants() {
        assert_eq!(ElementRef::Vm(1).scope(), "vm");
        assert_eq!(ElementRef::link(1, 2).scope(), "link");
        assert_eq!(ElementRef::Node(1).scope(), "node");
        assert_eq!(ElementRef::Domain("d".into()).scope(), "domain");
    }
}

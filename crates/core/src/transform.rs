//! Procedure 1/2 of the paper: the k-stroll instance `𝒢` and walk expansion.
//!
//! Procedure 1 builds, for a source `s` and candidate last VM `u`, a complete
//! graph over `M ∪ {s}` whose edge costs blend shortest-path distances with
//! *halved* VM setup costs, such that a shortest `(|C|+1)`-node path in `𝒢`
//! equals the cheapest service chain in `G` (Lemma 1: `𝒢` is metric).
//!
//! Key implementation observation: the only dependence on the chosen last VM
//! `u` is an additive `c(u)/2` on edges incident to `s` (plus `c(s)/2` terms
//! in the Appendix D variant). Therefore **one** generic metric with node
//! potentials `c(x)/2` serves *all* candidate last VMs: for a fixed target
//! `u`, true chain cost = generic path cost + `(c(s) + c(u))/2`, and the
//! optimal path is the same. This lets SOFDA solve one multi-target k-stroll
//! per source instead of `|M|` separate instances.

use crate::Network;
use sof_graph::{Cost, MetricClosure, NodeId};
use sof_kstroll::{AutoMetric, Stroll, StrollSolver};

/// The transformed k-stroll instance for one source (all last VMs at once).
#[derive(Debug)]
pub struct ChainMetric {
    /// Generic metric with halved node-cost potentials; rows materialize on
    /// first touch from the engine-backed closure instead of an eager O(n²)
    /// fill.
    metric: AutoMetric,
    /// Index → network node; index 0 is the source.
    nodes: Vec<NodeId>,
    /// Shortest-path closure over `nodes` for walk expansion.
    closure: MetricClosure,
    /// Setup cost charged for the source (0 unless Appendix D).
    source_cost: Cost,
    /// Setup costs of `nodes` (index-aligned; 0 for the source slot).
    setup: Vec<Cost>,
}

impl ChainMetric {
    /// Builds the transformed instance for `source` over the VM set `vms`.
    ///
    /// `source_cost` enables the Appendix D variant where enabling a source
    /// carries a setup cost; pass [`Cost::ZERO`] for the base model (§III
    /// assumes source setup cost is negligible).
    ///
    /// Returns `None` if some VM is unreachable from `source` (the SOF
    /// instance requires a connected network, so this is defensive).
    pub fn build(
        network: &Network,
        source: NodeId,
        vms: &[NodeId],
        source_cost: Cost,
    ) -> Option<ChainMetric> {
        let mut nodes = Vec::with_capacity(vms.len() + 1);
        nodes.push(source);
        for &v in vms {
            if v != source {
                nodes.push(v);
            }
        }
        // Engine-backed closure: the VM trees are shared across every
        // source's ChainMetric within a solve — and across solves while the
        // network is unchanged — instead of re-running k Dijkstras here.
        let closure = MetricClosure::with_engine(network.graph(), nodes.clone(), network.paths());
        let setup: Vec<Cost> = nodes
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                if i == 0 {
                    Cost::ZERO
                } else {
                    network.node_cost(v)
                }
            })
            .collect();
        let n = nodes.len();
        let pot: Vec<Cost> = setup
            .iter()
            .enumerate()
            .map(|(i, &c)| if i == 0 { source_cost / 2.0 } else { c / 2.0 })
            .collect();
        // Pairwise distances must be finite. The same scan yields the exact
        // cheapest off-diagonal hop — the strongest admissible pruning bound,
        // identical to what a dense build memoizes — from O(1) closure
        // lookups, so even when AutoMetric keeps the entries lazy the exact
        // search prunes at full strength.
        let mut min_hop = Cost::INFINITY;
        for (i, &a) in nodes.iter().enumerate() {
            for (j, &b) in nodes.iter().enumerate() {
                let d = closure.dist_between(a, b);
                if !d.is_finite() {
                    return None;
                }
                if i != j {
                    min_hop = min_hop.min(d + pot[i] + pot[j]);
                }
            }
        }
        let hop_bound = if n >= 2 { min_hop } else { Cost::ZERO };
        let metric = {
            let closure = closure.clone();
            let nodes = nodes.clone();
            let pot = pot.clone();
            AutoMetric::from_fn(n, move |i, j| {
                closure.dist_between(nodes[i], nodes[j]) + pot[i] + pot[j]
            })
            .with_hop_lower_bound(hop_bound)
        };
        Some(ChainMetric {
            metric,
            nodes,
            closure,
            source_cost,
            setup,
        })
    }

    /// The generic metric (node potentials included).
    pub fn metric(&self) -> &AutoMetric {
        &self.metric
    }

    /// Number of metric nodes (`|M| + 1`, or `|M|` if the source is a VM).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when only the source is present (no VMs).
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Metric index of a network node, if present.
    pub fn index_of(&self, v: NodeId) -> Option<usize> {
        self.nodes.iter().position(|&n| n == v)
    }

    /// Network node of metric index `i`.
    pub fn node(&self, i: usize) -> NodeId {
        self.nodes[i]
    }

    /// Converts a generic-metric stroll cost for target index `t` into the
    /// true Procedure-1 chain cost (distances + full setup of chain VMs,
    /// plus the source cost in the Appendix D variant).
    pub fn true_chain_cost(&self, generic_cost: Cost, target: usize) -> Cost {
        generic_cost + self.setup[target] / 2.0 + self.source_cost / 2.0
    }

    /// Exact Procedure-1 edge cost between metric indices `i` and `j` for
    /// last VM index `last` — used by tests to pin the construction to the
    /// paper's formula.
    pub fn procedure1_edge_cost(&self, i: usize, j: usize, last: usize) -> Cost {
        let dist = self.closure.dist_between(self.nodes[i], self.nodes[j]);
        let share = if self.source_cost == Cost::ZERO {
            if i == 0 {
                (self.setup[last] + self.setup[j]) / 2.0
            } else if j == 0 {
                (self.setup[i] + self.setup[last]) / 2.0
            } else {
                (self.setup[i] + self.setup[j]) / 2.0
            }
        } else {
            // Appendix D: both s and u carry (c(s)+c(u))/2.
            let su = self.source_cost + self.setup[last];
            if (i == 0 && j == last) || (j == 0 && i == last) {
                su
            } else if i == 0 || i == last {
                (su + self.setup[j]) / 2.0
            } else if j == 0 || j == last {
                (self.setup[i] + su) / 2.0
            } else {
                (self.setup[i] + self.setup[j]) / 2.0
            }
        };
        dist + share
    }

    /// Solves the k-stroll for every candidate last VM at once and returns
    /// `(target index, stroll, true chain cost)` triples.
    pub fn chains_to_all_vms(
        &self,
        chain_len: usize,
        solver: StrollSolver,
        rng: &mut sof_graph::Rng64,
    ) -> Vec<(usize, Stroll, Cost)> {
        let k = chain_len + 1;
        let best = solver.solve_all_targets(&self.metric, 0, k, rng);
        best.into_iter()
            .enumerate()
            .skip(1) // index 0 is the source itself
            .filter_map(|(t, s)| {
                s.map(|s| {
                    let cost = self.true_chain_cost(s.cost, t);
                    (t, s, cost)
                })
            })
            .collect()
    }

    /// Expands a stroll in the metric into a real walk in `G` (Procedure 2,
    /// final step): concatenates the shortest paths between consecutive
    /// stroll nodes. Returns the walk and the positions of the stroll's VM
    /// nodes (the chain placements `f1 … f|C|`).
    pub fn expand(&self, stroll: &Stroll) -> (Vec<NodeId>, Vec<usize>) {
        let mut walk: Vec<NodeId> = vec![self.nodes[stroll.nodes[0]]];
        let mut positions = Vec::with_capacity(stroll.nodes.len().saturating_sub(1));
        for pair in stroll.nodes.windows(2) {
            let (a, b) = (self.nodes[pair[0]], self.nodes[pair[1]]);
            let path = self
                .closure
                .path_between(a, b)
                .expect("closure distances are finite");
            walk.extend_from_slice(&path[1..]);
            positions.push(walk.len() - 1);
        }
        (walk, positions)
    }

    /// True cost (distances + chain VM setups) of an expanded walk; equals
    /// [`Self::true_chain_cost`] of the originating stroll.
    pub fn walk_cost(&self, network: &Network, walk: &[NodeId], positions: &[usize]) -> Cost {
        let mut c = network
            .graph()
            .walk_cost(walk)
            .expect("expanded walks follow network links");
        for &p in positions {
            c += network.node_cost(walk[p]);
        }
        c + self.source_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sof_graph::{Graph, Rng64};
    use sof_kstroll::{DenseMetric, Metric};

    /// Materializes any metric so dense-only checks (triangle
    /// inequality) can run against it.
    fn densify<M: Metric>(m: &M) -> DenseMetric {
        DenseMetric::from_fn(m.len(), |i, j| m.cost(i, j))
    }

    /// Line 0-1-2-3 (unit links) with VMs 1 (cost 2), 2 (cost 4), 3 (cost 6).
    fn net() -> Network {
        let mut g = Graph::with_nodes(4);
        for i in 0..3 {
            g.add_edge(NodeId::new(i), NodeId::new(i + 1), Cost::new(1.0));
        }
        let mut net = Network::all_switches(g);
        net.make_vm(NodeId::new(1), Cost::new(2.0));
        net.make_vm(NodeId::new(2), Cost::new(4.0));
        net.make_vm(NodeId::new(3), Cost::new(6.0));
        net
    }

    fn vms() -> Vec<NodeId> {
        vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)]
    }

    #[test]
    fn generic_metric_matches_procedure1_up_to_target_constant() {
        let net = net();
        let cm = ChainMetric::build(&net, NodeId::new(0), &vms(), Cost::ZERO).unwrap();
        // Path s(0) -> 1 -> 2 in metric indices = [0, 1, 2]; last VM = 2.
        let generic = cm.metric().path_cost(&[0, 1, 2]);
        let true_cost = cm.true_chain_cost(generic, 2);
        // Procedure 1 with last=2: edges (s,1): dist 1 + (c(2)+c(1))/2 = 1+3;
        // (1,2): dist 1 + (c(1)+c(2))/2 = 1+3. Total 8.
        let p1 = cm.procedure1_edge_cost(0, 1, 2) + cm.procedure1_edge_cost(1, 2, 2);
        assert!(true_cost.approx_eq(p1), "{true_cost} vs {p1}");
        // And equals hand-computed: dist 2 + setups c(1)+c(2) = 2 + 6 = 8.
        assert!(true_cost.approx_eq(Cost::new(8.0)));
    }

    #[test]
    fn metric_satisfies_triangle_inequality() {
        let net = net();
        let cm = ChainMetric::build(&net, NodeId::new(0), &vms(), Cost::ZERO).unwrap();
        assert!(densify(cm.metric()).respects_triangle_inequality(1e-9));
    }

    #[test]
    fn appendix_d_source_cost() {
        let net = net();
        let cm = ChainMetric::build(&net, NodeId::new(0), &vms(), Cost::new(10.0)).unwrap();
        let generic = cm.metric().path_cost(&[0, 1, 2]);
        let true_cost = cm.true_chain_cost(generic, 2);
        // Base 8 plus source setup 10.
        assert!(true_cost.approx_eq(Cost::new(18.0)));
        // Procedure-1 (Appendix D) edge sum agrees.
        let p1 = cm.procedure1_edge_cost(0, 1, 2) + cm.procedure1_edge_cost(1, 2, 2);
        assert!(true_cost.approx_eq(p1));
        assert!(densify(cm.metric()).respects_triangle_inequality(1e-9));
    }

    #[test]
    fn expansion_concatenates_shortest_paths() {
        let net = net();
        let cm = ChainMetric::build(&net, NodeId::new(0), &vms(), Cost::ZERO).unwrap();
        // Stroll 0 -> 3 (index 3 = node 3) -> 1 (node 1): forces a detour.
        let stroll = sof_kstroll::Stroll::from_nodes(cm.metric(), vec![0, 3, 1]);
        let (walk, pos) = cm.expand(&stroll);
        let expect: Vec<NodeId> = [0, 1, 2, 3, 2, 1].iter().map(|&i| NodeId::new(i)).collect();
        assert_eq!(walk, expect);
        assert_eq!(pos, vec![3, 5]);
        let wc = cm.walk_cost(&net, &walk, &pos);
        assert!(wc.approx_eq(cm.true_chain_cost(stroll.cost, 1)));
    }

    #[test]
    fn chains_to_all_vms_covers_every_target() {
        let net = net();
        let cm = ChainMetric::build(&net, NodeId::new(0), &vms(), Cost::ZERO).unwrap();
        let mut rng = Rng64::seed_from(1);
        let chains = cm.chains_to_all_vms(2, StrollSolver::Exact, &mut rng);
        assert_eq!(chains.len(), 3); // all three VMs reachable with k=3
        for (t, stroll, cost) in &chains {
            assert_eq!(stroll.nodes.len(), 3);
            assert!(*cost >= stroll.cost);
            assert!(*t >= 1);
        }
    }

    #[test]
    fn metric_picks_dense_storage_with_sharp_hop_bound() {
        let net = net();
        let cm = ChainMetric::build(&net, NodeId::new(0), &vms(), Cost::ZERO).unwrap();
        // Tiny instance (source + 3 VMs): AutoMetric materializes eagerly;
        // only past AUTO_DENSE_CUTOVER points does it stay lazy.
        assert!(cm.metric().is_dense());
        let dense = densify(cm.metric());
        let bound = cm.metric().hop_lower_bound();
        // Either representation prunes with the exact cheapest hop: the
        // dense side memoizes it, the lazy side gets it from the
        // finiteness scan.
        assert!(bound > Cost::ZERO);
        assert_eq!(bound, dense.min_hop());
    }

    #[test]
    fn source_in_vm_set_is_deduplicated() {
        let mut net = net();
        net.make_vm(NodeId::new(0), Cost::new(9.0));
        let all = vec![
            NodeId::new(0),
            NodeId::new(1),
            NodeId::new(2),
            NodeId::new(3),
        ];
        let cm = ChainMetric::build(&net, NodeId::new(0), &all, Cost::ZERO).unwrap();
        assert_eq!(cm.len(), 4); // source occupies slot 0 once
        assert_eq!(cm.index_of(NodeId::new(0)), Some(0));
    }
}

//! Legacy shim: `fig12` now delegates to the bundled `fig12` preset spec
//! (see `crates/spec/specs/fig12.toml`); same flags, same output.
fn main() {
    sof_spec::shim::legacy_main("fig12");
}

//! Fig. 12: online deployment — accumulative cost as one long-lived
//! multicast group churns, comparing from-scratch re-embedding (the seed
//! behavior) against the incremental `OnlineSession` engine (§VII-C
//! dynamics + drift-bounded rebuilds). With `--sessions N` (N > 1) it
//! instead serves N independent churning groups concurrently through a
//! `SessionPool` — the production-scale multi-group scenario.
use sof_bench::{print_header, print_row, Args};
use sof_core::{EmbedMode, OnlineConfig, OnlineSession, Request, SessionPool, Sofda, SofdaConfig};
use sof_sim::{ChurnParams, ChurnStream};
use sof_topo::{build_instance, cogent, softlayer, ScenarioParams, Topology};
use std::time::Instant;

/// Per-session timing: embedding milliseconds split by how each arrival
/// was served.
#[derive(Default)]
struct Timing {
    solve_ms: f64,
    solve_n: usize,
    inc_ms: f64,
    inc_n: usize,
}

impl Timing {
    fn total_ms(&self) -> f64 {
        self.solve_ms + self.inc_ms
    }
}

fn online(
    topo: &Topology,
    churn: ChurnParams,
    requests: usize,
    seed: u64,
    scratch: bool,
    drift: f64,
) {
    if requests == 0 {
        println!(
            "\n## Fig. 12 — {} (0 arrivals requested — skipped)",
            topo.name
        );
        return;
    }
    println!(
        "\n## Fig. 12 — {} ({requests} arrivals, viewer churn{})\n",
        topo.name,
        if scratch {
            ""
        } else {
            "; from-scratch baseline skipped, pass --scratch 2 to run it"
        }
    );
    let mut stream = ChurnStream::new(churn, topo.graph.node_count(), seed);
    let mut events = vec![stream.current().clone()];
    while events.len() < requests {
        events.push(stream.next_request());
    }
    let make_instance = || {
        let mut p = ScenarioParams::paper_defaults().with_seed(seed);
        p.vm_count = topo.dc_nodes.len() * 5; // 5 VMs per data center
        p.chain_len = churn.base.chain_len;
        build_instance(topo, &p)
    };
    let opts = OnlineConfig {
        demand_mbps: stream.demand(),
        rebuild_drift: drift,
        ..OnlineConfig::default()
    };

    // One standing forest per solver; from-scratch SOFDA is the baseline.
    let mut labels: Vec<String> = Vec::new();
    let mut sessions: Vec<OnlineSession> = Vec::new();
    if scratch {
        labels.push("SOFDA (scratch)".into());
        sessions.push(OnlineSession::new(
            make_instance(),
            Box::new(Sofda),
            SofdaConfig::default().with_seed(seed),
            opts.with_mode(EmbedMode::FromScratch),
        ));
    }
    for solver in sof_solvers::comparison_set(false) {
        labels.push(solver.name().into());
        sessions.push(OnlineSession::new(
            make_instance(),
            solver,
            SofdaConfig::default().with_seed(seed),
            opts,
        ));
    }

    let mut hdr = vec!["#arrivals"];
    hdr.extend(labels.iter().map(String::as_str));
    print_header(&hdr);
    let mut timings: Vec<Timing> = sessions.iter().map(|_| Timing::default()).collect();
    let mut failures = 0usize;
    for (ai, request) in events.iter().enumerate() {
        let arrival = ai + 1;
        for (si, session) in sessions.iter_mut().enumerate() {
            match session.arrive(request.clone()) {
                Ok(report) => {
                    let t = &mut timings[si];
                    if report.rebuilt {
                        t.solve_ms += report.millis;
                        t.solve_n += 1;
                    } else {
                        t.inc_ms += report.millis;
                        t.inc_n += 1;
                    }
                }
                Err(e) => {
                    failures += 1;
                    eprintln!(
                        "warning: {} failed on {} arrival {arrival}: {e}",
                        labels[si], topo.name
                    );
                }
            }
        }
        if arrival % 5 == 0 || arrival == events.len() {
            let mut cells = vec![arrival.to_string()];
            for session in &sessions {
                cells.push(format!("{:.0}", session.accumulated_cost()));
            }
            print_row(&cells);
        }
    }

    println!("\nEmbedding time per session:");
    for ((label, session), t) in labels.iter().zip(&sessions).zip(&timings) {
        let st = session.stats();
        println!(
            "- {label}: {:.2} s ({} full solves, {} incremental events, {} joins, {} leaves, {} fallbacks)",
            t.total_ms() / 1e3,
            st.full_solves,
            st.incremental_events,
            st.joins,
            st.leaves,
            st.fallbacks
        );
    }
    // The incremental SOFDA session right after the optional scratch one.
    let inc = &timings[usize::from(scratch)];
    if inc.solve_n > 0 && inc.inc_n > 0 {
        let per_solve = inc.solve_ms / inc.solve_n as f64;
        let per_inc = inc.inc_ms / inc.inc_n as f64;
        println!(
            "\nPer-event embedding (SOFDA): full solve ≈ {per_solve:.0} ms vs incremental ≈ {per_inc:.2} ms ({:.0}× per event)",
            per_solve / per_inc.max(1e-9)
        );
    }
    if scratch {
        if failures == 0 {
            let speedup = timings[0].total_ms() / timings[1].total_ms().max(1e-9);
            println!("End-to-end incremental speedup (SOFDA, embedding time): {speedup:.1}×");
        } else {
            println!(
                "End-to-end speedup not reported: {failures} arrival(s) failed (see warnings)"
            );
        }
    }
}

/// `--sessions N` mode: N independent churning multicast groups, each with
/// its own incremental `OnlineSession`, stepped concurrently through a
/// `SessionPool`. Results are bit-identical for every thread count.
fn multi_session(
    topo: &Topology,
    churn: ChurnParams,
    requests: usize,
    seed: u64,
    groups: usize,
    drift: f64,
) {
    if requests == 0 {
        println!(
            "\n## Fig. 12 — {} (0 arrivals requested — skipped)",
            topo.name
        );
        return;
    }
    println!(
        "\n## Fig. 12 — {} ({groups} concurrent sessions × {requests} arrivals, {} threads)\n",
        topo.name,
        sof_par::current_threads()
    );
    let mut streams: Vec<ChurnStream> = (0..groups)
        .map(|g| ChurnStream::new(churn, topo.graph.node_count(), seed + g as u64))
        .collect();
    let sessions: Vec<OnlineSession> = (0..groups)
        .map(|g| {
            let group_seed = seed + g as u64;
            let mut p = ScenarioParams::paper_defaults().with_seed(group_seed);
            p.vm_count = topo.dc_nodes.len() * 5;
            p.chain_len = churn.base.chain_len;
            OnlineSession::new(
                build_instance(topo, &p),
                Box::new(Sofda),
                SofdaConfig::default().with_seed(group_seed),
                OnlineConfig {
                    demand_mbps: churn.base.demand_mbps,
                    rebuild_drift: drift,
                    ..OnlineConfig::default()
                },
            )
        })
        .collect();
    let mut pool = SessionPool::new(sessions);
    print_header(&["#arrivals", "Σ accumulated cost", "mean cost/session"]);
    let t0 = Instant::now();
    let mut failures = 0usize;
    for step in 0..requests {
        let snapshots: Vec<Request> = streams
            .iter_mut()
            .map(|s| {
                if step == 0 {
                    s.current().clone()
                } else {
                    s.next_request()
                }
            })
            .collect();
        failures += pool
            .arrive_each(&snapshots)
            .iter()
            .filter(|r| r.is_err())
            .count();
        let arrival = step + 1;
        if arrival % 5 == 0 || arrival == requests {
            let total = pool.total_accumulated_cost();
            print_row(&[
                arrival.to_string(),
                format!("{total:.0}"),
                format!("{:.0}", total / groups as f64),
            ]);
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    let solves: usize = pool.sessions().iter().map(|s| s.stats().full_solves).sum();
    let incremental: usize = pool
        .sessions()
        .iter()
        .map(|s| s.stats().incremental_events)
        .sum();
    println!(
        "\n{groups} sessions × {requests} arrivals in {secs:.2} s \
         ({solves} full solves, {incremental} incremental events, {failures} failures)"
    );
}

fn main() {
    let args = Args::parse(
        "fig12 — online deployment under viewer churn: from-scratch vs incremental re-embedding",
        &[
            ("seed", "base RNG seed (default 5000)"),
            ("requests-softlayer", "SoftLayer arrival count (default 30)"),
            ("requests-cogent", "Cogent arrival count (default 45)"),
            (
                "scratch",
                "from-scratch baseline: 0 = never, 1 = SoftLayer only, 2 = both (default 1 — \
                 the full Cogent from-scratch trajectory alone takes ~4 min)",
            ),
            (
                "drift",
                "rebuild when churn since last solve reaches drift × |D| (default 2.0)",
            ),
            (
                "sessions",
                "independent concurrent churn groups served through a SessionPool \
                 (default 1 = the classic solver comparison; > 1 ignores --scratch)",
            ),
        ],
    );
    let seed: u64 = args.get("seed", 5000);
    let softlayer_reqs: usize = args.get("requests-softlayer", 30);
    let cogent_reqs: usize = args.get("requests-cogent", 45);
    let scratch: usize = args.get("scratch", 1);
    let drift: f64 = args.get("drift", 2.0);
    let sessions: usize = args.get("sessions", 1);
    if sessions > 1 {
        if scratch != 1 {
            eprintln!(
                "note: --scratch is ignored with --sessions > 1 \
                 (the session-pool mode has no from-scratch baseline)"
            );
        }
        println!("# Fig. 12 — online deployment ({sessions} concurrent sessions per topology)");
        multi_session(
            &softlayer(),
            ChurnParams::softlayer(),
            softlayer_reqs,
            seed,
            sessions,
            drift,
        );
        multi_session(
            &cogent(),
            ChurnParams::cogent(),
            cogent_reqs,
            seed,
            sessions,
            drift,
        );
        return;
    }
    println!("# Fig. 12 — online deployment (accumulative cost, viewer churn)");
    online(
        &softlayer(),
        ChurnParams::softlayer(),
        softlayer_reqs,
        seed,
        scratch >= 1,
        drift,
    );
    online(
        &cogent(),
        ChurnParams::cogent(),
        cogent_reqs,
        seed,
        scratch >= 2,
        drift,
    );
}

//! Steiner tree algorithms for the Service Overlay Forest workspace.
//!
//! The ICDCS'17 SOF paper parameterizes its bounds by `ρST`, the best
//! Steiner-tree approximation ratio. This crate supplies the solvers used
//! throughout the reproduction:
//!
//! * [`mehlhorn`] — the default 2-approximation (one multi-source Dijkstra),
//! * [`kmb`] — the classical Kou–Markowsky–Berman 2-approximation,
//! * [`takahashi_matsuyama`] — the shortest-path-attachment heuristic whose
//!   incremental structure the distributed controller (§VI) mirrors,
//! * [`dreyfus_wagner`] — exact dynamic programming for small terminal sets
//!   (ground truth for tests and the CPLEX-scale comparison).
//!
//! [`SteinerSolver`] selects among them uniformly:
//!
//! ```
//! use sof_graph::{Graph, Cost, NodeId};
//! use sof_steiner::SteinerSolver;
//!
//! let mut g = Graph::with_nodes(4);
//! g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(1.0));
//! g.add_edge(NodeId::new(1), NodeId::new(2), Cost::new(1.0));
//! g.add_edge(NodeId::new(1), NodeId::new(3), Cost::new(1.0));
//! let ts = [NodeId::new(0), NodeId::new(2), NodeId::new(3)];
//! let tree = SteinerSolver::Auto.solve(&g, &ts)?;
//! assert_eq!(tree.cost, Cost::new(3.0));
//! # Ok::<(), sof_steiner::SteinerError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dreyfus_wagner;
mod kmb;
mod mehlhorn;
mod takahashi;
mod tree;

pub use dreyfus_wagner::{dreyfus_wagner, MAX_DW_TERMINALS};
pub use kmb::{kmb, kmb_with_engine};
pub use mehlhorn::{mehlhorn, mehlhorn_with_engine};
pub use takahashi::takahashi_matsuyama;
pub use tree::{SteinerError, SteinerTree};

use sof_graph::{Graph, NodeId, PathEngine};

/// Uniform front-end over the Steiner solvers.
///
/// `Auto` uses exact [`dreyfus_wagner`] on small instances and otherwise the
/// better of [`mehlhorn`] and [`takahashi_matsuyama`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SteinerSolver {
    /// Mehlhorn's 2-approximation (fastest).
    Mehlhorn,
    /// Kou–Markowsky–Berman 2-approximation.
    Kmb,
    /// Takahashi–Matsuyama attachment heuristic.
    TakahashiMatsuyama,
    /// Exact Dreyfus–Wagner (small terminal sets only).
    DreyfusWagner,
    /// Exact when cheap, otherwise best-of-two heuristics.
    #[default]
    Auto,
}

impl SteinerSolver {
    /// Terminal-count threshold under which `Auto` goes exact.
    const AUTO_EXACT_TERMINALS: usize = 8;
    /// Node-count threshold under which `Auto` goes exact.
    const AUTO_EXACT_NODES: usize = 300;

    /// Solves the Steiner tree instance with the selected algorithm.
    ///
    /// # Errors
    ///
    /// Propagates [`SteinerError`] from the underlying solver.
    pub fn solve(self, graph: &Graph, terminals: &[NodeId]) -> Result<SteinerTree, SteinerError> {
        self.solve_with(graph, terminals, None)
    }

    /// [`SteinerSolver::solve`] with shortest-path queries optionally served
    /// by a shared [`PathEngine`] (bit-identical results; the exact
    /// Dreyfus–Wagner path ignores the engine). Pass the engine of the
    /// graph's standing network when solving on it repeatedly; pass `None`
    /// for throwaway graphs (e.g. per-solve auxiliary graphs), whose
    /// entries could never be reused.
    ///
    /// # Errors
    ///
    /// Propagates [`SteinerError`] from the underlying solver.
    pub fn solve_with(
        self,
        graph: &Graph,
        terminals: &[NodeId],
        engine: Option<&PathEngine>,
    ) -> Result<SteinerTree, SteinerError> {
        let mehlhorn_of = |ts: &[NodeId]| match engine {
            Some(e) => mehlhorn_with_engine(graph, ts, e),
            None => mehlhorn(graph, ts),
        };
        match self {
            SteinerSolver::Mehlhorn => mehlhorn_of(terminals),
            SteinerSolver::Kmb => match engine {
                Some(e) => kmb_with_engine(graph, terminals, e),
                None => kmb(graph, terminals),
            },
            SteinerSolver::TakahashiMatsuyama => takahashi_matsuyama(graph, terminals),
            SteinerSolver::DreyfusWagner => dreyfus_wagner(graph, terminals),
            SteinerSolver::Auto => {
                let mut distinct: Vec<NodeId> = terminals.to_vec();
                distinct.sort();
                distinct.dedup();
                if distinct.len() <= Self::AUTO_EXACT_TERMINALS
                    && graph.node_count() <= Self::AUTO_EXACT_NODES
                {
                    return dreyfus_wagner(graph, &distinct);
                }
                let a = mehlhorn_of(&distinct)?;
                let b = takahashi_matsuyama(graph, &distinct)?;
                Ok(if a.cost <= b.cost { a } else { b })
            }
        }
    }

    /// The proven approximation ratio of this solver (`ρST` in the paper);
    /// 1 for the exact solver, 2 for the combinatorial approximations.
    pub fn ratio(self) -> f64 {
        match self {
            SteinerSolver::DreyfusWagner => 1.0,
            _ => 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sof_graph::{generators, Cost, CostRange, Rng64};

    #[test]
    fn auto_uses_exact_on_small_instances() {
        let mut rng = Rng64::seed_from(2);
        let g = generators::gnp_connected(30, 0.2, CostRange::new(1.0, 9.0), &mut rng);
        let ts: Vec<NodeId> = rng
            .sample_indices(30, 5)
            .into_iter()
            .map(NodeId::new)
            .collect();
        let auto = SteinerSolver::Auto.solve(&g, &ts).unwrap();
        let exact = SteinerSolver::DreyfusWagner.solve(&g, &ts).unwrap();
        assert_eq!(auto.cost, exact.cost);
    }

    #[test]
    fn all_solvers_agree_on_trivial_instances() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(3.0));
        for solver in [
            SteinerSolver::Mehlhorn,
            SteinerSolver::Kmb,
            SteinerSolver::TakahashiMatsuyama,
            SteinerSolver::DreyfusWagner,
            SteinerSolver::Auto,
        ] {
            let tree = solver.solve(&g, &[NodeId::new(0), NodeId::new(1)]).unwrap();
            assert_eq!(tree.cost, Cost::new(3.0), "{solver:?}");
        }
    }

    #[test]
    fn ratios() {
        assert_eq!(SteinerSolver::DreyfusWagner.ratio(), 1.0);
        assert_eq!(SteinerSolver::Mehlhorn.ratio(), 2.0);
    }
}

//! k-stroll solvers for the Service Overlay Forest workspace.
//!
//! The *k-stroll* problem (Definition 2 of the ICDCS'17 SOF paper, after
//! Chaudhuri et al. FOCS'03): given a metric graph and two nodes `s`, `u`,
//! find the shortest walk from `s` to `u` visiting at least `k` distinct
//! nodes. In a metric instance the optimum can be taken as a **simple path
//! on exactly `k` nodes**, which is the form SOFDA consumes (the `k` nodes
//! become the source plus the `|C|` VMs of a service chain).
//!
//! The paper invokes the FOCS'03 2-approximation. That algorithm's machinery
//! (min-excess paths over dense junction trees) is impractical to reproduce,
//! and here `k = |C|+1 ≤ 8`, so this crate instead offers (see DESIGN.md §5):
//!
//! * [`exact_stroll`] — branch-and-bound enumeration, exact for small `k`
//!   ([`exact_all_targets`] amortizes one sorted-row workspace over every
//!   target of a source — the hot path of SOFDA's Procedure 3),
//! * [`color_coding_stroll`] — randomized color-coding DP, near-exact with
//!   high probability, solving **all targets per source at once**,
//! * [`greedy_stroll`] — deterministic cheapest-insertion + local search.
//!
//! [`StrollSolver`] picks automatically. Exact ≤ the paper's 2-approx, so
//! all approximation bounds are preserved.
//!
//! Every solver is generic over the [`Metric`] trait: [`DenseMetric`] is the
//! eager `n × n` matrix, [`LazyMetric`] materializes rows on demand from a
//! cost oracle (e.g. a memoized shortest-path engine) and answers
//! bit-identically to the dense instance built from the same oracle.
//!
//! # Examples
//!
//! ```
//! use sof_kstroll::{StrollSolver, DenseMetric};
//! use sof_graph::{Cost, Rng64};
//!
//! let m = DenseMetric::from_fn(6, |i, j| Cost::new((i as f64 - j as f64).abs()));
//! let mut rng = Rng64::seed_from(1);
//! let s = StrollSolver::Auto.solve(&m, 0, 5, 4, &mut rng).unwrap();
//! assert_eq!(s.cost, Cost::new(5.0)); // monotone along the line
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod color;
mod exact;
mod greedy;
mod metric;
mod stroll;

pub use color::{color_coding_all_targets, color_coding_stroll, default_trials, ColorCodingResult};
pub use exact::{estimated_work, exact_all_targets, exact_stroll, AUTO_EXACT_WORK_LIMIT};
pub use greedy::greedy_stroll;
pub use metric::{AutoMetric, DenseMetric, LazyMetric, Metric, AUTO_DENSE_CUTOVER};
pub use stroll::Stroll;

use sof_graph::Rng64;

/// Front-end over the k-stroll solvers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StrollSolver {
    /// Exhaustive branch-and-bound (exact; exponential in `k`).
    Exact,
    /// Randomized color coding with this many trials.
    ColorCoding {
        /// Number of random colorings to attempt.
        trials: usize,
    },
    /// Deterministic cheapest insertion + local search.
    Greedy,
    /// Exact when the estimated search space is small, otherwise the best
    /// of greedy and a modest color-coding budget.
    #[default]
    Auto,
}

impl StrollSolver {
    /// Color-coding budget used by `Auto` alongside greedy.
    const AUTO_CC_TRIALS: usize = 160;

    /// Solves a single `(source, target, k)` instance.
    ///
    /// Returns `None` when the instance is infeasible (`k > n`, or a
    /// degenerate endpoint combination).
    pub fn solve<M: Metric + ?Sized>(
        self,
        metric: &M,
        source: usize,
        target: usize,
        k: usize,
        rng: &mut Rng64,
    ) -> Option<Stroll> {
        match self {
            StrollSolver::Exact => exact_stroll(metric, source, target, k),
            StrollSolver::ColorCoding { trials } => {
                color_coding_stroll(metric, source, target, k, trials, rng)
            }
            StrollSolver::Greedy => greedy_stroll(metric, source, target, k),
            StrollSolver::Auto => {
                if estimated_work(metric.len(), k) <= AUTO_EXACT_WORK_LIMIT {
                    return exact_stroll(metric, source, target, k);
                }
                let g = greedy_stroll(metric, source, target, k);
                let c = color_coding_stroll(metric, source, target, k, Self::AUTO_CC_TRIALS, rng);
                match (g, c) {
                    (Some(a), Some(b)) => Some(if a.cost <= b.cost { a } else { b }),
                    (a, b) => a.or(b),
                }
            }
        }
    }

    /// Solves for **every** target at once (used by Procedure 3, which needs
    /// a candidate chain from each source to each VM).
    ///
    /// `best[t]` is the cheapest stroll from `source` to `t` on `k` distinct
    /// nodes, or `None` if infeasible.
    pub fn solve_all_targets<M: Metric + ?Sized>(
        self,
        metric: &M,
        source: usize,
        k: usize,
        rng: &mut Rng64,
    ) -> Vec<Option<Stroll>> {
        let n = metric.len();
        match self {
            StrollSolver::ColorCoding { trials } => {
                let mut res = color_coding_all_targets(metric, source, k, trials, rng).best;
                if k == 1 && source < n {
                    res[source] = Some(Stroll::from_nodes(metric, vec![source]));
                }
                res
            }
            // One shared workspace (sorted candidate rows + DFS buffers)
            // serves every target; bit-identical to per-target solves.
            StrollSolver::Exact => exact_all_targets(metric, source, k),
            StrollSolver::Greedy => (0..n)
                .map(|t| {
                    if t == source {
                        return (k == 1).then(|| Stroll::from_nodes(metric, vec![source]));
                    }
                    self.solve(metric, source, t, k, rng)
                })
                .collect(),
            StrollSolver::Auto => {
                if estimated_work(n, k) <= AUTO_EXACT_WORK_LIMIT {
                    return exact_all_targets(metric, source, k);
                }
                let cc = color_coding_all_targets(metric, source, k, Self::AUTO_CC_TRIALS, rng);
                (0..n)
                    .map(|t| {
                        if t == source {
                            return (k == 1).then(|| Stroll::from_nodes(metric, vec![source]));
                        }
                        let g = greedy_stroll(metric, source, t, k);
                        match (g, cc.best[t].clone()) {
                            (Some(a), Some(b)) => Some(if a.cost <= b.cost { a } else { b }),
                            (a, b) => a.or(b),
                        }
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sof_graph::Cost;

    fn euclid(n: usize, seed: u64) -> DenseMetric {
        let mut rng = Rng64::seed_from(seed);
        let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.next_f64(), rng.next_f64())).collect();
        DenseMetric::symmetric_from_fn(n, |i, j| {
            let dx = pts[i].0 - pts[j].0;
            let dy = pts[i].1 - pts[j].1;
            Cost::new((dx * dx + dy * dy).sqrt())
        })
    }

    #[test]
    fn auto_matches_exact_when_small() {
        let m = euclid(12, 5);
        let mut rng = Rng64::seed_from(9);
        for k in 2..=6 {
            let a = StrollSolver::Auto.solve(&m, 0, 11, k, &mut rng).unwrap();
            let e = StrollSolver::Exact.solve(&m, 0, 11, k, &mut rng).unwrap();
            assert_eq!(a.cost, e.cost, "k={k}");
        }
    }

    #[test]
    fn all_targets_consistent_with_single_target() {
        let m = euclid(9, 11);
        let mut rng = Rng64::seed_from(13);
        let all = StrollSolver::Exact.solve_all_targets(&m, 0, 4, &mut rng);
        for (t, entry) in all.iter().enumerate().skip(1) {
            let single = StrollSolver::Exact.solve(&m, 0, t, 4, &mut rng).unwrap();
            assert_eq!(entry.as_ref().unwrap().cost, single.cost);
        }
        assert!(all[0].is_none()); // k=4 from 0 to itself is infeasible
    }

    #[test]
    fn every_solver_validates_output() {
        let m = euclid(10, 23);
        let mut rng = Rng64::seed_from(3);
        for solver in [
            StrollSolver::Exact,
            StrollSolver::Greedy,
            StrollSolver::ColorCoding { trials: 300 },
            StrollSolver::Auto,
        ] {
            let s = solver.solve(&m, 2, 7, 5, &mut rng).unwrap();
            s.validate(&m, 2, 7, 5).unwrap();
        }
    }

    #[test]
    fn line_metric_smoke() {
        let m = DenseMetric::from_fn(6, |i, j| Cost::new((i as f64 - j as f64).abs()));
        let mut rng = Rng64::seed_from(1);
        let s = StrollSolver::Auto.solve(&m, 0, 5, 6, &mut rng).unwrap();
        assert_eq!(s.nodes, vec![0, 1, 2, 3, 4, 5]);
    }
}

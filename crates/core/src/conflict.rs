//! Procedure 4: augmenting the forest with chain walks while resolving VNF
//! conflicts (Fig. 5 of the paper).
//!
//! A *VNF conflict* arises when a walk being added wants VNF `f_j` on a VM
//! that the forest already runs `f_i ≠ f_j` on. The paper resolves it by
//! re-attaching one of the walks to the other's prefix — never adding new
//! links or enabling new VMs, which is what keeps the `3ρST` bound intact
//! (Theorem 3). Three cases, scanning the new walk's VMs **backwards from
//! its end**:
//!
//! 1. `j ≤ i`: attach the new walk to the existing prefix through the
//!    conflict VM (the prefix already provides `f_1..f_i`).
//! 2. some earlier conflict VM `w` carries `f_h` with `h ≥ j`: attach
//!    through `w` instead, keeping the new walk's own routing from `w` on.
//! 3. otherwise (`j > i`, no such `w`): re-attach the *existing* walk(s)
//!    to the new walk's prefix, relabelling the VM from `f_i` to `f_j`.
//!
//! Case 3 is implemented by deferring the displaced walks and re-adding
//! them once the new walk is final; they then resolve via case 1 against a
//! consistent prefix. A global guard plus a conflict-avoiding fallback
//! protect against pathological cascades (never observed in tests; the
//! paper proves one of the cases always applies).

use crate::Network;
use serde::{Deserialize, Serialize};
use sof_graph::{Cost, NodeId};
use std::collections::HashMap;
use std::fmt;

/// A service-chain walk from a source to a last VM with `|C|` placements.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainWalk {
    /// Originating source.
    pub source: NodeId,
    /// Walk node sequence (source first, last VM last).
    pub nodes: Vec<NodeId>,
    /// Positions in `nodes` of the VMs running `f1 … f|C|`.
    pub vnf_positions: Vec<usize>,
}

impl ChainWalk {
    /// The VM hosting the `i`-th VNF.
    pub fn vnf_node(&self, i: usize) -> NodeId {
        self.nodes[self.vnf_positions[i]]
    }

    /// The walk's *anchor*: its final node, where distribution tails
    /// attach (the candidate last VM of the originating virtual edge).
    ///
    /// This is the VM running `f|C|` unless conflict resolution re-used an
    /// earlier walk's placement, in which case the stretch from the last
    /// placement to the anchor is plain forwarding.
    pub fn anchor(&self) -> NodeId {
        *self.nodes.last().expect("chain walks are non-empty")
    }
}

/// Counters describing which resolution paths fired.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConflictStats {
    /// Conflicts resolved by attaching the new walk at the conflict VM.
    pub case1: usize,
    /// Conflicts resolved by attaching at an earlier conflict VM.
    pub case2: usize,
    /// Conflicts resolved by re-attaching existing walks (VM relabelled).
    pub case3: usize,
    /// Walks rebuilt from scratch on free VMs (guard breached).
    pub fallbacks: usize,
}

impl ConflictStats {
    /// Total conflicts encountered.
    pub fn total(&self) -> usize {
        self.case1 + self.case2 + self.case3 + self.fallbacks
    }
}

/// Errors from conflict resolution.
#[derive(Clone, Debug, PartialEq)]
pub enum ConflictError {
    /// The fallback could not find enough free VMs to rebuild a chain.
    Unresolvable {
        /// Source of the walk that could not be placed.
        source: NodeId,
    },
}

impl fmt::Display for ConflictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConflictError::Unresolvable { source } => {
                write!(f, "cannot resolve VNF conflicts for chain from {source}")
            }
        }
    }
}

impl std::error::Error for ConflictError {}

/// A set of chain walks kept globally VNF-consistent.
///
/// Walks live in stable slots so callers can map auxiliary-graph virtual
/// edges to their (possibly rewritten) walks after all insertions.
#[derive(Clone, Debug)]
pub struct WalkSet {
    chain_len: usize,
    slots: Vec<Option<ChainWalk>>,
    /// VM → (vnf index, slot of one walk using it).
    enabled: HashMap<NodeId, (usize, usize)>,
    /// Resolution statistics.
    pub stats: ConflictStats,
}

impl WalkSet {
    /// Creates an empty set for chains of length `chain_len`.
    pub fn new(chain_len: usize) -> WalkSet {
        WalkSet {
            chain_len,
            slots: Vec::new(),
            enabled: HashMap::new(),
            stats: ConflictStats::default(),
        }
    }

    /// The global VM → VNF map.
    pub fn enabled(&self) -> impl Iterator<Item = (NodeId, usize)> + '_ {
        self.enabled.iter().map(|(&v, &(i, _))| (v, i))
    }

    /// Returns the walk in `slot` (panics if the slot was never filled).
    pub fn walk(&self, slot: usize) -> &ChainWalk {
        self.slots[slot].as_ref().expect("slot is occupied")
    }

    /// All occupied walks with their slots.
    pub fn walks(&self) -> impl Iterator<Item = (usize, &ChainWalk)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, w)| w.as_ref().map(|w| (i, w)))
    }

    fn rebuild_enabled(&mut self) {
        self.enabled.clear();
        for (slot, w) in self.slots.iter().enumerate() {
            let Some(w) = w else { continue };
            for (i, &pos) in w.vnf_positions.iter().enumerate() {
                self.enabled.entry(w.nodes[pos]).or_insert((i, slot));
            }
        }
    }

    /// Conflicting placements of `w`, ordered from the **end** of the walk
    /// backwards: `(chain index on w, node, enabled index, owner slot)`.
    fn conflicts_of(&self, w: &ChainWalk) -> Vec<(usize, NodeId, usize, usize)> {
        let mut out = Vec::new();
        for ci in (0..w.vnf_positions.len()).rev() {
            let node = w.vnf_node(ci);
            if let Some(&(ei, owner)) = self.enabled.get(&node) {
                if ei != ci {
                    out.push((ci, node, ei, owner));
                }
            }
        }
        out
    }

    /// Registers `w`'s placements in the enabled map.
    fn register(&mut self, slot: usize) {
        let w = self.slots[slot].clone().expect("slot occupied");
        for (i, &pos) in w.vnf_positions.iter().enumerate() {
            self.enabled.entry(w.nodes[pos]).or_insert((i, slot));
        }
    }

    /// Adds a chain walk, resolving conflicts per Procedure 4; returns the
    /// stable slot of the (possibly rewritten) walk.
    ///
    /// # Errors
    ///
    /// [`ConflictError::Unresolvable`] when even the fallback cannot place
    /// the chain.
    pub fn add_walk(&mut self, w: ChainWalk, network: &Network) -> Result<usize, ConflictError> {
        assert_eq!(w.vnf_positions.len(), self.chain_len, "wrong chain length");
        let slot = self.slots.len();
        self.slots.push(None);
        self.place(slot, w, network, 0)?;
        Ok(slot)
    }

    /// Core insertion: resolve conflicts of `w`, store it in `slot`,
    /// re-add any displaced walks.
    fn place(
        &mut self,
        slot: usize,
        mut w: ChainWalk,
        network: &Network,
        depth: usize,
    ) -> Result<(), ConflictError> {
        const MAX_DEPTH: usize = 64;
        let mut guard = 0usize;
        let mut displaced: Vec<(usize, ChainWalk)> = Vec::new();
        loop {
            guard += 1;
            if guard > 4 * (self.chain_len + 2) || depth > MAX_DEPTH {
                self.stats.fallbacks += 1;
                w = self.fallback_chain(&w, network)?;
                break;
            }
            let conflicts = self.conflicts_of(&w);
            let Some(&(cj, u, i0, owner)) = conflicts.first() else {
                break; // conflict-free
            };
            if cj <= i0 {
                // Case 1: adopt the owner's prefix through u.
                let prefix = self.walk(owner).clone();
                w = splice(&prefix, i0, &w, cj);
                self.stats.case1 += 1;
            } else if let Some(&(cx, _x, h0, owner2)) =
                conflicts.iter().skip(1).find(|&&(_, _, h, _)| h >= cj)
            {
                // Case 2: attach through the earlier conflict VM x whose
                // enabled index h0 ≥ cj.
                let prefix = self.walk(owner2).clone();
                w = splice(&prefix, h0, &w, cx);
                self.stats.case2 += 1;
            } else {
                // Case 3: displace every walk that uses u as f_{i0}; they
                // re-attach to w's prefix once w is final.
                let deps: Vec<usize> = self
                    .slots
                    .iter()
                    .enumerate()
                    .filter_map(|(i, cand)| {
                        let cand = cand.as_ref()?;
                        (cand.vnf_positions.len() > i0 && cand.vnf_node(i0) == u).then_some(i)
                    })
                    .collect();
                for dep in deps {
                    let taken = self.slots[dep].take().expect("dep occupied");
                    displaced.push((dep, taken));
                }
                self.rebuild_enabled();
                self.stats.case3 += 1;
            }
        }
        self.slots[slot] = Some(w);
        self.register(slot);
        // Re-add displaced walks; they resolve via case 1 against the new
        // prefix (their wanted index at u is smaller than the new label).
        for (dep_slot, dep) in displaced {
            self.place(dep_slot, dep, network, depth + 1)?;
        }
        Ok(())
    }

    /// Rebuilds `w` on free VMs only (fallback path): shortest walk from the
    /// source through `|C|` currently-unused VMs ending at a VM able to run
    /// the final VNF.
    fn fallback_chain(
        &mut self,
        w: &ChainWalk,
        network: &Network,
    ) -> Result<ChainWalk, ConflictError> {
        let err = ConflictError::Unresolvable { source: w.source };
        let last = self.chain_len.checked_sub(1);
        // Free VMs, plus the original last VM if it can still run f_|C|.
        let free: Vec<NodeId> = network
            .vms()
            .into_iter()
            .filter(|v| match self.enabled.get(v) {
                None => true,
                Some(&(i, _)) => last == Some(i) && *v == w.anchor(),
            })
            .collect();
        if free.len() < self.chain_len {
            return Err(err);
        }
        let cm =
            crate::ChainMetric::build(network, w.source, &free, Cost::ZERO).ok_or(err.clone())?;
        // The anchor must stay the same so distribution tails remain valid.
        let target = cm.index_of(w.anchor());
        let mut rng = sof_graph::Rng64::seed_from(0xFA11_BACC);
        let stroll = match target {
            Some(t) if t != 0 => sof_kstroll::StrollSolver::Auto.solve(
                cm.metric(),
                0,
                t,
                self.chain_len + 1,
                &mut rng,
            ),
            _ => None,
        };
        let stroll = stroll.ok_or(err)?;
        let (nodes, vnf_positions) = cm.expand(&stroll);
        Ok(ChainWalk {
            source: w.source,
            nodes,
            vnf_positions,
        })
    }

    /// Consumes the set, returning `(slot, walk)` pairs.
    pub fn into_walks(self) -> Vec<(usize, ChainWalk)> {
        self.slots
            .into_iter()
            .enumerate()
            .filter_map(|(i, w)| w.map(|w| (i, w)))
            .collect()
    }

    /// Shortens pass-through stretches of every walk with current shortest
    /// paths (the paper's "the sub-walk … can be shortened" step), keeping
    /// anchors (source, VNF VMs, last VM) fixed.
    pub fn shorten_all(&mut self, network: &Network) {
        for slot in 0..self.slots.len() {
            let Some(w) = self.slots[slot].clone() else {
                continue;
            };
            let mut anchors = vec![0usize];
            anchors.extend_from_slice(&w.vnf_positions);
            if *anchors.last().expect("non-empty") != w.nodes.len() - 1 {
                anchors.push(w.nodes.len() - 1);
            }
            let mut nodes = vec![w.nodes[0]];
            let mut positions = Vec::with_capacity(w.vnf_positions.len());
            for a in anchors.windows(2) {
                let (from, to) = (w.nodes[a[0]], w.nodes[a[1]]);
                let sp = network.paths().from_source(network.graph(), from);
                let path = sp.path_to(to).expect("network is connected");
                nodes.extend_from_slice(&path[1..]);
                if positions.len() < w.vnf_positions.len() {
                    positions.push(nodes.len() - 1);
                }
            }
            self.slots[slot] = Some(ChainWalk {
                source: w.source,
                nodes,
                vnf_positions: positions,
            });
        }
    }
}

/// Builds `prefix[..=prefix.vnf_positions[pi]] ++ suffix[suffix.vnf_positions[si]+1..]`,
/// keeping the prefix's placements `0..=pi` and the suffix's placements
/// `pi+1..` (which all lie after the splice point by construction).
fn splice(prefix: &ChainWalk, pi: usize, suffix: &ChainWalk, si: usize) -> ChainWalk {
    let p_pos = prefix.vnf_positions[pi];
    let s_pos = suffix.vnf_positions[si];
    let mut nodes = prefix.nodes[..=p_pos].to_vec();
    nodes.extend_from_slice(&suffix.nodes[s_pos + 1..]);
    let mut vnf_positions = prefix.vnf_positions[..=pi].to_vec();
    for idx in pi + 1..suffix.vnf_positions.len() {
        let old = suffix.vnf_positions[idx];
        debug_assert!(
            old > s_pos,
            "kept suffix placement must follow splice point"
        );
        vnf_positions.push(p_pos + (old - s_pos));
    }
    ChainWalk {
        source: prefix.source,
        nodes,
        vnf_positions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sof_graph::Graph;

    /// A dense-ish network with six VMs so conflicts can be manufactured.
    fn net() -> Network {
        let mut g = Graph::with_nodes(8);
        // Ring + chords, unit costs.
        for i in 0..8 {
            g.add_edge(NodeId::new(i), NodeId::new((i + 1) % 8), Cost::new(1.0));
        }
        g.add_edge(NodeId::new(0), NodeId::new(4), Cost::new(1.0));
        g.add_edge(NodeId::new(2), NodeId::new(6), Cost::new(1.0));
        let mut net = Network::all_switches(g);
        for i in 2..8 {
            net.make_vm(NodeId::new(i), Cost::new(1.0));
        }
        net
    }

    fn walk(src: usize, nodes: &[usize], pos: &[usize]) -> ChainWalk {
        ChainWalk {
            source: NodeId::new(src),
            nodes: nodes.iter().map(|&i| NodeId::new(i)).collect(),
            vnf_positions: pos.to_vec(),
        }
    }

    #[test]
    fn disjoint_walks_coexist() {
        let network = net();
        let mut set = WalkSet::new(2);
        set.add_walk(walk(0, &[0, 7, 6], &[1, 2]), &network)
            .unwrap();
        set.add_walk(walk(1, &[1, 2, 3], &[1, 2]), &network)
            .unwrap();
        assert_eq!(set.stats.total(), 0);
        assert_eq!(set.enabled().count(), 4);
    }

    #[test]
    fn shared_consistent_vms_are_free() {
        let network = net();
        let mut set = WalkSet::new(2);
        set.add_walk(walk(0, &[0, 7, 6], &[1, 2]), &network)
            .unwrap();
        // Same placements from another source: no conflict.
        set.add_walk(walk(1, &[1, 0, 7, 6], &[2, 3]), &network)
            .unwrap();
        assert_eq!(set.stats.total(), 0);
        assert_eq!(set.enabled().count(), 2);
    }

    #[test]
    fn case1_attaches_new_walk_to_existing_prefix() {
        let network = net();
        let mut set = WalkSet::new(2);
        // W1: f1@7, f2@6.
        set.add_walk(walk(0, &[0, 7, 6], &[1, 2]), &network)
            .unwrap();
        // W2 wants f1@6 (enabled f2@6): j=0 < i=1 → case 1: W2 adopts W1's
        // prefix through 6 and keeps its own f2@5... but W2's own f2 is at 5.
        let slot = set
            .add_walk(walk(1, &[1, 0, 6, 5], &[2, 3]), &network)
            .unwrap();
        assert_eq!(set.stats.case1, 1);
        let w2 = set.walk(slot);
        // New W2 = W1 prefix (0,7,6) + suffix (5).
        assert_eq!(
            w2.nodes,
            vec![
                NodeId::new(0),
                NodeId::new(7),
                NodeId::new(6),
                NodeId::new(5)
            ]
        );
        assert_eq!(w2.vnf_positions, vec![1, 2]);
        // The prefix supplied both f1 and f2 (ending at node 6); the stretch
        // 6→5 is now plain forwarding towards W2's anchor, and the last
        // placement sits at node 6.
        assert_eq!(w2.vnf_node(1), NodeId::new(6));
        assert_eq!(w2.anchor(), NodeId::new(5));
    }

    #[test]
    fn case3_relabels_and_reattaches_existing_walk() {
        let network = net();
        let mut set = WalkSet::new(2);
        // W1: f1@6, f2@5.
        set.add_walk(walk(0, &[0, 7, 6, 5], &[2, 3]), &network)
            .unwrap();
        // W2 wants f2@6 (enabled f1@6): j=1 > i=0, no earlier conflict →
        // case 3: W1 is displaced and re-attached to W2's prefix.
        set.add_walk(walk(1, &[1, 2, 3, 4, 5, 6], &[2, 5]), &network)
            .unwrap();
        assert!(set.stats.case3 >= 1);
        // All walks consistent afterwards.
        let mut map: HashMap<NodeId, usize> = HashMap::new();
        for (_, w) in set.walks() {
            for (i, &p) in w.vnf_positions.iter().enumerate() {
                let e = map.entry(w.nodes[p]).or_insert(i);
                assert_eq!(*e, i, "conflict survived resolution");
            }
        }
    }

    #[test]
    fn splice_keeps_order_invariants() {
        // Chain length 3. Prefix provides f1@7, f2@6; suffix wanted f1@6
        // (conflict, index 0) and keeps only its own f3@4.
        let p = walk(0, &[0, 7, 6, 5], &[1, 2, 3]);
        let s = walk(1, &[1, 2, 6, 3, 4], &[2, 3, 4]);
        let out = splice(&p, 1, &s, 0);
        assert_eq!(out.source, NodeId::new(0));
        assert_eq!(
            out.nodes,
            vec![
                NodeId::new(0),
                NodeId::new(7),
                NodeId::new(6),
                NodeId::new(3),
                NodeId::new(4)
            ]
        );
        // f1, f2 from the prefix (positions 1, 2); f3 from the suffix,
        // re-based: old pos 4, splice at suffix pos 2 → 2 + (4 − 2) = 4.
        assert_eq!(out.vnf_positions, vec![1, 2, 4]);
    }

    #[test]
    fn splice_drops_superseded_suffix_placements() {
        // Prefix supplies everything up to and including the conflict index;
        // no suffix placements remain (they become pass-through).
        let p = walk(0, &[0, 7, 6], &[1, 2]);
        let s = walk(1, &[1, 2, 6, 3, 4], &[2, 4]);
        let out = splice(&p, 1, &s, 0);
        assert_eq!(out.vnf_positions, vec![1, 2]);
        assert_eq!(out.nodes.len(), 5);
        assert_eq!(out.anchor(), NodeId::new(4));
    }
}

//! Flow-level bandwidth sharing with max-min fairness.

use sof_graph::EdgeId;
use std::collections::HashMap;

/// A unidirectional data flow over a set of links.
#[derive(Clone, Debug)]
pub struct Flow {
    /// Links the flow traverses (undirected capacity pools).
    pub links: Vec<EdgeId>,
    /// Optional cap on the flow's rate (e.g. the stream's bitrate).
    pub rate_cap: Option<f64>,
}

/// Computes the **max-min fair** allocation (progressive filling): rates
/// grow together; when a link saturates, its flows freeze at their current
/// share; capped flows freeze at their cap.
///
/// Returns one rate (Mbps — any consistent unit) per flow.
///
/// # Panics
///
/// Panics if a flow references a link with no declared capacity.
///
/// # Examples
///
/// ```
/// use sof_sim::{max_min_rates, Flow};
/// use sof_graph::EdgeId;
/// use std::collections::HashMap;
///
/// let mut cap = HashMap::new();
/// cap.insert(EdgeId::new(0), 9.0);
/// cap.insert(EdgeId::new(1), 4.0);
/// let flows = vec![
///     Flow { links: vec![EdgeId::new(0)], rate_cap: None },
///     Flow { links: vec![EdgeId::new(0), EdgeId::new(1)], rate_cap: None },
/// ];
/// let rates = max_min_rates(&flows, &cap);
/// // Link 1 saturates first: flow 1 gets 4; flow 0 then takes 9−4 = 5.
/// assert!((rates[1] - 4.0).abs() < 1e-9);
/// assert!((rates[0] - 5.0).abs() < 1e-9);
/// ```
pub fn max_min_rates(flows: &[Flow], capacities: &HashMap<EdgeId, f64>) -> Vec<f64> {
    let n = flows.len();
    let mut rate = vec![0.0f64; n];
    let mut frozen = vec![false; n];
    let mut remaining: HashMap<EdgeId, f64> = capacities.clone();
    // Active flow count per link.
    let mut active_on: HashMap<EdgeId, usize> = HashMap::new();
    for f in flows {
        for &l in &f.links {
            assert!(
                capacities.contains_key(&l),
                "flow uses link {l} without declared capacity"
            );
            *active_on.entry(l).or_insert(0) += 1;
        }
    }
    let mut level = 0.0f64; // common fill level of unfrozen flows
    loop {
        let unfrozen: Vec<usize> = (0..n).filter(|&i| !frozen[i]).collect();
        if unfrozen.is_empty() {
            break;
        }
        // Next freeze point: either a link saturates or a cap binds.
        let mut next = f64::INFINITY;
        for (&l, &rem) in &remaining {
            let users = active_on.get(&l).copied().unwrap_or(0);
            if users > 0 {
                next = next.min(level + rem / users as f64);
            }
        }
        for &i in &unfrozen {
            if let Some(cap) = flows[i].rate_cap {
                next = next.min(cap);
            }
        }
        if !next.is_finite() {
            // No binding constraint: unconstrained flows get "infinite"
            // bandwidth — clamp to something enormous but finite.
            for &i in &unfrozen {
                rate[i] = flows[i].rate_cap.unwrap_or(f64::MAX / 4.0);
                frozen[i] = true;
            }
            break;
        }
        let delta = next - level;
        // Charge links.
        for (&l, rem) in remaining.iter_mut() {
            let users = active_on.get(&l).copied().unwrap_or(0);
            *rem -= delta * users as f64;
        }
        level = next;
        for &i in &unfrozen {
            rate[i] = level;
        }
        // Freeze flows at saturated links or at their caps.
        let saturated: Vec<EdgeId> = remaining
            .iter()
            .filter(|&(_, &rem)| rem <= 1e-9)
            .map(|(&l, _)| l)
            .collect();
        let mut froze_any = false;
        for i in unfrozen {
            let capped = flows[i].rate_cap.is_some_and(|c| level >= c - 1e-12);
            let bottlenecked = flows[i].links.iter().any(|l| saturated.contains(l));
            if capped || bottlenecked {
                frozen[i] = true;
                froze_any = true;
                for &l in &flows[i].links {
                    *active_on.get_mut(&l).expect("registered") -= 1;
                }
            }
        }
        if !froze_any {
            // Numerical edge: force-freeze the most constrained flow.
            if let Some(i) = (0..n).find(|&i| !frozen[i]) {
                frozen[i] = true;
                for &l in &flows[i].links {
                    *active_on.get_mut(&l).expect("registered") -= 1;
                }
            }
        }
    }
    rate
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap(pairs: &[(usize, f64)]) -> HashMap<EdgeId, f64> {
        pairs.iter().map(|&(i, c)| (EdgeId::new(i), c)).collect()
    }

    fn flow(links: &[usize]) -> Flow {
        Flow {
            links: links.iter().map(|&i| EdgeId::new(i)).collect(),
            rate_cap: None,
        }
    }

    #[test]
    fn equal_share_on_single_link() {
        let rates = max_min_rates(&[flow(&[0]), flow(&[0]), flow(&[0])], &cap(&[(0, 9.0)]));
        for r in rates {
            assert!((r - 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn classic_three_link_example() {
        // f0 over l0,l1; f1 over l0; f2 over l1. caps l0=10, l1=4.
        let rates = max_min_rates(
            &[flow(&[0, 1]), flow(&[0]), flow(&[1])],
            &cap(&[(0, 10.0), (1, 4.0)]),
        );
        // l1 splits 2/2 first; then f1 takes the rest of l0 = 8.
        assert!((rates[0] - 2.0).abs() < 1e-9);
        assert!((rates[2] - 2.0).abs() < 1e-9);
        assert!((rates[1] - 8.0).abs() < 1e-9);
    }

    #[test]
    fn rate_caps_release_bandwidth() {
        let flows = vec![
            Flow {
                links: vec![EdgeId::new(0)],
                rate_cap: Some(1.0),
            },
            flow(&[0]),
        ];
        let rates = max_min_rates(&flows, &cap(&[(0, 10.0)]));
        assert!((rates[0] - 1.0).abs() < 1e-9);
        assert!((rates[1] - 9.0).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_property_holds() {
        // Every flow must either hit its cap or cross a saturated link
        // where it has the maximal rate (the max-min optimality condition).
        let capacities = cap(&[(0, 7.0), (1, 5.0), (2, 3.0), (3, 11.0)]);
        let flows = vec![
            flow(&[0, 1]),
            flow(&[1, 2]),
            flow(&[2, 3]),
            flow(&[0, 3]),
            flow(&[3]),
        ];
        let rates = max_min_rates(&flows, &capacities);
        for (i, f) in flows.iter().enumerate() {
            let mut bottleneck = false;
            for &l in &f.links {
                let used: f64 = flows
                    .iter()
                    .enumerate()
                    .filter(|(_, g)| g.links.contains(&l))
                    .map(|(j, _)| rates[j])
                    .sum();
                let saturated = used >= capacities[&l] - 1e-6;
                let max_there = flows
                    .iter()
                    .enumerate()
                    .filter(|(_, g)| g.links.contains(&l))
                    .all(|(j, _)| rates[j] <= rates[i] + 1e-6);
                if saturated && max_there {
                    bottleneck = true;
                }
            }
            assert!(bottleneck, "flow {i} has no bottleneck link");
        }
    }

    #[test]
    fn empty_flow_list() {
        assert!(max_min_rates(&[], &cap(&[(0, 1.0)])).is_empty());
    }
}

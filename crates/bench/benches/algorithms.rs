//! Criterion micro-benchmarks over the SOF algorithm stack.

use criterion::{criterion_group, criterion_main, Criterion};
use sof_core::{SofInstance, SofdaConfig};
use sof_graph::{NodeId, ShortestPaths};
use sof_kstroll::{DenseMetric, StrollSolver};
use sof_steiner::SteinerSolver;
use sof_topo::{build_instance, cogent, softlayer, ScenarioParams};
use std::hint::black_box;
use std::time::Duration;

fn softlayer_instance() -> SofInstance {
    let mut p = ScenarioParams::paper_defaults().with_seed(42);
    p.destinations = 6;
    p.sources = 8;
    build_instance(&softlayer(), &p)
}

fn bench_dijkstra(c: &mut Criterion) {
    let topo = cogent();
    c.bench_function("dijkstra/cogent", |b| {
        b.iter(|| {
            let sp = ShortestPaths::from_source(black_box(&topo.graph), NodeId::new(0));
            black_box(sp.dist(NodeId::new(150)))
        })
    });
}

fn bench_steiner(c: &mut Criterion) {
    let topo = cogent();
    let terminals: Vec<NodeId> = (0..8).map(|i| NodeId::new(i * 20)).collect();
    let mut g = c.benchmark_group("steiner/cogent-8-terminals");
    for (name, solver) in [
        ("mehlhorn", SteinerSolver::Mehlhorn),
        ("kmb", SteinerSolver::Kmb),
        ("takahashi", SteinerSolver::TakahashiMatsuyama),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                solver
                    .solve(black_box(&topo.graph), black_box(&terminals))
                    .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_kstroll(c: &mut Criterion) {
    let mut rng = sof_graph::Rng64::seed_from(7);
    let pts: Vec<(f64, f64)> = (0..26).map(|_| (rng.next_f64(), rng.next_f64())).collect();
    let m = DenseMetric::symmetric_from_fn(26, |i, j| {
        let (dx, dy) = (pts[i].0 - pts[j].0, pts[i].1 - pts[j].1);
        sof_graph::Cost::new((dx * dx + dy * dy).sqrt())
    });
    let mut g = c.benchmark_group("kstroll/26-nodes-k4");
    for (name, solver) in [
        ("exact", StrollSolver::Exact),
        ("greedy", StrollSolver::Greedy),
        ("color-coding-64", StrollSolver::ColorCoding { trials: 64 }),
    ] {
        g.bench_function(name, |b| {
            let mut r = sof_graph::Rng64::seed_from(1);
            b.iter(|| solver.solve(black_box(&m), 0, 25, 4, &mut r).unwrap())
        });
    }
    g.finish();
}

fn bench_sofda(c: &mut Criterion) {
    let inst = softlayer_instance();
    let mut g = c.benchmark_group("solvers/softlayer");
    g.bench_function("sofda", |b| {
        b.iter(|| sof_core::solve_sofda(black_box(&inst), &SofdaConfig::default()).unwrap())
    });
    g.bench_function("est", |b| {
        b.iter(|| sof_baselines::solve_est(black_box(&inst), &SofdaConfig::default()).unwrap())
    });
    g.bench_function("enemp", |b| {
        b.iter(|| sof_baselines::solve_enemp(black_box(&inst), &SofdaConfig::default()).unwrap())
    });
    g.bench_function("st", |b| {
        b.iter(|| sof_baselines::solve_st(black_box(&inst), &SofdaConfig::default()).unwrap())
    });
    g.finish();
}

fn bench_exact(c: &mut Criterion) {
    let mut p = ScenarioParams::paper_defaults().with_seed(9);
    p.destinations = 4;
    p.sources = 4;
    p.vm_count = 10;
    let inst = build_instance(&softlayer(), &p);
    c.bench_function("exact/softlayer-4-dests", |b| {
        b.iter(|| sof_exact::solve_exact(black_box(&inst), 200).unwrap())
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_dijkstra, bench_steiner, bench_kstroll, bench_sofda, bench_exact
}
criterion_main!(benches);

//! Exact k-stroll via branch-and-bound depth-first search.

use crate::{Metric, Stroll};
use sof_graph::Cost;

/// Upper bound on the DFS search-space estimate accepted by
/// [`estimated_work`]-guarded callers (the `Auto` solver).
pub const AUTO_EXACT_WORK_LIMIT: f64 = 5e6;

/// Estimates the unpruned DFS node count for an instance.
pub fn estimated_work(n: usize, k: usize) -> f64 {
    if k < 2 {
        return 1.0;
    }
    let interior = k - 2;
    let mut work = 1.0f64;
    for i in 0..interior {
        work *= (n.saturating_sub(2 + i)) as f64;
    }
    work
}

/// Finds the **minimum-cost** simple path from `source` to `target` visiting
/// exactly `k` distinct nodes, by exhaustive search with cost pruning.
///
/// Returns `None` when no such path exists (`k > n`, or `k != 1` with
/// `source == target`, or `k < 2` with distinct endpoints).
///
/// # Examples
///
/// ```
/// use sof_kstroll::{exact_stroll, DenseMetric};
/// use sof_graph::Cost;
///
/// let m = DenseMetric::from_fn(4, |i, j| Cost::new((i as f64 - j as f64).abs()));
/// let s = exact_stroll(&m, 0, 3, 4).unwrap();
/// assert_eq!(s.nodes, vec![0, 1, 2, 3]);
/// assert_eq!(s.cost, Cost::new(3.0));
/// ```
pub fn exact_stroll<M: Metric + ?Sized>(
    metric: &M,
    source: usize,
    target: usize,
    k: usize,
) -> Option<Stroll> {
    let mut ws = ExactWorkspace::new(metric.len());
    exact_stroll_with(metric, source, target, k, &mut ws)
}

/// Exact k-strolls from `source` to **every** target on one shared
/// workspace: the nearest-first candidate orderings (one stable row sort
/// per visited node) and the search buffers are computed once and reused
/// across all `n` targets, instead of re-allocated and re-sorted inside
/// every DFS node of every per-target call. Entry `t` equals
/// `exact_stroll(metric, source, t, k)` bit-for-bit — stably sorting the
/// full row and skipping used nodes visits candidates in exactly the order
/// the per-call filtered sort did.
pub fn exact_all_targets<M: Metric + ?Sized>(
    metric: &M,
    source: usize,
    k: usize,
) -> Vec<Option<Stroll>> {
    let n = metric.len();
    let mut out: Vec<Option<Stroll>> = vec![None; n];
    if source >= n {
        return out;
    }
    let mut ws = ExactWorkspace::new(n);
    for (t, slot) in out.iter_mut().enumerate() {
        *slot = exact_stroll_with(metric, source, t, k, &mut ws);
    }
    out
}

/// Reusable state shared by every target of one `(metric, source)` search:
/// per-node candidate orderings plus the DFS scratch buffers.
struct ExactWorkspace {
    /// `rows[v]` = all nodes stably sorted by `cost(v, ·)` ascending
    /// (computed lazily, once per `v`). Skipping `used` nodes while
    /// scanning such a row reproduces the nearest-first order the search
    /// previously obtained by filtering and re-sorting per DFS node.
    rows: Vec<Vec<usize>>,
    used: Vec<bool>,
    path: Vec<usize>,
    /// `cheap[r]` = sum of the `r` globally smallest hop costs — an
    /// admissible lower bound on any `r` distinct remaining hops. Built
    /// once per workspace for `k >= 4` searches (empty otherwise); any
    /// admissible bound prunes only branches that cannot *strictly* beat
    /// the incumbent, so strengthening it never changes which stroll is
    /// returned, tie-breaks included.
    cheap: Vec<Cost>,
    /// Cheapest incoming hop per node: `min_in[t]` bounds the closing hop
    /// into target `t`. Built together with `cheap`.
    min_in: Vec<Cost>,
}

impl ExactWorkspace {
    fn new(n: usize) -> ExactWorkspace {
        ExactWorkspace {
            rows: vec![Vec::new(); n],
            used: vec![false; n],
            path: Vec::with_capacity(8),
            cheap: Vec::new(),
            min_in: Vec::new(),
        }
    }

    fn ensure_row<M: Metric + ?Sized>(&mut self, metric: &M, v: usize) {
        if self.rows[v].is_empty() {
            let mut row: Vec<usize> = (0..metric.len()).collect();
            // Same values either way; the borrowed slice skips the per-key
            // virtual/locked lookup inside the stable sort.
            match metric.row(v) {
                Some(costs) => row.sort_by_key(|&w| costs[w]),
                None => row.sort_by_key(|&w| metric.cost(v, w)),
            }
            self.rows[v] = row;
        }
    }

    /// Builds the pruning tables (`cheap` prefix sums up to `k - 1` hops
    /// plus per-node cheapest incoming hop) from one O(n²) scan. Only
    /// worthwhile when the DFS has at least two interior levels to prune
    /// (`k >= 4`); the scan amortizes over the `n × n^(k-2)` search nodes
    /// it guards.
    fn ensure_bounds<M: Metric + ?Sized>(&mut self, metric: &M, k: usize) {
        if self.cheap.len() >= k {
            return;
        }
        let n = metric.len();
        let mut all: Vec<Cost> = Vec::with_capacity(n * n.saturating_sub(1));
        self.min_in.clear();
        self.min_in.resize(n, Cost::INFINITY);
        for i in 0..n {
            let row = metric.row(i);
            for j in 0..n {
                if i == j {
                    continue;
                }
                let c = match row {
                    Some(r) => r[j],
                    None => metric.cost(i, j),
                };
                all.push(c);
                if c < self.min_in[j] {
                    self.min_in[j] = c;
                }
            }
        }
        all.sort_unstable();
        self.cheap.clear();
        self.cheap.push(Cost::ZERO);
        for r in 1..k {
            let prev = self.cheap[r - 1];
            self.cheap.push(match all.get(r - 1) {
                Some(&c) => prev + c,
                None => Cost::INFINITY,
            });
        }
    }
}

fn exact_stroll_with<M: Metric + ?Sized>(
    metric: &M,
    source: usize,
    target: usize,
    k: usize,
    ws: &mut ExactWorkspace,
) -> Option<Stroll> {
    let n = metric.len();
    if source >= n || target >= n || k > n {
        return None;
    }
    if source == target {
        return (k == 1).then(|| Stroll::from_nodes(metric, vec![source]));
    }
    if k < 2 {
        return None;
    }
    if k == 2 {
        return Some(Stroll::from_nodes(metric, vec![source, target]));
    }

    // Admissible per-hop lower bound supplied by the metric (the cheapest
    // off-diagonal hop for dense instances, zero for lazy ones).
    let min_edge = metric.hop_lower_bound();

    // With two or more interior levels the search is deep enough that the
    // stronger distinct-hops + closing-hop tables pay for their O(n²)
    // build; below that the flat `min_edge` bound stays.
    if k >= 4 {
        ws.ensure_bounds(metric, k);
    }

    // Borrow every row once up front: the DFS below visits up to millions
    // of nodes, and fetching the row inside the recursion (one virtual call
    // plus a once-cell check per node) is measurably slower than indexing
    // this table. Metrics without borrowable rows yield `None` entries and
    // keep the pointwise fallback.
    let rows: Vec<Option<&[Cost]>> = (0..n).map(|v| metric.row(v)).collect();

    let interior = k - 2;
    ws.used[source] = true;
    ws.used[target] = true;
    ws.path.clear();
    ws.path.push(source);
    let mut best: Option<(Cost, Vec<usize>)> = None;

    #[allow(clippy::too_many_arguments)] // recursion state threaded explicitly
    fn dfs<M: Metric + ?Sized>(
        metric: &M,
        rows: &[Option<&[Cost]>],
        ws: &mut ExactWorkspace,
        target: usize,
        remaining: usize,
        min_edge: Cost,
        cur_cost: Cost,
        best: &mut Option<(Cost, Vec<usize>)>,
    ) {
        let cur = *ws.path.last().expect("path never empty");
        // Rows were borrowed once before the search started; dense and
        // pinned-lazy metrics make every hop read below a plain indexed
        // load, capped metrics fall back to the pointwise call.
        let row = rows[cur];
        let hop = |w: usize| match row {
            Some(r) => r[w],
            None => metric.cost(cur, w),
        };
        if remaining == 0 {
            let total = cur_cost + hop(target);
            if best.as_ref().is_none_or(|(b, _)| total < *b) {
                let mut nodes = ws.path.clone();
                nodes.push(target);
                *best = Some((total, nodes));
            }
            return;
        }
        // Lower bound on the remaining hops. With the pruning tables
        // built: the `remaining` interior hops are distinct, so they sum
        // to at least `cheap[remaining]`, and the closing hop into the
        // target costs at least its cheapest incoming edge — take the
        // best of that and `cheap[remaining + 1]` (all hops counted as
        // distinct). Without them: every hop costs at least `min_edge`.
        // Both are admissible, and the incumbent is only ever replaced on
        // a *strict* improvement, so the choice affects how many branches
        // are explored but never which stroll is returned.
        if let Some((b, _)) = best {
            let bound = if ws.cheap.is_empty() {
                cur_cost + min_edge * (remaining as f64 + 1.0)
            } else {
                let with_close = ws.cheap[remaining] + ws.min_in[target];
                cur_cost + with_close.max(ws.cheap[remaining + 1])
            };
            if bound >= *b {
                return;
            }
        }
        // Visit nearest-first for stronger pruning, scanning the memoized
        // stable ordering and skipping nodes already on the path (plus the
        // endpoints, marked used for the whole search).
        ws.ensure_row(metric, cur);
        for i in 0..ws.rows[cur].len() {
            let v = ws.rows[cur][i];
            if ws.used[v] {
                continue;
            }
            ws.used[v] = true;
            ws.path.push(v);
            dfs(
                metric,
                rows,
                ws,
                target,
                remaining - 1,
                min_edge,
                cur_cost + hop(v),
                best,
            );
            ws.path.pop();
            ws.used[v] = false;
        }
    }

    dfs(
        metric,
        &rows,
        ws,
        target,
        interior,
        min_edge,
        Cost::ZERO,
        &mut best,
    );
    ws.used[source] = false;
    ws.used[target] = false;
    best.map(|(_, nodes)| Stroll::from_nodes(metric, nodes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DenseMetric;

    fn line(n: usize) -> DenseMetric {
        DenseMetric::from_fn(n, |i, j| Cost::new((i as f64 - j as f64).abs()))
    }

    #[test]
    fn shortest_with_all_nodes_is_monotone_line() {
        let m = line(5);
        let s = exact_stroll(&m, 0, 4, 5).unwrap();
        assert_eq!(s.nodes, vec![0, 1, 2, 3, 4]);
        assert_eq!(s.cost, Cost::new(4.0));
    }

    #[test]
    fn k_two_is_direct_edge() {
        let m = line(5);
        let s = exact_stroll(&m, 1, 3, 2).unwrap();
        assert_eq!(s.nodes, vec![1, 3]);
        assert_eq!(s.cost, Cost::new(2.0));
    }

    #[test]
    fn detour_forced_by_k() {
        // Visiting 4 distinct nodes on the line from 0 to 1 forces a detour.
        let m = line(4);
        let s = exact_stroll(&m, 0, 1, 4).unwrap();
        s.validate(&m, 0, 1, 4).unwrap();
        // Best: 0,3,2,1 -> 3 + 1 + 1 = 5 or 0,2,3,1: 2+1+2=5.
        assert_eq!(s.cost, Cost::new(5.0));
    }

    #[test]
    fn infeasible_cases() {
        let m = line(3);
        assert!(exact_stroll(&m, 0, 2, 4).is_none()); // k > n
        assert!(exact_stroll(&m, 0, 0, 2).is_none()); // s == t, k != 1
        assert!(exact_stroll(&m, 0, 2, 1).is_none()); // k < 2, s != t
        assert_eq!(exact_stroll(&m, 1, 1, 1).unwrap().nodes, vec![1]);
    }

    #[test]
    fn work_estimate_grows() {
        assert_eq!(estimated_work(10, 2), 1.0);
        assert_eq!(estimated_work(10, 3), 8.0);
        assert_eq!(estimated_work(10, 4), 8.0 * 7.0);
    }

    #[test]
    fn all_targets_bit_identical_to_per_target_calls() {
        // Unit-ish integer costs maximize tie-break stress: the shared
        // workspace must reproduce not just the optimal cost but the exact
        // node sequence the standalone search picks among equal optima.
        let m = DenseMetric::symmetric_from_fn(12, |i, j| {
            Cost::new(1.0 + ((i * 7 + j * 3) % 4) as f64)
        });
        for k in 1..=5 {
            let all = exact_all_targets(&m, 2, k);
            for (t, entry) in all.iter().enumerate() {
                let single = exact_stroll(&m, 2, t, k);
                assert_eq!(
                    entry.as_ref().map(|s| (&s.nodes, s.cost)),
                    single.as_ref().map(|s| (&s.nodes, s.cost)),
                    "k={k} t={t}"
                );
            }
        }
    }

    #[test]
    fn min_hop_is_memoized_correctly() {
        let m = DenseMetric::from_fn(5, |i, j| Cost::new((i * 5 + j) as f64 + 1.0));
        let mut expect = Cost::INFINITY;
        for i in 0..5 {
            for j in 0..5 {
                if i != j {
                    expect = expect.min(m.cost(i, j));
                }
            }
        }
        assert_eq!(m.min_hop(), expect);
    }
}

//! Takahashi–Matsuyama shortest-path Steiner heuristic.
//!
//! Greedily grows a tree from the first terminal, repeatedly attaching the
//! terminal closest to the current tree via a shortest path. Also a
//! 2-approximation; often the strongest of the three classical heuristics
//! in practice. Its incremental structure is what the distributed
//! implementation in `sof-sdn` mirrors (§VI of the paper).

use crate::tree::{check_terminals, prune_non_terminal_leaves, SteinerError, SteinerTree};
use sof_graph::{EdgeId, Graph, NodeId, ShortestPaths};
use std::collections::BTreeSet;

/// Computes a Steiner tree spanning `terminals` by iterative shortest-path
/// attachment.
///
/// # Errors
///
/// Same contract as [`crate::mehlhorn`].
///
/// # Examples
///
/// ```
/// use sof_graph::{Graph, Cost, NodeId};
/// use sof_steiner::takahashi_matsuyama;
///
/// let mut g = Graph::with_nodes(4);
/// g.add_edge(NodeId::new(0), NodeId::new(1), Cost::new(1.0));
/// g.add_edge(NodeId::new(1), NodeId::new(2), Cost::new(1.0));
/// g.add_edge(NodeId::new(1), NodeId::new(3), Cost::new(5.0));
/// let tree = takahashi_matsuyama(&g, &[NodeId::new(0), NodeId::new(2), NodeId::new(3)])?;
/// assert_eq!(tree.cost, Cost::new(7.0));
/// # Ok::<(), sof_steiner::SteinerError>(())
/// ```
pub fn takahashi_matsuyama(
    graph: &Graph,
    terminals: &[NodeId],
) -> Result<SteinerTree, SteinerError> {
    check_terminals(graph, terminals)?;
    let mut remaining: BTreeSet<NodeId> = terminals.iter().copied().collect();
    if remaining.len() <= 1 {
        return Ok(SteinerTree::default());
    }
    let first = *remaining.iter().next().expect("non-empty");
    remaining.remove(&first);
    let mut tree_nodes: BTreeSet<NodeId> = BTreeSet::from([first]);
    let mut edges: Vec<EdgeId> = Vec::new();
    while !remaining.is_empty() {
        // Multi-source Dijkstra from the whole current tree.
        let sp = ShortestPaths::from_sources(graph, tree_nodes.iter().copied());
        let next = remaining
            .iter()
            .copied()
            .min_by_key(|&t| (sp.dist(t), t))
            .expect("non-empty remaining");
        if !sp.dist(next).is_finite() {
            return Err(SteinerError::Unreachable { terminal: next });
        }
        let path = sp.path_to(next).expect("finite distance implies a path");
        let path_edges = sp.edges_to(next).expect("finite distance implies a path");
        edges.extend(path_edges);
        tree_nodes.extend(path);
        remaining.remove(&next);
    }
    let distinct: Vec<NodeId> = terminals.to_vec();
    let kept = prune_non_terminal_leaves(graph, edges, &distinct);
    Ok(SteinerTree::from_edges(graph, kept))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sof_graph::Cost;

    #[test]
    fn grows_from_nearest_terminal() {
        let mut g = Graph::with_nodes(6);
        // Path 0-1-2-3-4-5, terminals {0, 3, 5}.
        for i in 0..5 {
            g.add_edge(NodeId::new(i), NodeId::new(i + 1), Cost::new(1.0));
        }
        let ts = vec![NodeId::new(0), NodeId::new(3), NodeId::new(5)];
        let tree = takahashi_matsuyama(&g, &ts).unwrap();
        tree.validate(&g, &ts).unwrap();
        assert_eq!(tree.cost, Cost::new(5.0));
    }

    #[test]
    fn reuses_tree_paths() {
        // Y shape: center 3; terminals at the three tips.
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId::new(0), NodeId::new(3), Cost::new(2.0));
        g.add_edge(NodeId::new(1), NodeId::new(3), Cost::new(2.0));
        g.add_edge(NodeId::new(2), NodeId::new(3), Cost::new(2.0));
        let ts = vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)];
        let tree = takahashi_matsuyama(&g, &ts).unwrap();
        assert_eq!(tree.cost, Cost::new(6.0));
        assert_eq!(tree.edges.len(), 3);
    }

    #[test]
    fn unreachable_terminal() {
        let g = Graph::with_nodes(3);
        let err = takahashi_matsuyama(&g, &[NodeId::new(0), NodeId::new(1)]).unwrap_err();
        assert!(matches!(err, SteinerError::Unreachable { .. }));
    }
}

//! Random graph generators used by the evaluation topologies.
//!
//! All generators are deterministic given a [`Rng64`] seed and always return
//! *connected* graphs (a random spanning tree is laid down first where the
//! base model does not guarantee connectivity).

use crate::{Cost, Graph, NodeId, Rng64};

/// Uniform edge-cost assignment range used by the generators.
#[derive(Clone, Copy, Debug)]
pub struct CostRange {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Exclusive upper bound.
    pub hi: f64,
}

impl CostRange {
    /// A unit cost range `[1, 1]`.
    pub const UNIT: CostRange = CostRange { lo: 1.0, hi: 1.0 };

    /// Creates a range.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `lo < 0`.
    pub fn new(lo: f64, hi: f64) -> CostRange {
        assert!(lo >= 0.0 && lo <= hi, "invalid cost range {lo}..{hi}");
        CostRange { lo, hi }
    }

    fn sample(&self, rng: &mut Rng64) -> Cost {
        if self.lo == self.hi {
            Cost::new(self.lo)
        } else {
            Cost::new(rng.range_f64(self.lo, self.hi))
        }
    }
}

/// Lays down a uniformly random spanning tree (random attachment order).
fn random_spanning_tree(g: &mut Graph, n: usize, costs: CostRange, rng: &mut Rng64) {
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    for i in 1..n {
        let parent = order[rng.below(i)];
        g.add_edge(
            NodeId::new(order[i]),
            NodeId::new(parent),
            costs.sample(rng),
        );
    }
}

/// Connected Erdős–Rényi-style graph: a random spanning tree plus each
/// remaining pair with probability `p`.
///
/// # Examples
///
/// ```
/// use sof_graph::{generators, CostRange, Rng64};
/// let mut rng = Rng64::seed_from(1);
/// let g = generators::gnp_connected(20, 0.1, CostRange::new(1.0, 5.0), &mut rng);
/// assert!(g.is_connected());
/// assert!(g.edge_count() >= 19);
/// ```
pub fn gnp_connected(n: usize, p: f64, costs: CostRange, rng: &mut Rng64) -> Graph {
    let mut g = Graph::with_nodes(n);
    random_spanning_tree(&mut g, n, costs, rng);
    let mut present = std::collections::HashSet::new();
    for (_, e) in g.edges() {
        let (a, b) = (e.u.index().min(e.v.index()), e.u.index().max(e.v.index()));
        present.insert((a, b));
    }
    for a in 0..n {
        for b in a + 1..n {
            if !present.contains(&(a, b)) && rng.chance(p) {
                g.add_edge(NodeId::new(a), NodeId::new(b), costs.sample(rng));
            }
        }
    }
    g
}

/// A ring of `n` nodes (used as a deterministic backbone building block).
pub fn ring(n: usize, costs: CostRange, rng: &mut Rng64) -> Graph {
    assert!(n >= 3, "a ring needs at least 3 nodes");
    let mut g = Graph::with_nodes(n);
    for i in 0..n {
        g.add_edge(NodeId::new(i), NodeId::new((i + 1) % n), costs.sample(rng));
    }
    g
}

/// A `w × h` grid graph.
pub fn grid(w: usize, h: usize, costs: CostRange, rng: &mut Rng64) -> Graph {
    assert!(w >= 1 && h >= 1);
    let mut g = Graph::with_nodes(w * h);
    let id = |x: usize, y: usize| NodeId::new(y * w + x);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                g.add_edge(id(x, y), id(x + 1, y), costs.sample(rng));
            }
            if y + 1 < h {
                g.add_edge(id(x, y), id(x, y + 1), costs.sample(rng));
            }
        }
    }
    g
}

/// Waxman random geometric graph on the unit square, forced connected.
///
/// Edge probability `alpha * exp(-d / (beta * sqrt(2)))` for Euclidean
/// distance `d`; edge cost is proportional to distance scaled into `costs`.
pub fn waxman(n: usize, alpha: f64, beta: f64, costs: CostRange, rng: &mut Rng64) -> Graph {
    let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.next_f64(), rng.next_f64())).collect();
    let dist = |a: usize, b: usize| {
        let (dx, dy) = (pts[a].0 - pts[b].0, pts[a].1 - pts[b].1);
        (dx * dx + dy * dy).sqrt()
    };
    let span = costs.hi - costs.lo;
    let cost_of = |d: f64| Cost::new(costs.lo + span * (d / std::f64::consts::SQRT_2));
    let mut g = Graph::with_nodes(n);
    for a in 0..n {
        for b in a + 1..n {
            let d = dist(a, b);
            let p = alpha * (-d / (beta * std::f64::consts::SQRT_2)).exp();
            if rng.chance(p) {
                g.add_edge(NodeId::new(a), NodeId::new(b), cost_of(d));
            }
        }
    }
    // Stitch components together via nearest pairs to guarantee connectivity.
    let mut uf = crate::UnionFind::new(n);
    for (_, e) in g.edges() {
        uf.union(e.u.index(), e.v.index());
    }
    while uf.set_count() > 1 {
        // Connect node 0's component to the closest node outside it.
        let mut best: Option<(usize, usize, f64)> = None;
        for a in 0..n {
            if !uf.connected(0, a) {
                continue;
            }
            for b in 0..n {
                if uf.connected(0, b) {
                    continue;
                }
                let d = dist(a, b);
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((a, b, d));
                }
            }
        }
        let (a, b, d) = best.expect("disconnected components must exist");
        g.add_edge(NodeId::new(a), NodeId::new(b), cost_of(d));
        uf.union(a, b);
    }
    g
}

/// Inet-style power-law topology: preferential attachment growth followed by
/// preferential chord insertion until `target_edges` is reached.
///
/// This mimics the degree distribution of the Inet generator [60] used for
/// the paper's 5000-node synthetic network.
///
/// # Panics
///
/// Panics if `n < 3` or `target_edges < n - 1`.
///
/// # Examples
///
/// ```
/// use sof_graph::{generators, CostRange, Rng64};
/// let mut rng = Rng64::seed_from(9);
/// let g = generators::inet_like(100, 200, CostRange::new(1.0, 10.0), &mut rng);
/// assert_eq!(g.node_count(), 100);
/// assert_eq!(g.edge_count(), 200);
/// assert!(g.is_connected());
/// ```
pub fn inet_like(n: usize, target_edges: usize, costs: CostRange, rng: &mut Rng64) -> Graph {
    assert!(n >= 3, "need at least 3 nodes");
    assert!(
        target_edges >= n - 1,
        "need at least n-1 edges for connectivity"
    );
    let mut g = Graph::with_nodes(n);
    // `slots` holds one entry per edge endpoint -> sampling from it is
    // degree-proportional (preferential attachment).
    let mut slots: Vec<usize> = Vec::with_capacity(target_edges * 2);
    let add = |g: &mut Graph, slots: &mut Vec<usize>, a: usize, b: usize, rng: &mut Rng64| {
        g.add_edge(NodeId::new(a), NodeId::new(b), costs.sample(rng));
        slots.push(a);
        slots.push(b);
    };
    // Seed triangle.
    add(&mut g, &mut slots, 0, 1, rng);
    add(&mut g, &mut slots, 1, 2, rng);
    add(&mut g, &mut slots, 2, 0, rng);
    // Growth phase: each new node attaches preferentially.
    for v in 3..n {
        let t = *rng.pick(&slots);
        add(&mut g, &mut slots, v, t, rng);
    }
    // Densification: preferential chords, avoiding duplicates where easy.
    let mut present: std::collections::HashSet<(usize, usize)> = g
        .edges()
        .map(|(_, e)| {
            let (a, b) = (e.u.index(), e.v.index());
            (a.min(b), a.max(b))
        })
        .collect();
    let mut guard = 0usize;
    while g.edge_count() < target_edges {
        let a = *rng.pick(&slots);
        let b = if rng.chance(0.5) {
            *rng.pick(&slots)
        } else {
            rng.below(n)
        };
        guard += 1;
        let key = (a.min(b), a.max(b));
        if a != b && (!present.contains(&key) || guard > 50 * target_edges) {
            present.insert(key);
            add(&mut g, &mut slots, a, b, rng);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnp_is_connected_and_deterministic() {
        let a = gnp_connected(30, 0.1, CostRange::new(1.0, 2.0), &mut Rng64::seed_from(4));
        let b = gnp_connected(30, 0.1, CostRange::new(1.0, 2.0), &mut Rng64::seed_from(4));
        assert!(a.is_connected());
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.total_edge_cost(), b.total_edge_cost());
    }

    #[test]
    fn ring_and_grid_shapes() {
        let mut rng = Rng64::seed_from(1);
        let r = ring(5, CostRange::UNIT, &mut rng);
        assert_eq!(r.edge_count(), 5);
        assert!(r.is_connected());
        let gr = grid(3, 4, CostRange::UNIT, &mut rng);
        assert_eq!(gr.node_count(), 12);
        assert_eq!(gr.edge_count(), 3 * 3 + 2 * 4); // 2*w*h - w - h = 17
        assert_eq!(gr.edge_count(), 2 * 3 * 4 - 3 - 4);
        assert!(gr.is_connected());
    }

    #[test]
    fn waxman_connected() {
        let g = waxman(
            40,
            0.6,
            0.3,
            CostRange::new(1.0, 10.0),
            &mut Rng64::seed_from(2),
        );
        assert!(g.is_connected());
        assert!(g.edge_count() >= 39);
    }

    #[test]
    fn inet_like_hits_exact_counts() {
        let g = inet_like(200, 410, CostRange::new(1.0, 5.0), &mut Rng64::seed_from(3));
        assert_eq!(g.node_count(), 200);
        assert_eq!(g.edge_count(), 410);
        assert!(g.is_connected());
    }

    #[test]
    fn inet_like_has_skewed_degrees() {
        let g = inet_like(500, 1000, CostRange::UNIT, &mut Rng64::seed_from(8));
        let max_deg = g.nodes().map(|v| g.degree(v)).max().unwrap();
        let avg = 2.0 * g.edge_count() as f64 / g.node_count() as f64;
        assert!(
            max_deg as f64 > 4.0 * avg,
            "expected hub nodes, max degree {max_deg} vs avg {avg}"
        );
    }
}

//! Acceptance tests for the declarative spec layer: preset round trips,
//! strict rejection of malformed specs, golden-report stability, and
//! thread-count-independent reports.

use proptest::prelude::*;
use sof::spec::{presets, run_spec, write_jsonl, RunOptions, ScenarioSpec, Workload};

/// Every bundled preset parses, validates, survives a TOML **and** a JSON
/// round trip unchanged, and keeps its file name as its spec name.
#[test]
fn bundled_presets_round_trip_losslessly() {
    assert!(presets::PRESETS.len() >= 9, "all figures + demos bundled");
    for (name, src) in presets::PRESETS {
        let spec = ScenarioSpec::from_toml(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(&spec.name, name);
        let toml_again = ScenarioSpec::from_toml(&spec.to_toml()).unwrap();
        assert_eq!(spec, toml_again, "{name}: TOML round trip");
        let json_again = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(spec, json_again, "{name}: JSON round trip");
    }
}

/// Unknown keys anywhere in a spec are rejected, naming the key path.
#[test]
fn unknown_keys_are_rejected_everywhere() {
    for (name, src) in presets::PRESETS {
        let poisoned = format!("{src}\n[workload]\nbogus_key_xyz = 1\n");
        // Appending re-opens [workload]; a duplicate-table conflict or an
        // unknown-key rejection are both hard failures — what must never
        // happen is silent acceptance.
        let err = ScenarioSpec::from_toml(&poisoned)
            .err()
            .unwrap_or_else(|| panic!("{name}: bogus key silently accepted"));
        let msg = err.to_string();
        assert!(
            msg.contains("bogus_key_xyz") || msg.contains("duplicate"),
            "{name}: unhelpful error: {msg}"
        );
    }
}

/// The fig7 golden file stays in lockstep with the engine (the full set is
/// diffed in CI; fig7 is cheap enough for the test suite).
#[test]
fn fig7_matches_its_committed_golden_report() {
    let spec = presets::preset("fig7").unwrap().unwrap();
    let report = run_spec(&spec, &RunOptions::default()).unwrap();
    let golden = std::fs::read_to_string("crates/spec/specs/golden/fig7.jsonl")
        .expect("committed golden file");
    assert_eq!(write_jsonl(&report, false), golden);
}

/// Reports are bit-identical for any worker-thread count.
#[test]
fn spec_reports_are_thread_count_independent() {
    let spec = ScenarioSpec::from_toml(
        r#"
name = "threads"
[params]
vm_count = 10
sources = 4
destinations = 3
[workload]
kind = "sweep"
solvers = ["SOFDA", "eST"]
seeds = 3
seed = 77
[[workload.axes]]
field = "destinations"
values = [2, 3]
"#,
    )
    .unwrap();
    let outputs: Vec<String> = [1usize, 2, 8]
        .iter()
        .map(|&threads| {
            let report = run_spec(
                &spec,
                &RunOptions {
                    threads,
                    ..RunOptions::default()
                },
            )
            .unwrap();
            write_jsonl(&report, false)
        })
        .collect();
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[0], outputs[2]);
}

/// An online spec with failure injection runs end to end and reports the
/// injections; the whole scenario lives in the spec alone.
#[test]
fn online_spec_with_failures_runs_from_data_alone() {
    let spec = ScenarioSpec::from_toml(
        r#"
name = "faulty"
[topology]
name = "testbed"
[online]
drift_policy = "cost"
[workload]
kind = "online"
seed = 3
solvers = ["SOFDA"]
[[workload.groups]]
requests = 8
vms_per_dc = 1
churn = { sources = [1, 2], destinations = [2, 4], leaves = [0, 1], joins = [0, 1] }
[workload.failures]
every = 3
"#,
    )
    .unwrap();
    let report = run_spec(&spec, &RunOptions::default()).unwrap();
    let jsonl = write_jsonl(&report, false);
    assert!(jsonl.contains("\"name\":\"vm_failures\""), "{jsonl}");
    let sof::spec::Detail::Online(d) = &report.sections[0].detail else {
        panic!("expected online detail");
    };
    assert!(d.vm_failures >= 1, "failures injected at arrivals 3 and 6");
    let stats = &d.sessions[0];
    assert_eq!(
        stats.full_solves + stats.incremental_events + d.failures,
        8,
        "every arrival accounted for"
    );
}

/// The session-pool mode (`sessions > 1`) runs from a spec, steps every
/// session, and its report is thread-count independent.
#[test]
fn session_pool_mode_runs_and_is_deterministic() {
    let spec = ScenarioSpec::from_toml(
        r#"
name = "pool"
[topology]
name = "testbed"
[workload]
kind = "online"
seed = 11
solvers = ["SOFDA"]
sessions = 3
[[workload.groups]]
requests = 6
vms_per_dc = 1
churn = { sources = [1, 2], destinations = [2, 4], leaves = [0, 1], joins = [0, 1] }
"#,
    )
    .unwrap();
    let run = |threads: usize| {
        let report = run_spec(
            &spec,
            &RunOptions {
                threads,
                timings: false,
                legacy_notes: false,
            },
        )
        .unwrap();
        let sof::spec::Detail::Pool(d) = report.sections[0].detail.clone() else {
            panic!("expected pool detail");
        };
        assert_eq!((d.groups, d.requests), (3, 6));
        assert_eq!(
            d.solves + d.incremental + d.failures,
            3 * 6,
            "every (session, arrival) accounted for"
        );
        write_jsonl(&report, false)
    };
    let a = run(1);
    assert_eq!(a, run(2), "pool reports must not depend on thread count");
    assert!(
        a.contains("concurrent") || a.contains("group0:testbed"),
        "{a}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Randomized sweep specs round-trip losslessly through TOML and JSON.
    #[test]
    fn random_sweep_specs_round_trip(
        seed in 0u64..100_000,
        seeds in 1u64..9,
        vm_count in 1usize..60,
        chain in 1usize..8,
        axis_len in 1usize..6,
    ) {
        let values: Vec<usize> = (0..axis_len).map(|i| 2 + i * 3).collect();
        let values_str = values
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let src = format!(
            "name = \"rand\"\nlabel = \"R {seed}\"\n\
             [params]\nvm_count = {vm_count}\nchain_len = {chain}\n\
             [workload]\nkind = \"sweep\"\nsolvers = [\"SOFDA\"]\n\
             seeds = {seeds}\nseed = {seed}\n\
             [[workload.axes]]\nfield = \"destinations\"\nvalues = [{values_str}]\n"
        );
        let spec = ScenarioSpec::from_toml(&src).unwrap();
        prop_assert_eq!(&ScenarioSpec::from_toml(&spec.to_toml()).unwrap(), &spec);
        prop_assert_eq!(&ScenarioSpec::from_json(&spec.to_json()).unwrap(), &spec);
        let Workload::Sweep { seeds: s, seed: b, ref axes, .. } = spec.workload else {
            panic!("sweep expected");
        };
        prop_assert_eq!((s, b), (seeds, seed));
        prop_assert_eq!(&axes[0].values, &values);
    }

    /// Out-of-range numbers are rejected, never silently clamped.
    #[test]
    fn negative_and_zero_values_are_rejected(bad in -9i64..1) {
        let src = format!(
            "name = \"bad\"\n[workload]\nkind = \"sweep\"\n\
             solvers = [\"SOFDA\"]\nseeds = {bad}\n"
        );
        let err = ScenarioSpec::from_toml(&src).unwrap_err().to_string();
        prop_assert!(
            err.contains("seeds"),
            "error should name the key: {}", err
        );
    }
}

//! # sof-core — Service Overlay Forest embedding
//!
//! Reproduction of the core contribution of *"Service Overlay Forest
//! Embedding for Software-Defined Cloud Networks"* (ICDCS 2017): given a
//! cloud network with VMs and switches, a set of candidate sources, a set of
//! multicast destinations and a demanded VNF chain, construct a minimum-cost
//! **service overlay forest** — one service tree per used source, where the
//! path to every destination traverses the chain's VNFs in order on selected
//! VMs.
//!
//! The crate provides:
//!
//! * the instance model ([`Network`], [`ServiceChain`], [`Request`],
//!   [`SofInstance`]),
//! * the forest representation with the paper's IP-faithful cost accounting
//!   and a strict feasibility validator ([`ServiceForest`], [`DestWalk`]),
//! * [`solve_sofda_ss`] — Algorithm 1, the `(2+ρST)`-approximation for a
//!   single source,
//! * [`solve_sofda`] — Algorithm 2, the `3ρST`-approximation for the general
//!   case, including Procedure 3's auxiliary graph and Procedure 4's VNF
//!   conflict resolution ([`WalkSet`]),
//! * the Procedure 1 graph transformation ([`ChainMetric`], Lemma 1),
//! * the convex load-cost model of §VII-B ([`fortz_thorup`], [`LoadTracker`])
//!   and the dynamic-membership operations of §VII-C ([`dynamics`]),
//! * the object-safe [`Solver`] trait unifying every embedding algorithm
//!   (implemented here for [`Sofda`] and [`SofdaSs`]; baselines, the exact
//!   solver and distributed SOFDA implement it in their own crates — the
//!   `sof_solvers` registry collects them all),
//! * the incremental [`OnlineSession`] engine powering the online
//!   deployment scenario (Fig. 12): standing forest, congestion-aware
//!   costs, §VII-C incremental re-embedding with a drift-bounded rebuild
//!   fallback,
//! * [`SessionPool`] — many independent online sessions stepped
//!   concurrently on `sof_par` workers with bit-identical,
//!   thread-count-independent results.
//!
//! # Examples
//!
//! ```
//! use sof_core::{Network, Request, ServiceChain, SofInstance, SofdaConfig, solve_sofda};
//! use sof_graph::{Graph, Cost, NodeId};
//!
//! // A small ring with two VMs, two sources and two destinations.
//! let mut g = Graph::with_nodes(8);
//! for i in 0..8 {
//!     g.add_edge(NodeId::new(i), NodeId::new((i + 1) % 8), Cost::new(1.0));
//! }
//! let mut net = Network::all_switches(g);
//! net.make_vm(NodeId::new(2), Cost::new(1.0));
//! net.make_vm(NodeId::new(6), Cost::new(1.0));
//! let inst = SofInstance::new(
//!     net,
//!     Request::new(
//!         vec![NodeId::new(0), NodeId::new(4)],
//!         vec![NodeId::new(3), NodeId::new(7)],
//!         ServiceChain::from_names(["transcode"]),
//!     ),
//! )?;
//! let out = solve_sofda(&inst, &SofdaConfig::default())?;
//! out.forest.validate(&inst)?;
//! println!("forest cost: {}", out.cost);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod conflict;
mod cost_model;
pub mod dynamics;
mod forest;
mod instance;
mod online;
mod pool;
mod sofda;
mod sofda_ss;
mod solver;
mod transform;

pub use config::{ChainAssignment, SofdaConfig, SolveError, SolveOutcome, SolveStats};
pub use conflict::{ChainWalk, ConflictError, ConflictStats, WalkSet};
pub use cost_model::{fortz_thorup, LoadTracker};
pub use dynamics::JoinStrategy;
pub use forest::{DestWalk, ForestCost, ForestError, ForestStats, ServiceForest};
pub use instance::{InstanceError, Network, NodeKind, Request, ServiceChain, SofInstance};
pub use online::{ArrivalReport, DriftPolicy, EmbedMode, OnlineConfig, OnlineSession, OnlineStats};
pub use pool::SessionPool;
pub use sofda::solve_sofda;
pub use sofda_ss::solve_sofda_ss;
pub use solver::{Sofda, SofdaSs, Solver};
pub use transform::ChainMetric;
